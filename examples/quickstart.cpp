/**
 * @file
 * Quickstart: encrypt a vector, compute on it homomorphically, and
 * decrypt. This exercises the core CKKS API (src/fhe) — the
 * functional substrate underneath the Cinnamon compiler and
 * simulator.
 *
 *   build/examples/quickstart
 */

#include <cstdio>

#include "fhe/evaluator.h"

using namespace cinnamon;
using fhe::Cplx;

int
main()
{
    // Small, fast parameters: n = 4096 (2048 complex slots), 6-level
    // chain, 3 keyswitch digits.
    auto params = fhe::CkksParams::makeTest(1 << 12, 6, 3);
    fhe::CkksContext ctx(params);
    fhe::Encoder encoder(ctx);
    fhe::Evaluator eval(ctx);
    fhe::KeyGenerator keygen(ctx, /*seed=*/2025);
    auto sk = keygen.secretKey();
    auto relin = keygen.relinKey(sk);
    auto gks = keygen.galoisKeys(sk, {1});

    std::printf("CKKS context: n=%zu, %zu slots, %zu levels\n",
                ctx.n(), ctx.slots(), params.levels);

    // Encrypt x = (0, 0.01, 0.02, ...).
    Rng rng(7);
    std::vector<Cplx> x(ctx.slots());
    for (std::size_t i = 0; i < x.size(); ++i)
        x[i] = Cplx(0.01 * static_cast<double>(i % 100), 0.0);
    auto ct = eval.encrypt(encoder.encode(x, ctx.maxLevel()),
                           params.scale, sk, rng);

    // y = x^2 + rotate(x, 1): one multiply (with relinearization and
    // rescale) and one rotation (keyswitch). After the rescale the
    // square's scale is Δ²/q ≈ Δ, so the two align within tolerance.
    auto sq = eval.rescale(eval.mul(ct, ct, relin));
    auto rot = eval.dropToLevel(eval.rotate(ct, 1, gks), sq.level);
    rot.scale = sq.scale; // Δ vs Δ²/q: ~2^-28 relative difference
    auto y = eval.add(sq, rot);

    auto out = encoder.decode(eval.decrypt(y, sk), y.scale);
    std::printf("slot 5:  x=%.4f  x^2+x_rot=%.4f  (expected %.4f)\n",
                x[5].real(), out[5].real(),
                x[5].real() * x[5].real() + x[6].real());
    std::printf("slot 42: x=%.4f  x^2+x_rot=%.4f  (expected %.4f)\n",
                x[42].real(), out[42].real(),
                x[42].real() * x[42].real() + x[43].real());
    std::printf("done.\n");
    return 0;
}
