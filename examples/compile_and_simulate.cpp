/**
 * @file
 * The full Cinnamon flow on one page: write a DSL program with
 * concurrent streams (Section 4.2), compile it (keyswitch pass →
 * limb lowering → Belady allocation), validate the compiled ISA
 * streams on the functional emulator against the reference evaluator,
 * then time the same program on the cycle-level simulator at several
 * machine sizes.
 *
 *   build/examples/compile_and_simulate [--trace FILE.trace.json]
 *                                       [--dump-ir STAGE]
 *                                       [--strategy NAME]
 *
 * With --trace, the 4-chip simulation additionally dumps a per-chip,
 * per-functional-unit instruction timeline as Chrome trace-event
 * JSON — open it in Perfetto or about://tracing to see the machine
 * the way Figure 15 aggregates it.
 *
 * With --dump-ir poly|limb|isa, the compiler prints the materialized
 * IR after the pass that produces that stage (poly = the keyswitch-
 * annotated polynomial IR, limb = the placed limb IR, isa = the
 * emitted machine program) to stdout — the quickest way to see what
 * each pipeline pass actually did to the program.
 *
 * With --strategy, the compiler uses the named registry strategy's
 * keyswitch configuration instead of the defaults — run with an
 * unknown name to list the registry.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/trace.h"
#include "compiler/lowering.h"
#include "compiler/strategy.h"
#include "compiler/runtime.h"
#include "exec/backend.h"
#include "fhe/evaluator.h"
#include "sim/simulator.h"

using namespace cinnamon;
using fhe::Cplx;

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string dump_stage;
    std::string strategy;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strncmp(argv[i], "--dump-ir=", 10) == 0) {
            dump_stage = argv[i] + 10;
        } else if (std::strcmp(argv[i], "--dump-ir") == 0 &&
                   i + 1 < argc) {
            dump_stage = argv[++i];
        } else if (std::strcmp(argv[i], "--strategy") == 0 &&
                   i + 1 < argc) {
            strategy = argv[++i];
            const auto &registry =
                compiler::StrategyRegistry::global();
            if (registry.find(strategy) == nullptr) {
                std::fprintf(stderr, "unknown strategy '%s'; valid:",
                             strategy.c_str());
                for (const auto &name : registry.names())
                    std::fprintf(stderr, " %s", name.c_str());
                std::fprintf(stderr, "\n");
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            return 2;
        }
    }
    if (!dump_stage.empty() && dump_stage != "poly" &&
        dump_stage != "limb" && dump_stage != "isa") {
        std::fprintf(stderr,
                     "--dump-ir takes poly, limb, or isa (got %s)\n",
                     dump_stage.c_str());
        return 2;
    }

    auto params = fhe::CkksParams::makeTest(1 << 10, 6, 3);
    fhe::CkksContext ctx(params);
    fhe::Encoder encoder(ctx);
    fhe::Evaluator eval(ctx);
    fhe::KeyGenerator keygen(ctx, 1234);
    auto sk = keygen.secretKey();

    // --- the program: two concurrent streams (Section 4.2) ---------
    compiler::Program prog("demo", ctx);
    auto x = prog.input("x", 4);
    // Stream 0: hoisted rotations summed (both keyswitch patterns).
    auto sum = prog.add(prog.add(prog.rotate(x, 1), prog.rotate(x, 2)),
                        prog.add(prog.rotate(x, 3), prog.rotate(x, 4)));
    prog.output("window_sum", sum);
    // Stream 1: independent squaring on its own chip group.
    prog.beginStream(1);
    auto y = prog.input("y", 4);
    prog.output("y_squared", prog.rescale(prog.mul(y, y)));
    prog.endStream();

    // --- compile --------------------------------------------------
    compiler::CompilerConfig cfg;
    cfg.chips = 4;
    cfg.num_streams = 2;
    cfg.phys_regs = 64;
    cfg.strategy = strategy;
    if (!strategy.empty())
        std::printf("compiling with strategy '%s' (%s)\n",
                    strategy.c_str(),
                    compiler::StrategyRegistry::global()
                        .at(strategy)
                        .display.c_str());
    compiler::Compiler comp(ctx, cfg);
    if (!dump_stage.empty()) {
        comp.setDumpHandler([&](const std::string &stage,
                                const std::string &text) {
            if (stage == dump_stage) {
                std::printf("=== %s IR ===\n%s=== end %s IR ===\n",
                            stage.c_str(), text.c_str(),
                            stage.c_str());
            }
        });
    }
    auto compiled = comp.compile(prog);
    std::printf("compiled: %zu instructions on %zu chips, "
                "%zu IB batches, %zu OA batches, "
                "%zu broadcast + %zu aggregated limbs\n",
                compiled.machine.totalInstructions(),
                compiled.machine.numChips(),
                compiled.ks_pass.ib_batches.size(),
                compiled.ks_pass.oa_batches.size(),
                compiled.comm.broadcast_limbs,
                compiled.comm.aggregation_limbs);

    // --- emulate (functional validation, Section 6.2) --------------
    Rng rng(7);
    std::vector<Cplx> vx(ctx.slots()), vy(ctx.slots());
    for (std::size_t i = 0; i < ctx.slots(); ++i) {
        vx[i] = Cplx(0.001 * static_cast<double>(i % 500), 0);
        vy[i] = Cplx(0.5, 0);
    }
    compiler::ProgramRuntime runtime(ctx, encoder, keygen, sk);
    runtime.bindInput("x", eval.encrypt(encoder.encode(vx, 4),
                                        params.scale, sk, rng));
    runtime.bindInput("y", eval.encrypt(encoder.encode(vy, 4),
                                        params.scale, sk, rng));
    exec::EmulateBackend emulate(runtime);
    auto report = emulate.execute(compiled);
    auto &outputs = report.outputs;
    std::printf("emulated %zu limb ops, output digest %016llx\n",
                report.emu_stats.total(),
                static_cast<unsigned long long>(report.digest));

    auto ws = encoder.decode(eval.decrypt(outputs.at("window_sum"), sk),
                             outputs.at("window_sum").scale);
    auto ys = encoder.decode(eval.decrypt(outputs.at("y_squared"), sk),
                             outputs.at("y_squared").scale);
    const std::size_t slots = ctx.slots();
    Cplx expect = vx[11] + vx[12] + vx[13] + vx[14];
    std::printf("window_sum[10] = %.5f (expected %.5f), "
                "y_squared[0] = %.5f (expected 0.25)\n",
                ws[10].real(), expect.real(), ys[0].real());
    (void)slots;

    // --- simulate -------------------------------------------------
    std::printf("\n%-18s %12s %10s %10s %10s\n", "machine", "cycles",
                "compute", "memory", "network");
    for (std::size_t chips : {2u, 4u}) {
        compiler::CompilerConfig c2 = cfg;
        c2.chips = chips;
        compiler::Compiler comp2(ctx, c2);
        auto prog2 = comp2.compile(prog);
        sim::HardwareConfig hw;
        hw.n = params.n;
        // Trace the largest machine only: one file, one timeline.
        TraceRecorder trace;
        const bool tracing = chips == 4 && !trace_path.empty();
        exec::SimulateBackend simulate(hw, tracing ? &trace : nullptr);
        auto res = simulate.execute(prog2).sim;
        std::printf("%zu chips x 2 strms %12.0f %9.0f%% %9.0f%% "
                    "%9.0f%%\n",
                    chips, res.cycles,
                    100 * res.computeUtilization(hw),
                    100 * res.memoryUtilization(hw),
                    100 * res.networkUtilization(hw));
        if (tracing) {
            if (trace.writeFile(trace_path))
                std::printf("  (wrote %zu trace events to %s)\n",
                            trace.size(), trace_path.c_str());
            else
                std::fprintf(stderr, "failed to write trace to %s\n",
                             trace_path.c_str());
        }
    }
    std::printf("done.\n");
    return 0;
}
