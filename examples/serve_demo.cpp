/**
 * @file
 * The serving runtime end to end: a mixed bootstrap/ResNet/HELR
 * request trace is admitted through the bounded queue, scheduled onto
 * the chip groups of a simulated Cinnamon-8 (two 4-chip groups), and
 * executed by a pool of worker threads — each request is compiled and
 * simulated through the shared thread-safe cache, functionally
 * executed on the ISA emulator with request-seeded keys, and held on
 * its group for the (scaled) simulated duration to model accelerator
 * occupancy. The demo runs the same trace with one worker and with
 * the requested pool and prints both ServeStats reports plus the
 * wall-clock speedup and an output-equivalence check.
 *
 *   build/examples/serve_demo [--requests N] [--workers W]
 *       [--chips C] [--group G] [--queue Q] [--dilation D]
 *       [--batch-max-streams K] [--batch-linger-ms MS]
 *       [--autotune] [--strategy NAME] [--tuner-json FILE]
 *       [--trace FILE.trace.json] [--bench-json FILE]
 *       [--fault-seed S] [--chip-mtbf M] [--transient-p P]
 *       [--link-p P] [--link-dilation X] [--repair-ms MS]
 *       [--min-completion R]
 *
 * --autotune lets the PlanTuner pick the compile strategy and stream
 * split per workload (both runs tune identically, so the
 * bit-identity gate also checks the tuner's determinism);
 * --strategy forces one named StrategyRegistry entry instead
 * (unknown names are rejected with the registry's list).
 * --tuner-json writes every catalog workload's tuned-vs-default
 * simulated seconds for scripts/check_bench.py --tuner.
 *
 * --batch-max-streams K > 1 turns on continuous cross-request
 * batching for the pooled run: compatible queued requests coalesce
 * into one multi-stream program spread across the chip groups, with
 * --batch-linger-ms bounding how long a short batch waits for late
 * compatible arrivals. The serial baseline stays unbatched, so the
 * output-equivalence check doubles as the batched-vs-unbatched
 * bit-identity gate. --bench-json writes the pooled run's
 * steady-state p50 compile_ms and plan-cache hit rate as JSON for
 * scripts/check_bench.py.
 *
 * With --trace, the pooled run's per-request spans (queue → acquire →
 * simulate → probe → dwell, plus backoff/quarantine/readmit fault
 * spans) are written as Chrome trace-event JSON — open the file in
 * Perfetto or about://tracing.
 *
 * The fault flags drive the deterministic fault-injection subsystem
 * (DESIGN.md §5c): --chip-mtbf M kills a chip of the serving group
 * every ~M attempts (quarantine + requeue onto healthy groups),
 * --transient-p injects spurious execution errors (retried with
 * backoff), --link-p/--link-dilation degrade the network PHY in the
 * timing model. The same --fault-seed reproduces the same failure
 * schedule bit for bit. --min-completion R exits non-zero if fewer
 * than R of the admitted requests complete — the CI fault matrix
 * gates on it.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "compiler/strategy.h"
#include "serve/server.h"
#include "serve/tuner.h"

using namespace cinnamon;
using namespace cinnamon::serve;

namespace {

struct DemoConfig
{
    std::size_t requests = 24;
    std::size_t workers = 4;
    std::size_t chips = 8;
    std::size_t group = 4;
    std::size_t queue = 64;
    /** TaskPool threads for emulator execution (0 = keep default). */
    std::size_t exec_workers = 0;
    double dilation = 300.0; ///< wall s per simulated s (device dwell)
    std::size_t batch_max_streams = 1; ///< 1 = unbatched serving
    double batch_linger_ms = 2.0;
    std::string trace_path;  ///< empty = no trace dump
    std::string bench_json_path; ///< empty = no bench dump
    bool autotune = false;       ///< PlanTuner picks the plan
    std::string strategy;        ///< forced strategy ("" = default)
    std::string tuner_json_path; ///< empty = no tuner dump
    /** Restrict the trace to one workload ("" = mixed trace). */
    std::string workload;
    Workload only_workload = Workload::Keyswitch;

    // Fault injection (all layers disabled by default).
    uint64_t fault_seed = 0;
    double chip_mtbf = 0.0;    ///< requests between chip deaths
    double transient_p = 0.0;  ///< spurious-error probability
    double link_p = 0.0;       ///< degraded-PHY probability
    double link_dilation = 4.0;
    double repair_ms = 50.0;   ///< quarantine → readmission time
    /** Minimum completed/admitted ratio; 0 disables the gate. */
    double min_completion = 0.0;
};

DemoConfig
parseArgs(int argc, char **argv)
{
    DemoConfig cfg;
    for (int i = 1; i < argc; ++i) {
        auto num = [&](const char *flag) -> double {
            if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc)
                return -1.0;
            return std::atof(argv[++i]);
        };
        double v;
        if ((v = num("--requests")) >= 0)
            cfg.requests = static_cast<std::size_t>(v);
        else if ((v = num("--workers")) >= 0)
            cfg.workers = static_cast<std::size_t>(v);
        else if ((v = num("--chips")) >= 0)
            cfg.chips = static_cast<std::size_t>(v);
        else if ((v = num("--group")) >= 0)
            cfg.group = static_cast<std::size_t>(v);
        else if ((v = num("--queue")) >= 0)
            cfg.queue = static_cast<std::size_t>(v);
        else if ((v = num("--exec-workers")) >= 0)
            cfg.exec_workers = static_cast<std::size_t>(v);
        else if ((v = num("--dilation")) >= 0)
            cfg.dilation = v;
        else if ((v = num("--fault-seed")) >= 0)
            cfg.fault_seed = static_cast<uint64_t>(v);
        else if ((v = num("--chip-mtbf")) >= 0)
            cfg.chip_mtbf = v;
        else if ((v = num("--transient-p")) >= 0)
            cfg.transient_p = v;
        else if ((v = num("--link-p")) >= 0)
            cfg.link_p = v;
        else if ((v = num("--link-dilation")) >= 0)
            cfg.link_dilation = v;
        else if ((v = num("--repair-ms")) >= 0)
            cfg.repair_ms = v;
        else if ((v = num("--min-completion")) >= 0)
            cfg.min_completion = v;
        else if ((v = num("--batch-max-streams")) >= 0)
            cfg.batch_max_streams = static_cast<std::size_t>(v);
        else if ((v = num("--batch-linger-ms")) >= 0)
            cfg.batch_linger_ms = v;
        else if (std::strcmp(argv[i], "--trace") == 0 &&
                 i + 1 < argc)
            cfg.trace_path = argv[++i];
        else if (std::strcmp(argv[i], "--bench-json") == 0 &&
                 i + 1 < argc)
            cfg.bench_json_path = argv[++i];
        else if (std::strcmp(argv[i], "--autotune") == 0)
            cfg.autotune = true;
        else if (std::strcmp(argv[i], "--strategy") == 0 &&
                 i + 1 < argc) {
            cfg.strategy = argv[++i];
            const auto &registry =
                compiler::StrategyRegistry::global();
            if (registry.find(cfg.strategy) == nullptr) {
                std::fprintf(stderr,
                             "unknown strategy '%s'; valid:",
                             cfg.strategy.c_str());
                for (const auto &name : registry.names())
                    std::fprintf(stderr, " %s", name.c_str());
                std::fprintf(stderr, "\n");
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--tuner-json") == 0 &&
                   i + 1 < argc)
            cfg.tuner_json_path = argv[++i];
        else if (std::strcmp(argv[i], "--workload") == 0 &&
                 i + 1 < argc) {
            cfg.workload = argv[++i];
            if (!workloadFromName(cfg.workload,
                                  &cfg.only_workload)) {
                std::fprintf(stderr,
                             "unknown workload '%s'; valid:",
                             cfg.workload.c_str());
                for (Workload w :
                     {Workload::Bootstrap, Workload::ResNet,
                      Workload::Helr, Workload::Bert,
                      Workload::Keyswitch,
                      Workload::ObliviousJoin})
                    std::fprintf(stderr, " %s", workloadName(w));
                std::fprintf(stderr, "\n");
                std::exit(2);
            }
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    if (cfg.requests == 0) {
        std::fprintf(stderr, "--requests must be at least 1\n");
        std::exit(2);
    }
    return cfg;
}

/** The mixed tenant trace: request i's workload and seed. */
Workload
traceWorkload(const DemoConfig &cfg, std::size_t i)
{
    if (!cfg.workload.empty())
        return cfg.only_workload;
    switch (i % 6) {
    case 0: return Workload::Bootstrap;
    case 1: return Workload::ResNet;
    case 2: return Workload::Helr;
    case 3: return Workload::Bert;
    case 4: return Workload::ObliviousJoin;
    default: return Workload::Keyswitch;
    }
}

/** Run the whole trace on a fresh server; returns per-id hashes. */
std::map<uint64_t, uint64_t>
runTrace(const fhe::CkksContext &ctx, const DemoConfig &cfg,
         std::size_t workers, ServeStats *stats_out,
         const std::string &trace_path = "", bool batched = false,
         std::vector<Response> *responses_out = nullptr)
{
    ServeOptions opt;
    opt.chips = cfg.chips;
    opt.group_size = cfg.group;
    opt.workers = workers;
    opt.exec_workers = cfg.exec_workers;
    opt.queue_capacity = cfg.queue;
    opt.time_dilation = cfg.dilation;
    if (batched) {
        opt.batch_max_streams = cfg.batch_max_streams;
        opt.batch_linger_ms = cfg.batch_linger_ms;
    }
    // Both the serial baseline and the pooled run share the plan
    // settings: a strategy changes output ciphertext bits (different
    // digit decompositions), so the bit-identity gate is only
    // meaningful when both sides compile the same plans.
    opt.autotune = cfg.autotune;
    opt.strategy = cfg.strategy;
    opt.trace = !trace_path.empty();
    opt.faults.seed = cfg.fault_seed;
    opt.faults.chip_mtbf_requests = cfg.chip_mtbf;
    opt.faults.transient_p = cfg.transient_p;
    opt.faults.link_degrade_p = cfg.link_p;
    opt.faults.link_dilation = cfg.link_dilation;
    opt.faults.chip_repair_ms = cfg.repair_ms;

    Server server(ctx, opt);
    server.start();
    std::size_t shed = 0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        // Seed identifies the tenant's data; derive it from i so the
        // serial and concurrent runs see identical requests.
        if (!server.submit(traceWorkload(cfg, i), 1000 + i))
            ++shed;
    }
    server.drainAndStop();
    if (shed > 0)
        std::printf("  (%zu requests shed by admission control)\n",
                    shed);
    *stats_out = server.stats();
    if (opt.trace) {
        if (server.trace().writeFile(trace_path))
            std::printf("  (wrote %zu trace events to %s)\n",
                        server.trace().size(), trace_path.c_str());
        else
            std::fprintf(stderr, "failed to write trace to %s\n",
                         trace_path.c_str());
    }

    std::map<uint64_t, uint64_t> hashes;
    for (const auto &r : server.responses())
        if (r.status == RequestStatus::Completed)
            hashes[r.id] = r.output_hash;
    if (responses_out)
        *responses_out = server.responses();
    return hashes;
}

/**
 * Serving-tier bench dump for scripts/check_bench.py: the pooled
 * run's steady-state p50 compile_ms over completed requests (the
 * plan cache should make most compiles free) and the plan-cache hit
 * rate.
 */
bool
writeBenchJson(const std::string &path, const ServeStats &stats,
               const std::vector<Response> &responses)
{
    std::vector<double> compile_ms;
    for (const auto &r : responses)
        if (r.status == RequestStatus::Completed)
            compile_ms.push_back(r.compile_ms);
    double p50 = 0.0;
    if (!compile_ms.empty()) {
        std::sort(compile_ms.begin(), compile_ms.end());
        p50 = compile_ms[compile_ms.size() / 2];
    }
    const std::size_t lookups = stats.plan_cache.lookups();
    const double hit_rate =
        lookups > 0 ? static_cast<double>(stats.plan_cache.hits) /
                          static_cast<double>(lookups)
                    : 0.0;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\n"
                 "  \"serve_plan_cache\": {\n"
                 "    \"steady_compile_ms_p50\": %.6f,\n"
                 "    \"plan_cache_hit_rate\": %.6f,\n"
                 "    \"plan_cache_hits\": %zu,\n"
                 "    \"plan_cache_lookups\": %zu,\n"
                 "    \"completed\": %zu\n"
                 "  }\n"
                 "}\n",
                 p50, hit_rate, stats.plan_cache.hits, lookups,
                 stats.completed);
    std::fclose(f);
    std::printf("  (wrote serving bench numbers to %s)\n",
                path.c_str());
    return true;
}

/**
 * Tuner dump for scripts/check_bench.py --tuner: every catalog
 * workload's tuned decision vs the default plan, computed through a
 * fresh PlanTuner on the exact (group chips, hardware) point the
 * server tunes on. Simulated seconds are deterministic, so the gate
 * can pin exact strategies, and tuned <= default holds by
 * construction (the default plan is itself a candidate).
 */
bool
writeTunerJson(const std::string &path, const fhe::CkksContext &ctx,
               const DemoConfig &cfg)
{
    WorkloadCatalog catalog(ctx);
    workloads::BenchmarkRunner runner(ctx);
    PlanTuner tuner(runner);
    sim::HardwareConfig hw = ServeOptions().hw;
    hw.n = ctx.n();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n  \"tuner\": [\n");
    const Workload workloads[] = {
        Workload::Bootstrap,     Workload::ResNet,
        Workload::Helr,          Workload::Bert,
        Workload::Keyswitch,     Workload::ObliviousJoin};
    bool first = true;
    for (Workload w : workloads) {
        const TunedPlan &plan =
            tuner.plan(catalog.benchmark(w), cfg.group, hw);
        std::fprintf(f,
                     "%s    {\"workload\": \"%s\", "
                     "\"strategy\": \"%s\", \"group\": %zu, "
                     "\"streams\": %zu, \"tuned_seconds\": %.9f, "
                     "\"default_seconds\": %.9f, "
                     "\"candidates\": %zu}",
                     first ? "" : ",\n", workloadName(w),
                     plan.strategy.c_str(), plan.group, plan.streams,
                     plan.tuned_seconds, plan.default_seconds,
                     plan.candidates);
        first = false;
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("  (wrote tuner decisions to %s)\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const DemoConfig cfg = parseArgs(argc, argv);
    std::printf("serve_demo: %zu-request mixed trace on a simulated "
                "Cinnamon-%zu (%zu groups of %zu chips)\n\n",
                cfg.requests, cfg.chips, cfg.chips / cfg.group,
                cfg.group);

    auto params = fhe::CkksParams::makeTest(1 << 8, 16, 4);
    fhe::CkksContext ctx(params);

    ServeStats serial_stats, pool_stats;
    std::printf("--- serial baseline (--workers 1, unbatched) ---\n");
    auto serial = runTrace(ctx, cfg, 1, &serial_stats);
    std::printf("%s\n", serial_stats.report().c_str());

    if (cfg.batch_max_streams > 1)
        std::printf("--- worker pool (--workers %zu, batching up to "
                    "%zu streams, linger %.1f ms) ---\n",
                    cfg.workers, cfg.batch_max_streams,
                    cfg.batch_linger_ms);
    else
        std::printf("--- worker pool (--workers %zu) ---\n",
                    cfg.workers);
    std::vector<Response> pooled_responses;
    auto pooled =
        runTrace(ctx, cfg, cfg.workers, &pool_stats, cfg.trace_path,
                 /*batched=*/true, &pooled_responses);
    std::printf("%s\n", pool_stats.report().c_str());

    if (!cfg.bench_json_path.empty() &&
        !writeBenchJson(cfg.bench_json_path, pool_stats,
                        pooled_responses)) {
        std::fprintf(stderr, "failed to write bench json to %s\n",
                     cfg.bench_json_path.c_str());
        return 1;
    }
    if (!cfg.tuner_json_path.empty() &&
        !writeTunerJson(cfg.tuner_json_path, ctx, cfg)) {
        std::fprintf(stderr, "failed to write tuner json to %s\n",
                     cfg.tuner_json_path.c_str());
        return 1;
    }

    // Bit-identity is a per-request contract: under saturation the two
    // runs may admit different subsets (admission timing, not
    // nondeterminism), so compare hashes on commonly-completed ids.
    std::size_t common = 0, mismatched = 0;
    for (const auto &[id, hash] : serial) {
        auto it = pooled.find(id);
        if (it == pooled.end())
            continue;
        ++common;
        if (it->second != hash)
            ++mismatched;
    }
    const bool identical = common > 0 && mismatched == 0;
    const double speedup =
        pool_stats.wall_seconds > 0
            ? serial_stats.wall_seconds / pool_stats.wall_seconds
            : 0.0;
    std::printf("outputs bit-identical to serial execution "
                "(%zu commonly-completed requests): %s\n",
                common, identical ? "yes" : "NO");
    std::printf("wall-clock speedup over --workers 1: %.2fx\n",
                speedup);

    // No request is ever lost: the final fates partition the
    // submitted set exactly (Retried rows are intermediate).
    const std::size_t accounted =
        pool_stats.completed + pool_stats.rejected +
        pool_stats.expired + pool_stats.failed;
    const bool conserved = accounted == pool_stats.submitted;
    std::printf("request conservation: %zu completed + %zu rejected "
                "+ %zu expired + %zu failed == %zu submitted: %s\n",
                pool_stats.completed, pool_stats.rejected,
                pool_stats.expired, pool_stats.failed,
                pool_stats.submitted, conserved ? "yes" : "NO");

    const std::size_t admitted =
        pool_stats.submitted - pool_stats.rejected;
    const double completion_rate =
        admitted > 0 ? static_cast<double>(pool_stats.completed) /
                           static_cast<double>(admitted)
                     : 1.0;
    if (cfg.min_completion > 0.0) {
        std::printf("completion rate: %.1f%% of %zu admitted "
                    "(gate: %.1f%%)\n",
                    100.0 * completion_rate, admitted,
                    100.0 * cfg.min_completion);
        if (completion_rate < cfg.min_completion) {
            std::fprintf(stderr,
                         "completion rate below --min-completion\n");
            return 1;
        }
    }
    if (!identical || !conserved)
        return 1;
    return 0;
}
