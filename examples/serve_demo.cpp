/**
 * @file
 * The serving runtime end to end: a mixed bootstrap/ResNet/HELR
 * request trace is admitted through the bounded queue, scheduled onto
 * the chip groups of a simulated Cinnamon-8 (two 4-chip groups), and
 * executed by a pool of worker threads — each request is compiled and
 * simulated through the shared thread-safe cache, functionally
 * executed on the ISA emulator with request-seeded keys, and held on
 * its group for the (scaled) simulated duration to model accelerator
 * occupancy. The demo runs the same trace with one worker and with
 * the requested pool and prints both ServeStats reports plus the
 * wall-clock speedup and an output-equivalence check.
 *
 *   build/examples/serve_demo [--requests N] [--workers W]
 *       [--chips C] [--group G] [--queue Q] [--dilation D]
 *       [--trace FILE.trace.json]
 *
 * With --trace, the pooled run's per-request spans (queue → acquire →
 * simulate → probe → dwell) are written as Chrome trace-event JSON —
 * open the file in Perfetto or about://tracing.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "serve/server.h"

using namespace cinnamon;
using namespace cinnamon::serve;

namespace {

struct DemoConfig
{
    std::size_t requests = 24;
    std::size_t workers = 4;
    std::size_t chips = 8;
    std::size_t group = 4;
    std::size_t queue = 64;
    double dilation = 300.0; ///< wall s per simulated s (device dwell)
    std::string trace_path;  ///< empty = no trace dump
};

DemoConfig
parseArgs(int argc, char **argv)
{
    DemoConfig cfg;
    for (int i = 1; i < argc; ++i) {
        auto num = [&](const char *flag) -> double {
            if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc)
                return -1.0;
            return std::atof(argv[++i]);
        };
        double v;
        if ((v = num("--requests")) >= 0)
            cfg.requests = static_cast<std::size_t>(v);
        else if ((v = num("--workers")) >= 0)
            cfg.workers = static_cast<std::size_t>(v);
        else if ((v = num("--chips")) >= 0)
            cfg.chips = static_cast<std::size_t>(v);
        else if ((v = num("--group")) >= 0)
            cfg.group = static_cast<std::size_t>(v);
        else if ((v = num("--queue")) >= 0)
            cfg.queue = static_cast<std::size_t>(v);
        else if ((v = num("--dilation")) >= 0)
            cfg.dilation = v;
        else if (std::strcmp(argv[i], "--trace") == 0 &&
                 i + 1 < argc)
            cfg.trace_path = argv[++i];
        else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    if (cfg.requests == 0) {
        std::fprintf(stderr, "--requests must be at least 1\n");
        std::exit(2);
    }
    return cfg;
}

/** The mixed tenant trace: request i's workload and seed. */
Workload
traceWorkload(std::size_t i)
{
    switch (i % 5) {
    case 0: return Workload::Bootstrap;
    case 1: return Workload::ResNet;
    case 2: return Workload::Helr;
    case 3: return Workload::Bert;
    default: return Workload::Keyswitch;
    }
}

/** Run the whole trace on a fresh server; returns per-id hashes. */
std::map<uint64_t, uint64_t>
runTrace(const fhe::CkksContext &ctx, const DemoConfig &cfg,
         std::size_t workers, ServeStats *stats_out,
         const std::string &trace_path = "")
{
    ServeOptions opt;
    opt.chips = cfg.chips;
    opt.group_size = cfg.group;
    opt.workers = workers;
    opt.queue_capacity = cfg.queue;
    opt.time_dilation = cfg.dilation;
    opt.trace = !trace_path.empty();

    Server server(ctx, opt);
    server.start();
    std::size_t shed = 0;
    for (std::size_t i = 0; i < cfg.requests; ++i) {
        // Seed identifies the tenant's data; derive it from i so the
        // serial and concurrent runs see identical requests.
        if (!server.submit(traceWorkload(i), 1000 + i))
            ++shed;
    }
    server.drainAndStop();
    if (shed > 0)
        std::printf("  (%zu requests shed by admission control)\n",
                    shed);
    *stats_out = server.stats();
    if (opt.trace) {
        if (server.trace().writeFile(trace_path))
            std::printf("  (wrote %zu trace events to %s)\n",
                        server.trace().size(), trace_path.c_str());
        else
            std::fprintf(stderr, "failed to write trace to %s\n",
                         trace_path.c_str());
    }

    std::map<uint64_t, uint64_t> hashes;
    for (const auto &r : server.responses())
        if (r.status == RequestStatus::Completed)
            hashes[r.id] = r.output_hash;
    return hashes;
}

} // namespace

int
main(int argc, char **argv)
{
    const DemoConfig cfg = parseArgs(argc, argv);
    std::printf("serve_demo: %zu-request mixed trace on a simulated "
                "Cinnamon-%zu (%zu groups of %zu chips)\n\n",
                cfg.requests, cfg.chips, cfg.chips / cfg.group,
                cfg.group);

    auto params = fhe::CkksParams::makeTest(1 << 8, 16, 4);
    fhe::CkksContext ctx(params);

    ServeStats serial_stats, pool_stats;
    std::printf("--- serial baseline (--workers 1) ---\n");
    auto serial = runTrace(ctx, cfg, 1, &serial_stats);
    std::printf("%s\n", serial_stats.report().c_str());

    std::printf("--- worker pool (--workers %zu) ---\n", cfg.workers);
    auto pooled =
        runTrace(ctx, cfg, cfg.workers, &pool_stats, cfg.trace_path);
    std::printf("%s\n", pool_stats.report().c_str());

    // Bit-identity is a per-request contract: under saturation the two
    // runs may admit different subsets (admission timing, not
    // nondeterminism), so compare hashes on commonly-completed ids.
    std::size_t common = 0, mismatched = 0;
    for (const auto &[id, hash] : serial) {
        auto it = pooled.find(id);
        if (it == pooled.end())
            continue;
        ++common;
        if (it->second != hash)
            ++mismatched;
    }
    const bool identical = common > 0 && mismatched == 0;
    const double speedup =
        pool_stats.wall_seconds > 0
            ? serial_stats.wall_seconds / pool_stats.wall_seconds
            : 0.0;
    std::printf("outputs bit-identical to serial execution "
                "(%zu commonly-completed requests): %s\n",
                common, identical ? "yes" : "NO");
    std::printf("wall-clock speedup over --workers 1: %.2fx\n",
                speedup);
    if (!identical)
        return 1;
    return 0;
}
