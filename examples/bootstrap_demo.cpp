/**
 * @file
 * Bootstrapping demo: exhaust a ciphertext's multiplicative budget,
 * refresh it with a full CKKS bootstrap (ModRaise → CoeffToSlot →
 * EvalMod → SlotToCoeff), and keep computing — the operation that
 * dominates every large FHE workload (Section 2).
 *
 *   build/examples/bootstrap_demo
 */

#include <cstdio>

#include "fhe/bootstrap.h"

using namespace cinnamon;
using fhe::Cplx;

int
main()
{
    // Bootstrapping needs q0 close to the scale (see
    // fhe/bootstrap.h); n = 256 keeps the demo fast.
    auto params = fhe::CkksParams::makeTest(256, 23, 4);
    params.first_prime_bits = 44;
    fhe::CkksContext ctx(params);
    fhe::Encoder encoder(ctx);
    fhe::Evaluator eval(ctx);
    fhe::KeyGenerator keygen(ctx, 4242);
    auto sk = keygen.secretKey();
    auto relin = keygen.relinKey(sk);

    std::printf("building bootstrapper (transform matrices + keys)\n");
    fhe::Bootstrapper boot(ctx, encoder, eval, keygen, sk);

    // Encrypt, spend a couple of levels, then drop to level 0: the
    // multiplicative budget is gone.
    Rng rng(1);
    std::vector<Cplx> v(ctx.slots());
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = Cplx(0.8, 0.0);
    auto ct = eval.encrypt(encoder.encode(v, ctx.maxLevel()),
                           params.scale, sk, rng);
    double expected = 0.8;
    for (int i = 0; i < 2; ++i) {
        ct = eval.rescale(eval.mul(ct, ct, relin));
        expected *= expected;
    }
    ct = eval.dropToLevel(ct, 0);
    std::printf("budget exhausted at level %zu; value = %.6f "
                "(expected %.6f)\n",
                ct.level,
                encoder.decode(eval.decrypt(ct, sk), ct.scale)[0].real(),
                expected);

    // Refresh.
    auto fresh = boot.bootstrap(ct);
    const auto &stats = boot.lastStats();
    std::printf("bootstrapped: level %zu -> %zu (consumed %zu); "
                "%zu rotations, %zu mults, %zu conjugations\n",
                ct.level, fresh.level, stats.levels_consumed,
                stats.rotations, stats.multiplications,
                stats.conjugations);
    std::printf("refreshed value = %.6f (expected %.6f)\n",
                encoder.decode(eval.decrypt(fresh, sk),
                               fresh.scale)[0].real(),
                expected);

    // The refreshed ciphertext supports further multiplications.
    auto more = eval.rescale(eval.mul(fresh, fresh, relin));
    std::printf("one more square: %.6f (expected %.6f)\n",
                encoder.decode(eval.decrypt(more, sk),
                               more.scale)[0].real(),
                expected * expected);
    std::printf("done.\n");
    return 0;
}
