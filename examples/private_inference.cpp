/**
 * @file
 * Privacy-preserving inference — the paper's motivating application.
 * A tiny logistic-regression classifier runs entirely on encrypted
 * features: an encrypted matrix-vector product (the BSGS diagonal
 * method, exactly the kernel Cinnamon's keyswitch pass optimizes)
 * followed by a degree-3 polynomial sigmoid approximation.
 *
 *   build/examples/private_inference
 */

#include <cmath>
#include <cstdio>

#include "fhe/linear.h"

using namespace cinnamon;
using fhe::Cplx;

int
main()
{
    auto params = fhe::CkksParams::makeTest(1 << 11, 7, 3);
    fhe::CkksContext ctx(params);
    fhe::Encoder encoder(ctx);
    fhe::Evaluator eval(ctx);
    fhe::KeyGenerator keygen(ctx, 99);
    auto sk = keygen.secretKey();
    auto relin = keygen.relinKey(sk);

    const std::size_t dim = 16; // features per sample
    const std::size_t slots = ctx.slots();

    // Model weights: a dim x dim block replicated over the slots so
    // many samples classify at once (batching, Figure 2).
    Rng rng(5);
    std::vector<std::vector<Cplx>> w(slots,
                                     std::vector<Cplx>(slots, Cplx(0)));
    std::vector<double> weights(dim);
    for (auto &x : weights)
        x = rng.uniformReal(-0.5, 0.5);
    for (std::size_t r = 0; r < slots; r += dim) {
        for (std::size_t c = 0; c < dim; ++c)
            w[r][r + c] = Cplx(weights[c], 0); // row r: dot product
    }
    auto diags = fhe::diagonalsOf(w);
    auto gks = keygen.galoisKeys(sk, fhe::bsgsRotations(diags, 4));

    // Encrypted features: batches of dim values.
    std::vector<Cplx> x(slots);
    for (auto &v : x)
        v = Cplx(rng.uniformReal(-1, 1), 0);
    auto ct = eval.encrypt(encoder.encode(x, ctx.maxLevel()),
                           params.scale, sk, rng);

    // z = w · x homomorphically.
    auto z = eval.rescale(
        fhe::applyLinearTransform(eval, encoder, ct, diags, gks, 4));

    // sigmoid(z) ≈ 0.5 + 0.197 z - 0.004 z^3 (standard HELR approx).
    auto z2 = eval.rescale(eval.mul(z, z, relin));
    auto z_for_cube = eval.dropToLevel(z, z2.level);
    z_for_cube.scale = z2.scale;
    auto z3 = eval.rescale(eval.mul(z2, z_for_cube, relin));
    auto t1 = eval.rescale(eval.mulPlain(
        eval.dropToLevel(z, z3.level),
        encoder.encodeConstant(Cplx(0.197, 0), z3.level), params.scale));
    t1.scale = z3.scale;
    auto z3s = eval.rescale(eval.mulPlain(
        z3, encoder.encodeConstant(Cplx(-0.004, 0), z3.level),
        params.scale));
    auto lin = eval.add(eval.dropToLevel(t1, z3s.level), z3s);
    auto half = encoder.encodeConstant(Cplx(0.5, 0), lin.level,
                                       lin.scale);
    auto prob = eval.addPlain(lin, half, lin.scale);

    // Decrypt and compare with the plaintext classifier.
    auto out = encoder.decode(eval.decrypt(prob, sk), prob.scale);
    std::printf("%-8s %12s %12s %12s\n", "sample", "z (plain)",
                "sigmoid", "encrypted");
    for (std::size_t s = 0; s < 4; ++s) {
        double zp = 0;
        for (std::size_t c = 0; c < dim; ++c)
            zp += weights[c] * x[s * dim + c].real();
        const double sg = 0.5 + 0.197 * zp - 0.004 * zp * zp * zp;
        std::printf("%-8zu %12.5f %12.5f %12.5f\n", s, zp, sg,
                    out[s * dim].real());
    }
    std::printf("done.\n");
    return 0;
}
