/**
 * @file
 * The paper's core idea, hands-on: run the same keyswitch with all
 * four algorithms on a functional 4-chip limb machine (src/parallel)
 * and compare results and communication — sequential, CiFHER-style
 * broadcast, Cinnamon input-broadcast, and Cinnamon
 * output-aggregation, plus the two batched program patterns.
 *
 *   build/examples/scale_out_keyswitch
 */

#include <cstdio>

#include "fhe/evaluator.h"
#include "parallel/keyswitch.h"

using namespace cinnamon;
using fhe::Cplx;

int
main()
{
    auto params = fhe::CkksParams::makeTest(1 << 10, 6, 3);
    fhe::CkksContext ctx(params);
    fhe::Encoder encoder(ctx);
    fhe::Evaluator eval(ctx);
    fhe::KeyGenerator keygen(ctx, 31337);
    auto sk = keygen.secretKey();
    auto relin = keygen.relinKey(sk);

    parallel::LimbMachine machine(ctx, 4);
    parallel::ParallelKeySwitcher ks(ctx, machine);

    Rng rng(3);
    std::vector<Cplx> v(ctx.slots(), Cplx(0.25, 0));
    const std::size_t level = ctx.maxLevel();
    auto ct = eval.encrypt(encoder.encode(v, level), params.scale, sk,
                           rng);
    auto dist = machine.scatter(ct.c1);

    auto [s0, s1] = eval.keySwitch(ct.c1, level, relin);
    std::printf("%-22s %10s %10s %12s %8s\n", "algorithm", "bcasts",
                "aggs", "limbs moved", "exact?");

    machine.resetStats();
    auto ib = ks.inputBroadcast(dist, level, relin);
    auto [i0, i1] = ks.gather(ib, level);
    std::printf("%-22s %10zu %10zu %12zu %8s\n", "input broadcast",
                machine.stats().broadcasts,
                machine.stats().aggregations,
                machine.stats().totalLimbs(),
                (i0 == s0 && i1 == s1) ? "yes" : "no");

    machine.resetStats();
    auto cf = ks.cifher(dist, level, relin);
    auto [c0, c1] = ks.gather(cf, level);
    std::printf("%-22s %10zu %10zu %12zu %8s\n", "cifher broadcast",
                machine.stats().broadcasts,
                machine.stats().aggregations,
                machine.stats().totalLimbs(),
                (c0 == s0 && c1 == s1) ? "yes" : "no");

    machine.resetStats();
    auto digits = ks.chipDigits(level);
    auto s2 = sk.s.mul(sk.s);
    auto oa_key = keygen.makeKeySwitchKeyForDigits(sk, s2, digits);
    (void)ks.outputAggregation(dist, level, oa_key);
    std::printf("%-22s %10zu %10zu %12zu %8s\n", "output aggregation",
                machine.stats().broadcasts,
                machine.stats().aggregations,
                machine.stats().totalLimbs(),
                "valid*");

    // Batched pattern 1: four rotations, one broadcast total.
    std::vector<uint64_t> galois;
    std::map<uint64_t, fhe::EvalKey> keys;
    for (int r : {1, 2, 3, 4}) {
        uint64_t g = ctx.galoisForRotation(r);
        galois.push_back(g);
        keys.emplace(g, keygen.galoisKey(sk, g));
    }
    machine.resetStats();
    (void)ks.hoistedRotations(dist, level, galois, keys);
    std::printf("%-22s %10zu %10zu %12zu %8s\n",
                "4 rotations, hoisted", machine.stats().broadcasts,
                machine.stats().aggregations,
                machine.stats().totalLimbs(), "-");

    std::printf("\n* output aggregation uses a different (per-chip) "
                "digit partition, so its output is a\n  different — "
                "equally valid — keyswitch of the same value "
                "(Section 4.3.1).\n");
    return 0;
}
