/**
 * @file
 * Distributed serving end to end (DESIGN.md §5d): one front-end
 * process owns admission, dispatch order, and placement; N spawned
 * worker processes each own one chip group and execute requests over
 * a loopback TCP wire protocol. The same binary is both roles —
 * the front-end re-executes itself with `--role worker`.
 *
 *   build/examples/serve_distributed [--requests N] [--workers W]
 *       [--group G] [--queue Q] [--dilation D] [--port P]
 *       [--batch-max-streams K] [--batch-linger-ms MS]
 *       [--autotune] [--strategy NAME]
 *       [--kill-worker-after K] [--respawn]
 *       [--fault-seed S] [--chip-mtbf M] [--transient-p P]
 *       [--conn-drop-p P] [--min-completion R]
 *
 * --autotune turns on the PlanTuner in the in-process baseline AND
 * in every worker process: the decision is a pure function of
 * (workload, hardware), both sides log the same `[tuner]` lines, and
 * digest gate 1 below verifies the tuned plans produce bit-identical
 * outputs across process boundaries. --strategy forces one named
 * registry strategy on both sides instead.
 *
 * --batch-max-streams K > 1 turns on continuous cross-request
 * batching at the front-end: compatible queued requests ride one
 * wire-v2 Submit and execute as a single multi-stream program on one
 * worker. Digest gate 1 below is unchanged — batched distributed
 * digests must still match the unbatched in-process baseline bit for
 * bit.
 *
 * The demo first serves the whole trace in-process (the single-process
 * Server) to establish baseline output digests, then serves the same
 * trace through the distributed tier and checks three gates:
 *
 *   1. determinism — every commonly-completed request's output digest
 *      is bit-identical between the in-process and distributed runs
 *      (a digest is a pure function of the request seed, so placement,
 *      worker count, and even mid-run worker death cannot change it);
 *   2. conservation — completed + rejected + expired + failed equals
 *      submitted: no request is ever silently lost;
 *   3. completion — at least --min-completion of the admitted
 *      requests completed (the CI resilience gate).
 *
 * --kill-worker-after K SIGKILLs one worker after K requests have
 * completed: the front-end sees the missed heartbeats / EOF,
 * quarantines the dead worker's chip group, requeues its in-flight
 * request, and finishes the trace on the surviving workers — the
 * kill drill passes only if all three gates still hold.
 * --conn-drop-p injects deterministic connection drops *inside* the
 * workers (the fault subsystem's CONN layer): the worker severs its
 * socket mid-request and exits, exercising the same recovery path.
 * --respawn starts a replacement worker for each dead one; the
 * replacement reclaims (and un-quarantines) the dead worker's group.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "compiler/strategy.h"
#include "serve/remote/frontend.h"
#include "serve/remote/supervisor.h"
#include "serve/remote/worker.h"
#include "serve/server.h"

using namespace cinnamon;
using namespace cinnamon::serve;

namespace {

struct DemoConfig
{
    std::size_t requests = 10;
    std::size_t workers = 2;
    std::size_t group = 4;
    std::size_t queue = 64;
    /** TaskPool threads for emulator execution (0 = keep default);
     *  forwarded to every spawned worker process. */
    std::size_t exec_workers = 0;
    double dilation = 40.0; ///< wall s per simulated s (device dwell)
    uint16_t port = 0;      ///< 0 = OS-assigned
    std::size_t batch_max_streams = 1; ///< 1 = unbatched dispatch
    double batch_linger_ms = 2.0;
    bool autotune = false; ///< PlanTuner on both sides
    std::string strategy;  ///< forced strategy ("" = default)

    /** SIGKILL one worker after this many completions; 0 = never. */
    std::size_t kill_after = 0;
    bool respawn = false;

    // Deterministic fault injection inside the workers.
    uint64_t fault_seed = 0;
    double chip_mtbf = 0.0;
    double transient_p = 0.0;
    double conn_drop_p = 0.0;

    /** Minimum completed/admitted ratio; 0 disables the gate. */
    double min_completion = 0.0;

    // Worker-role plumbing (set via hidden flags on re-exec).
    bool worker_role = false;
    uint64_t worker_id = 0;
};

DemoConfig
parseArgs(int argc, char **argv)
{
    DemoConfig cfg;
    for (int i = 1; i < argc; ++i) {
        auto num = [&](const char *flag) -> double {
            if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc)
                return -1.0;
            return std::atof(argv[++i]);
        };
        double v;
        if ((v = num("--requests")) >= 0)
            cfg.requests = static_cast<std::size_t>(v);
        else if ((v = num("--workers")) >= 0)
            cfg.workers = static_cast<std::size_t>(v);
        else if ((v = num("--group")) >= 0)
            cfg.group = static_cast<std::size_t>(v);
        else if ((v = num("--queue")) >= 0)
            cfg.queue = static_cast<std::size_t>(v);
        else if ((v = num("--exec-workers")) >= 0)
            cfg.exec_workers = static_cast<std::size_t>(v);
        else if ((v = num("--dilation")) >= 0)
            cfg.dilation = v;
        else if ((v = num("--port")) >= 0)
            cfg.port = static_cast<uint16_t>(v);
        else if ((v = num("--batch-max-streams")) >= 0)
            cfg.batch_max_streams = static_cast<std::size_t>(v);
        else if ((v = num("--batch-linger-ms")) >= 0)
            cfg.batch_linger_ms = v;
        else if ((v = num("--kill-worker-after")) >= 0)
            cfg.kill_after = static_cast<std::size_t>(v);
        else if ((v = num("--fault-seed")) >= 0)
            cfg.fault_seed = static_cast<uint64_t>(v);
        else if ((v = num("--chip-mtbf")) >= 0)
            cfg.chip_mtbf = v;
        else if ((v = num("--transient-p")) >= 0)
            cfg.transient_p = v;
        else if ((v = num("--conn-drop-p")) >= 0)
            cfg.conn_drop_p = v;
        else if ((v = num("--min-completion")) >= 0)
            cfg.min_completion = v;
        else if ((v = num("--id")) >= 0)
            cfg.worker_id = static_cast<uint64_t>(v);
        else if (std::strcmp(argv[i], "--respawn") == 0)
            cfg.respawn = true;
        else if (std::strcmp(argv[i], "--autotune") == 0)
            cfg.autotune = true;
        else if (std::strcmp(argv[i], "--strategy") == 0 &&
                 i + 1 < argc) {
            cfg.strategy = argv[++i];
            const auto &registry =
                compiler::StrategyRegistry::global();
            if (registry.find(cfg.strategy) == nullptr) {
                std::fprintf(stderr,
                             "unknown strategy '%s'; valid:",
                             cfg.strategy.c_str());
                for (const auto &name : registry.names())
                    std::fprintf(stderr, " %s", name.c_str());
                std::fprintf(stderr, "\n");
                std::exit(2);
            }
        } else if (std::strcmp(argv[i], "--role") == 0 &&
                 i + 1 < argc) {
            cfg.worker_role = std::strcmp(argv[++i], "worker") == 0;
        } else {
            std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
            std::exit(2);
        }
    }
    if (!cfg.worker_role && cfg.requests == 0) {
        std::fprintf(stderr, "--requests must be at least 1\n");
        std::exit(2);
    }
    if (!cfg.worker_role && cfg.workers == 0) {
        std::fprintf(stderr, "--workers must be at least 1\n");
        std::exit(2);
    }
    return cfg;
}

/** The same mixed tenant trace as serve_demo: workload and seed of
    request i. Identical traces are what make the two runs'
    digests comparable id by id. */
Workload
traceWorkload(std::size_t i)
{
    switch (i % 6) {
    case 0: return Workload::Bootstrap;
    case 1: return Workload::ResNet;
    case 2: return Workload::Helr;
    case 3: return Workload::Bert;
    case 4: return Workload::ObliviousJoin;
    default: return Workload::Keyswitch;
    }
}

faults::FaultConfig
faultConfig(const DemoConfig &cfg)
{
    faults::FaultConfig f;
    f.seed = cfg.fault_seed;
    f.chip_mtbf_requests = cfg.chip_mtbf;
    f.transient_p = cfg.transient_p;
    f.conn_drop_p = cfg.conn_drop_p;
    return f;
}

/** Worker role: connect to the front-end and serve until drained. */
int
runWorkerRole(const DemoConfig &cfg)
{
    auto params = fhe::CkksParams::makeTest(1 << 8, 16, 4);
    fhe::CkksContext ctx(params);
    remote::WorkerOptions opt;
    opt.port = cfg.port;
    opt.worker_id = cfg.worker_id;
    opt.group_size = cfg.group;
    opt.exec_workers = cfg.exec_workers;
    opt.time_dilation = cfg.dilation;
    opt.faults = faultConfig(cfg);
    opt.autotune = cfg.autotune;
    opt.strategy = cfg.strategy;
    return remote::runWorker(ctx, opt);
}

/** The in-process baseline: same trace, single process. */
std::map<uint64_t, uint64_t>
runBaseline(const fhe::CkksContext &ctx, const DemoConfig &cfg)
{
    ServeOptions opt;
    opt.chips = cfg.workers * cfg.group;
    opt.group_size = cfg.group;
    opt.workers = cfg.workers;
    opt.exec_workers = cfg.exec_workers;
    opt.queue_capacity = cfg.queue;
    opt.time_dilation = cfg.dilation;
    opt.autotune = cfg.autotune;
    opt.strategy = cfg.strategy;
    Server server(ctx, opt);
    server.start();
    for (std::size_t i = 0; i < cfg.requests; ++i)
        server.submit(traceWorkload(i), 1000 + i);
    server.drainAndStop();
    std::map<uint64_t, uint64_t> hashes;
    for (const auto &r : server.responses())
        if (r.status == RequestStatus::Completed)
            hashes[r.id] = r.output_hash;
    return hashes;
}

std::vector<std::string>
workerArgv(const DemoConfig &cfg, uint16_t port, uint64_t worker_id)
{
    auto s = [](double v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        return std::string(buf);
    };
    std::vector<std::string> args = {
        "/proc/self/exe",
        "--role", "worker",
        "--port", std::to_string(port),
        "--id", std::to_string(worker_id),
        "--group", std::to_string(cfg.group),
        "--dilation", s(cfg.dilation),
        "--fault-seed", std::to_string(cfg.fault_seed),
        "--chip-mtbf", s(cfg.chip_mtbf),
        "--transient-p", s(cfg.transient_p),
        "--conn-drop-p", s(cfg.conn_drop_p),
        "--exec-workers", std::to_string(cfg.exec_workers),
    };
    if (cfg.autotune)
        args.push_back("--autotune");
    if (!cfg.strategy.empty()) {
        args.push_back("--strategy");
        args.push_back(cfg.strategy);
    }
    return args;
}

} // namespace

int
main(int argc, char **argv)
{
    const DemoConfig cfg = parseArgs(argc, argv);
    if (cfg.worker_role)
        return runWorkerRole(cfg);

    std::printf("serve_distributed: %zu-request trace, 1 front-end + "
                "%zu worker processes (one %zu-chip group each) over "
                "loopback TCP\n\n",
                cfg.requests, cfg.workers, cfg.group);

    auto params = fhe::CkksParams::makeTest(1 << 8, 16, 4);
    fhe::CkksContext ctx(params);

    std::printf("--- in-process baseline (digest reference) ---\n");
    const auto baseline = runBaseline(ctx, cfg);
    std::printf("  %zu/%zu requests completed in-process\n\n",
                baseline.size(), cfg.requests);

    std::printf("--- distributed run ---\n");
    remote::FrontEndOptions fe_opt;
    fe_opt.workers = cfg.workers;
    fe_opt.group_size = cfg.group;
    fe_opt.queue_capacity = cfg.queue;
    fe_opt.port = cfg.port;
    fe_opt.batch_max_streams = cfg.batch_max_streams;
    fe_opt.batch_linger_ms = cfg.batch_linger_ms;
    if (cfg.batch_max_streams > 1)
        std::printf("  continuous batching: up to %zu streams per "
                    "Submit, linger %.1f ms\n",
                    cfg.batch_max_streams, cfg.batch_linger_ms);
    remote::RemoteFrontEnd frontend(fe_opt);
    if (!frontend.start()) {
        std::fprintf(stderr, "cannot bind loopback port %u\n",
                     cfg.port);
        return 1;
    }
    std::printf("  front-end listening on 127.0.0.1:%u\n",
                frontend.port());

    remote::ProcessSupervisor supervisor;
    std::vector<pid_t> worker_pids;
    for (std::size_t w = 0; w < cfg.workers; ++w) {
        const pid_t pid = supervisor.spawn(
            workerArgv(cfg, frontend.port(), w));
        if (pid < 0) {
            std::fprintf(stderr, "cannot spawn worker %zu\n", w);
            return 1;
        }
        worker_pids.push_back(pid);
        std::printf("  spawned worker %zu (pid %d)\n", w, pid);
    }
    if (!frontend.waitForWorkers(cfg.workers)) {
        std::fprintf(stderr, "workers did not connect in time\n");
        return 1;
    }
    std::printf("  %zu workers connected\n", cfg.workers);

    for (std::size_t i = 0; i < cfg.requests; ++i)
        frontend.submit(traceWorkload(i), 1000 + i);

    // The resilience drill: once the trace is partially served,
    // SIGKILL a worker mid-run. Its group must be quarantined, its
    // in-flight request requeued, and every remaining request served
    // by the survivors — zero loss, identical digests.
    bool killed = false;
    std::size_t respawned_id = cfg.workers;
    while (true) {
        const auto stats = frontend.stats();
        const std::size_t done =
            stats.completed + stats.expired + stats.failed;
        if (done >= cfg.requests - stats.rejected)
            break;
        if (!killed && cfg.kill_after > 0 &&
            stats.completed >= cfg.kill_after) {
            killed = true;
            std::printf("  [drill] SIGKILL worker 0 (pid %d) after "
                        "%zu completions\n",
                        worker_pids[0], stats.completed);
            supervisor.kill(worker_pids[0], SIGKILL);
        }
        if (cfg.respawn) {
            for (std::size_t w = 0; w < worker_pids.size(); ++w) {
                if (supervisor.alive(worker_pids[w]))
                    continue;
                // Replacement ids keep the slot: id ≡ w (mod workers).
                const uint64_t id = respawned_id + w;
                respawned_id += cfg.workers;
                const pid_t pid = supervisor.spawn(
                    workerArgv(cfg, frontend.port(), id));
                if (pid >= 0) {
                    std::printf("  [respawn] worker slot %zu -> "
                                "pid %d\n",
                                w, pid);
                    worker_pids[w] = pid;
                }
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    frontend.drainAndStop();
    const auto stats = frontend.stats();
    std::printf("%s\n", stats.report().c_str());

    // Gate 1: determinism. Every commonly-completed request must have
    // the exact digest the in-process run produced.
    std::map<uint64_t, uint64_t> distributed;
    for (const auto &r : frontend.responses())
        if (r.status == RequestStatus::Completed)
            distributed[r.id] = r.output_hash;
    std::size_t common = 0, mismatched = 0;
    for (const auto &[id, hash] : baseline) {
        auto it = distributed.find(id);
        if (it == distributed.end())
            continue;
        ++common;
        if (it->second != hash)
            ++mismatched;
    }
    const bool identical = common > 0 && mismatched == 0;
    std::printf("digests bit-identical to in-process execution "
                "(%zu commonly-completed requests): %s\n",
                common, identical ? "yes" : "NO");

    // Gate 2: conservation — no request is ever lost, even across a
    // SIGKILL with a request in flight.
    const std::size_t accounted = stats.completed + stats.rejected +
                                  stats.expired + stats.failed;
    const bool conserved = accounted == stats.submitted;
    std::printf("request conservation: %zu completed + %zu rejected "
                "+ %zu expired + %zu failed == %zu submitted: %s\n",
                stats.completed, stats.rejected, stats.expired,
                stats.failed, stats.submitted,
                conserved ? "yes" : "NO");

    // Gate 3: completion rate (the CI resilience gate).
    const std::size_t admitted = stats.submitted - stats.rejected;
    const double completion_rate =
        admitted > 0 ? static_cast<double>(stats.completed) /
                           static_cast<double>(admitted)
                     : 1.0;
    bool completion_ok = true;
    if (cfg.min_completion > 0.0) {
        completion_ok = completion_rate >= cfg.min_completion;
        std::printf("completion rate: %.1f%% of %zu admitted "
                    "(gate: %.1f%%): %s\n",
                    100.0 * completion_rate, admitted,
                    100.0 * cfg.min_completion,
                    completion_ok ? "ok" : "BELOW GATE");
    }
    if (killed)
        std::printf("kill drill: worker death mapped onto group "
                    "quarantine; %zu attempts requeued onto "
                    "surviving hardware\n",
                    stats.requeued);

    // Orderly shutdown of surviving workers (Drain already sent by
    // drainAndStop; collect their exit codes).
    for (std::size_t w = 0; w < worker_pids.size(); ++w) {
        const int code = supervisor.wait(worker_pids[w]);
        std::printf("  worker slot %zu exit status: %d\n", w, code);
    }

    if (!identical || !conserved || !completion_ok) {
        std::fprintf(stderr, "serve_distributed: GATE FAILURE\n");
        return 1;
    }
    std::printf("\nserve_distributed: all gates passed\n");
    return 0;
}
