#include "exec/backend.h"

#include <memory>

#include "common/random.h"

namespace cinnamon::exec {
namespace {

uint64_t
fnv1a(uint64_t h, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * FNV-1a folding one 64-bit word per step. Limb planes are megabytes
 * per output; the byte-wise loop's serial multiply chain made the
 * digest a measurable slice of every execute, so bulk data hashes
 * word-at-a-time. The digest is only ever compared against digests
 * from the same code (serial vs pooled, local vs remote), never
 * persisted across versions, so the constant's interpretation is free
 * to differ from byte-wise FNV.
 */
uint64_t
fnv1aWords(uint64_t h, const uint64_t *words, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i) {
        h ^= words[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
hashPoly(uint64_t h, const rns::RnsPoly &poly)
{
    for (std::size_t i = 0; i < poly.numLimbs(); ++i) {
        const auto limb = poly.limb(i);
        h = fnv1aWords(h, limb.data(), limb.size());
    }
    return h;
}

} // namespace

uint64_t
hashOutputs(const std::map<std::string, fhe::Ciphertext> &outputs)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &[name, ct] : outputs) {
        h = fnv1a(h, name.data(), name.size());
        const uint64_t level = ct.level;
        h = fnv1a(h, &level, sizeof(level));
        h = hashPoly(h, ct.c0);
        h = hashPoly(h, ct.c1);
    }
    return h;
}

ExecutionReport
SimulateBackend::execute(const compiler::CompiledProgram &program)
{
    ExecutionReport report;
    report.has_sim = true;
    report.sim = sim::simulate(program.machine, hw_, trace_);
    return report;
}

ExecutionReport
EmulateBackend::execute(const compiler::CompiledProgram &program)
{
    runtime_->setEmulatorWorkers(workers_);
    ExecutionReport report;
    report.has_outputs = true;
    report.outputs = runtime_->run(program);
    report.emu_stats = runtime_->lastStats();
    report.digest = hashOutputs(report.outputs);
    return report;
}

ExecutionReport
EmulateBackend::executeSeeded(const fhe::CkksContext &ctx,
                              const fhe::Encoder &encoder,
                              const compiler::Program &source,
                              const compiler::CompiledProgram &program,
                              uint64_t seed, std::size_t workers,
                              const faults::FaultDecision *fault,
                              isa::EmulatorCache *cache)
{
    // All randomness is derived from the request seed, so the output
    // digest is a pure function of (seed, program, parameters) —
    // never of worker count or scheduling order.
    fhe::KeyGenerator keygen(ctx, seed);
    auto sk = keygen.secretKey();
    fhe::Evaluator eval(ctx);
    Rng data_rng(seed ^ 0x9e3779b97f4a7c15ull);

    compiler::ProgramRuntime runtime(ctx, encoder, keygen, sk);
    if (cache != nullptr)
        runtime.setEmulatorCache(cache);
    for (const compiler::CtOp &op : source.ops()) {
        if (op.kind != compiler::CtOpKind::Input)
            continue;
        std::vector<fhe::Cplx> values(ctx.slots());
        for (auto &v : values)
            v = fhe::Cplx(data_rng.uniformReal(-1.0, 1.0), 0.0);
        auto plain = encoder.encode(values, op.level);
        auto ct = eval.encrypt(plain, ctx.params().scale, sk, data_rng);
        runtime.bindInput(op.name, ct);
    }

    if (fault != nullptr && fault->chip_fails)
        runtime.armFault(fault->chip_offset, fault->at_fraction);
    EmulateBackend backend(runtime, workers);
    auto report = backend.execute(program);
    if (fault != nullptr && fault->transient)
        throw faults::TransientFaultError(
            "injected transient execution fault");
    return report;
}

std::vector<ExecutionReport>
EmulateBackend::executeSeededBatch(
    const fhe::CkksContext &ctx, const fhe::Encoder &encoder,
    const compiler::Program &source,
    const compiler::CompiledProgram &program,
    const std::vector<uint64_t> &seeds, std::size_t workers,
    const faults::FaultDecision *fault, std::size_t fault_member,
    isa::EmulatorCache *cache)
{
    const std::size_t members = seeds.size();
    CINN_FATAL_UNLESS(members >= 1, "batch needs at least one member");
    const std::size_t chips = program.machine.numChips();
    CINN_FATAL_UNLESS(chips % members == 0,
                      "batched program chips must split over members");
    const std::size_t chips_per_member = chips / members;

    // One generator/key per member: every member's randomness is its
    // own request's, exactly as executeSeeded would derive it.
    std::vector<std::unique_ptr<fhe::KeyGenerator>> keygens;
    std::vector<std::unique_ptr<fhe::SecretKey>> sks;
    keygens.reserve(members);
    sks.reserve(members);
    for (const uint64_t seed : seeds) {
        keygens.push_back(
            std::make_unique<fhe::KeyGenerator>(ctx, seed));
        sks.push_back(std::make_unique<fhe::SecretKey>(
            keygens.back()->secretKey()));
    }

    fhe::Evaluator eval(ctx);
    compiler::ProgramRuntime runtime(ctx, encoder, *keygens[0],
                                     *sks[0]);
    if (cache != nullptr)
        runtime.setEmulatorCache(cache);
    std::vector<compiler::ProgramRuntime::CopyKeys> copies(members);
    for (std::size_t k = 0; k < members; ++k)
        copies[k] = {keygens[k].get(), sks[k].get()};
    runtime.setCopyKeys(std::move(copies));

    for (std::size_t k = 0; k < members; ++k) {
        const std::string suffix =
            k == 0 ? std::string() : "@" + std::to_string(k);
        Rng data_rng(seeds[k] ^ 0x9e3779b97f4a7c15ull);
        // Inputs are drawn in the *source* program's input order from
        // the member's own rng — the same draws, encodes, and
        // encryption randomness an unbatched run would make.
        for (const compiler::CtOp &op : source.ops()) {
            if (op.kind != compiler::CtOpKind::Input)
                continue;
            std::vector<fhe::Cplx> values(ctx.slots());
            for (auto &v : values)
                v = fhe::Cplx(data_rng.uniformReal(-1.0, 1.0), 0.0);
            auto plain = encoder.encode(values, op.level);
            auto ct = eval.encrypt(plain, ctx.params().scale,
                                   *sks[k], data_rng);
            runtime.bindInput(op.name + suffix, ct);
        }
    }

    if (fault != nullptr && fault->chip_fails) {
        CINN_ASSERT(fault_member < members,
                    "fault member outside the batch");
        const std::size_t victim =
            fault_member * chips_per_member +
            fault->chip_offset % chips_per_member;
        runtime.armFault(victim, fault->at_fraction);
    }

    EmulateBackend backend(runtime, workers);
    auto batched = backend.execute(program);

    // Fan the shared output map back out per member, stripping the
    // replica suffix so each member's names — and therefore its
    // digest — match an unbatched run exactly.
    std::vector<ExecutionReport> reports(members);
    for (std::size_t k = 0; k < members; ++k) {
        const std::string suffix =
            k == 0 ? std::string() : "@" + std::to_string(k);
        ExecutionReport &r = reports[k];
        r.has_outputs = true;
        r.emu_stats = batched.emu_stats;
        for (const compiler::CtOp &op : source.ops()) {
            if (op.kind != compiler::CtOpKind::Output)
                continue;
            auto it = batched.outputs.find(op.name + suffix);
            CINN_ASSERT(it != batched.outputs.end(),
                        "batched output '" << op.name << suffix
                                           << "' missing");
            r.outputs.emplace(op.name, std::move(it->second));
        }
        r.digest = hashOutputs(r.outputs);
    }
    return reports;
}

} // namespace cinnamon::exec
