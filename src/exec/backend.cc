#include "exec/backend.h"

#include "common/random.h"

namespace cinnamon::exec {
namespace {

uint64_t
fnv1a(uint64_t h, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
hashPoly(uint64_t h, const rns::RnsPoly &poly)
{
    for (std::size_t i = 0; i < poly.numLimbs(); ++i) {
        const auto limb = poly.limb(i);
        h = fnv1a(h, limb.data(), limb.size() * sizeof(uint64_t));
    }
    return h;
}

} // namespace

uint64_t
hashOutputs(const std::map<std::string, fhe::Ciphertext> &outputs)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &[name, ct] : outputs) {
        h = fnv1a(h, name.data(), name.size());
        const uint64_t level = ct.level;
        h = fnv1a(h, &level, sizeof(level));
        h = hashPoly(h, ct.c0);
        h = hashPoly(h, ct.c1);
    }
    return h;
}

ExecutionReport
SimulateBackend::execute(const compiler::CompiledProgram &program)
{
    ExecutionReport report;
    report.has_sim = true;
    report.sim = sim::simulate(program.machine, hw_, trace_);
    return report;
}

ExecutionReport
EmulateBackend::execute(const compiler::CompiledProgram &program)
{
    runtime_->setEmulatorWorkers(workers_);
    ExecutionReport report;
    report.has_outputs = true;
    report.outputs = runtime_->run(program);
    report.emu_stats = runtime_->lastStats();
    report.digest = hashOutputs(report.outputs);
    return report;
}

ExecutionReport
EmulateBackend::executeSeeded(const fhe::CkksContext &ctx,
                              const fhe::Encoder &encoder,
                              const compiler::Program &source,
                              const compiler::CompiledProgram &program,
                              uint64_t seed, std::size_t workers,
                              const faults::FaultDecision *fault)
{
    // All randomness is derived from the request seed, so the output
    // digest is a pure function of (seed, program, parameters) —
    // never of worker count or scheduling order.
    fhe::KeyGenerator keygen(ctx, seed);
    auto sk = keygen.secretKey();
    fhe::Evaluator eval(ctx);
    Rng data_rng(seed ^ 0x9e3779b97f4a7c15ull);

    compiler::ProgramRuntime runtime(ctx, encoder, keygen, sk);
    for (const compiler::CtOp &op : source.ops()) {
        if (op.kind != compiler::CtOpKind::Input)
            continue;
        std::vector<fhe::Cplx> values(ctx.slots());
        for (auto &v : values)
            v = fhe::Cplx(data_rng.uniformReal(-1.0, 1.0), 0.0);
        auto plain = encoder.encode(values, op.level);
        auto ct = eval.encrypt(plain, ctx.params().scale, sk, data_rng);
        runtime.bindInput(op.name, ct);
    }

    if (fault != nullptr && fault->chip_fails)
        runtime.armFault(fault->chip_offset, fault->at_fraction);
    EmulateBackend backend(runtime, workers);
    auto report = backend.execute(program);
    if (fault != nullptr && fault->transient)
        throw faults::TransientFaultError(
            "injected transient execution fault");
    return report;
}

} // namespace cinnamon::exec
