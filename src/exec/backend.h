/**
 * @file
 * ExecutionBackend: the one seam through which compiled programs run.
 *
 * Three call sites used to hand-roll execution — the serving worker
 * (probe emulation), the benchmark runner (timing simulation), and
 * the examples — each wiring simulator or emulator plumbing slightly
 * differently. This interface unifies them: a backend consumes a
 * CompiledProgram and returns an ExecutionReport; SimulateBackend
 * wraps the src/sim timing model, EmulateBackend wraps the bit-exact
 * isa::Emulator (including the request-seeded determinism discipline
 * the serving path pins with FNV output digests).
 */

#ifndef CINNAMON_EXEC_BACKEND_H_
#define CINNAMON_EXEC_BACKEND_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/dsl.h"
#include "compiler/runtime.h"
#include "faults/fault_plan.h"
#include "fhe/evaluator.h"
#include "sim/simulator.h"

namespace cinnamon::exec {

/**
 * FNV-1a digest over name-ordered output ciphertexts (name bytes,
 * level, c0 limbs, c1 limbs). This is the serving Response digest —
 * bit-identical emulation across refactors is pinned against it.
 */
uint64_t
hashOutputs(const std::map<std::string, fhe::Ciphertext> &outputs);

/** What one backend execution produced. */
struct ExecutionReport
{
    /** Timing-model results (filled by SimulateBackend). */
    bool has_sim = false;
    sim::SimResult sim;

    /** Functional results (filled by EmulateBackend). */
    bool has_outputs = false;
    std::map<std::string, fhe::Ciphertext> outputs;
    isa::EmulatorStats emu_stats;
    /** hashOutputs(outputs) when has_outputs. */
    uint64_t digest = 0;
};

/** A way to execute a compiled program. */
class ExecutionBackend
{
  public:
    virtual ~ExecutionBackend() = default;

    virtual const char *name() const = 0;

    virtual ExecutionReport
    execute(const compiler::CompiledProgram &program) = 0;
};

/** Timing-model execution on the src/sim hardware model. */
class SimulateBackend final : public ExecutionBackend
{
  public:
    explicit SimulateBackend(sim::HardwareConfig hw,
                             TraceRecorder *trace = nullptr)
        : hw_(hw), trace_(trace)
    {
    }

    const char *name() const override { return "simulate"; }

    const sim::HardwareConfig &hardware() const { return hw_; }

    ExecutionReport
    execute(const compiler::CompiledProgram &program) override;

  private:
    sim::HardwareConfig hw_;
    TraceRecorder *trace_;
};

/**
 * Bit-exact functional execution on the ISA emulator.
 *
 * Wraps a ProgramRuntime whose inputs the caller has bound; the
 * worker count only affects wall time, never results (chips advance
 * independently between collectives).
 */
class EmulateBackend final : public ExecutionBackend
{
  public:
    explicit EmulateBackend(compiler::ProgramRuntime &runtime,
                            std::size_t workers = 1)
        : runtime_(&runtime), workers_(workers)
    {
    }

    const char *name() const override { return "emulate"; }

    ExecutionReport
    execute(const compiler::CompiledProgram &program) override;

    /**
     * Request-seeded emulation: derives every key and input from
     * `seed` exactly the way the serving path does (KeyGenerator at
     * the seed; inputs drawn real-only from Rng(seed ^ golden-ratio)
     * in the source program's input order), runs, and digests. The
     * report's digest is a pure function of (seed, program,
     * parameters) — never of worker count or scheduling.
     *
     * When `fault` is non-null its layers are injected into this one
     * attempt: a chip failure arms the runtime so the victim chip
     * throws isa::EmulatorError mid-program, and a transient fault
     * throws faults::TransientFaultError after the program ran (the
     * work happened; the result is spuriously lost). A null or
     * all-clear decision executes identically to the unfaulted path,
     * so a retried attempt reproduces the unfaulted digest bit for
     * bit.
     *
     * When `cache` is non-null the per-request runtime borrows its
     * emulator from it (and returns it on exit), so back-to-back
     * requests reuse warm arenas instead of growing fresh ones. The
     * cache never affects results — only allocation traffic.
     */
    static ExecutionReport
    executeSeeded(const fhe::CkksContext &ctx,
                  const fhe::Encoder &encoder,
                  const compiler::Program &source,
                  const compiler::CompiledProgram &program, uint64_t seed,
                  std::size_t workers = 1,
                  const faults::FaultDecision *fault = nullptr,
                  isa::EmulatorCache *cache = nullptr);

    /**
     * Batched request-seeded emulation: `program` is the compilation
     * of replicateStreams(source, seeds.size()), one batch member per
     * copy on its own span of chips. Each member draws its keys and
     * inputs from its *own* seed exactly like executeSeeded — member
     * k's outputs (names stripped of the "@k" replica suffix) hash to
     * the same digest an unbatched run of `source` under seeds[k]
     * would produce, bit for bit. Returns one report per member, in
     * seed order.
     *
     * When `fault` carries a chip failure it is mapped into member
     * `fault_member`'s chip span; the victim chip then throws
     * isa::EmulatorError mid-program, failing the whole batch attempt
     * (the server requeues every member). Transient faults are NOT
     * applied here — they are per-member and the caller decides which
     * members lose their result after execution.
     */
    static std::vector<ExecutionReport>
    executeSeededBatch(const fhe::CkksContext &ctx,
                       const fhe::Encoder &encoder,
                       const compiler::Program &source,
                       const compiler::CompiledProgram &program,
                       const std::vector<uint64_t> &seeds,
                       std::size_t workers = 1,
                       const faults::FaultDecision *fault = nullptr,
                       std::size_t fault_member = 0,
                       isa::EmulatorCache *cache = nullptr);

  private:
    compiler::ProgramRuntime *runtime_;
    std::size_t workers_;
};

} // namespace cinnamon::exec

#endif // CINNAMON_EXEC_BACKEND_H_
