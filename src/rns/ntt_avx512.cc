/**
 * @file
 * AVX-512 IFMA bodies for the negacyclic NTT.
 *
 * vpmadd52{lo,hi}uq multiply the low 52 bits of each lane, so the
 * whole transform is restated in a 52-bit Shoup domain: for q < 2^51
 * the lazy values in [0, 2q) stay below 2^52 and one hi52/lo52 pair
 * replaces the 64x64 widening multiply. The 52-bit Shoup companion of
 * a twiddle is its 64-bit companion shifted right by 12, because
 * floor(floor(s * 2^64 / q) / 2^12) == floor(s * 2^52 / q) — so the
 * scalar tables are reused as-is.
 *
 * Lazy product bound (the same argument as mulModShoupLazy, one bit
 * narrower): for x < 2^52, s < q < 2^51 and W = floor(s * 2^52 / q),
 * t = floor(x * W / 2^52) is floor(x * s / q) or one less, hence
 * r = x*s - t*q lies in [0, 2q) and fits 52 bits, so computing it
 * from the low-52 halves alone is exact.
 *
 * Stages with fewer than 8 butterflies per twiddle run the scalar
 * loops; the final stages (one twiddle per butterfly) are vectorized
 * by de-interleaving even/odd lanes. Every output is the canonical
 * representative in [0, q) — bit-identical to the scalar path, which
 * the golden-hash tests pin.
 */

#include "rns/ntt.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

// The unmasked _mm512_min_epu64 passes an undefined passthrough vector
// to its masked form; GCC 12 flags that spuriously.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace cinnamon::rns {
namespace {

#define CINN_NTT_TARGET __attribute__((target("avx512f,avx512ifma")))

/** min(x, x - m) unsigned: conditional subtract without a branch. */
CINN_NTT_TARGET inline __m512i
condSub(__m512i x, __m512i m)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, m));
}

/**
 * Lazy Shoup product x * s mod q in [0, 2q), lane-wise.
 * Requires x < 2^52 and s < q < 2^51; s52 = floor(s * 2^52 / q).
 */
CINN_NTT_TARGET inline __m512i
mulLazy52(__m512i x, __m512i s, __m512i s52, __m512i q, __m512i mask52)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i t = _mm512_madd52hi_epu64(zero, x, s52);
    const __m512i lo = _mm512_madd52lo_epu64(zero, x, s);
    const __m512i tq = _mm512_madd52lo_epu64(zero, t, q);
    return _mm512_and_si512(_mm512_sub_epi64(lo, tq), mask52);
}

/**
 * Shuffle patterns for stages whose butterfly groups [u·t | v·t] are
 * narrower than a vector (t ∈ {4, 2, 1}). Each iteration covers 16
 * contiguous elements (8/t groups): gather the u/v wings with one
 * permutex2var each, expand the 8/t consecutive twiddles to lanes,
 * and scatter the results back with the inverse pattern.
 */
struct SmallStageIdx
{
    __m512i u, v, lo, hi, tw;
};

CINN_NTT_TARGET inline SmallStageIdx
smallIdx(std::size_t t)
{
    SmallStageIdx s;
    if (t == 4) {
        s.u = _mm512_set_epi64(11, 10, 9, 8, 3, 2, 1, 0);
        s.v = _mm512_set_epi64(15, 14, 13, 12, 7, 6, 5, 4);
        s.lo = s.u;
        s.hi = s.v;
        s.tw = _mm512_set_epi64(1, 1, 1, 1, 0, 0, 0, 0);
    } else if (t == 2) {
        s.u = _mm512_set_epi64(13, 12, 9, 8, 5, 4, 1, 0);
        s.v = _mm512_set_epi64(15, 14, 11, 10, 7, 6, 3, 2);
        s.lo = _mm512_set_epi64(11, 10, 3, 2, 9, 8, 1, 0);
        s.hi = _mm512_set_epi64(15, 14, 7, 6, 13, 12, 5, 4);
        s.tw = _mm512_set_epi64(3, 3, 2, 2, 1, 1, 0, 0);
    } else { // t == 1
        s.u = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
        s.v = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
        s.lo = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
        s.hi = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);
        s.tw = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
    }
    return s;
}

CINN_NTT_TARGET void
fwdBody(uint64_t *a, std::size_t n, uint64_t qv, const uint64_t *psi,
        const uint64_t *psi_sh)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);

    // Wide stages (t >= 8 lanes per twiddle). Unlike the scalar
    // path's [0, 4q) laziness, both wings re-reduce to [0, 2q) so the
    // next stage's multiplier operand stays below 2^52.
    //
    // Consecutive stage pairs fuse into one radix-4 pass while the
    // second stage is still wide (t/2 >= 8): the four quarter-wing
    // vectors stay in registers between the two butterflies, halving
    // the pass count over the array — these stages are L2-bandwidth
    // bound, not compute bound. Each butterfly performs exactly the
    // unfused sequence (mulLazy52 + condSub to [0, 2q)), so every
    // intermediate and final value is bit-identical to the unfused
    // path.
    std::size_t t = n >> 1;
    std::size_t m = 1;
    for (; t >= 16; m <<= 2, t >>= 2) {
        for (std::size_t i = 0; i < m; ++i) {
            const __m512i s1 = _mm512_set1_epi64((long long)psi[m + i]);
            const __m512i s1_52 =
                _mm512_set1_epi64((long long)(psi_sh[m + i] >> 12));
            const __m512i s2a =
                _mm512_set1_epi64((long long)psi[2 * m + 2 * i]);
            const __m512i s2a_52 = _mm512_set1_epi64(
                (long long)(psi_sh[2 * m + 2 * i] >> 12));
            const __m512i s2b =
                _mm512_set1_epi64((long long)psi[2 * m + 2 * i + 1]);
            const __m512i s2b_52 = _mm512_set1_epi64(
                (long long)(psi_sh[2 * m + 2 * i + 1] >> 12));
            uint64_t *p = a + 2 * i * t;
            const std::size_t h = t >> 1;
            for (std::size_t j = 0; j < h; j += 8) {
                const __m512i e0 =
                    _mm512_loadu_si512((const void *)(p + j));
                const __m512i e1 =
                    _mm512_loadu_si512((const void *)(p + j + h));
                const __m512i e2 =
                    _mm512_loadu_si512((const void *)(p + j + t));
                const __m512i e3 =
                    _mm512_loadu_si512((const void *)(p + j + t + h));
                // Stage 1 (width t): pairs (e0,e2) and (e1,e3).
                const __m512i w0 = mulLazy52(e2, s1, s1_52, q, mask52);
                const __m512i w1 = mulLazy52(e3, s1, s1_52, q, mask52);
                const __m512i x0 =
                    condSub(_mm512_add_epi64(e0, w0), two_q);
                const __m512i x1 =
                    condSub(_mm512_add_epi64(e1, w1), two_q);
                const __m512i y0 = condSub(
                    _mm512_add_epi64(_mm512_sub_epi64(e0, w0), two_q),
                    two_q);
                const __m512i y1 = condSub(
                    _mm512_add_epi64(_mm512_sub_epi64(e1, w1), two_q),
                    two_q);
                // Stage 2 (width t/2): (x0,x1) under s2a, (y0,y1)
                // under s2b.
                const __m512i wx = mulLazy52(x1, s2a, s2a_52, q, mask52);
                const __m512i wy = mulLazy52(y1, s2b, s2b_52, q, mask52);
                _mm512_storeu_si512(
                    (void *)(p + j),
                    condSub(_mm512_add_epi64(x0, wx), two_q));
                _mm512_storeu_si512(
                    (void *)(p + j + h),
                    condSub(_mm512_add_epi64(
                                _mm512_sub_epi64(x0, wx), two_q),
                            two_q));
                _mm512_storeu_si512(
                    (void *)(p + j + t),
                    condSub(_mm512_add_epi64(y0, wy), two_q));
                _mm512_storeu_si512(
                    (void *)(p + j + t + h),
                    condSub(_mm512_add_epi64(
                                _mm512_sub_epi64(y0, wy), two_q),
                            two_q));
            }
        }
    }
    for (; t >= 8; m <<= 1, t >>= 1) {
        for (std::size_t i = 0; i < m; ++i) {
            const __m512i s = _mm512_set1_epi64((long long)psi[m + i]);
            const __m512i s52 =
                _mm512_set1_epi64((long long)(psi_sh[m + i] >> 12));
            uint64_t *p0 = a + 2 * i * t;
            uint64_t *p1 = p0 + t;
            for (std::size_t j = 0; j < t; j += 8) {
                const __m512i u =
                    _mm512_loadu_si512((const void *)(p0 + j));
                const __m512i v =
                    _mm512_loadu_si512((const void *)(p1 + j));
                const __m512i w = mulLazy52(v, s, s52, q, mask52);
                const __m512i x = condSub(_mm512_add_epi64(u, w), two_q);
                const __m512i y = condSub(
                    _mm512_add_epi64(_mm512_sub_epi64(u, w), two_q),
                    two_q);
                _mm512_storeu_si512((void *)(p0 + j), x);
                _mm512_storeu_si512((void *)(p1 + j), y);
            }
        }
    }

    // Narrow stages t = 4, 2, 1 via in-register shuffles; the final
    // stage fuses the [0, 2q) -> [0, q) canonicalization.
    for (; t >= 1; m <<= 1, t >>= 1) {
        const SmallStageIdx ix = smallIdx(t);
        const bool last = t == 1;
        const std::size_t step = 8 / t;
        for (std::size_t i = 0; i < m; i += step) {
            uint64_t *base = a + 2 * t * i;
            const __m512i z0 = _mm512_loadu_si512((const void *)base);
            const __m512i z1 =
                _mm512_loadu_si512((const void *)(base + 8));
            const __m512i u = _mm512_permutex2var_epi64(z0, ix.u, z1);
            const __m512i v = _mm512_permutex2var_epi64(z0, ix.v, z1);
            const __m512i s = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512((const void *)(psi + m + i)));
            const __m512i s52 = _mm512_permutexvar_epi64(
                ix.tw,
                _mm512_srli_epi64(
                    _mm512_loadu_si512((const void *)(psi_sh + m + i)),
                    12));
            const __m512i w = mulLazy52(v, s, s52, q, mask52);
            __m512i x = condSub(_mm512_add_epi64(u, w), two_q);
            __m512i y = condSub(
                _mm512_add_epi64(_mm512_sub_epi64(u, w), two_q), two_q);
            if (last) {
                x = condSub(x, q);
                y = condSub(y, q);
            }
            _mm512_storeu_si512((void *)base,
                                _mm512_permutex2var_epi64(x, ix.lo, y));
            _mm512_storeu_si512((void *)(base + 8),
                                _mm512_permutex2var_epi64(x, ix.hi, y));
        }
    }
}

CINN_NTT_TARGET void
invBody(uint64_t *a, std::size_t n, uint64_t qv, const uint64_t *psi,
        const uint64_t *psi_sh, uint64_t n_inv, uint64_t n_inv_sh,
        uint64_t last, uint64_t last_sh)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);

    // Narrow GS stages t = 1, 2, 4 via in-register shuffles. The
    // difference wing reduces to [0, 2q) before the twiddle product so
    // the multiplier operand fits 52 bits; same residue, so the
    // canonical result is unchanged.
    std::size_t t = 1;
    std::size_t m = n;
    for (; m > 2 && t < 8; m >>= 1, t <<= 1) {
        const SmallStageIdx ix = smallIdx(t);
        const std::size_t h = m >> 1;
        const std::size_t step = 8 / t;
        for (std::size_t i = 0; i < h; i += step) {
            uint64_t *base = a + 2 * t * i;
            const __m512i z0 = _mm512_loadu_si512((const void *)base);
            const __m512i z1 =
                _mm512_loadu_si512((const void *)(base + 8));
            const __m512i u = _mm512_permutex2var_epi64(z0, ix.u, z1);
            const __m512i v = _mm512_permutex2var_epi64(z0, ix.v, z1);
            const __m512i s = _mm512_permutexvar_epi64(
                ix.tw, _mm512_loadu_si512((const void *)(psi + h + i)));
            const __m512i s52 = _mm512_permutexvar_epi64(
                ix.tw,
                _mm512_srli_epi64(
                    _mm512_loadu_si512((const void *)(psi_sh + h + i)),
                    12));
            const __m512i w = condSub(_mm512_add_epi64(u, v), two_q);
            const __m512i d = condSub(
                _mm512_add_epi64(_mm512_sub_epi64(u, v), two_q), two_q);
            const __m512i y = mulLazy52(d, s, s52, q, mask52);
            _mm512_storeu_si512((void *)base,
                                _mm512_permutex2var_epi64(w, ix.lo, y));
            _mm512_storeu_si512((void *)(base + 8),
                                _mm512_permutex2var_epi64(w, ix.hi, y));
        }
    }

    // Vector stages (t >= 8). The difference wing reduces to [0, 2q)
    // before the twiddle product so the multiplier operand fits 52
    // bits; same residue, so the canonical result is unchanged.
    //
    // As in the forward transform, consecutive wide stage pairs fuse
    // into one radix-4 pass (requires the second stage to still be a
    // vector stage, m > 4): the sum/difference wings of two adjacent
    // width-t groups feed the width-2t butterflies directly from
    // registers, halving passes over the array with butterfly
    // arithmetic — and therefore every value — unchanged.
    for (; m > 4; m >>= 2, t <<= 2) {
        const std::size_t h = m >> 1;  // stage-1 group count
        const std::size_t h2 = m >> 2; // stage-2 group count
        for (std::size_t i = 0; i < h2; ++i) {
            const __m512i sa =
                _mm512_set1_epi64((long long)psi[h + 2 * i]);
            const __m512i sa52 = _mm512_set1_epi64(
                (long long)(psi_sh[h + 2 * i] >> 12));
            const __m512i sb =
                _mm512_set1_epi64((long long)psi[h + 2 * i + 1]);
            const __m512i sb52 = _mm512_set1_epi64(
                (long long)(psi_sh[h + 2 * i + 1] >> 12));
            const __m512i s2 = _mm512_set1_epi64((long long)psi[h2 + i]);
            const __m512i s2_52 =
                _mm512_set1_epi64((long long)(psi_sh[h2 + i] >> 12));
            uint64_t *p = a + 4 * t * i;
            for (std::size_t j = 0; j < t; j += 8) {
                const __m512i e0 =
                    _mm512_loadu_si512((const void *)(p + j));
                const __m512i e1 =
                    _mm512_loadu_si512((const void *)(p + j + t));
                const __m512i e2 =
                    _mm512_loadu_si512((const void *)(p + j + 2 * t));
                const __m512i e3 =
                    _mm512_loadu_si512((const void *)(p + j + 3 * t));
                // Stage 1 (width t): group 2i on (e0,e1) under sa,
                // group 2i+1 on (e2,e3) under sb.
                const __m512i w0 =
                    condSub(_mm512_add_epi64(e0, e1), two_q);
                const __m512i y0 = mulLazy52(
                    condSub(_mm512_add_epi64(
                                _mm512_sub_epi64(e0, e1), two_q),
                            two_q),
                    sa, sa52, q, mask52);
                const __m512i w1 =
                    condSub(_mm512_add_epi64(e2, e3), two_q);
                const __m512i y1 = mulLazy52(
                    condSub(_mm512_add_epi64(
                                _mm512_sub_epi64(e2, e3), two_q),
                            two_q),
                    sb, sb52, q, mask52);
                // Stage 2 (width 2t): pairs (w0,w1) and (y0,y1).
                _mm512_storeu_si512(
                    (void *)(p + j),
                    condSub(_mm512_add_epi64(w0, w1), two_q));
                _mm512_storeu_si512(
                    (void *)(p + j + 2 * t),
                    mulLazy52(condSub(_mm512_add_epi64(
                                          _mm512_sub_epi64(w0, w1),
                                          two_q),
                                      two_q),
                              s2, s2_52, q, mask52));
                _mm512_storeu_si512(
                    (void *)(p + j + t),
                    condSub(_mm512_add_epi64(y0, y1), two_q));
                _mm512_storeu_si512(
                    (void *)(p + j + 3 * t),
                    mulLazy52(condSub(_mm512_add_epi64(
                                          _mm512_sub_epi64(y0, y1),
                                          two_q),
                                      two_q),
                              s2, s2_52, q, mask52));
            }
        }
    }
    for (; m > 2; m >>= 1, t <<= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const __m512i s = _mm512_set1_epi64((long long)psi[h + i]);
            const __m512i s52 =
                _mm512_set1_epi64((long long)(psi_sh[h + i] >> 12));
            uint64_t *p0 = a + j1;
            uint64_t *p1 = p0 + t;
            for (std::size_t j = 0; j < t; j += 8) {
                const __m512i u =
                    _mm512_loadu_si512((const void *)(p0 + j));
                const __m512i v =
                    _mm512_loadu_si512((const void *)(p1 + j));
                const __m512i w = condSub(_mm512_add_epi64(u, v), two_q);
                const __m512i d = condSub(
                    _mm512_add_epi64(_mm512_sub_epi64(u, v), two_q),
                    two_q);
                _mm512_storeu_si512((void *)(p0 + j), w);
                _mm512_storeu_si512((void *)(p1 + j),
                                    mulLazy52(d, s, s52, q, mask52));
            }
            j1 += 2 * t;
        }
    }

    // Final stage (m == 2): exact products, n^-1 folded into the
    // difference wing's twiddle exactly as in the scalar path.
    const std::size_t half = n >> 1;
    const __m512i ni = _mm512_set1_epi64((long long)n_inv);
    const __m512i ni52 = _mm512_set1_epi64((long long)(n_inv_sh >> 12));
    const __m512i la = _mm512_set1_epi64((long long)last);
    const __m512i la52 = _mm512_set1_epi64((long long)(last_sh >> 12));
    for (std::size_t j = 0; j < half; j += 8) {
        const __m512i u = _mm512_loadu_si512((const void *)(a + j));
        const __m512i v =
            _mm512_loadu_si512((const void *)(a + j + half));
        const __m512i w = condSub(_mm512_add_epi64(u, v), two_q);
        const __m512i r0 =
            condSub(mulLazy52(w, ni, ni52, q, mask52), q);
        const __m512i d = condSub(
            _mm512_add_epi64(_mm512_sub_epi64(u, v), two_q), two_q);
        const __m512i r1 =
            condSub(mulLazy52(d, la, la52, q, mask52), q);
        _mm512_storeu_si512((void *)(a + j), r0);
        _mm512_storeu_si512((void *)(a + j + half), r1);
    }
}

#undef CINN_NTT_TARGET

} // namespace

bool
detail::nttAvx512Available()
{
    static const bool ok = [] {
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512ifma");
    }();
    return ok;
}

void
NttTable::forwardAvx512(uint64_t *a) const
{
    fwdBody(a, n_, mod_.value(), psi_br_.data(), psi_br_shoup_.data());
}

void
NttTable::inverseAvx512(uint64_t *a) const
{
    invBody(a, n_, mod_.value(), psi_inv_br_.data(),
            psi_inv_br_shoup_.data(), n_inv_, n_inv_shoup_,
            inv_last_scaled_, inv_last_scaled_shoup_);
}

} // namespace cinnamon::rns

#else // !(__x86_64__ && __GNUC__)

namespace cinnamon::rns {

bool
detail::nttAvx512Available()
{
    return false;
}

void
NttTable::forwardAvx512(uint64_t *) const
{
}

void
NttTable::inverseAvx512(uint64_t *) const
{
}

} // namespace cinnamon::rns

#endif
