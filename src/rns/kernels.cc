#include "rns/kernels.h"

#include <atomic>
#include <cstring>

namespace cinnamon::rns {
namespace {

void
scalarAdd(uint64_t *dst, const uint64_t *a, const uint64_t *b,
          std::size_t n, uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = addMod(a[i], b[i], q);
}

void
scalarSub(uint64_t *dst, const uint64_t *a, const uint64_t *b,
          std::size_t n, uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = subMod(a[i], b[i], q);
}

void
scalarMul(uint64_t *dst, const uint64_t *a, const uint64_t *b,
          std::size_t n, const Modulus &mod)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = mod.mul(a[i], b[i]);
}

void
scalarNegate(uint64_t *dst, const uint64_t *a, std::size_t n, uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] == 0 ? 0 : q - a[i];
}

void
scalarMulScalarShoup(uint64_t *dst, const uint64_t *a, std::size_t n,
                     uint64_t s, uint64_t s_shoup, uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = mulModShoup(a[i], s, s_shoup, q);
}

void
scalarMacScalarShoup(uint64_t *acc, const uint64_t *a, std::size_t n,
                     uint64_t s, uint64_t s_shoup, uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] = addMod(acc[i], mulModShoup(a[i], s, s_shoup, q), q);
}

void
scalarMacMulti(uint64_t *dst, const uint64_t *const *srcs,
               const uint64_t *fs, std::size_t k, std::size_t n,
               const Modulus &mod, uint64_t /*src_bound*/)
{
    // Eight products of 62-bit values fit a 128-bit accumulator
    // (8 * 2^124 < 2^128); reduce() corrects any quotient estimate
    // error with its trailing subtract loop, so each chunk lands
    // canonical before the next begins.
    for (std::size_t i = 0; i < n; ++i) {
        uint64_t r = dst[i];
        std::size_t j = 0;
        while (j < k) {
            const std::size_t e = j + 8 < k ? j + 8 : k;
            uint128_t acc = r;
            for (; j < e; ++j)
                acc += (uint128_t)srcs[j][i] * fs[j];
            r = mod.reduce(acc);
        }
        dst[i] = r;
    }
}

void
scalarModReduce(uint64_t *dst, const uint64_t *a, std::size_t n,
                uint64_t q)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] % q;
}

void
scalarAutomorph(uint64_t *dst, const uint64_t *src, std::size_t n,
                uint64_t galois, uint64_t q)
{
    // X^j maps to X^(j*g mod 2n); X^n = -1 folds the sign. The index
    // walks by g with conditional wraps instead of a per-element
    // multiply-and-divide (the divide alone dominates otherwise).
    const uint64_t two_n = 2 * n;
    const uint64_t step = galois % two_n;
    uint64_t idx = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if (idx < n) {
            dst[idx] = src[j];
        } else {
            dst[idx - n] = src[j] == 0 ? 0 : q - src[j];
        }
        idx += step;
        if (idx >= two_n)
            idx -= two_n;
    }
}

constexpr KernelTable kScalarTable = {
    "scalar",        scalarAdd,       scalarSub,
    scalarMul,       scalarNegate,    scalarMulScalarShoup,
    scalarMacScalarShoup, scalarMacMulti, scalarModReduce,
    scalarAutomorph,
};

// Registered backends: "scalar" is always slot 0; the AVX-512 table
// joins when the build target and CPU support it. Function-local
// statics keep initialization order well-defined.
struct BackendList
{
    const KernelTable *tables[2];
    int count;
};

const BackendList &
backendList()
{
    static const BackendList list = [] {
        BackendList l{{&kScalarTable, nullptr}, 1};
        if (const KernelTable *t = avx512KernelTable())
            l.tables[l.count++] = t;
        return l;
    }();
    return list;
}

std::atomic<const KernelTable *> &
activeSlot()
{
    // Default to the last (fastest) registered backend; every backend
    // is bit-identical to scalar, so this never changes results.
    static std::atomic<const KernelTable *> g{
        backendList().tables[backendList().count - 1]};
    return g;
}

} // namespace

const KernelTable &
kernels()
{
    return *activeSlot().load(std::memory_order_relaxed);
}

const KernelTable &
scalarKernels()
{
    return kScalarTable;
}

bool
selectKernelBackend(const std::string &name)
{
    const BackendList &list = backendList();
    for (int i = 0; i < list.count; ++i) {
        if (name == list.tables[i]->name) {
            activeSlot().store(list.tables[i],
                               std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

const char *
kernelBackendName()
{
    return activeSlot().load(std::memory_order_relaxed)->name;
}

} // namespace cinnamon::rns
