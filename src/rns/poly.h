/**
 * @file
 * RNS polynomials: a tuple of limbs over a basis of primes.
 *
 * An RnsPoly represents an element of Z_Q[X]/(X^n + 1) where Q is the
 * product of the primes in its basis, stored limb-major in ONE flat
 * contiguous buffer — limb i occupies [i*n, (i+1)*n) — matching the
 * limb-partitioned layout the paper's data plane assumes (Section 4:
 * a limb is the unit of placement and transfer). Callers view limbs
 * through LimbSpan / ConstLimbSpan; the elementwise work is delegated
 * to the kernel-dispatch table in rns/kernels.h.
 *
 * Each polynomial tracks whether it is in the coefficient or
 * evaluation (NTT) domain; pointwise multiplication requires the
 * evaluation domain, base conversion and automorphism require the
 * coefficient domain, and the domain-changing helpers are explicit so
 * callers account for every (I)NTT — the dominant cost in real
 * hardware.
 */

#ifndef CINNAMON_RNS_POLY_H_
#define CINNAMON_RNS_POLY_H_

#include <cstdint>
#include <vector>

#include "rns/context.h"
#include "rns/limb_span.h"

namespace cinnamon::rns {

/** Polynomial representation domain. */
enum class Domain { Coeff, Eval };

/**
 * A polynomial in RNS form over a subset of the context primes.
 *
 * Value semantics; copying copies the flat buffer.
 */
class RnsPoly
{
  public:
    RnsPoly() : ctx_(nullptr), domain_(Domain::Coeff), n_(0) {}

    /** All-zero polynomial over the given basis. */
    RnsPoly(const RnsContext &ctx, Basis basis, Domain domain);

    bool valid() const { return ctx_ != nullptr; }
    const RnsContext &context() const { return *ctx_; }
    const Basis &basis() const { return basis_; }
    Domain domain() const { return domain_; }
    std::size_t numLimbs() const { return basis_.size(); }
    std::size_t n() const { return n_; }

    /** Mutable view of limb i (plane [i*n, (i+1)*n) of the buffer). */
    LimbSpan limb(std::size_t i) { return {data_.data() + i * n_, n_}; }
    ConstLimbSpan
    limb(std::size_t i) const
    {
        return {data_.data() + i * n_, n_};
    }

    /** Raw pointer to limb i — the kernel-facing accessor. */
    uint64_t *limbData(std::size_t i) { return data_.data() + i * n_; }
    const uint64_t *
    limbData(std::size_t i) const
    {
        return data_.data() + i * n_;
    }

    /** Copy `src` (length n) into limb i. */
    void setLimb(std::size_t i, ConstLimbSpan src);

    /** The whole limb-major buffer (numLimbs() * n() residues). */
    const std::vector<uint64_t> &flat() const { return data_; }

    /** Prime index backing limb i. */
    uint32_t primeIndex(std::size_t i) const { return basis_[i]; }

    /** Modulus backing limb i. */
    const Modulus &
    limbModulus(std::size_t i) const
    {
        return ctx_->modulus(basis_[i]);
    }

    /** Position of prime index `idx` in this basis, or -1. */
    int findPrime(uint32_t idx) const;

    /** In-place conversion to the evaluation domain (per-limb NTT). */
    void toEval();

    /** In-place conversion to the coefficient domain (per-limb INTT). */
    void toCoeff();

    /** this += other (same basis, same domain). */
    void addInPlace(const RnsPoly &other);

    /** this -= other (same basis, same domain). */
    void subInPlace(const RnsPoly &other);

    /** this *= other pointwise (same basis, both Eval domain). */
    void mulInPlace(const RnsPoly &other);

    /** this = -this. */
    void negateInPlace();

    /** Multiply limb i by scalars[i] (any domain; scalars are per-limb). */
    void mulScalarPerLimb(const std::vector<uint64_t> &scalars);

    /** Multiply every limb by the image of a single integer scalar. */
    void mulScalarInt(uint64_t scalar);

    /** Add the image of a single integer scalar to coefficient 0 ... */
    RnsPoly add(const RnsPoly &other) const;
    RnsPoly sub(const RnsPoly &other) const;
    RnsPoly mul(const RnsPoly &other) const;

    /**
     * Apply the Galois automorphism X → X^g (coefficient domain).
     *
     * @param galois an odd exponent in [1, 2n).
     */
    RnsPoly automorphism(uint64_t galois) const;

    /**
     * Restrict to a sub-basis: keep only limbs whose prime index
     * appears in `sub` (order taken from `sub`).
     */
    RnsPoly restrictTo(const Basis &sub) const;

    /** True when every coefficient of every limb is zero. */
    bool isZero() const;

    bool operator==(const RnsPoly &other) const;

  private:
    const RnsContext *ctx_;
    Basis basis_;
    Domain domain_;
    std::size_t n_;
    /** Limb-major flat buffer: basis_.size() planes of n_ residues. */
    std::vector<uint64_t> data_;
};

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_POLY_H_
