/**
 * @file
 * Non-owning views over one limb of a flat limb-major buffer.
 *
 * RnsPoly stores all limbs contiguously (limb-major, one length-n
 * plane per prime); LimbSpan / ConstLimbSpan are the lens through
 * which callers touch a single plane. They convert implicitly from
 * std::vector<uint64_t> so staging buffers and test vectors flow into
 * the same kernel entry points as polynomial limbs.
 */

#ifndef CINNAMON_RNS_LIMB_SPAN_H_
#define CINNAMON_RNS_LIMB_SPAN_H_

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

namespace cinnamon::rns {

/** Mutable view of one limb (length-n plane of uint64 residues). */
class LimbSpan
{
  public:
    LimbSpan() : data_(nullptr), size_(0) {}
    LimbSpan(uint64_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    LimbSpan(std::vector<uint64_t> &v) : data_(v.data()), size_(v.size())
    {
    }

    uint64_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    uint64_t &operator[](std::size_t i) const { return data_[i]; }
    uint64_t *begin() const { return data_; }
    uint64_t *end() const { return data_ + size_; }

    /** Materialize an owning copy (for stores into owning containers). */
    std::vector<uint64_t>
    toVector() const
    {
        return std::vector<uint64_t>(data_, data_ + size_);
    }

  private:
    uint64_t *data_;
    std::size_t size_;
};

/** Read-only view of one limb. */
class ConstLimbSpan
{
  public:
    ConstLimbSpan() : data_(nullptr), size_(0) {}
    ConstLimbSpan(const uint64_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    ConstLimbSpan(const std::vector<uint64_t> &v)
        : data_(v.data()), size_(v.size())
    {
    }
    ConstLimbSpan(LimbSpan s) : data_(s.data()), size_(s.size()) {}

    const uint64_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const uint64_t &operator[](std::size_t i) const { return data_[i]; }
    const uint64_t *begin() const { return data_; }
    const uint64_t *end() const { return data_ + size_; }

    std::vector<uint64_t>
    toVector() const
    {
        return std::vector<uint64_t>(data_, data_ + size_);
    }

  private:
    const uint64_t *data_;
    std::size_t size_;
};

/** Element-wise equality; vectors participate via implicit conversion. */
inline bool
operator==(ConstLimbSpan a, ConstLimbSpan b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i])
            return false;
    }
    return true;
}

inline bool
operator!=(ConstLimbSpan a, ConstLimbSpan b)
{
    return !(a == b);
}

inline std::ostream &
operator<<(std::ostream &os, ConstLimbSpan s)
{
    os << "limb[" << s.size() << "]{";
    const std::size_t shown = s.size() < 8 ? s.size() : 8;
    for (std::size_t i = 0; i < shown; ++i)
        os << (i ? ", " : "") << s[i];
    if (shown < s.size())
        os << ", ...";
    return os << "}";
}

inline std::ostream &
operator<<(std::ostream &os, LimbSpan s)
{
    return os << ConstLimbSpan(s);
}

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_LIMB_SPAN_H_
