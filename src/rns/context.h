/**
 * @file
 * RNS context: the global table of physical primes and NTT tables.
 *
 * A context owns the full chain of primes an application may ever use
 * (the ciphertext chain q_0..q_L plus the keyswitching extension
 * primes p_0..p_{k-1}; Section 2 "Limbs" and "Digits"). Individual
 * polynomials reference a *basis* — an ordered subset of these primes
 * identified by index — so that base-conversion precomputations can be
 * cached per (source, target) pair.
 */

#ifndef CINNAMON_RNS_CONTEXT_H_
#define CINNAMON_RNS_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "rns/modarith.h"
#include "rns/ntt.h"

namespace cinnamon::rns {

/** An ordered set of prime indices into an RnsContext. */
using Basis = std::vector<uint32_t>;

/** Return indices [lo, hi) as a Basis. */
Basis rangeBasis(uint32_t lo, uint32_t hi);

/** Set-union preserving order: a followed by members of b not in a. */
Basis unionBasis(const Basis &a, const Basis &b);

/** True if every index in sub also appears in super. */
bool isSubsetOf(const Basis &sub, const Basis &super);

/** Elements of a that are not in b, preserving order. */
Basis differenceBasis(const Basis &a, const Basis &b);

/**
 * Shared immutable tables for a ring dimension and a prime chain.
 *
 * Thread-compatible: all members are immutable after construction.
 */
class RnsContext
{
  public:
    /**
     * @param n ring dimension (power of two).
     * @param primes the full physical prime chain; all must satisfy
     *        p ≡ 1 (mod 2n) so every limb supports the NTT.
     */
    RnsContext(std::size_t n, const std::vector<uint64_t> &primes);

    std::size_t n() const { return n_; }
    std::size_t numPrimes() const { return moduli_.size(); }

    const Modulus &
    modulus(uint32_t idx) const
    {
        CINN_ASSERT(idx < moduli_.size(), "prime index out of range");
        return moduli_[idx];
    }

    const NttTable &
    ntt(uint32_t idx) const
    {
        CINN_ASSERT(idx < ntt_.size(), "prime index out of range");
        return *ntt_[idx];
    }

  private:
    std::size_t n_;
    std::vector<Modulus> moduli_;
    std::vector<std::unique_ptr<NttTable>> ntt_;
};

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_CONTEXT_H_
