#include "rns/ntt.h"

#include "common/logging.h"
#include "rns/prime_gen.h"

namespace cinnamon::rns {

NttTable::NttTable(std::size_t n, uint64_t q) : n_(n), mod_(q)
{
    CINN_ASSERT(n >= 2 && (n & (n - 1)) == 0, "n must be a power of 2");
    log_n_ = 0;
    while ((1ULL << log_n_) < n)
        ++log_n_;

    const uint64_t psi = findPrimitiveRoot(2 * n, q);
    const uint64_t psi_inv = invMod(psi, q);

    psi_br_.resize(n);
    psi_inv_br_.resize(n);
    uint64_t pow_fwd = 1;
    std::vector<uint64_t> fwd(n), inv(n);
    uint64_t pow_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        fwd[i] = pow_fwd;
        inv[i] = pow_inv;
        pow_fwd = mod_.mul(pow_fwd, psi);
        pow_inv = mod_.mul(pow_inv, psi_inv);
    }
    for (std::size_t i = 0; i < n; ++i) {
        psi_br_[i] = fwd[bitReverse(static_cast<uint32_t>(i), log_n_)];
        psi_inv_br_[i] = inv[bitReverse(static_cast<uint32_t>(i), log_n_)];
    }
    n_inv_ = invMod(static_cast<uint64_t>(n), q);

    psi_br_shoup_.resize(n);
    psi_inv_br_shoup_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        psi_br_shoup_[i] = shoupPrecompute(psi_br_[i], q);
        psi_inv_br_shoup_[i] = shoupPrecompute(psi_inv_br_[i], q);
    }
    n_inv_shoup_ = shoupPrecompute(n_inv_, q);
    inv_last_scaled_ = mod_.mul(psi_inv_br_[1], n_inv_);
    inv_last_scaled_shoup_ = shoupPrecompute(inv_last_scaled_, q);

    // The IFMA path needs 2q-lazy values below 2^52 and at least one
    // full vector per butterfly group; outputs are bit-identical.
    avx512_ok_ = detail::nttAvx512Available() && q < (1ULL << 51) &&
                 n >= 16;
}

void
NttTable::forward(uint64_t *a) const
{
    // Harvey lazy CT butterflies: values ride in [0, 4q). The top
    // wing sheds 2q when needed, the twiddle product is a lazy Shoup
    // multiply (< 2q), so u+v < 4q and u-v+2q < 4q hold inductively.
    if (avx512_ok_) {
        forwardAvx512(a);
        return;
    }
    const uint64_t q = mod_.value();
    const uint64_t two_q = 2 * q;
    const uint64_t *psi = psi_br_.data();
    const uint64_t *psi_sh = psi_br_shoup_.data();
    std::size_t t = n_;
    for (std::size_t m = 1; m < (n_ >> 1); m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const uint64_t s = psi[m + i];
            const uint64_t s_sh = psi_sh[m + i];
            uint64_t *p0 = a + 2 * i * t;
            uint64_t *p1 = p0 + t;
            for (std::size_t j = 0; j < t; ++j) {
                uint64_t u = p0[j];
                if (u >= two_q)
                    u -= two_q;
                const uint64_t v = mulModShoupLazy(p1[j], s, s_sh, q);
                p0[j] = u + v;
                p1[j] = u - v + two_q;
            }
        }
    }
    // Final stage (t = 1), fused with the [0, 4q) -> [0, q)
    // canonicalization so the data takes no extra pass. The results
    // are the unique canonical representatives — bit-identical to
    // canonicalizing separately.
    const std::size_t h = n_ >> 1;
    for (std::size_t i = 0; i < h; ++i) {
        const uint64_t s = psi[h + i];
        const uint64_t s_sh = psi_sh[h + i];
        uint64_t u = a[2 * i];
        if (u >= two_q)
            u -= two_q;
        const uint64_t v = mulModShoupLazy(a[2 * i + 1], s, s_sh, q);
        uint64_t x = u + v;
        uint64_t y = u - v + two_q;
        if (x >= two_q)
            x -= two_q;
        if (x >= q)
            x -= q;
        if (y >= two_q)
            y -= two_q;
        if (y >= q)
            y -= q;
        a[2 * i] = x;
        a[2 * i + 1] = y;
    }
}

void
NttTable::inverse(uint64_t *a) const
{
    // Harvey lazy GS butterflies: values ride in [0, 2q); the final
    // stage folds the n^-1 scaling into its twiddle and multiplies
    // exactly (Shoup with correction), landing in [0, q) with no
    // separate scaling pass — bit-identical to scaling afterwards.
    if (avx512_ok_) {
        inverseAvx512(a);
        return;
    }
    const uint64_t q = mod_.value();
    const uint64_t two_q = 2 * q;
    const uint64_t *psi = psi_inv_br_.data();
    const uint64_t *psi_sh = psi_inv_br_shoup_.data();
    std::size_t t = 1;
    for (std::size_t m = n_; m > 2; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const uint64_t s = psi[h + i];
            const uint64_t s_sh = psi_sh[h + i];
            uint64_t *p0 = a + j1;
            uint64_t *p1 = p0 + t;
            for (std::size_t j = 0; j < t; ++j) {
                const uint64_t u = p0[j];
                const uint64_t v = p1[j];
                uint64_t w = u + v;
                if (w >= two_q)
                    w -= two_q;
                p0[j] = w;
                p1[j] = mulModShoupLazy(u - v + two_q, s, s_sh, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    const std::size_t half = n_ >> 1;
    for (std::size_t j = 0; j < half; ++j) {
        const uint64_t u = a[j];
        const uint64_t v = a[j + half];
        uint64_t w = u + v;
        if (w >= two_q)
            w -= two_q;
        a[j] = mulModShoup(w, n_inv_, n_inv_shoup_, q);
        a[j + half] = mulModShoup(u - v + two_q, inv_last_scaled_,
                                  inv_last_scaled_shoup_, q);
    }
}

} // namespace cinnamon::rns
