#include "rns/ntt.h"

#include "common/logging.h"
#include "rns/prime_gen.h"

namespace cinnamon::rns {

NttTable::NttTable(std::size_t n, uint64_t q) : n_(n), mod_(q)
{
    CINN_ASSERT(n >= 2 && (n & (n - 1)) == 0, "n must be a power of 2");
    log_n_ = 0;
    while ((1ULL << log_n_) < n)
        ++log_n_;

    const uint64_t psi = findPrimitiveRoot(2 * n, q);
    const uint64_t psi_inv = invMod(psi, q);

    psi_br_.resize(n);
    psi_inv_br_.resize(n);
    uint64_t pow_fwd = 1;
    std::vector<uint64_t> fwd(n), inv(n);
    uint64_t pow_inv = 1;
    for (std::size_t i = 0; i < n; ++i) {
        fwd[i] = pow_fwd;
        inv[i] = pow_inv;
        pow_fwd = mod_.mul(pow_fwd, psi);
        pow_inv = mod_.mul(pow_inv, psi_inv);
    }
    for (std::size_t i = 0; i < n; ++i) {
        psi_br_[i] = fwd[bitReverse(static_cast<uint32_t>(i), log_n_)];
        psi_inv_br_[i] = inv[bitReverse(static_cast<uint32_t>(i), log_n_)];
    }
    n_inv_ = invMod(static_cast<uint64_t>(n), q);
}

void
NttTable::forward(uint64_t *a) const
{
    const uint64_t q = mod_.value();
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const uint64_t s = psi_br_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const uint64_t u = a[j];
                const uint64_t v = mod_.mul(a[j + t], s);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTable::inverse(uint64_t *a) const
{
    const uint64_t q = mod_.value();
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const uint64_t s = psi_inv_br_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const uint64_t u = a[j];
                const uint64_t v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = mod_.mul(subMod(u, v, q), s);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t j = 0; j < n_; ++j)
        a[j] = mod_.mul(a[j], n_inv_);
}

} // namespace cinnamon::rns
