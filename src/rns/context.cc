#include "rns/context.h"

#include <algorithm>

namespace cinnamon::rns {

Basis
rangeBasis(uint32_t lo, uint32_t hi)
{
    CINN_ASSERT(lo <= hi, "invalid basis range");
    Basis b;
    b.reserve(hi - lo);
    for (uint32_t i = lo; i < hi; ++i)
        b.push_back(i);
    return b;
}

Basis
unionBasis(const Basis &a, const Basis &b)
{
    Basis out = a;
    for (uint32_t idx : b) {
        if (std::find(a.begin(), a.end(), idx) == a.end())
            out.push_back(idx);
    }
    return out;
}

bool
isSubsetOf(const Basis &sub, const Basis &super)
{
    for (uint32_t idx : sub) {
        if (std::find(super.begin(), super.end(), idx) == super.end())
            return false;
    }
    return true;
}

Basis
differenceBasis(const Basis &a, const Basis &b)
{
    Basis out;
    for (uint32_t idx : a) {
        if (std::find(b.begin(), b.end(), idx) == b.end())
            out.push_back(idx);
    }
    return out;
}

RnsContext::RnsContext(std::size_t n, const std::vector<uint64_t> &primes)
    : n_(n)
{
    CINN_ASSERT(!primes.empty(), "context needs at least one prime");
    moduli_.reserve(primes.size());
    ntt_.reserve(primes.size());
    for (uint64_t q : primes) {
        CINN_ASSERT((q - 1) % (2 * n) == 0,
                    "prime " << q << " is not NTT friendly for n=" << n);
        moduli_.emplace_back(q);
        ntt_.push_back(std::make_unique<NttTable>(n, q));
    }
}

} // namespace cinnamon::rns
