/**
 * @file
 * Fast RNS base conversion, mod-up, mod-down, and rescale.
 *
 * Base conversion (Section 2 of the paper, and Bajard et al. [6])
 * transforms a polynomial's limbs from one RNS basis S to a disjoint
 * basis T:
 *
 *     C_{t_k} = sum_j (C_{s_j} * (S/s_j)^{-1} mod s_j) * (S/s_j) mod t_k
 *
 * This is the *approximate* fast variant: the result may differ from
 * the exact value by a small multiple of S (at most |S| of them),
 * which CKKS absorbs into its noise budget — the same choice every
 * production RNS-CKKS library makes. Unlike all other limb operations
 * this one is not data-parallel across limbs, which is exactly why
 * keyswitching is hard to scale out (Section 3.2).
 *
 * ModUp expands a digit to a larger basis, ModDown drops the extension
 * basis with division-by-P rounding (Figure 3), and rescale divides a
 * ciphertext polynomial by its last prime (CKKS level consumption).
 */

#ifndef CINNAMON_RNS_BASE_CONV_H_
#define CINNAMON_RNS_BASE_CONV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "rns/poly.h"

namespace cinnamon::rns {

/**
 * Precomputed tables to convert from a fixed source basis S to a fixed
 * (disjoint) target basis T.
 */
class BaseConverter
{
  public:
    BaseConverter(const RnsContext &ctx, Basis src, Basis dst);

    const Basis &srcBasis() const { return src_; }
    const Basis &dstBasis() const { return dst_; }

    /**
     * Convert x (over basis S, coefficient domain) to basis T.
     *
     * @return a coefficient-domain polynomial over T.
     */
    RnsPoly convert(const RnsPoly &x) const;

    /**
     * Convert only a subset of the output limbs, identified by their
     * positions in the target basis. Used by the parallel keyswitching
     * engines where each chip produces only its resident output limbs.
     */
    RnsPoly convertPartial(const RnsPoly &x,
                           const std::vector<std::size_t> &dst_limbs) const;

  private:
    const RnsContext *ctx_;
    Basis src_;
    Basis dst_;
    /** (S/s_j)^{-1} mod s_j, with Shoup companions. */
    std::vector<uint64_t> shat_inv_;
    std::vector<uint64_t> shat_inv_shoup_;
    /** (S/s_j) mod t_k, indexed [j][k], with Shoup companions. */
    std::vector<std::vector<uint64_t>> shat_mod_dst_;
    std::vector<std::vector<uint64_t>> shat_mod_dst_shoup_;
};

/**
 * Caches BaseConverter instances per (src, dst) pair and exposes the
 * composite RNS routines built on them.
 *
 * Thread-safe: the converter cache is mutex-guarded (a CkksContext —
 * and hence its RnsTool — is shared by every serve worker thread),
 * and a BaseConverter is immutable once built. Cached converters are
 * never evicted, so returned references stay valid for the tool's
 * lifetime.
 */
class RnsTool
{
  public:
    explicit RnsTool(const RnsContext &ctx) : ctx_(&ctx) {}

    /** Get (or build) the converter from src to dst. */
    const BaseConverter &converter(const Basis &src, const Basis &dst);

    /**
     * Mod up: expand x (over digit basis D ⊆ target) to `target`.
     * Limbs already present are copied; missing limbs are produced by
     * base conversion. Input and output are in the coefficient domain.
     */
    RnsPoly modUp(const RnsPoly &x, const Basis &target);

    /**
     * Mod down: drop the extension limbs `ext` from x (over q ∪ ext)
     * and divide by P = prod(ext) with rounding:
     *     out_i = P^{-1} * (x_i - conv(x_P)_i) mod q_i
     * Input/output in the coefficient domain; output basis is `keep`.
     */
    RnsPoly modDown(const RnsPoly &x, const Basis &keep, const Basis &ext);

    /**
     * Rescale: divide by the last prime of x's basis (CKKS level
     * drop). Input/output in the coefficient domain.
     */
    RnsPoly rescale(const RnsPoly &x);

    /** P^{-1} mod q_i for each q_i in keep, with P = prod(ext). */
    std::vector<uint64_t> extProductInverse(const Basis &keep,
                                            const Basis &ext);

  private:
    const RnsContext *ctx_;
    std::mutex cache_mutex_;
    std::map<std::pair<Basis, Basis>, BaseConverter> cache_;
};

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_BASE_CONV_H_
