/**
 * @file
 * Negacyclic Number Theoretic Transform over a prime field.
 *
 * The NTT is the analog of the FFT in a prime field (Section 2 of the
 * paper). Polynomials live in Z_q[X]/(X^n + 1); multiplying them is a
 * negacyclic convolution, which the NTT turns into a pointwise product.
 * We use the standard merged-twiddle formulation (Longa & Naehrig):
 * forward Cooley-Tukey butterflies with powers of the 2n-th root psi in
 * bit-reversed order, inverse Gentleman-Sande butterflies, both fully
 * in-place and in natural coefficient order.
 */

#ifndef CINNAMON_RNS_NTT_H_
#define CINNAMON_RNS_NTT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cinnamon::rns {

/**
 * Precomputed twiddle tables for one (n, q) pair.
 *
 * Construction cost is O(n); forward() and inverse() are O(n log n).
 */
class NttTable
{
  public:
    /**
     * @param n transform length (power of two).
     * @param q an NTT-friendly prime, q ≡ 1 (mod 2n).
     */
    NttTable(std::size_t n, uint64_t q);

    /** In-place forward negacyclic NTT (coefficient → evaluation). */
    void forward(uint64_t *a) const;

    /** In-place inverse negacyclic NTT (evaluation → coefficient). */
    void inverse(uint64_t *a) const;

    void forward(std::vector<uint64_t> &a) const { forward(a.data()); }
    void inverse(std::vector<uint64_t> &a) const { inverse(a.data()); }

    std::size_t n() const { return n_; }
    const Modulus &modulus() const { return mod_; }

  private:
    std::size_t n_;
    int log_n_;
    Modulus mod_;
    /** psi^bitrev(i) for forward butterflies. */
    std::vector<uint64_t> psi_br_;
    /** psi^-bitrev(i) for inverse butterflies. */
    std::vector<uint64_t> psi_inv_br_;
    /** n^-1 mod q for the final inverse scaling. */
    uint64_t n_inv_;
};

/** Reverse the low `bits` bits of x. */
inline uint32_t
bitReverse(uint32_t x, int bits)
{
    uint32_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_NTT_H_
