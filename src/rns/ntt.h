/**
 * @file
 * Negacyclic Number Theoretic Transform over a prime field.
 *
 * The NTT is the analog of the FFT in a prime field (Section 2 of the
 * paper). Polynomials live in Z_q[X]/(X^n + 1); multiplying them is a
 * negacyclic convolution, which the NTT turns into a pointwise product.
 * We use the standard merged-twiddle formulation (Longa & Naehrig):
 * forward Cooley-Tukey butterflies with powers of the 2n-th root psi in
 * bit-reversed order, inverse Gentleman-Sande butterflies, both fully
 * in-place and in natural coefficient order.
 *
 * Butterflies use Harvey's lazy-reduction form: twiddle products go
 * through precomputed Shoup constants (two multiplies, no Barrett
 * reduction) and intermediate values ride in [0, 4q) forward /
 * [0, 2q) inverse, with a single canonicalizing pass at the end. The
 * final outputs are bit-identical to the fully-reduced formulation —
 * each coefficient is the unique representative in [0, q) — which the
 * golden-hash tests pin. Requires q < 2^62 so 4q fits in 64 bits
 * (Modulus already asserts this).
 */

#ifndef CINNAMON_RNS_NTT_H_
#define CINNAMON_RNS_NTT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cinnamon::rns {

/**
 * Precomputed twiddle tables for one (n, q) pair.
 *
 * Construction cost is O(n); forward() and inverse() are O(n log n).
 */
class NttTable
{
  public:
    /**
     * @param n transform length (power of two).
     * @param q an NTT-friendly prime, q ≡ 1 (mod 2n).
     */
    NttTable(std::size_t n, uint64_t q);

    /** In-place forward negacyclic NTT (coefficient → evaluation). */
    void forward(uint64_t *a) const;

    /** In-place inverse negacyclic NTT (evaluation → coefficient). */
    void inverse(uint64_t *a) const;

    void forward(std::vector<uint64_t> &a) const { forward(a.data()); }
    void inverse(std::vector<uint64_t> &a) const { inverse(a.data()); }

    std::size_t n() const { return n_; }
    const Modulus &modulus() const { return mod_; }

  private:
    /**
     * AVX-512 IFMA transform bodies (ntt_avx512.cc). Only called when
     * avx512_ok_: the CPU has AVX512F+IFMA, q < 2^51 (so 2q-lazy
     * values fit the 52-bit multiplier domain), and n >= 16. The
     * 52-bit Shoup companions are the 64-bit tables shifted right by
     * 12 (floor(floor(s*2^64/q) / 2^12) == floor(s*2^52/q)), so no
     * extra tables are kept. Outputs are canonical and bit-identical
     * to the scalar path.
     */
    void forwardAvx512(uint64_t *a) const;
    void inverseAvx512(uint64_t *a) const;
    std::size_t n_;
    int log_n_;
    Modulus mod_;
    /** psi^bitrev(i) for forward butterflies (+ Shoup companions). */
    std::vector<uint64_t> psi_br_;
    std::vector<uint64_t> psi_br_shoup_;
    /** psi^-bitrev(i) for inverse butterflies (+ Shoup companions). */
    std::vector<uint64_t> psi_inv_br_;
    std::vector<uint64_t> psi_inv_br_shoup_;
    /** n^-1 mod q for the final inverse scaling. */
    uint64_t n_inv_;
    uint64_t n_inv_shoup_;
    /**
     * psi^-bitrev(1) * n^-1 mod q (+ Shoup companion): the inverse
     * transform's last butterfly stage folds the n^-1 scaling into
     * its twiddle so no separate scaling pass is needed.
     */
    uint64_t inv_last_scaled_;
    uint64_t inv_last_scaled_shoup_;
    bool avx512_ok_ = false;
};

namespace detail {
/** True when this CPU supports the AVX-512 IFMA transform path. */
bool nttAvx512Available();
} // namespace detail

/** Reverse the low `bits` bits of x. */
inline uint32_t
bitReverse(uint32_t x, int bits)
{
    uint32_t r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_NTT_H_
