#include "rns/prime_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "rns/modarith.h"

namespace cinnamon::rns {

std::vector<uint64_t>
generateNttPrimes(std::size_t n, int bits, std::size_t count,
                  const std::vector<uint64_t> &exclude)
{
    CINN_ASSERT((n & (n - 1)) == 0, "ring dimension must be a power of 2");
    CINN_ASSERT(bits >= 20 && bits <= 61, "prime width out of range");
    const uint64_t step = 2 * static_cast<uint64_t>(n);
    const uint64_t center = 1ULL << bits;

    std::vector<uint64_t> primes;
    // Alternate candidates above and below 2^bits so that products of
    // consecutive primes stay close to powers of the scaling factor.
    uint64_t up = center + 1;
    uint64_t down = center + 1 - step;
    bool take_up = true;
    while (primes.size() < count) {
        uint64_t cand;
        if (take_up) {
            cand = up;
            up += step;
        } else {
            cand = down;
            CINN_ASSERT(down >= step, "ran out of candidates below 2^bits");
            down -= step;
        }
        take_up = !take_up;
        if (!isPrime(cand))
            continue;
        if (std::find(exclude.begin(), exclude.end(), cand) != exclude.end())
            continue;
        if (std::find(primes.begin(), primes.end(), cand) != primes.end())
            continue;
        primes.push_back(cand);
    }
    return primes;
}

uint64_t
findPrimitiveRoot(std::size_t two_n, uint64_t q)
{
    CINN_ASSERT((q - 1) % two_n == 0, "q is not NTT friendly for this n");
    const uint64_t group_order = q - 1;
    const uint64_t exponent = group_order / two_n;
    // Try small candidates; g^((q-1)/2n) is a primitive 2n-th root iff
    // its (2n/2)-th power is not 1, i.e. it has exact order 2n.
    for (uint64_t g = 2; g < q; ++g) {
        uint64_t root = powMod(g, exponent, q);
        if (root == 1)
            continue;
        if (powMod(root, two_n / 2, q) != 1 && powMod(root, two_n, q) == 1)
            return root;
    }
    panic("no primitive root found (q is not prime?)");
}

} // namespace cinnamon::rns
