/**
 * @file
 * Limb-plane kernel dispatch: the innermost loops of the data plane.
 *
 * Every hot elementwise operation over a limb (add/sub/pointwise mul,
 * scalar multiply-accumulate, negation, modulus fold, Galois
 * automorphism) funnels through one table of raw-pointer kernels so a
 * vectorized backend (AVX-512 / SVE / accelerator offload) can be
 * swapped in without touching RnsPoly, the base converter, or the
 * emulator. The "scalar" backend is the portable baseline and the
 * bit-exactness reference: every backend must produce canonical
 * residues in [0, q) identical to it.
 *
 * Scalar-multiply kernels take the Shoup companion constant
 * (shoupPrecompute(s, q)) so per-element work is two multiplies and a
 * subtract instead of a 128-bit Barrett reduction; callers that reuse
 * a scalar across a limb amortize the one divide the precompute costs.
 */

#ifndef CINNAMON_RNS_KERNELS_H_
#define CINNAMON_RNS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "rns/modarith.h"

namespace cinnamon::rns {

/**
 * One backend's limb kernels. All pointers are non-null; dst may
 * alias a (and b for the binary ops) — kernels are elementwise.
 * Scalars `s` must be reduced (< q) before the call.
 */
struct KernelTable
{
    const char *name;

    /** dst[i] = (a[i] + b[i]) mod q; inputs canonical. */
    void (*add)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                std::size_t n, uint64_t q);
    /** dst[i] = (a[i] - b[i]) mod q; inputs canonical. */
    void (*sub)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                std::size_t n, uint64_t q);
    /** dst[i] = a[i] * b[i] mod q (Barrett). */
    void (*mul)(uint64_t *dst, const uint64_t *a, const uint64_t *b,
                std::size_t n, const Modulus &mod);
    /** dst[i] = (q - a[i]) mod q. */
    void (*negate)(uint64_t *dst, const uint64_t *a, std::size_t n,
                   uint64_t q);
    /** dst[i] = a[i] * s mod q via Shoup. */
    void (*mulScalarShoup)(uint64_t *dst, const uint64_t *a,
                           std::size_t n, uint64_t s, uint64_t s_shoup,
                           uint64_t q);
    /** acc[i] = (acc[i] + a[i] * s) mod q via Shoup. */
    void (*macScalarShoup)(uint64_t *acc, const uint64_t *a,
                           std::size_t n, uint64_t s, uint64_t s_shoup,
                           uint64_t q);
    /**
     * dst[i] = (dst[i] + Σ_j srcs[j][i] * fs[j]) mod q — the base-
     * conversion inner loop. Products accumulate in 128 bits (eight
     * sources per Barrett reduction), one dst read/write per element;
     * the result is the same canonical residue a per-source MAC chain
     * produces. srcs[j][i] and fs[j] may be any canonical residues of
     * 62-bit moduli; src_bound is an upper bound on every srcs[j][i]
     * (typically the largest source modulus), which lets a vectorized
     * backend prove its narrower multiplier domain applies. dst must
     * not alias any source.
     */
    void (*macMulti)(uint64_t *dst, const uint64_t *const *srcs,
                     const uint64_t *fs, std::size_t k, std::size_t n,
                     const Modulus &mod, uint64_t src_bound);
    /** dst[i] = a[i] mod q (fold residues of a wider prime). */
    void (*modReduce)(uint64_t *dst, const uint64_t *a, std::size_t n,
                      uint64_t q);
    /**
     * Negacyclic Galois map X -> X^galois: dst[(i*g) mod 2n folded
     * into [0, n) with sign] = ±src[i]. dst must NOT alias src.
     */
    void (*automorph)(uint64_t *dst, const uint64_t *src, std::size_t n,
                      uint64_t galois, uint64_t q);
};

/**
 * The active backend (process-wide). Defaults to the fastest
 * registered backend — "avx512" on CPUs with AVX-512 IFMA, "scalar"
 * otherwise. Safe because every backend is bit-identical.
 */
const KernelTable &kernels();

/** The portable baseline table; the bit-exactness reference. */
const KernelTable &scalarKernels();

/**
 * The AVX-512 IFMA table, or nullptr when the build target or CPU
 * does not support it. Kernels whose operands fall outside the 52-bit
 * multiplier domain (q >= 2^51) delegate to the scalar table
 * per call, so the table is safe for any modulus.
 */
const KernelTable *avx512KernelTable();

/**
 * Select the active backend by name. Returns false (and leaves the
 * current backend in place) when no backend of that name is
 * registered. "scalar" always exists; a vectorized variant registers
 * under its own name when compiled in.
 */
bool selectKernelBackend(const std::string &name);

/** Name of the active backend. */
const char *kernelBackendName();

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_KERNELS_H_
