#include "rns/modarith.h"

namespace cinnamon::rns {

uint64_t
powMod(uint64_t a, uint64_t e, uint64_t q)
{
    uint64_t result = 1;
    uint64_t base = a % q;
    while (e > 0) {
        if (e & 1)
            result = mulMod(result, base, q);
        base = mulMod(base, base, q);
        e >>= 1;
    }
    return result;
}

uint64_t
invMod(uint64_t a, uint64_t q)
{
    CINN_ASSERT(a % q != 0, "cannot invert 0 mod " << q);
    return powMod(a % q, q - 2, q);
}

bool
isPrime(uint64_t n)
{
    if (n < 2)
        return false;
    for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                       19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    // Miller-Rabin with a base set that is deterministic for 64 bits.
    uint64_t d = n - 1;
    int r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                       19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        uint64_t x = powMod(a, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool witness = true;
        for (int i = 0; i < r - 1; ++i) {
            x = mulMod(x, x, n);
            if (x == n - 1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

} // namespace cinnamon::rns
