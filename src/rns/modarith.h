/**
 * @file
 * Scalar modular arithmetic over word-sized prime moduli.
 *
 * FHE schemes in RNS representation (Section 2 of the Cinnamon paper)
 * decompose a huge ciphertext modulus into a product of word-sized
 * primes, so every polynomial coefficient operation reduces to scalar
 * arithmetic mod a ~30-60 bit prime. These helpers are the innermost
 * kernel of the whole library.
 *
 * Multiplication uses 128-bit intermediate products; the Modulus class
 * additionally carries a Barrett constant so the hot mulMod path avoids
 * a hardware divide.
 */

#ifndef CINNAMON_RNS_MODARITH_H_
#define CINNAMON_RNS_MODARITH_H_

#include <cstdint>

#include "common/logging.h"

namespace cinnamon::rns {

using uint128_t = unsigned __int128;

/** a + b mod q, assuming a, b < q. */
inline uint64_t
addMod(uint64_t a, uint64_t b, uint64_t q)
{
    uint64_t s = a + b;
    return s >= q ? s - q : s;
}

/** a - b mod q, assuming a, b < q. */
inline uint64_t
subMod(uint64_t a, uint64_t b, uint64_t q)
{
    return a >= b ? a - b : a + q - b;
}

/** a * b mod q via a 128-bit product. */
inline uint64_t
mulMod(uint64_t a, uint64_t b, uint64_t q)
{
    return static_cast<uint64_t>((uint128_t)a * b % q);
}

/**
 * Shoup precomputation for a fixed multiplicand s < q:
 * floor(s * 2^64 / q). One divide here buys divide-free exact
 * multiplication by s forever after (Shoup / Harvey, the standard
 * trick behind fast NTT twiddle multiplication).
 */
inline uint64_t
shoupPrecompute(uint64_t s, uint64_t q)
{
    return static_cast<uint64_t>(((uint128_t)s << 64) / q);
}

/**
 * Lazy Shoup product: returns a*s mod q in [0, 2q).
 *
 * Valid for ANY 64-bit a when s < q and q < 2^63: with
 * w = floor(s*2^64/q) the error term a*(s*2^64 - w*q)/2^64 < q, so
 * a*s - floor(a*w/2^64)*q lands in [0, 2q) and fits in 64 bits.
 */
inline uint64_t
mulModShoupLazy(uint64_t a, uint64_t s, uint64_t s_shoup, uint64_t q)
{
    const uint64_t hi =
        static_cast<uint64_t>(((uint128_t)a * s_shoup) >> 64);
    return a * s - hi * q;
}

/** Exact Shoup product: a*s mod q in [0, q). Same validity domain. */
inline uint64_t
mulModShoup(uint64_t a, uint64_t s, uint64_t s_shoup, uint64_t q)
{
    const uint64_t r = mulModShoupLazy(a, s, s_shoup, q);
    return r >= q ? r - q : r;
}

/** a^e mod q by square-and-multiply. */
uint64_t powMod(uint64_t a, uint64_t e, uint64_t q);

/** Multiplicative inverse of a mod prime q (Fermat). */
uint64_t invMod(uint64_t a, uint64_t q);

/** Deterministic Miller-Rabin primality test for 64-bit integers. */
bool isPrime(uint64_t n);

/**
 * A word-sized prime modulus with Barrett reduction constants.
 *
 * The Barrett constant is floor(2^128 / q) stored as a 128-bit value;
 * reduce() computes x mod q for x < q^2 without a divide instruction.
 */
class Modulus
{
  public:
    Modulus() : value_(0), barrett_(0) {}

    explicit Modulus(uint64_t q) : value_(q)
    {
        CINN_ASSERT(q > 1, "modulus must exceed 1");
        CINN_ASSERT(q < (1ULL << 62), "modulus must fit in 62 bits");
        // floor(2^128 / q): divide (2^128 - 1) by q and correct.
        uint128_t numer = ~(uint128_t)0;
        barrett_ = numer / q;
        if ((numer - barrett_ * q) + 1 == q)
            ++barrett_;
    }

    uint64_t value() const { return value_; }

    /** Reduce a 128-bit value x < q^2 to x mod q. */
    uint64_t
    reduce(uint128_t x) const
    {
        // Approximate quotient: floor(x * floor(2^128/q) / 2^128).
        // We only need the top 128 bits of the 256-bit product; since
        // x < 2^124 in practice, computing with the high 64 bits of x
        // suffices with at most two correction subtractions.
        uint64_t xhi = static_cast<uint64_t>(x >> 64);
        uint64_t xlo = static_cast<uint64_t>(x);
        uint64_t bhi = static_cast<uint64_t>(barrett_ >> 64);
        uint64_t blo = static_cast<uint64_t>(barrett_);
        // q_approx = high 128 bits of x * barrett_.
        uint128_t cross1 = (uint128_t)xhi * blo;
        uint128_t cross2 = (uint128_t)xlo * bhi;
        uint128_t lolo_hi = ((uint128_t)xlo * blo) >> 64;
        uint128_t mid = cross1 + cross2 + lolo_hi;
        uint128_t quot = (uint128_t)xhi * bhi + (mid >> 64);
        uint64_t r = static_cast<uint64_t>(x - quot * value_);
        while (r >= value_)
            r -= value_;
        return r;
    }

    uint64_t add(uint64_t a, uint64_t b) const { return addMod(a, b, value_); }
    uint64_t sub(uint64_t a, uint64_t b) const { return subMod(a, b, value_); }

    uint64_t
    mul(uint64_t a, uint64_t b) const
    {
        return reduce((uint128_t)a * b);
    }

    uint64_t pow(uint64_t a, uint64_t e) const { return powMod(a, e, value_); }
    uint64_t inv(uint64_t a) const { return invMod(a, value_); }

    /** Map a signed value into [0, q). */
    uint64_t
    fromSigned(int64_t v) const
    {
        int64_t r = v % static_cast<int64_t>(value_);
        if (r < 0)
            r += static_cast<int64_t>(value_);
        return static_cast<uint64_t>(r);
    }

    /** Map a residue to its centered representative in (-q/2, q/2]. */
    int64_t
    toSigned(uint64_t v) const
    {
        return v > value_ / 2 ? static_cast<int64_t>(v) -
                                    static_cast<int64_t>(value_)
                              : static_cast<int64_t>(v);
    }

    bool operator==(const Modulus &o) const { return value_ == o.value_; }

  private:
    uint64_t value_;
    uint128_t barrett_;
};

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_MODARITH_H_
