#include "rns/base_conv.h"

#include <algorithm>

#include "rns/kernels.h"

namespace cinnamon::rns {

BaseConverter::BaseConverter(const RnsContext &ctx, Basis src, Basis dst)
    : ctx_(&ctx), src_(std::move(src)), dst_(std::move(dst))
{
    CINN_ASSERT(!src_.empty(), "base conversion needs a source basis");
    for (uint32_t s : src_) {
        CINN_ASSERT(std::find(dst_.begin(), dst_.end(), s) == dst_.end(),
                    "source and target bases must be disjoint");
    }

    const std::size_t ell = src_.size();
    shat_inv_.resize(ell);
    shat_inv_shoup_.resize(ell);
    shat_mod_dst_.assign(ell, std::vector<uint64_t>(dst_.size()));
    shat_mod_dst_shoup_.assign(ell,
                               std::vector<uint64_t>(dst_.size()));

    for (std::size_t j = 0; j < ell; ++j) {
        const Modulus &sj = ctx.modulus(src_[j]);
        // (S / s_j) mod s_j = product of the other source primes.
        uint64_t prod = 1;
        for (std::size_t k = 0; k < ell; ++k) {
            if (k == j)
                continue;
            prod = sj.mul(prod, ctx.modulus(src_[k]).value() % sj.value());
        }
        shat_inv_[j] = sj.inv(prod);
        shat_inv_shoup_[j] = shoupPrecompute(shat_inv_[j], sj.value());

        for (std::size_t t = 0; t < dst_.size(); ++t) {
            const Modulus &tk = ctx.modulus(dst_[t]);
            uint64_t p = 1;
            for (std::size_t k = 0; k < ell; ++k) {
                if (k == j)
                    continue;
                p = tk.mul(p, ctx.modulus(src_[k]).value() % tk.value());
            }
            shat_mod_dst_[j][t] = p;
            shat_mod_dst_shoup_[j][t] = shoupPrecompute(p, tk.value());
        }
    }
}

RnsPoly
BaseConverter::convert(const RnsPoly &x) const
{
    std::vector<std::size_t> all(dst_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return convertPartial(x, all);
}

RnsPoly
BaseConverter::convertPartial(const RnsPoly &x,
                              const std::vector<std::size_t> &dst_limbs) const
{
    CINN_ASSERT(x.basis() == src_, "converter source basis mismatch");
    CINN_ASSERT(x.domain() == Domain::Coeff,
                "base conversion requires the coefficient domain");
    const std::size_t n = ctx_->n();
    const std::size_t ell = src_.size();
    const KernelTable &kt = kernels();

    // y_j = x_j * (S/s_j)^{-1} mod s_j, shared by all output limbs;
    // one flat limb-major staging buffer for all ell planes.
    std::vector<uint64_t> y(ell * n);
    for (std::size_t j = 0; j < ell; ++j) {
        const Modulus &sj = ctx_->modulus(src_[j]);
        kt.mulScalarShoup(y.data() + j * n, x.limbData(j), n,
                          shat_inv_[j], shat_inv_shoup_[j], sj.value());
    }

    Basis out_basis;
    out_basis.reserve(dst_limbs.size());
    for (std::size_t t : dst_limbs) {
        CINN_ASSERT(t < dst_.size(), "target limb index out of range");
        out_basis.push_back(dst_[t]);
    }
    RnsPoly out(*ctx_, out_basis, Domain::Coeff);
    CINN_ASSERT(ell <= 64, "base-conversion fan-in too large");
    const uint64_t *sp[64];
    uint64_t fs[64];
    uint64_t src_bound = 0;
    for (std::size_t j = 0; j < ell; ++j) {
        sp[j] = y.data() + j * n;
        const uint64_t sv = ctx_->modulus(src_[j]).value();
        src_bound = sv > src_bound ? sv : src_bound;
    }
    for (std::size_t oi = 0; oi < dst_limbs.size(); ++oi) {
        const std::size_t t = dst_limbs[oi];
        for (std::size_t j = 0; j < ell; ++j)
            fs[j] = shat_mod_dst_[j][t];
        kt.macMulti(out.limbData(oi), sp, fs, ell, n,
                    ctx_->modulus(dst_[t]), src_bound);
    }
    return out;
}

const BaseConverter &
RnsTool::converter(const Basis &src, const Basis &dst)
{
    auto key = std::make_pair(src, dst);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_.emplace(key, BaseConverter(*ctx_, src, dst)).first;
    }
    return it->second;
}

RnsPoly
RnsTool::modUp(const RnsPoly &x, const Basis &target)
{
    CINN_ASSERT(x.domain() == Domain::Coeff,
                "modUp requires the coefficient domain");
    CINN_ASSERT(isSubsetOf(x.basis(), target),
                "modUp target must contain the digit basis");
    const Basis missing = differenceBasis(target, x.basis());

    RnsPoly out(*ctx_, target, Domain::Coeff);
    RnsPoly conv;
    if (!missing.empty())
        conv = converter(x.basis(), missing).convert(x);
    for (std::size_t i = 0; i < target.size(); ++i) {
        int pos = x.findPrime(target[i]);
        if (pos >= 0) {
            out.setLimb(i, x.limb(pos));
        } else {
            int cpos = conv.findPrime(target[i]);
            CINN_ASSERT(cpos >= 0, "modUp: missing converted limb");
            out.setLimb(i, conv.limb(cpos));
        }
    }
    return out;
}

RnsPoly
RnsTool::modDown(const RnsPoly &x, const Basis &keep, const Basis &ext)
{
    CINN_ASSERT(x.domain() == Domain::Coeff,
                "modDown requires the coefficient domain");
    CINN_ASSERT(x.basis() == unionBasis(keep, ext),
                "modDown: input basis must be keep ∪ ext");

    const RnsPoly x_ext = x.restrictTo(ext);
    const RnsPoly conv = converter(ext, keep).convert(x_ext);
    RnsPoly out = x.restrictTo(keep);
    out.subInPlace(conv);
    out.mulScalarPerLimb(extProductInverse(keep, ext));
    return out;
}

RnsPoly
RnsTool::rescale(const RnsPoly &x)
{
    CINN_ASSERT(x.domain() == Domain::Coeff,
                "rescale requires the coefficient domain");
    CINN_ASSERT(x.numLimbs() >= 2, "cannot rescale a one-limb polynomial");
    Basis keep = x.basis();
    const Basis last = {keep.back()};
    keep.pop_back();
    return modDown(x, keep, last);
}

std::vector<uint64_t>
RnsTool::extProductInverse(const Basis &keep, const Basis &ext)
{
    std::vector<uint64_t> inv(keep.size());
    for (std::size_t i = 0; i < keep.size(); ++i) {
        const Modulus &qi = ctx_->modulus(keep[i]);
        uint64_t p = 1;
        for (uint32_t e : ext)
            p = qi.mul(p, ctx_->modulus(e).value() % qi.value());
        inv[i] = qi.inv(p);
    }
    return inv;
}

} // namespace cinnamon::rns
