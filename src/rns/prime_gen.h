/**
 * @file
 * Generation of NTT-friendly primes.
 *
 * A negacyclic NTT of length n requires a primitive 2n-th root of
 * unity mod q, i.e. q ≡ 1 (mod 2n). The prime generator walks
 * candidates of that shape near a target bit width. CKKS additionally
 * wants the scaling primes q_1..q_L close to the scaling factor 2^Δ so
 * that rescaling keeps the plaintext scale stable; we alternate
 * candidates above/below 2^bits to balance the products.
 */

#ifndef CINNAMON_RNS_PRIME_GEN_H_
#define CINNAMON_RNS_PRIME_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cinnamon::rns {

/**
 * Generate `count` distinct primes q ≡ 1 (mod 2n) of roughly `bits`
 * bits, excluding any prime already in `exclude`.
 *
 * @param n ring dimension (power of two).
 * @param bits target bit width (result primes are within ±1 bit).
 * @param count number of primes to produce.
 * @param exclude primes that must not be reused.
 */
std::vector<uint64_t> generateNttPrimes(std::size_t n, int bits,
                                        std::size_t count,
                                        const std::vector<uint64_t> &exclude =
                                            {});

/** Find a generator-derived primitive 2n-th root of unity mod q. */
uint64_t findPrimitiveRoot(std::size_t two_n, uint64_t q);

} // namespace cinnamon::rns

#endif // CINNAMON_RNS_PRIME_GEN_H_
