#include "rns/poly.h"

#include <algorithm>

namespace cinnamon::rns {

RnsPoly::RnsPoly(const RnsContext &ctx, Basis basis, Domain domain)
    : ctx_(&ctx), basis_(std::move(basis)), domain_(domain)
{
    limbs_.resize(basis_.size());
    for (auto &l : limbs_)
        l.assign(ctx.n(), 0);
}

int
RnsPoly::findPrime(uint32_t idx) const
{
    auto it = std::find(basis_.begin(), basis_.end(), idx);
    if (it == basis_.end())
        return -1;
    return static_cast<int>(it - basis_.begin());
}

void
RnsPoly::toEval()
{
    if (domain_ == Domain::Eval)
        return;
    for (std::size_t i = 0; i < limbs_.size(); ++i)
        ctx_->ntt(basis_[i]).forward(limbs_[i]);
    domain_ = Domain::Eval;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::Coeff)
        return;
    for (std::size_t i = 0; i < limbs_.size(); ++i)
        ctx_->ntt(basis_[i]).inverse(limbs_[i]);
    domain_ = Domain::Coeff;
}

void
RnsPoly::addInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_ && domain_ == other.domain_,
                "add: mismatched basis or domain");
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        const auto &ol = other.limbs_[i];
        auto &l = limbs_[i];
        for (std::size_t j = 0; j < l.size(); ++j)
            l[j] = addMod(l[j], ol[j], q);
    }
}

void
RnsPoly::subInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_ && domain_ == other.domain_,
                "sub: mismatched basis or domain");
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        const auto &ol = other.limbs_[i];
        auto &l = limbs_[i];
        for (std::size_t j = 0; j < l.size(); ++j)
            l[j] = subMod(l[j], ol[j], q);
    }
}

void
RnsPoly::mulInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_, "mul: mismatched basis");
    CINN_ASSERT(domain_ == Domain::Eval && other.domain_ == Domain::Eval,
                "pointwise mul requires the evaluation domain");
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &mod = limbModulus(i);
        const auto &ol = other.limbs_[i];
        auto &l = limbs_[i];
        for (std::size_t j = 0; j < l.size(); ++j)
            l[j] = mod.mul(l[j], ol[j]);
    }
}

void
RnsPoly::negateInPlace()
{
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        for (auto &c : limbs_[i])
            c = c == 0 ? 0 : q - c;
    }
}

void
RnsPoly::mulScalarPerLimb(const std::vector<uint64_t> &scalars)
{
    CINN_ASSERT(scalars.size() == limbs_.size(),
                "per-limb scalar count mismatch");
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &mod = limbModulus(i);
        const uint64_t s = scalars[i];
        for (auto &c : limbs_[i])
            c = mod.mul(c, s);
    }
}

void
RnsPoly::mulScalarInt(uint64_t scalar)
{
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const Modulus &mod = limbModulus(i);
        const uint64_t s = scalar % mod.value();
        for (auto &c : limbs_[i])
            c = mod.mul(c, s);
    }
}

RnsPoly
RnsPoly::add(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.addInPlace(other);
    return out;
}

RnsPoly
RnsPoly::sub(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.subInPlace(other);
    return out;
}

RnsPoly
RnsPoly::mul(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.mulInPlace(other);
    return out;
}

RnsPoly
RnsPoly::automorphism(uint64_t galois) const
{
    CINN_ASSERT(domain_ == Domain::Coeff,
                "automorphism implemented in the coefficient domain");
    const std::size_t n = ctx_->n();
    CINN_ASSERT((galois & 1) == 1 && galois < 2 * n,
                "galois element must be odd and < 2n");
    RnsPoly out(*ctx_, basis_, Domain::Coeff);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        const auto &src = limbs_[i];
        auto &dst = out.limbs_[i];
        for (std::size_t j = 0; j < n; ++j) {
            // X^j maps to X^(j*g mod 2n); X^n = -1 folds the sign.
            const uint64_t idx = (j * galois) % (2 * n);
            if (idx < n) {
                dst[idx] = src[j];
            } else {
                dst[idx - n] = src[j] == 0 ? 0 : q - src[j];
            }
        }
    }
    return out;
}

RnsPoly
RnsPoly::restrictTo(const Basis &sub) const
{
    RnsPoly out(*ctx_, sub, domain_);
    for (std::size_t i = 0; i < sub.size(); ++i) {
        int pos = findPrime(sub[i]);
        CINN_ASSERT(pos >= 0, "restrictTo: prime not present in basis");
        out.limbs_[i] = limbs_[pos];
    }
    return out;
}

bool
RnsPoly::isZero() const
{
    for (const auto &l : limbs_) {
        for (uint64_t c : l) {
            if (c != 0)
                return false;
        }
    }
    return true;
}

bool
RnsPoly::operator==(const RnsPoly &other) const
{
    return ctx_ == other.ctx_ && basis_ == other.basis_ &&
           domain_ == other.domain_ && limbs_ == other.limbs_;
}

} // namespace cinnamon::rns
