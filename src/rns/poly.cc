#include "rns/poly.h"

#include <algorithm>
#include <cstring>

#include "rns/kernels.h"

namespace cinnamon::rns {

RnsPoly::RnsPoly(const RnsContext &ctx, Basis basis, Domain domain)
    : ctx_(&ctx), basis_(std::move(basis)), domain_(domain), n_(ctx.n())
{
    data_.assign(basis_.size() * n_, 0);
}

void
RnsPoly::setLimb(std::size_t i, ConstLimbSpan src)
{
    CINN_ASSERT(src.size() == n_, "setLimb: length mismatch");
    std::memcpy(limbData(i), src.data(), n_ * sizeof(uint64_t));
}

int
RnsPoly::findPrime(uint32_t idx) const
{
    auto it = std::find(basis_.begin(), basis_.end(), idx);
    if (it == basis_.end())
        return -1;
    return static_cast<int>(it - basis_.begin());
}

void
RnsPoly::toEval()
{
    if (domain_ == Domain::Eval)
        return;
    for (std::size_t i = 0; i < basis_.size(); ++i)
        ctx_->ntt(basis_[i]).forward(limbData(i));
    domain_ = Domain::Eval;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::Coeff)
        return;
    for (std::size_t i = 0; i < basis_.size(); ++i)
        ctx_->ntt(basis_[i]).inverse(limbData(i));
    domain_ = Domain::Coeff;
}

void
RnsPoly::addInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_ && domain_ == other.domain_,
                "add: mismatched basis or domain");
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i)
        k.add(limbData(i), limbData(i), other.limbData(i), n_,
              limbModulus(i).value());
}

void
RnsPoly::subInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_ && domain_ == other.domain_,
                "sub: mismatched basis or domain");
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i)
        k.sub(limbData(i), limbData(i), other.limbData(i), n_,
              limbModulus(i).value());
}

void
RnsPoly::mulInPlace(const RnsPoly &other)
{
    CINN_ASSERT(basis_ == other.basis_, "mul: mismatched basis");
    CINN_ASSERT(domain_ == Domain::Eval && other.domain_ == Domain::Eval,
                "pointwise mul requires the evaluation domain");
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i)
        k.mul(limbData(i), limbData(i), other.limbData(i), n_,
              limbModulus(i));
}

void
RnsPoly::negateInPlace()
{
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i)
        k.negate(limbData(i), limbData(i), n_, limbModulus(i).value());
}

void
RnsPoly::mulScalarPerLimb(const std::vector<uint64_t> &scalars)
{
    CINN_ASSERT(scalars.size() == basis_.size(),
                "per-limb scalar count mismatch");
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        const uint64_t s = scalars[i] % q;
        k.mulScalarShoup(limbData(i), limbData(i), n_, s,
                         shoupPrecompute(s, q), q);
    }
}

void
RnsPoly::mulScalarInt(uint64_t scalar)
{
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i) {
        const uint64_t q = limbModulus(i).value();
        const uint64_t s = scalar % q;
        k.mulScalarShoup(limbData(i), limbData(i), n_, s,
                         shoupPrecompute(s, q), q);
    }
}

RnsPoly
RnsPoly::add(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.addInPlace(other);
    return out;
}

RnsPoly
RnsPoly::sub(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.subInPlace(other);
    return out;
}

RnsPoly
RnsPoly::mul(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out.mulInPlace(other);
    return out;
}

RnsPoly
RnsPoly::automorphism(uint64_t galois) const
{
    CINN_ASSERT(domain_ == Domain::Coeff,
                "automorphism implemented in the coefficient domain");
    CINN_ASSERT((galois & 1) == 1 && galois < 2 * n_,
                "galois element must be odd and < 2n");
    RnsPoly out(*ctx_, basis_, Domain::Coeff);
    const KernelTable &k = kernels();
    for (std::size_t i = 0; i < basis_.size(); ++i)
        k.automorph(out.limbData(i), limbData(i), n_, galois,
                    limbModulus(i).value());
    return out;
}

RnsPoly
RnsPoly::restrictTo(const Basis &sub) const
{
    RnsPoly out(*ctx_, sub, domain_);
    for (std::size_t i = 0; i < sub.size(); ++i) {
        int pos = findPrime(sub[i]);
        CINN_ASSERT(pos >= 0, "restrictTo: prime not present in basis");
        out.setLimb(i, limb(pos));
    }
    return out;
}

bool
RnsPoly::isZero() const
{
    for (uint64_t c : data_) {
        if (c != 0)
            return false;
    }
    return true;
}

bool
RnsPoly::operator==(const RnsPoly &other) const
{
    return ctx_ == other.ctx_ && basis_ == other.basis_ &&
           domain_ == other.domain_ && data_ == other.data_;
}

} // namespace cinnamon::rns
