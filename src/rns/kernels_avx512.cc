/**
 * @file
 * AVX-512 IFMA limb kernels ("avx512" backend).
 *
 * Same 52-bit Shoup domain as ntt_avx512.cc: vpmadd52{lo,hi}uq
 * multiply the low 52 bits of each lane, so the Shoup-product kernels
 * apply when q < 2^51 (lazy values in [0, 2q) stay below 2^52) and
 * the 52-bit companion of a Shoup constant is the 64-bit one shifted
 * right by 12. Pointwise Barrett splits a*b into hi52/lo52 halves and
 * reduces each by a per-call Shoup constant (2^52 mod q and 1). Calls
 * whose operands fall outside the 52-bit domain delegate to the
 * scalar table, so the backend is valid for any modulus.
 *
 * Every kernel returns the canonical residue in [0, q) — bit-identical
 * to the scalar backend; the golden-hash tests pin this.
 */

#include "rns/kernels.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

// The unmasked _mm512_min_epu64 passes an undefined passthrough vector
// to its masked form; GCC 12 flags that spuriously.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace cinnamon::rns {
namespace {

constexpr uint64_t kQ51 = 1ULL << 51;
constexpr uint64_t kBound52 = 1ULL << 52;

/** floor(s * 2^52 / q) for a freshly derived constant s < q. */
inline uint64_t
shoup52(uint64_t s, uint64_t q)
{
    return static_cast<uint64_t>((static_cast<uint128_t>(s) << 52) / q);
}

#define CINN_K_TARGET __attribute__((target("avx512f,avx512ifma")))

CINN_K_TARGET inline __m512i
condSub(__m512i x, __m512i m)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, m));
}

/**
 * Lazy Shoup product x * s mod q in [0, 2q), lane-wise.
 * Requires x < 2^52 and s < q < 2^51; s52 = floor(s * 2^52 / q).
 */
CINN_K_TARGET inline __m512i
mulLazy52(__m512i x, __m512i s, __m512i s52, __m512i q, __m512i mask52)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i t = _mm512_madd52hi_epu64(zero, x, s52);
    const __m512i lo = _mm512_madd52lo_epu64(zero, x, s);
    const __m512i tq = _mm512_madd52lo_epu64(zero, t, q);
    return _mm512_and_si512(_mm512_sub_epi64(lo, tq), mask52);
}

CINN_K_TARGET void
vAdd(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x =
            _mm512_add_epi64(_mm512_loadu_si512((const void *)(a + i)),
                             _mm512_loadu_si512((const void *)(b + i)));
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = addMod(a[i], b[i], qv);
}

CINN_K_TARGET void
vSub(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_add_epi64(
            _mm512_sub_epi64(_mm512_loadu_si512((const void *)(a + i)),
                             _mm512_loadu_si512((const void *)(b + i))),
            q);
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = subMod(a[i], b[i], qv);
}

CINN_K_TARGET void
vNegate(uint64_t *dst, const uint64_t *a, std::size_t n, uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // a == 0 maps q -> 0 through the conditional subtract.
        const __m512i x = _mm512_sub_epi64(
            q, _mm512_loadu_si512((const void *)(a + i)));
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = a[i] == 0 ? 0 : qv - a[i];
}

CINN_K_TARGET void
vMul(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     const Modulus &mod)
{
    const uint64_t qv = mod.value();
    if (qv >= kQ51 || n < 8) {
        scalarKernels().mul(dst, a, b, n, mod);
        return;
    }
    // a*b = hi52 * 2^52 + lo52; reduce the high half by the constant
    // c = 2^52 mod q and the low half by 1 (plain Barrett-by-2^52),
    // both as lazy Shoup products.
    const uint64_t c = kBound52 % qv;
    const __m512i vc = _mm512_set1_epi64((long long)c);
    const __m512i vc52 = _mm512_set1_epi64((long long)shoup52(c, qv));
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i one52 =
        _mm512_set1_epi64((long long)(((uint128_t)1 << 52) / qv));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    const __m512i zero = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i y = _mm512_loadu_si512((const void *)(b + i));
        const __m512i phi = _mm512_madd52hi_epu64(zero, x, y);
        const __m512i plo = _mm512_madd52lo_epu64(zero, x, y);
        const __m512i r1 = mulLazy52(phi, vc, vc52, q, mask52);
        const __m512i r2 = mulLazy52(plo, one, one52, q, mask52);
        __m512i r = _mm512_add_epi64(r1, r2);
        r = condSub(r, two_q);
        r = condSub(r, q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = mod.mul(a[i], b[i]);
}

CINN_K_TARGET void
vMulScalarShoup(uint64_t *dst, const uint64_t *a, std::size_t n,
                uint64_t s, uint64_t s_shoup, uint64_t qv)
{
    if (qv >= kQ51 || n < 8) {
        scalarKernels().mulScalarShoup(dst, a, n, s, s_shoup, qv);
        return;
    }
    const __m512i vs = _mm512_set1_epi64((long long)s);
    const __m512i vs52 = _mm512_set1_epi64((long long)(s_shoup >> 12));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i r =
            condSub(mulLazy52(x, vs, vs52, q, mask52), q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = mulModShoup(a[i], s, s_shoup, qv);
}

CINN_K_TARGET void
vMacScalarShoup(uint64_t *acc, const uint64_t *a, std::size_t n,
                uint64_t s, uint64_t s_shoup, uint64_t qv)
{
    if (qv >= kQ51 || n < 8) {
        scalarKernels().macScalarShoup(acc, a, n, s, s_shoup, qv);
        return;
    }
    const __m512i vs = _mm512_set1_epi64((long long)s);
    const __m512i vs52 = _mm512_set1_epi64((long long)(s_shoup >> 12));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i m =
            condSub(mulLazy52(x, vs, vs52, q, mask52), q);
        const __m512i r = condSub(
            _mm512_add_epi64(
                _mm512_loadu_si512((const void *)(acc + i)), m),
            q);
        _mm512_storeu_si512((void *)(acc + i), r);
    }
    for (; i < n; ++i)
        acc[i] = addMod(acc[i], mulModShoup(a[i], s, s_shoup, qv), qv);
}

CINN_K_TARGET void
vMacMulti(uint64_t *dst, const uint64_t *const *srcs, const uint64_t *fs,
          std::size_t k, std::size_t n, const Modulus &mod,
          uint64_t src_bound)
{
    const uint64_t qv = mod.value();
    if (qv >= kQ51 || src_bound >= kBound52 || n < 8 || k > 64) {
        scalarKernels().macMulti(dst, srcs, fs, k, n, mod, src_bound);
        return;
    }
    uint64_t f52[64];
    for (std::size_t j = 0; j < k; ++j)
        f52[j] = shoup52(fs[j], qv);
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i acc = _mm512_loadu_si512((const void *)(dst + i));
        for (std::size_t j = 0; j < k; ++j) {
            const __m512i x =
                _mm512_loadu_si512((const void *)(srcs[j] + i));
            const __m512i vf = _mm512_set1_epi64((long long)fs[j]);
            const __m512i vf52 = _mm512_set1_epi64((long long)f52[j]);
            const __m512i m =
                condSub(mulLazy52(x, vf, vf52, q, mask52), q);
            acc = condSub(_mm512_add_epi64(acc, m), q);
        }
        _mm512_storeu_si512((void *)(dst + i), acc);
    }
    for (; i < n; ++i) {
        uint64_t r = dst[i];
        for (std::size_t j = 0; j < k; ++j)
            r = addMod(r, mod.mul(srcs[j][i], fs[j]), qv);
        dst[i] = r;
    }
}

#undef CINN_K_TARGET

// Element-skipping kernels gain nothing from IFMA; keep the scalar
// implementations (through the public scalar table).
void
fModReduce(uint64_t *dst, const uint64_t *a, std::size_t n, uint64_t q)
{
    scalarKernels().modReduce(dst, a, n, q);
}

void
fAutomorph(uint64_t *dst, const uint64_t *src, std::size_t n,
           uint64_t galois, uint64_t q)
{
    scalarKernels().automorph(dst, src, n, galois, q);
}

const KernelTable kAvx512Table = {
    "avx512",        vAdd,           vSub,
    vMul,            vNegate,        vMulScalarShoup,
    vMacScalarShoup, vMacMulti,      fModReduce,
    fAutomorph,
};

} // namespace

const KernelTable *
avx512KernelTable()
{
    static const bool ok = [] {
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512ifma");
    }();
    return ok ? &kAvx512Table : nullptr;
}

} // namespace cinnamon::rns

#else // !(__x86_64__ && __GNUC__)

namespace cinnamon::rns {

const KernelTable *
avx512KernelTable()
{
    return nullptr;
}

} // namespace cinnamon::rns

#endif
