/**
 * @file
 * AVX-512 IFMA limb kernels ("avx512" backend).
 *
 * Same 52-bit Shoup domain as ntt_avx512.cc: vpmadd52{lo,hi}uq
 * multiply the low 52 bits of each lane, so the Shoup-product kernels
 * apply when q < 2^51 (lazy values in [0, 2q) stay below 2^52) and
 * the 52-bit companion of a Shoup constant is the 64-bit one shifted
 * right by 12. Pointwise Barrett splits a*b into hi52/lo52 halves and
 * reduces each by a per-call Shoup constant (2^52 mod q and 1); the
 * base-conversion multi-MAC defers all reduction to one 104-bit
 * column fold per vector; the automorphism runs as an inverse-walk
 * gather. Calls whose operands fall outside the 52-bit domain (or,
 * for the gather, off power-of-two n) delegate to the scalar table,
 * so the backend is valid for any modulus.
 *
 * Every kernel returns the canonical residue in [0, q) — bit-identical
 * to the scalar backend; the golden-hash tests pin this.
 */

#include "rns/kernels.h"

#if defined(__x86_64__) && defined(__GNUC__)

#include <immintrin.h>

// The unmasked _mm512_min_epu64 passes an undefined passthrough vector
// to its masked form; GCC 12 flags that spuriously.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace cinnamon::rns {
namespace {

constexpr uint64_t kQ51 = 1ULL << 51;
constexpr uint64_t kBound52 = 1ULL << 52;

/** floor(s * 2^52 / q) for a freshly derived constant s < q. */
inline uint64_t
shoup52(uint64_t s, uint64_t q)
{
    return static_cast<uint64_t>((static_cast<uint128_t>(s) << 52) / q);
}

#define CINN_K_TARGET __attribute__((target("avx512f,avx512ifma")))

CINN_K_TARGET inline __m512i
condSub(__m512i x, __m512i m)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, m));
}

/**
 * Lazy Shoup product x * s mod q in [0, 2q), lane-wise.
 * Requires x < 2^52 and s < q < 2^51; s52 = floor(s * 2^52 / q).
 */
CINN_K_TARGET inline __m512i
mulLazy52(__m512i x, __m512i s, __m512i s52, __m512i q, __m512i mask52)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i t = _mm512_madd52hi_epu64(zero, x, s52);
    const __m512i lo = _mm512_madd52lo_epu64(zero, x, s);
    const __m512i tq = _mm512_madd52lo_epu64(zero, t, q);
    return _mm512_and_si512(_mm512_sub_epi64(lo, tq), mask52);
}

CINN_K_TARGET void
vAdd(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x =
            _mm512_add_epi64(_mm512_loadu_si512((const void *)(a + i)),
                             _mm512_loadu_si512((const void *)(b + i)));
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = addMod(a[i], b[i], qv);
}

CINN_K_TARGET void
vSub(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_add_epi64(
            _mm512_sub_epi64(_mm512_loadu_si512((const void *)(a + i)),
                             _mm512_loadu_si512((const void *)(b + i))),
            q);
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = subMod(a[i], b[i], qv);
}

CINN_K_TARGET void
vNegate(uint64_t *dst, const uint64_t *a, std::size_t n, uint64_t qv)
{
    const __m512i q = _mm512_set1_epi64((long long)qv);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // a == 0 maps q -> 0 through the conditional subtract.
        const __m512i x = _mm512_sub_epi64(
            q, _mm512_loadu_si512((const void *)(a + i)));
        _mm512_storeu_si512((void *)(dst + i), condSub(x, q));
    }
    for (; i < n; ++i)
        dst[i] = a[i] == 0 ? 0 : qv - a[i];
}

CINN_K_TARGET void
vMul(uint64_t *dst, const uint64_t *a, const uint64_t *b, std::size_t n,
     const Modulus &mod)
{
    const uint64_t qv = mod.value();
    if (qv >= kQ51 || n < 8) {
        scalarKernels().mul(dst, a, b, n, mod);
        return;
    }
    // a*b = hi52 * 2^52 + lo52; reduce the high half by the constant
    // c = 2^52 mod q and the low half by 1 (plain Barrett-by-2^52),
    // both as lazy Shoup products.
    const uint64_t c = kBound52 % qv;
    const __m512i vc = _mm512_set1_epi64((long long)c);
    const __m512i vc52 = _mm512_set1_epi64((long long)shoup52(c, qv));
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i one52 =
        _mm512_set1_epi64((long long)(((uint128_t)1 << 52) / qv));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    const __m512i zero = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i y = _mm512_loadu_si512((const void *)(b + i));
        const __m512i phi = _mm512_madd52hi_epu64(zero, x, y);
        const __m512i plo = _mm512_madd52lo_epu64(zero, x, y);
        const __m512i r1 = mulLazy52(phi, vc, vc52, q, mask52);
        const __m512i r2 = mulLazy52(plo, one, one52, q, mask52);
        __m512i r = _mm512_add_epi64(r1, r2);
        r = condSub(r, two_q);
        r = condSub(r, q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = mod.mul(a[i], b[i]);
}

CINN_K_TARGET void
vMulScalarShoup(uint64_t *dst, const uint64_t *a, std::size_t n,
                uint64_t s, uint64_t s_shoup, uint64_t qv)
{
    if (qv >= kQ51 || n < 8) {
        scalarKernels().mulScalarShoup(dst, a, n, s, s_shoup, qv);
        return;
    }
    const __m512i vs = _mm512_set1_epi64((long long)s);
    const __m512i vs52 = _mm512_set1_epi64((long long)(s_shoup >> 12));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i r =
            condSub(mulLazy52(x, vs, vs52, q, mask52), q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = mulModShoup(a[i], s, s_shoup, qv);
}

CINN_K_TARGET void
vMacScalarShoup(uint64_t *acc, const uint64_t *a, std::size_t n,
                uint64_t s, uint64_t s_shoup, uint64_t qv)
{
    if (qv >= kQ51 || n < 8) {
        scalarKernels().macScalarShoup(acc, a, n, s, s_shoup, qv);
        return;
    }
    const __m512i vs = _mm512_set1_epi64((long long)s);
    const __m512i vs52 = _mm512_set1_epi64((long long)(s_shoup >> 12));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i m =
            condSub(mulLazy52(x, vs, vs52, q, mask52), q);
        const __m512i r = condSub(
            _mm512_add_epi64(
                _mm512_loadu_si512((const void *)(acc + i)), m),
            q);
        _mm512_storeu_si512((void *)(acc + i), r);
    }
    for (; i < n; ++i)
        acc[i] = addMod(acc[i], mulModShoup(a[i], s, s_shoup, qv), qv);
}

/**
 * Base-conversion multi-MAC with deferred accumulation: IFMA's lo/hi
 * halves are summed raw across all k sources (2 madds per source, no
 * per-source reduction) and the 104-bit column sum is reduced once
 * per vector. k <= 64 and src < 2^52 keep both accumulators below
 * 2^59, so the lanes never overflow. The result is the canonical
 * residue of the exact integer sum — the same unique value the scalar
 * kernel's 128-bit chunked accumulation produces, so the backends
 * stay bit-identical.
 */
CINN_K_TARGET void
vMacMulti(uint64_t *dst, const uint64_t *const *srcs, const uint64_t *fs,
          std::size_t k, std::size_t n, const Modulus &mod,
          uint64_t src_bound)
{
    const uint64_t qv = mod.value();
    if (qv >= kQ51 || src_bound >= kBound52 || n < 8 || k > 64) {
        scalarKernels().macMulti(dst, srcs, fs, k, n, mod, src_bound);
        return;
    }
    // total = acc_lo + acc_hi * 2^52 is folded with the constants
    // c52 = 2^52 mod q and c104 = 2^104 mod q, three lazy Shoup
    // products whose sum < 6q collapses through the condSub chain.
    const uint64_t c52v = kBound52 % qv;
    const uint64_t c104v = static_cast<uint64_t>(
        static_cast<uint128_t>(c52v) * c52v % qv);
    const __m512i vc52 = _mm512_set1_epi64((long long)c52v);
    const __m512i vc52s =
        _mm512_set1_epi64((long long)shoup52(c52v, qv));
    const __m512i vc104 = _mm512_set1_epi64((long long)c104v);
    const __m512i vc104s =
        _mm512_set1_epi64((long long)shoup52(c104v, qv));
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i one52 =
        _mm512_set1_epi64((long long)(((uint128_t)1 << 52) / qv));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i four_q = _mm512_set1_epi64((long long)(4 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    const __m512i zero = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // acc_lo seeds from dst (< q), so the final residue includes
        // the accumulator exactly as the scalar kernel's does.
        __m512i acc_lo = _mm512_loadu_si512((const void *)(dst + i));
        __m512i acc_hi = zero;
        for (std::size_t j = 0; j < k; ++j) {
            const __m512i x =
                _mm512_loadu_si512((const void *)(srcs[j] + i));
            const __m512i vf = _mm512_set1_epi64((long long)fs[j]);
            acc_lo = _mm512_madd52lo_epu64(acc_lo, x, vf);
            acc_hi = _mm512_madd52hi_epu64(acc_hi, x, vf);
        }
        const __m512i l0 = _mm512_and_si512(acc_lo, mask52);
        const __m512i s = _mm512_add_epi64(
            _mm512_srli_epi64(acc_lo, 52), acc_hi); // < 2^58
        const __m512i s0 = _mm512_and_si512(s, mask52);
        const __m512i s1 = _mm512_srli_epi64(s, 52); // < 2^6
        __m512i r = _mm512_add_epi64(
            mulLazy52(l0, one, one52, q, mask52),
            _mm512_add_epi64(
                mulLazy52(s0, vc52, vc52s, q, mask52),
                mulLazy52(s1, vc104, vc104s, q, mask52)));
        r = condSub(r, four_q);
        r = condSub(r, two_q);
        r = condSub(r, q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i) {
        uint64_t r = dst[i];
        for (std::size_t j = 0; j < k; ++j)
            r = addMod(r, mod.mul(srcs[j][i], fs[j]), qv);
        dst[i] = r;
    }
}

/**
 * dst[i] = a[i] % q for arbitrary 64-bit inputs: split a into hi/lo
 * 52-bit halves and fold with c = 2^52 mod q — the vMul endgame
 * without the product. q >= 2^51 delegates to the scalar kernel.
 */
CINN_K_TARGET void
vModReduce(uint64_t *dst, const uint64_t *a, std::size_t n, uint64_t qv)
{
    if (qv >= kQ51 || n < 8) {
        scalarKernels().modReduce(dst, a, n, qv);
        return;
    }
    const uint64_t c = kBound52 % qv;
    const __m512i vc = _mm512_set1_epi64((long long)c);
    const __m512i vc52 = _mm512_set1_epi64((long long)shoup52(c, qv));
    const __m512i one = _mm512_set1_epi64(1);
    const __m512i one52 =
        _mm512_set1_epi64((long long)(((uint128_t)1 << 52) / qv));
    const __m512i q = _mm512_set1_epi64((long long)qv);
    const __m512i two_q = _mm512_set1_epi64((long long)(2 * qv));
    const __m512i mask52 = _mm512_set1_epi64((1LL << 52) - 1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512((const void *)(a + i));
        const __m512i hi = _mm512_srli_epi64(x, 52);
        const __m512i lo = _mm512_and_si512(x, mask52);
        __m512i r = _mm512_add_epi64(
            mulLazy52(hi, vc, vc52, q, mask52),
            mulLazy52(lo, one, one52, q, mask52));
        r = condSub(r, two_q);
        r = condSub(r, q);
        _mm512_storeu_si512((void *)(dst + i), r);
    }
    for (; i < n; ++i)
        dst[i] = a[i] % qv;
}

/** Inverse of an odd g modulo 2^64 (Newton; 5 doublings from 3 bits). */
inline uint64_t
oddInverse(uint64_t g)
{
    uint64_t inv = g; // g*g == 1 (mod 8): correct to 3 bits
    for (int it = 0; it < 5; ++it)
        inv *= 2 - g * inv;
    return inv;
}

/**
 * Automorphism X -> X^g as a vector gather. The scalar kernel
 * *scatters* (dst[j*g mod 2n] = ±src[j]); here each output p gathers
 * its source instead: j0 = p * g^{-1} mod 2n, negated when j0 lands
 * in [n, 2n) (X^n = -1, and n*g ≡ n mod 2n for odd g). The inverse
 * exists because valid Galois elements are odd and 2n is a power of
 * two; non-power-of-two n (kernel unit tests) or even g delegate to
 * the scalar path. Each dst element is written once with the exact
 * value the scalar scatter writes, so the backends are bit-identical.
 */
CINN_K_TARGET void
vAutomorph(uint64_t *dst, const uint64_t *src, std::size_t n,
           uint64_t galois, uint64_t q)
{
    const uint64_t two_n = 2 * n;
    const uint64_t g = galois % two_n;
    if (n < 8 || (n & (n - 1)) != 0 || (g & 1) == 0) {
        scalarKernels().automorph(dst, src, n, galois, q);
        return;
    }
    const uint64_t ginv = oddInverse(g) & (two_n - 1);
    const __m512i vq = _mm512_set1_epi64((long long)q);
    const __m512i vn = _mm512_set1_epi64((long long)n);
    const __m512i vtwo_n = _mm512_set1_epi64((long long)two_n);
    const __m512i nmask = _mm512_set1_epi64((long long)(n - 1));
    // Lane l of the index vector walks p = l, l+8, l+16, ... so the
    // per-iteration advance is the constant 8*ginv mod 2n; wraps are
    // the same min-trick as condSub.
    alignas(64) uint64_t init[8];
    for (uint64_t l = 0; l < 8; ++l)
        init[l] = (l * ginv) & (two_n - 1);
    __m512i j0 = _mm512_load_si512((const void *)init);
    const __m512i step =
        _mm512_set1_epi64((long long)((8 * ginv) & (two_n - 1)));
    for (std::size_t p = 0; p + 8 <= n; p += 8) {
        const __mmask8 neg = _mm512_cmpge_epu64_mask(j0, vn);
        const __m512i idx = _mm512_and_si512(j0, nmask);
        const __m512i x =
            _mm512_i64gather_epi64(idx, (const void *)src, 8);
        // Negation maps 0 -> 0, x -> q - x: the zero-masked subtract
        // leaves zero lanes at 0 directly.
        const __mmask8 nz = _mm512_test_epi64_mask(x, x);
        const __m512i negx = _mm512_maskz_sub_epi64(nz, vq, x);
        const __m512i r = _mm512_mask_mov_epi64(x, neg, negx);
        _mm512_storeu_si512((void *)(dst + p), r);
        j0 = condSub(_mm512_add_epi64(j0, step), vtwo_n);
    }
    // n is a power of two >= 8 here, so there is no tail.
}

#undef CINN_K_TARGET

const KernelTable kAvx512Table = {
    "avx512",        vAdd,           vSub,
    vMul,            vNegate,        vMulScalarShoup,
    vMacScalarShoup, vMacMulti,      vModReduce,
    vAutomorph,
};

} // namespace

const KernelTable *
avx512KernelTable()
{
    static const bool ok = [] {
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512ifma");
    }();
    return ok ? &kAvx512Table : nullptr;
}

} // namespace cinnamon::rns

#else // !(__x86_64__ && __GNUC__)

namespace cinnamon::rns {

const KernelTable *
avx512KernelTable()
{
    return nullptr;
}

} // namespace cinnamon::rns

#endif
