#include "cost/cost_model.h"

#include <cmath>

#include "common/logging.h"

namespace cinnamon::cost {

namespace {

// Calibration constants derived from Table 1 (22 nm synthesis).
constexpr double kNttArea = 34.08;       // per unit at 1024 lanes
constexpr double kTransposeArea = 3.56;
constexpr double kRotationArea = 2.48;
constexpr double kAddArea = 0.4;
constexpr double kMulArea = 2.55;
constexpr double kPrngArea = 5.72;
constexpr double kBarrettArea = 1.04;
constexpr double kRnsResolveArea = 1.33;
constexpr double kBcuLogicArea = 14.12;  // 512 lanes, 13 inputs
// Residual to make the functional-unit subtotal match the published
// 82.55 mm² row (clock/control/intra-cluster interconnect).
constexpr double kFuOtherArea = 8.60;
constexpr double kBcuSramPerMb = 11.44 / 2.85;
constexpr double kRfSramPerMb = 80.9 / 56.0;
constexpr double kHbmPhyArea = 38.64 / 4.0;
constexpr double kNetPhyArea = 9.66 / 2.0;
constexpr double kBcuBufferMbBase = 2.85; // 512 lanes, 13 inputs
// Section 4.7: the output-buffered (CraterLake-style) design needs
// 15K multipliers and 3.31 MB per cluster vs 1.6K and 0.71 MB.
constexpr double kObLogicFactor = 15000.0 / 1600.0;
constexpr double kObBufferFactor = 3.31 / 0.71;

} // namespace

double
AreaBreakdown::total() const
{
    double t = 0.0;
    for (const auto &[name, area] : components)
        t += area;
    return t;
}

ChipSpec
ChipSpec::cinnamon()
{
    return ChipSpec{};
}

ChipSpec
ChipSpec::cinnamonM()
{
    ChipSpec s;
    s.clusters = 8;
    s.register_file_mb = 224.0;
    s.ntt_units = 2;
    s.transpose_units = 2;
    s.add_units = 5;
    s.mul_units = 5;
    s.bconv_max_inputs = 32;
    return s;
}

BcuResources
bcuResources(const ChipSpec &spec)
{
    const double lane_scale =
        static_cast<double>(spec.clusters *
                            spec.bconv_lanes_per_cluster) /
        512.0;
    const double input_scale =
        static_cast<double>(spec.bconv_max_inputs) / 13.0;
    // Per-cluster scaling relative to the reference cluster
    // (128 BCU lanes, 13 limb buffers): 1.6K multipliers, 0.71 MB.
    const double cluster_scale =
        static_cast<double>(spec.bconv_lanes_per_cluster) / 128.0 *
        input_scale;
    BcuResources r;
    double mults = 1600.0 * cluster_scale;
    double buffer_mb = (kBcuBufferMbBase / 4.0) * cluster_scale;
    if (spec.output_buffered_bcu) {
        mults *= kObLogicFactor;
        buffer_mb *= kObBufferFactor;
    }
    r.multipliers_per_cluster = static_cast<std::size_t>(mults);
    r.buffer_mb_per_cluster = buffer_mb;
    r.area_mm2 = kBcuLogicArea * lane_scale * input_scale *
                     (spec.output_buffered_bcu ? kObLogicFactor : 1.0) +
                 kBcuSramPerMb * kBcuBufferMbBase * lane_scale *
                     input_scale *
                     (spec.output_buffered_bcu ? kObBufferFactor : 1.0);
    return r;
}

AreaBreakdown
chipArea(const ChipSpec &spec)
{
    const double lane_scale =
        static_cast<double>(spec.clusters * spec.lanes_per_cluster) /
        1024.0;
    const double bconv_scale =
        static_cast<double>(spec.clusters *
                            spec.bconv_lanes_per_cluster) /
        512.0;
    const double input_scale =
        static_cast<double>(spec.bconv_max_inputs) / 13.0;
    const double ob_logic =
        spec.output_buffered_bcu ? kObLogicFactor : 1.0;
    const double ob_buf =
        spec.output_buffered_bcu ? kObBufferFactor : 1.0;

    AreaBreakdown a;
    a.components["ntt"] = spec.ntt_units * kNttArea * lane_scale;
    a.components["transpose"] =
        spec.transpose_units * kTransposeArea * lane_scale;
    a.components["rotation"] = kRotationArea * lane_scale;
    a.components["add"] = spec.add_units * kAddArea * lane_scale;
    a.components["multiply"] = spec.mul_units * kMulArea * lane_scale;
    a.components["prng"] = spec.prng_units * kPrngArea * lane_scale;
    a.components["barrett"] = kBarrettArea * lane_scale;
    a.components["rns_resolve"] = kRnsResolveArea * lane_scale;
    a.components["fu_other"] = kFuOtherArea * lane_scale;
    a.components["bcu_logic"] =
        kBcuLogicArea * bconv_scale * input_scale * ob_logic;
    const double bcu_mb =
        kBcuBufferMbBase * bconv_scale * input_scale * ob_buf;
    a.components["bcu_buffers"] = kBcuSramPerMb * bcu_mb;
    a.components["register_file"] =
        kRfSramPerMb * spec.register_file_mb;
    a.components["hbm_phy"] = spec.hbm_phys * kHbmPhyArea;
    a.components["net_phy"] = spec.net_phys * kNetPhyArea;
    return a;
}

double
chipPowerWatts(const ChipSpec &spec)
{
    // Power densities (W/mm² at 22 nm, 1 GHz) by component class,
    // calibrated so the standard chip dissipates the published 190 W:
    // logic switches hardest, SRAM is mostly leakage + access energy,
    // PHYs are I/O-dominated.
    constexpr double kLogicWPerMm2 = 1.474;
    constexpr double kSramWPerMm2 = 0.35;
    constexpr double kPhyWPerMm2 = 0.75;

    const auto area = chipArea(spec);
    double watts = 0.0;
    for (const auto &[name, mm2] : area.components) {
        if (name == "register_file" || name == "bcu_buffers")
            watts += kSramWPerMm2 * mm2;
        else if (name == "hbm_phy" || name == "net_phy")
            watts += kPhyWPerMm2 * mm2;
        else
            watts += kLogicWPerMm2 * mm2;
    }
    return watts;
}

double
dieYield(double area_mm2, double defect_density_cm2, double alpha)
{
    CINN_ASSERT(area_mm2 > 0, "die area must be positive");
    const double area_cm2 = area_mm2 / 100.0;
    return std::pow(1.0 + area_cm2 * defect_density_cm2 / alpha,
                    -alpha);
}

double
diesPerWafer(double area_mm2, double wafer_diameter_mm)
{
    const double r = wafer_diameter_mm / 2.0;
    const double usable = M_PI * r * r / area_mm2;
    const double edge = M_PI * wafer_diameter_mm /
                        std::sqrt(2.0 * area_mm2);
    return std::max(0.0, usable - edge);
}

double
yieldNormalizedCost(const ProcessSpec &spec)
{
    const double y = dieYield(spec.die_area_mm2,
                              spec.defect_density_cm2, spec.alpha);
    return spec.die_area_mm2 * spec.wafer_price_per_mm2 / y;
}

std::vector<CostRow>
table3Rows()
{
    struct Entry
    {
        const char *name;
        double area;
        const char *process;
        double price;
    };
    const Entry entries[] = {
        {"ARK", 418.3, "7nm", 57500.0},
        {"CiFHER", 47.08, "7nm", 57500.0},
        {"CraterLake", 472.0, "14nm", 23000.0},
        {"Cinnamon-M", 719.78, "22nm", 10500.0},
        {"Cinnamon", 223.18, "22nm", 10500.0},
    };
    std::vector<CostRow> rows;
    for (const auto &e : entries) {
        CostRow row;
        row.accelerator = e.name;
        row.die_area_mm2 = e.area;
        row.process = e.process;
        row.yield = dieYield(e.area);
        row.wafer_price_per_mm2 = e.price;
        ProcessSpec ps;
        ps.name = e.name;
        ps.die_area_mm2 = e.area;
        ps.wafer_price_per_mm2 = e.price;
        row.cost_dollars = yieldNormalizedCost(ps);
        rows.push_back(row);
    }
    return rows;
}

double
perfPerDollar(double time_s, double cost_dollars, double base_time_s,
              double base_cost_dollars)
{
    CINN_ASSERT(time_s > 0 && cost_dollars > 0, "invalid perf/cost");
    return (base_time_s * base_cost_dollars) / (time_s * cost_dollars);
}

} // namespace cinnamon::cost
