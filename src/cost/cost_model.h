/**
 * @file
 * Area, power, yield, and cost models (Sections 5, 7.2; Tables 1, 3).
 *
 * The paper obtains component areas from RTL synthesis on a
 * commercial 22 nm PDK plus an SRAM compiler. We cannot run a
 * proprietary PDK, so this model encodes the published Table 1
 * component areas together with scaling rules (SRAM mm²/MB, per-lane
 * multiplier counts) so that configuration changes — the monolithic
 * Cinnamon-M chip, the space-optimized vs. output-buffered BCU —
 * reproduce the paper's deltas.
 *
 * Yield uses the negative-binomial model of Stow et al. with the
 * paper's optimistic parameters (defect density D0 = 0.2 cm⁻²,
 * clustering α = 3) on a 300 mm wafer, and wafer $/mm² per process
 * node from Table 3.
 */

#ifndef CINNAMON_COST_COST_MODEL_H_
#define CINNAMON_COST_COST_MODEL_H_

#include <map>
#include <string>
#include <vector>

namespace cinnamon::cost {

/** Per-component area of one chip configuration, mm² at 22 nm. */
struct AreaBreakdown
{
    std::map<std::string, double> components;

    double total() const;
};

/** Chip-level knobs the area model understands. */
struct ChipSpec
{
    std::size_t clusters = 4;
    std::size_t lanes_per_cluster = 256;
    std::size_t bconv_lanes_per_cluster = 128; ///< Section 4.7
    std::size_t bconv_max_inputs = 13;         ///< BCU limb buffers
    double register_file_mb = 56.0;
    std::size_t ntt_units = 1;
    std::size_t transpose_units = 1;
    std::size_t add_units = 2;
    std::size_t mul_units = 2;
    std::size_t prng_units = 2;
    std::size_t hbm_phys = 4;
    std::size_t net_phys = 2;
    /** Output-buffered (CraterLake-style) BCU instead of Cinnamon's. */
    bool output_buffered_bcu = false;

    static ChipSpec cinnamon();
    static ChipSpec cinnamonM();
};

/** Compute the Table 1 breakdown for a chip spec. */
AreaBreakdown chipArea(const ChipSpec &spec);

/**
 * Chip power estimate in watts (Section 5: 223 mm² chip = 190 W at
 * 1 GHz). Modeled as power densities per component class — switching
 * logic, SRAM, and PHY — calibrated to the published total.
 */
double chipPowerWatts(const ChipSpec &spec);

/**
 * BCU resource counts (Section 4.7's comparison: 15K → 1.6K
 * multipliers, 3.31 MB → 0.71 MB of buffers per cluster).
 */
struct BcuResources
{
    std::size_t multipliers_per_cluster = 0;
    double buffer_mb_per_cluster = 0.0;
    double area_mm2 = 0.0;
};

BcuResources bcuResources(const ChipSpec &spec);

/** Manufacturing/process description for one accelerator (Table 3). */
struct ProcessSpec
{
    std::string name;
    double die_area_mm2 = 0.0;
    double wafer_price_per_mm2 = 0.0; ///< $/mm² of *die* area basis
    double defect_density_cm2 = 0.2;
    double alpha = 3.0;
};

/** Negative-binomial die yield (Stow et al.). */
double dieYield(double area_mm2, double defect_density_cm2 = 0.2,
                double alpha = 3.0);

/** Gross dies per 300 mm wafer for a die area. */
double diesPerWafer(double area_mm2, double wafer_diameter_mm = 300.0);

/** Yield-normalized cost of one good die, dollars. */
double yieldNormalizedCost(const ProcessSpec &spec);

/** One row of Table 3. */
struct CostRow
{
    std::string accelerator;
    double die_area_mm2 = 0.0;
    std::string process;
    double yield = 0.0;
    double wafer_price_per_mm2 = 0.0;
    double cost_dollars = 0.0; ///< per good die, yield-normalized
};

/** The Table 3 rows (paper die areas and process prices). */
std::vector<CostRow> table3Rows();

/**
 * Performance-per-dollar relative to a baseline:
 * (1/time)/cost normalized so the baseline is 1.0.
 */
double perfPerDollar(double time_s, double cost_dollars,
                     double base_time_s, double base_cost_dollars);

} // namespace cinnamon::cost

#endif // CINNAMON_COST_COST_MODEL_H_
