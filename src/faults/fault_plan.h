/**
 * @file
 * Deterministic fault injection for the serving stack.
 *
 * A FaultPlan is the failure schedule of one run: given a fault seed
 * and per-layer rates it decides, for every (request seed, attempt)
 * pair, whether that execution attempt suffers a chip failure (the
 * chip dies mid-program), a transient execution error (spurious,
 * succeeds on retry), or degraded network PHYs (collective latency
 * dilated in the simulator). Decisions are pure functions of
 * (plan seed, request seed, attempt) — never of wall clock, thread
 * identity, or scheduling order — so a concurrent serving run draws
 * exactly the same faults as a serial one, and the same --fault-seed
 * reproduces the same failure schedule bit for bit.
 *
 * The plan is stateless and therefore trivially thread-safe: workers
 * share one const instance without locks.
 */

#ifndef CINNAMON_FAULTS_FAULT_PLAN_H_
#define CINNAMON_FAULTS_FAULT_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace cinnamon::faults {

/** The layers the plan can break (DESIGN.md §5c taxonomy). */
enum class FaultKind {
    None,
    ChipFailure,
    ConnDrop, ///< worker's connection lost mid-request (§5d)
    Transient,
    LinkDegrade,
};

const char *faultKindName(FaultKind k);

/** Failure rates and recovery knobs of one fault schedule. */
struct FaultConfig
{
    /** Schedule seed; two runs with equal seeds draw equal faults. */
    uint64_t seed = 0;
    /**
     * Mean requests between chip failures (a request-count MTBF, the
     * serving-side face of the Table 3 yield model). Each attempt
     * kills a chip of its serving group with probability
     * 1 / chip_mtbf_requests; 0 disables chip faults.
     */
    double chip_mtbf_requests = 0.0;
    /** Per-attempt probability of a spurious execution error. */
    double transient_p = 0.0;
    /**
     * Per-attempt probability the serving worker's TCP connection
     * drops mid-request (distributed serving, DESIGN.md §5d). A
     * remote worker that draws this fault dies without replying; the
     * front-end maps the loss onto the §5c quarantine path and
     * requeues the in-flight request. Meaningless (ignored) for the
     * in-process server, which has no connections to lose.
     */
    double conn_drop_p = 0.0;
    /** Per-attempt probability a group's network PHY is degraded. */
    double link_degrade_p = 0.0;
    /** Collective latency multiplier while a link is degraded. */
    double link_dilation = 4.0;
    /**
     * Wall-clock ms until a failed chip's group may be re-admitted by
     * the health probe (repair / hot-spare swap time).
     */
    double chip_repair_ms = 50.0;

    /** True when any layer can actually fire. */
    bool enabled() const
    {
        return chip_mtbf_requests > 0.0 || transient_p > 0.0 ||
               conn_drop_p > 0.0 || link_degrade_p > 0.0;
    }
};

/** What the plan injects into one execution attempt. */
struct FaultDecision
{
    /** The chip dies mid-program (EmulatorError / sim abort). */
    bool chip_fails = false;
    /**
     * Victim chip as an offset; the injector reduces it modulo the
     * serving group's size (the schedule cannot know which group the
     * scheduler will lease, only which member of it dies).
     */
    std::size_t chip_offset = 0;
    /** Fraction of the victim's stream executed before it dies. */
    double at_fraction = 0.5;
    /** Spurious execution error after the program ran. */
    bool transient = false;
    /** Worker connection lost mid-request (remote serving only). */
    bool conn_drops = false;
    /** Collective latency multiplier this attempt (1 = healthy). */
    double link_dilation = 1.0;

    bool any() const
    {
        return chip_fails || conn_drops || transient ||
               link_dilation > 1.0;
    }

    /** The most severe layer that fired (for logging and metrics). */
    FaultKind primary() const;
};

/**
 * The deterministic failure schedule. decide() may be called from any
 * thread, in any order, any number of times; equal arguments always
 * return equal decisions.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(FaultConfig config) : config_(config) {}

    const FaultConfig &config() const { return config_; }

    /** The faults injected into attempt `attempt` of a request. */
    FaultDecision decide(uint64_t request_seed,
                         std::size_t attempt) const;

    /**
     * One stable text line per decision ("seed=… attempt=… kind=…"),
     * the unit the determinism tests compare bit for bit.
     */
    static std::string traceLine(uint64_t request_seed,
                                 std::size_t attempt,
                                 const FaultDecision &d);

    /**
     * The full failure trace of a request set: one traceLine per
     * (request seed, attempt < attempts) pair, in argument order.
     */
    std::vector<std::string>
    schedule(const std::vector<uint64_t> &request_seeds,
             std::size_t attempts) const;

  private:
    FaultConfig config_;
};

/**
 * Deterministic backoff with seeded jitter: attempt k waits
 * base * mult^k ms, capped at max_ms, scaled by a jitter factor in
 * [1 - jitter/2, 1 + jitter/2) drawn from (seed, attempt) — a pure
 * function, so retry timing is reproducible run to run.
 */
double backoffMs(uint64_t seed, std::size_t attempt, double base_ms,
                 double mult, double max_ms, double jitter);

/** An injected whole-chip loss observed outside the emulator. */
class ChipFailedError : public std::runtime_error
{
  public:
    ChipFailedError(std::size_t chip, const std::string &what)
        : std::runtime_error(what), chip_(chip)
    {
    }

    std::size_t chip() const { return chip_; }

  private:
    std::size_t chip_;
};

/** An injected spurious execution error (succeeds on retry). */
class TransientFaultError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

} // namespace cinnamon::faults

#endif // CINNAMON_FAULTS_FAULT_PLAN_H_
