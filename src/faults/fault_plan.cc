#include "faults/fault_plan.h"

#include <algorithm>
#include <sstream>

namespace cinnamon::faults {

namespace {

/** splitmix64: the finalizer turning keys into decision streams. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Per-layer decision stream: hashing a distinct layer tag into the
 * key decorrelates the layers, so e.g. raising transient_p never
 * changes which requests draw chip failures.
 */
uint64_t
draw(uint64_t plan_seed, uint64_t request_seed, std::size_t attempt,
     uint64_t layer)
{
    uint64_t h = mix64(plan_seed ^ mix64(layer));
    h = mix64(h ^ request_seed);
    return mix64(h ^ static_cast<uint64_t>(attempt));
}

/** Uniform double in [0, 1) from the top 53 bits. */
double
unit(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr uint64_t kChipLayer = 0x43484950ull;      // "CHIP"
constexpr uint64_t kTransientLayer = 0x54524e53ull; // "TRNS"
constexpr uint64_t kConnLayer = 0x434f4e4eull;      // "CONN"
constexpr uint64_t kLinkLayer = 0x4c494e4bull;      // "LINK"
constexpr uint64_t kBackoffLayer = 0x424b4f46ull;   // "BKOF"

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::ChipFailure: return "chip";
    case FaultKind::ConnDrop: return "conn";
    case FaultKind::Transient: return "transient";
    case FaultKind::LinkDegrade: return "link";
    }
    return "?";
}

FaultKind
FaultDecision::primary() const
{
    if (chip_fails)
        return FaultKind::ChipFailure;
    if (conn_drops)
        return FaultKind::ConnDrop;
    if (transient)
        return FaultKind::Transient;
    if (link_dilation > 1.0)
        return FaultKind::LinkDegrade;
    return FaultKind::None;
}

FaultDecision
FaultPlan::decide(uint64_t request_seed, std::size_t attempt) const
{
    FaultDecision d;
    if (config_.chip_mtbf_requests > 0.0) {
        const uint64_t h =
            draw(config_.seed, request_seed, attempt, kChipLayer);
        if (unit(h) < 1.0 / config_.chip_mtbf_requests) {
            d.chip_fails = true;
            // Independent sub-draws pick the victim and the point in
            // the stream where it dies; keep the fraction inside
            // (0.1, 0.9) so the failure is genuinely mid-program.
            d.chip_offset = static_cast<std::size_t>(mix64(h) >> 32);
            d.at_fraction = 0.1 + 0.8 * unit(mix64(h ^ 0x5144ull));
        }
    }
    if (config_.transient_p > 0.0) {
        const uint64_t h = draw(config_.seed, request_seed, attempt,
                                kTransientLayer);
        d.transient = unit(h) < config_.transient_p;
    }
    if (config_.conn_drop_p > 0.0) {
        const uint64_t h =
            draw(config_.seed, request_seed, attempt, kConnLayer);
        d.conn_drops = unit(h) < config_.conn_drop_p;
    }
    if (config_.link_degrade_p > 0.0) {
        const uint64_t h =
            draw(config_.seed, request_seed, attempt, kLinkLayer);
        if (unit(h) < config_.link_degrade_p)
            d.link_dilation = std::max(1.0, config_.link_dilation);
    }
    return d;
}

std::string
FaultPlan::traceLine(uint64_t request_seed, std::size_t attempt,
                     const FaultDecision &d)
{
    std::ostringstream oss;
    oss << "seed=" << request_seed << " attempt=" << attempt
        << " kind=" << faultKindName(d.primary());
    if (d.chip_fails)
        oss << " chip_offset=" << d.chip_offset % 1024
            << " at=" << static_cast<int>(d.at_fraction * 1000);
    if (d.transient)
        oss << " transient=1";
    if (d.conn_drops)
        oss << " conn=1";
    if (d.link_dilation > 1.0)
        oss << " dilation=" << d.link_dilation;
    return oss.str();
}

std::vector<std::string>
FaultPlan::schedule(const std::vector<uint64_t> &request_seeds,
                    std::size_t attempts) const
{
    std::vector<std::string> lines;
    lines.reserve(request_seeds.size() * attempts);
    for (uint64_t seed : request_seeds)
        for (std::size_t a = 0; a < attempts; ++a)
            lines.push_back(traceLine(seed, a, decide(seed, a)));
    return lines;
}

double
backoffMs(uint64_t seed, std::size_t attempt, double base_ms,
          double mult, double max_ms, double jitter)
{
    double delay = base_ms;
    for (std::size_t k = 0; k < attempt; ++k)
        delay *= mult;
    delay = std::min(delay, max_ms);
    const double u = unit(draw(seed, seed, attempt, kBackoffLayer));
    return delay * (1.0 - jitter / 2.0 + jitter * u);
}

} // namespace cinnamon::faults
