/**
 * @file
 * RAII POSIX TCP sockets for the serving tier.
 *
 * Deliberately minimal: the serving processes talk over loopback (or
 * a trusted cluster network), so this wraps exactly what the wire
 * protocol needs — a listener bound to 127.0.0.1 with an
 * OS-assigned or fixed port, blocking connect with retry (the worker
 * may start before the front-end's listener is up), full-buffer
 * sendAll, and recvSome for the frame decoder. TCP_NODELAY is set on
 * every connection: the protocol is small request/response frames,
 * where Nagle batching only adds latency.
 */

#ifndef CINNAMON_NET_SOCKET_H_
#define CINNAMON_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <sys/types.h>

namespace cinnamon::net {

/** Move-only owner of one socket fd. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &operator=(Socket &&o) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent). */
    void close();

    /** Release ownership of the fd without closing it. */
    int release();

    /**
     * Bind a listener to 127.0.0.1:`port` (0 = OS-assigned) and
     * listen. The actually bound port is written to *bound_port.
     * Returns an invalid socket on error.
     */
    static Socket listenLoopback(uint16_t port, uint16_t *bound_port);

    /**
     * Connect to 127.0.0.1:`port`, retrying for up to `timeout_ms`
     * (the peer's listener may not be up yet). Returns an invalid
     * socket on timeout.
     */
    static Socket connectLoopback(uint16_t port,
                                  double timeout_ms = 2000.0);

    /** Accept one connection (blocking). Invalid socket on error. */
    Socket accept();

    /**
     * Send the whole buffer, looping over partial writes and EINTR.
     * @return false once the peer is gone (EPIPE/ECONNRESET/...).
     */
    bool sendAll(const uint8_t *data, std::size_t len);

    /**
     * Receive up to `len` bytes (blocking).
     * @return bytes read; 0 on orderly EOF; -1 on error.
     */
    ssize_t recvSome(uint8_t *buf, std::size_t len);

    /** O_NONBLOCK on/off (event-loop registration needs on). */
    bool setNonBlocking(bool on);

  private:
    int fd_ = -1;
};

} // namespace cinnamon::net

#endif // CINNAMON_NET_SOCKET_H_
