#include "net/event_loop.h"

#include <algorithm>
#include <cerrno>
#include <fcntl.h>
#include <unistd.h>

namespace cinnamon::net {

EventLoop::EventLoop()
{
    if (::pipe(wake_pipe_) == 0) {
        ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
        ::fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);
    }
}

EventLoop::~EventLoop()
{
    for (int fd : wake_pipe_)
        if (fd >= 0)
            ::close(fd);
}

void
EventLoop::add(int fd, short events, FdCallback cb)
{
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_add_.push_back({fd, events, std::move(cb)});
    }
    wake();
}

void
EventLoop::remove(int fd)
{
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_remove_.push_back(fd);
    }
    wake();
}

void
EventLoop::stop()
{
    stop_.store(true);
    wake();
}

void
EventLoop::wake()
{
    if (wake_pipe_[1] >= 0) {
        const uint8_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wake_pipe_[1], &one, 1);
    }
}

void
EventLoop::applyPending()
{
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto &w : pending_add_)
        watches_.push_back(std::move(w));
    for (int fd : pending_remove_)
        watches_.erase(
            std::remove_if(
                watches_.begin(), watches_.end(),
                [fd](const Watch &w) { return w.fd == fd; }),
            watches_.end());
    pending_add_.clear();
    pending_remove_.clear();
}

void
EventLoop::runOnce(double timeout_ms)
{
    applyPending();

    std::vector<pollfd> fds;
    fds.reserve(watches_.size() + 1);
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const auto &w : watches_)
        fds.push_back({w.fd, w.events, 0});

    const int timeout =
        timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms);
    const int n = ::poll(fds.data(),
                         static_cast<nfds_t>(fds.size()), timeout);
    if (n <= 0)
        return;

    if (fds[0].revents != 0) {
        // Drain every queued wakeup byte in one go.
        uint8_t buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
    }

    // Dispatch against a snapshot of (fd, cb): a callback may remove
    // fds (its own included) — those removals are queued and applied
    // on the next round, so this loop stays valid. Skip any fd whose
    // removal is already pending to avoid dispatching to a dead
    // connection object.
    for (std::size_t i = 1; i < fds.size(); ++i) {
        if (fds[i].revents == 0)
            continue;
        bool removed;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            removed = std::find(pending_remove_.begin(),
                                pending_remove_.end(),
                                fds[i].fd) != pending_remove_.end();
        }
        if (removed)
            continue;
        // watches_ aligns with fds offset by the wake pipe entry.
        const Watch &w = watches_[i - 1];
        if (w.cb)
            w.cb(fds[i].fd, fds[i].revents);
    }
}

void
EventLoop::run(double tick_ms, const std::function<void()> &tick)
{
    while (!stop_.load()) {
        runOnce(tick_ms);
        if (stop_.load())
            break;
        if (tick)
            tick();
    }
}

} // namespace cinnamon::net
