/**
 * @file
 * The wire frame: the unit every byte on a Cinnamon serving socket
 * belongs to.
 *
 * TCP is a byte stream; the serving tier needs messages. A frame is a
 * fixed 20-byte header followed by an opaque payload:
 *
 *   offset  size  field
 *        0     4  magic    0x434E4D4E ("CNMN") — stream resync guard
 *        4     2  version  wire-protocol version (kWireVersion)
 *        6     2  type     MsgType of the payload
 *        8     4  length   payload bytes (<= kMaxPayloadBytes)
 *       12     8  checksum FNV-1a over the payload bytes
 *
 * All integers are little-endian, encoded byte by byte — the
 * format is identical across hosts regardless of native
 * endianness. The checksum catches corruption and, together with
 * the magic, truncated
 * or desynchronized streams: a decoder that sees a bad magic, an
 * oversized length, or a checksum mismatch reports a hard error and
 * the connection must be dropped (there is no way to resynchronize a
 * framed TCP stream reliably).
 *
 * The header layout is version-invariant by contract: every protocol
 * version frames exactly this way, so a decoder can always parse the
 * header and surface the peer's version to the application. Version
 * *policy* lives one layer up — the front-end answers a mismatched
 * Hello with a reasoned rejection (HelloAck) instead of silently
 * dropping the stream, which is only possible because framing still
 * works across versions.
 *
 * FrameDecoder is an incremental parser: feed() it whatever recv()
 * returned — any chunking, including byte-at-a-time — and next()
 * hands back complete frames as they materialize.
 */

#ifndef CINNAMON_NET_FRAME_H_
#define CINNAMON_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cinnamon::net {

/** Stream resync guard; "CNMN". */
constexpr uint32_t kFrameMagic = 0x434E4D4Eu;

/**
 * Wire-protocol version; bumped on any incompatible change.
 * v2: SubmitMsg carries batch co-members (continuous cross-request
 * batching — one multi-stream program per dispatch).
 */
constexpr uint16_t kWireVersion = 2;

/** Header bytes before the payload. */
constexpr std::size_t kFrameHeaderBytes = 20;

/** Hard payload ceiling: a length above this is a corrupt stream. */
constexpr std::size_t kMaxPayloadBytes = 1u << 20;

/** The typed RPCs of the serving wire protocol. */
enum class MsgType : uint16_t {
    Hello = 1,     ///< worker → front-end: join the serving tier
    HelloAck = 2,  ///< front-end → worker: accept/reject + group
    Submit = 3,    ///< front-end → worker: execute one request
    Result = 4,    ///< worker → front-end: one request's outcome
    Heartbeat = 5, ///< worker → front-end: liveness beacon
    Drain = 6,     ///< front-end → worker: finish and exit
    DrainAck = 7,  ///< worker → front-end: drained, closing
};

const char *msgTypeName(MsgType t);

/** FNV-1a over a byte range (the frame checksum). */
uint64_t fnv1a(const uint8_t *data, std::size_t len);

/** One decoded frame. */
struct Frame
{
    uint16_t version = kWireVersion;
    MsgType type = MsgType::Hello;
    std::vector<uint8_t> payload;
};

/**
 * Encode one frame (header + payload). `version` is overridable so
 * tests can forge mismatched frames.
 */
std::vector<uint8_t> encodeFrame(MsgType type,
                                 const std::vector<uint8_t> &payload,
                                 uint16_t version = kWireVersion);

/** What FrameDecoder::next() found. */
enum class DecodeStatus {
    Ok,          ///< *out holds one complete frame
    NeedMore,    ///< the buffered bytes are a frame prefix; feed more
    BadMagic,    ///< stream desynchronized or not ours — drop it
    Oversized,   ///< length field above kMaxPayloadBytes — corrupt
    /** Payload corrupted in flight — drop the connection. */
    BadChecksum,
};

const char *decodeStatusName(DecodeStatus s);

/**
 * Incremental frame parser over an arbitrary re-chunking of the
 * stream. Once any hard error is returned the decoder is poisoned:
 * every later next() repeats the error (a framed stream cannot be
 * resynchronized, the connection must be dropped).
 */
class FrameDecoder
{
  public:
    /** Append raw received bytes. */
    void feed(const uint8_t *data, std::size_t len);

    /**
     * Try to extract the next complete frame into *out.
     * Consumes the frame's bytes on Ok; buffers on NeedMore.
     */
    DecodeStatus next(Frame *out);

    /** Bytes buffered (not yet part of a returned frame). */
    std::size_t buffered() const { return buf_.size() - consumed_; }

  private:
    std::vector<uint8_t> buf_;
    std::size_t consumed_ = 0; ///< prefix already handed out
    bool poisoned_ = false;
    DecodeStatus poison_ = DecodeStatus::Ok;
};

} // namespace cinnamon::net

#endif // CINNAMON_NET_FRAME_H_
