#include "net/message.h"

#include <cstring>

namespace cinnamon::net {

void
WireWriter::u16(uint16_t v)
{
    out_.push_back(static_cast<uint8_t>(v));
    out_.push_back(static_cast<uint8_t>(v >> 8));
}

void
WireWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
}

bool
WireReader::take(std::size_t n, const uint8_t **p)
{
    if (!ok_ || len_ - pos_ < n) {
        ok_ = false;
        return false;
    }
    *p = data_ + pos_;
    pos_ += n;
    return true;
}

bool
WireReader::u8(uint8_t *v)
{
    const uint8_t *p;
    if (!take(1, &p))
        return false;
    *v = p[0];
    return true;
}

bool
WireReader::u16(uint16_t *v)
{
    const uint8_t *p;
    if (!take(2, &p))
        return false;
    *v = static_cast<uint16_t>(p[0] | (uint16_t(p[1]) << 8));
    return true;
}

bool
WireReader::u32(uint32_t *v)
{
    const uint8_t *p;
    if (!take(4, &p))
        return false;
    uint32_t x = 0;
    for (int i = 3; i >= 0; --i)
        x = (x << 8) | p[i];
    *v = x;
    return true;
}

bool
WireReader::u64(uint64_t *v)
{
    const uint8_t *p;
    if (!take(8, &p))
        return false;
    uint64_t x = 0;
    for (int i = 7; i >= 0; --i)
        x = (x << 8) | p[i];
    *v = x;
    return true;
}

bool
WireReader::f64(double *v)
{
    uint64_t bits;
    if (!u64(&bits))
        return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
}

bool
WireReader::str(std::string *s)
{
    uint32_t n;
    if (!u32(&n))
        return false;
    const uint8_t *p;
    if (!take(n, &p))
        return false;
    s->assign(reinterpret_cast<const char *>(p), n);
    return true;
}

std::vector<uint8_t>
HelloMsg::encode() const
{
    WireWriter w;
    w.u16(version);
    w.u64(worker_id);
    w.u64(chips);
    w.u64(group_size);
    w.u64(pid);
    return w.take();
}

bool
HelloMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    // Version first: a mismatched peer's remaining fields may not
    // follow this layout, so the caller must check `version` before
    // trusting them — but the read itself is still bounds-safe.
    return r.u16(&version) && r.u64(&worker_id) && r.u64(&chips) &&
           r.u64(&group_size) && r.u64(&pid) && r.exhausted();
}

std::vector<uint8_t>
HelloAckMsg::encode() const
{
    WireWriter w;
    w.u8(accepted);
    w.u64(assigned_group);
    w.str(reason);
    return w.take();
}

bool
HelloAckMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    return r.u8(&accepted) && r.u64(&assigned_group) &&
           r.str(&reason) && r.exhausted();
}

std::vector<uint8_t>
SubmitMsg::encode() const
{
    WireWriter w;
    w.u64(request_id);
    w.u16(workload);
    w.u64(seed);
    w.u64(attempt);
    w.u64(deadline_budget_ms);
    // Wire v2: batch co-members, count-prefixed.
    w.u32(static_cast<uint32_t>(extras.size()));
    for (const auto &m : extras) {
        w.u64(m.request_id);
        w.u64(m.seed);
        w.u64(m.attempt);
    }
    return w.take();
}

bool
SubmitMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    uint32_t count = 0;
    if (!(r.u64(&request_id) && r.u16(&workload) && r.u64(&seed) &&
          r.u64(&attempt) && r.u64(&deadline_budget_ms) &&
          r.u32(&count)))
        return false;
    // Bound the count by what the payload could possibly hold, so a
    // corrupted-but-checksum-valid count cannot force a huge alloc.
    if (count > payload.size() / (3 * sizeof(uint64_t)))
        return false;
    extras.clear();
    extras.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        Member m;
        if (!(r.u64(&m.request_id) && r.u64(&m.seed) &&
              r.u64(&m.attempt)))
            return false;
        extras.push_back(m);
    }
    return r.exhausted();
}

std::vector<uint8_t>
ResultMsg::encode() const
{
    WireWriter w;
    w.u64(request_id);
    w.u16(status);
    w.u64(attempt);
    w.u64(digest);
    w.f64(sim_seconds);
    w.f64(compile_ms);
    w.f64(service_ms);
    w.u8(retryable);
    w.u8(chip_failed);
    w.str(error);
    return w.take();
}

bool
ResultMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    return r.u64(&request_id) && r.u16(&status) && r.u64(&attempt) &&
           r.u64(&digest) && r.f64(&sim_seconds) &&
           r.f64(&compile_ms) && r.f64(&service_ms) &&
           r.u8(&retryable) && r.u8(&chip_failed) && r.str(&error) &&
           r.exhausted();
}

std::vector<uint8_t>
HeartbeatMsg::encode() const
{
    WireWriter w;
    w.u64(worker_id);
    w.u64(seq);
    w.u64(inflight);
    return w.take();
}

bool
HeartbeatMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    return r.u64(&worker_id) && r.u64(&seq) && r.u64(&inflight) &&
           r.exhausted();
}

std::vector<uint8_t>
DrainAckMsg::encode() const
{
    WireWriter w;
    w.u64(worker_id);
    w.u64(completed);
    return w.take();
}

bool
DrainAckMsg::decode(const std::vector<uint8_t> &payload)
{
    WireReader r(payload);
    return r.u64(&worker_id) && r.u64(&completed) && r.exhausted();
}

std::string
checkHello(const HelloMsg &hello, std::size_t expected_group_size)
{
    if (hello.version != kWireVersion)
        return "wire version mismatch: worker speaks v" +
               std::to_string(hello.version) + ", front-end v" +
               std::to_string(kWireVersion);
    if (hello.group_size != expected_group_size)
        return "group size mismatch: worker owns " +
               std::to_string(hello.group_size) +
               " chips/stream, front-end expects " +
               std::to_string(expected_group_size);
    if (hello.chips != hello.group_size)
        return "a worker must own exactly one chip group (" +
               std::to_string(hello.chips) + " chips claimed for a " +
               std::to_string(hello.group_size) + "-chip group)";
    return "";
}

} // namespace cinnamon::net
