/**
 * @file
 * The typed RPCs of the serving wire protocol, and the tiny
 * little-endian serializer they share.
 *
 * Each message is a plain struct with an encode() into a frame
 * payload and a decode() back; decode() is total — it returns false
 * on any truncation or trailing garbage instead of reading out of
 * bounds, so a corrupted-but-checksum-valid payload can never crash
 * the peer. Strings are length-prefixed (u32 + bytes); doubles travel
 * as their IEEE-754 bit pattern in a u64.
 *
 * Protocol roles:
 *   worker → front-end: Hello, Result, Heartbeat, DrainAck
 *   front-end → worker: HelloAck, Submit, Drain
 *
 * The version handshake: Hello leads with the worker's wire version.
 * A front-end that sees a mismatch answers HelloAck{accepted=false,
 * reason} — the one message guaranteed decodable across versions
 * because Hello/HelloAck layouts are frozen — and closes.
 */

#ifndef CINNAMON_NET_MESSAGE_H_
#define CINNAMON_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"

namespace cinnamon::net {

/** Append-only little-endian payload writer. */
class WireWriter
{
  public:
    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v); ///< IEEE-754 bits in a u64
    void str(const std::string &s); ///< u32 length + bytes

    std::vector<uint8_t> take() { return std::move(out_); }

  private:
    std::vector<uint8_t> out_;
};

/**
 * Bounds-checked little-endian payload reader. Every read returns
 * false once the payload is exhausted; ok() goes false sticky.
 */
class WireReader
{
  public:
    WireReader(const uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }
    explicit WireReader(const std::vector<uint8_t> &payload)
        : WireReader(payload.data(), payload.size())
    {
    }

    bool u8(uint8_t *v);
    bool u16(uint16_t *v);
    bool u32(uint32_t *v);
    bool u64(uint64_t *v);
    bool f64(double *v);
    bool str(std::string *s);

    bool ok() const { return ok_; }
    /** True when every payload byte was consumed. */
    bool exhausted() const { return ok_ && pos_ == len_; }

  private:
    bool take(std::size_t n, const uint8_t **p);

    const uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** worker → front-end: join the serving tier. */
struct HelloMsg
{
    uint16_t version = kWireVersion; ///< first field, frozen layout
    uint64_t worker_id = 0;
    uint64_t chips = 0;      ///< chips this worker's group owns
    uint64_t group_size = 0; ///< chips per ciphertext stream
    uint64_t pid = 0;        ///< worker's OS pid (diagnostics)

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** front-end → worker: admission decision. */
struct HelloAckMsg
{
    uint8_t accepted = 0;
    uint64_t assigned_group = 0; ///< chip group this worker owns
    std::string reason;          ///< set when rejected

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/**
 * front-end → worker: execute one request — or, since wire v2, one
 * *batch* of compatible requests as a single multi-stream program.
 * The lead request travels in the flat fields; co-members (same
 * workload, batched continuous-batching style) ride in `extras`.
 * Each member's digest is bit-identical to a solo run of its seed.
 */
struct SubmitMsg
{
    uint64_t request_id = 0;
    uint16_t workload = 0; ///< serve::Workload numeric value
    uint64_t seed = 0;     ///< determinism anchor
    uint64_t attempt = 0;  ///< 0-based execution attempt
    /** Remaining deadline budget in ms at dispatch (0 = none). */
    uint64_t deadline_budget_ms = 0;

    /** A co-member of a batched dispatch (wire v2). */
    struct Member
    {
        uint64_t request_id = 0;
        uint64_t seed = 0;
        uint64_t attempt = 0;
    };
    /** Batch co-members beyond the lead request (empty = solo). */
    std::vector<Member> extras;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** Outcome codes a worker can report (subset of RequestStatus). */
enum class WireStatus : uint16_t {
    Completed = 0,
    Failed = 1,
};

/** worker → front-end: one request's outcome. */
struct ResultMsg
{
    uint64_t request_id = 0;
    uint16_t status = 0; ///< WireStatus
    uint64_t attempt = 0;
    uint64_t digest = 0; ///< probe output hash (0 if not emulated)
    double sim_seconds = 0.0;
    double compile_ms = 0.0;
    double service_ms = 0.0; ///< worker-side execution wall ms
    uint8_t retryable = 0;   ///< failure was transient infrastructure
    /** A chip of the worker's group died: quarantine + requeue. */
    uint8_t chip_failed = 0;
    std::string error;

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** worker → front-end: liveness beacon. */
struct HeartbeatMsg
{
    uint64_t worker_id = 0;
    uint64_t seq = 0;      ///< monotone per worker
    uint64_t inflight = 0; ///< requests currently executing (0/1)

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/** front-end → worker: finish in-flight work and exit. */
struct DrainMsg
{
    std::vector<uint8_t> encode() const { return {}; }
    bool decode(const std::vector<uint8_t> &payload)
    {
        return payload.empty();
    }
};

/** worker → front-end: drained, closing the connection. */
struct DrainAckMsg
{
    uint64_t worker_id = 0;
    uint64_t completed = 0; ///< requests served over the lifetime

    std::vector<uint8_t> encode() const;
    bool decode(const std::vector<uint8_t> &payload);
};

/**
 * The front-end's Hello admission check: empty string = accept,
 * otherwise the rejection reason for HelloAck. Pure, so the policy is
 * unit-testable without sockets.
 */
std::string checkHello(const HelloMsg &hello,
                       std::size_t expected_group_size);

} // namespace cinnamon::net

#endif // CINNAMON_NET_MESSAGE_H_
