/**
 * @file
 * A small poll(2)-based event loop for the serving front-end.
 *
 * One thread calls run(); it multiplexes the listening socket, every
 * worker connection, and a periodic tick (heartbeat timeouts, repair
 * readmissions) over a single poll set. Other threads may add or
 * remove fds and request a stop at any time: mutations are queued
 * under a mutex and applied on the loop thread, and a self-pipe wakes
 * poll() so a cross-thread mutation or stop takes effect immediately
 * instead of after the current poll timeout.
 *
 * Callbacks run on the loop thread. A callback may remove its own fd
 * (the common "connection died" path); removals are deferred until
 * the current dispatch round finishes, so the poll set never mutates
 * under the iterator.
 */

#ifndef CINNAMON_NET_EVENT_LOOP_H_
#define CINNAMON_NET_EVENT_LOOP_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <poll.h>
#include <vector>

namespace cinnamon::net {

class EventLoop
{
  public:
    /** revents is the poll(2) bitmask that fired. */
    using FdCallback = std::function<void(int fd, short revents)>;

    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Watch `fd` for `events` (POLLIN etc). Thread-safe. */
    void add(int fd, short events, FdCallback cb);

    /** Stop watching `fd`. Thread-safe; idempotent. */
    void remove(int fd);

    /** Make run() return after the current dispatch. Thread-safe. */
    void stop();

    /**
     * Poll/dispatch until stop(). `tick` (may be empty) runs on the
     * loop thread at least every `tick_ms`.
     */
    void run(double tick_ms, const std::function<void()> &tick);

    /** One poll/dispatch round with the given timeout (for tests). */
    void runOnce(double timeout_ms);

  private:
    struct Watch
    {
        int fd;
        short events;
        FdCallback cb;
    };

    void applyPending();
    void wake();

    std::vector<Watch> watches_; ///< loop thread only
    std::mutex pending_mutex_;
    std::vector<Watch> pending_add_;
    std::vector<int> pending_remove_;
    std::atomic<bool> stop_{false};
    int wake_pipe_[2] = {-1, -1}; ///< [0] read end in the poll set
};

} // namespace cinnamon::net

#endif // CINNAMON_NET_EVENT_LOOP_H_
