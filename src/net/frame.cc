#include "net/frame.h"

#include <cstring>

namespace cinnamon::net {

namespace {

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t
getU16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (uint16_t(p[1]) << 8));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

const char *
msgTypeName(MsgType t)
{
    switch (t) {
    case MsgType::Hello: return "hello";
    case MsgType::HelloAck: return "hello_ack";
    case MsgType::Submit: return "submit";
    case MsgType::Result: return "result";
    case MsgType::Heartbeat: return "heartbeat";
    case MsgType::Drain: return "drain";
    case MsgType::DrainAck: return "drain_ack";
    }
    return "?";
}

const char *
decodeStatusName(DecodeStatus s)
{
    switch (s) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::NeedMore: return "need_more";
    case DecodeStatus::BadMagic: return "bad_magic";
    case DecodeStatus::Oversized: return "oversized";
    case DecodeStatus::BadChecksum: return "bad_checksum";
    }
    return "?";
}

uint64_t
fnv1a(const uint8_t *data, std::size_t len)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::vector<uint8_t>
encodeFrame(MsgType type, const std::vector<uint8_t> &payload,
            uint16_t version)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + payload.size());
    putU32(out, kFrameMagic);
    putU16(out, version);
    putU16(out, static_cast<uint16_t>(type));
    putU32(out, static_cast<uint32_t>(payload.size()));
    putU64(out, fnv1a(payload.data(), payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

void
FrameDecoder::feed(const uint8_t *data, std::size_t len)
{
    if (poisoned_)
        return;
    // Reclaim the already-consumed prefix before growing the buffer,
    // so a long-lived connection never accumulates dead bytes.
    if (consumed_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() +
                       static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buf_.insert(buf_.end(), data, data + len);
}

DecodeStatus
FrameDecoder::next(Frame *out)
{
    if (poisoned_)
        return poison_;
    auto poison = [&](DecodeStatus s) {
        poisoned_ = true;
        poison_ = s;
        return s;
    };

    const std::size_t avail = buf_.size() - consumed_;
    if (avail < kFrameHeaderBytes)
        return DecodeStatus::NeedMore;
    const uint8_t *h = buf_.data() + consumed_;

    if (getU32(h) != kFrameMagic)
        return poison(DecodeStatus::BadMagic);
    // The header layout is version-invariant: parse any version and
    // let the application decide what to do with a mismatched peer
    // (the front-end answers a reasoned HelloAck rejection).
    const uint16_t version = getU16(h + 4);
    const uint16_t type = getU16(h + 6);
    const uint32_t len = getU32(h + 8);
    if (len > kMaxPayloadBytes)
        return poison(DecodeStatus::Oversized);
    const uint64_t checksum = getU64(h + 12);

    if (avail < kFrameHeaderBytes + len)
        return DecodeStatus::NeedMore;
    const uint8_t *payload = h + kFrameHeaderBytes;
    if (fnv1a(payload, len) != checksum)
        return poison(DecodeStatus::BadChecksum);

    out->version = version;
    out->type = static_cast<MsgType>(type);
    out->payload.assign(payload, payload + len);
    consumed_ += kFrameHeaderBytes + len;
    return DecodeStatus::Ok;
}

} // namespace cinnamon::net
