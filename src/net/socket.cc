#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

namespace cinnamon::net {

namespace {

void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in
loopbackAddr(uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return addr;
}

} // namespace

Socket &
Socket::operator=(Socket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
Socket::release()
{
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

Socket
Socket::listenLoopback(uint16_t port, uint16_t *bound_port)
{
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid())
        return Socket();
    int one = 1;
    ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = loopbackAddr(port);
    if (::bind(s.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return Socket();
    if (::listen(s.fd(), 16) != 0)
        return Socket();
    if (bound_port != nullptr) {
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        auto *addr = reinterpret_cast<sockaddr *>(&bound);
        if (::getsockname(s.fd(), addr, &len) != 0)
            return Socket();
        *bound_port = ntohs(bound.sin_port);
    }
    return s;
}

Socket
Socket::connectLoopback(uint16_t port, double timeout_ms)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline =
        Clock::now() + std::chrono::duration<double, std::milli>(
                           timeout_ms);
    for (;;) {
        Socket s(::socket(AF_INET, SOCK_STREAM, 0));
        if (!s.valid())
            return Socket();
        sockaddr_in addr = loopbackAddr(port);
        if (::connect(s.fd(), reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            setNoDelay(s.fd());
            return s;
        }
        if (Clock::now() >= deadline)
            return Socket();
        // The listener may not be up yet (worker raced the
        // front-end); back off briefly and retry.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

Socket
Socket::accept()
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            setNoDelay(fd);
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

bool
Socket::sendAll(const uint8_t *data, std::size_t len)
{
    std::size_t sent = 0;
    while (sent < len) {
        const ssize_t n =
            ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

ssize_t
Socket::recvSome(uint8_t *buf, std::size_t len)
{
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, len, 0);
        if (n >= 0)
            return n;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

bool
Socket::setNonBlocking(bool on)
{
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want =
        on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd_, F_SETFL, want) == 0;
}

} // namespace cinnamon::net
