#include "fhe/evaluator.h"

#include <cmath>

namespace cinnamon::fhe {

namespace {

/** Relative scale mismatch tolerated when adding ciphertexts. */
constexpr double kScaleTolerance = 1e-6;

bool
scalesAgree(double a, double b)
{
    return std::abs(a - b) <= kScaleTolerance * std::max(a, b);
}

} // namespace

Ciphertext
Evaluator::encrypt(const rns::RnsPoly &plain, double scale,
                   const SecretKey &sk, Rng &rng) const
{
    CINN_ASSERT(plain.domain() == rns::Domain::Coeff,
                "encrypt expects a coefficient-domain plaintext");
    const rns::Basis basis = plain.basis();
    const std::size_t level = basis.size() - 1;

    rns::RnsPoly c1(ctx_->rns(), basis, rns::Domain::Eval);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        c1.setLimb(i, rng.uniformVector(
                          ctx_->n(),
                          ctx_->rns().modulus(basis[i]).value()));
    }

    auto e = rng.gaussianVector(ctx_->n());
    rns::RnsPoly me = plain;
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
        for (std::size_t j = 0; j < e.size(); ++j) {
            me.limb(i)[j] =
                mod.add(me.limb(i)[j], mod.fromSigned(e[j]));
        }
    }
    me.toEval();

    rns::RnsPoly c0 = c1.mul(sk.s.restrictTo(basis));
    c0.negateInPlace();
    c0.addInPlace(me);
    return Ciphertext{std::move(c0), std::move(c1), level, scale};
}

Ciphertext
Evaluator::encryptPublic(const rns::RnsPoly &plain, double scale,
                         const PublicKey &pk, Rng &rng) const
{
    CINN_ASSERT(plain.domain() == rns::Domain::Coeff,
                "encrypt expects a coefficient-domain plaintext");
    const rns::Basis basis = plain.basis();
    const std::size_t level = basis.size() - 1;

    // u ternary; c0 = pk.b * u + e0 + m; c1 = pk.a * u + e1.
    auto ut = rng.ternaryVector(ctx_->n());
    rns::RnsPoly u(ctx_->rns(), basis, rns::Domain::Coeff);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
        for (std::size_t j = 0; j < ut.size(); ++j)
            u.limb(i)[j] = mod.fromSigned(ut[j]);
    }
    u.toEval();

    auto addNoise = [&](rns::RnsPoly &p) {
        auto e = rng.gaussianVector(ctx_->n());
        rns::RnsPoly ep(ctx_->rns(), basis, rns::Domain::Coeff);
        for (std::size_t i = 0; i < basis.size(); ++i) {
            const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
            for (std::size_t j = 0; j < e.size(); ++j)
                ep.limb(i)[j] = mod.fromSigned(e[j]);
        }
        ep.toEval();
        p.addInPlace(ep);
    };

    rns::RnsPoly m = plain;
    m.toEval();

    rns::RnsPoly c0 = pk.b.restrictTo(basis).mul(u);
    addNoise(c0);
    c0.addInPlace(m);
    rns::RnsPoly c1 = pk.a.restrictTo(basis).mul(u);
    addNoise(c1);
    return Ciphertext{std::move(c0), std::move(c1), level, scale};
}

rns::RnsPoly
Evaluator::decrypt(const Ciphertext &ct, const SecretKey &sk) const
{
    rns::RnsPoly m = ct.c1.mul(sk.s.restrictTo(ct.c1.basis()));
    m.addInPlace(ct.c0);
    m.toCoeff();
    return m;
}

void
Evaluator::checkCompatible(const Ciphertext &a, const Ciphertext &b) const
{
    CINN_ASSERT(a.level == b.level,
                "ciphertext levels differ (" << a.level << " vs "
                                             << b.level << ")");
    CINN_ASSERT(scalesAgree(a.scale, b.scale),
                "ciphertext scales differ (" << a.scale << " vs "
                                             << b.scale << ")");
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    checkCompatible(a, b);
    return Ciphertext{a.c0.add(b.c0), a.c1.add(b.c1), a.level, a.scale};
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    checkCompatible(a, b);
    return Ciphertext{a.c0.sub(b.c0), a.c1.sub(b.c1), a.level, a.scale};
}

Ciphertext
Evaluator::negate(const Ciphertext &a) const
{
    Ciphertext out = a;
    out.c0.negateInPlace();
    out.c1.negateInPlace();
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const rns::RnsPoly &plain,
                    double plain_scale) const
{
    CINN_ASSERT(scalesAgree(a.scale, plain_scale),
                "plaintext scale must match the ciphertext scale");
    rns::RnsPoly p = plain;
    p.toEval();
    CINN_ASSERT(p.basis() == a.c0.basis(), "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.addInPlace(p);
    return out;
}

Ciphertext
Evaluator::mulPlain(const Ciphertext &a, const rns::RnsPoly &plain,
                    double plain_scale) const
{
    rns::RnsPoly p = plain;
    p.toEval();
    CINN_ASSERT(p.basis() == a.c0.basis(), "plaintext level mismatch");
    Ciphertext out;
    out.c0 = a.c0.mul(p);
    out.c1 = a.c1.mul(p);
    out.level = a.level;
    out.scale = a.scale * plain_scale;
    return out;
}

std::pair<rns::RnsPoly, rns::RnsPoly>
Evaluator::keySwitch(const rns::RnsPoly &target, std::size_t level,
                     const EvalKey &evk) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    CINN_ASSERT(target.basis() == ct_basis, "keySwitch basis mismatch");
    const rns::Basis ext_basis =
        rns::unionBasis(ct_basis, ctx_->specialBasis());

    rns::RnsPoly input = target;
    input.toCoeff();

    const auto digits = ctx_->digits(level);
    CINN_ASSERT(digits.size() <= evk.parts.size(),
                "evaluation key has too few digits");

    rns::RnsPoly acc0(ctx_->rns(), ext_basis, rns::Domain::Eval);
    rns::RnsPoly acc1(ctx_->rns(), ext_basis, rns::Domain::Eval);
    for (std::size_t j = 0; j < digits.size(); ++j) {
        rns::RnsPoly digit = input.restrictTo(digits[j]);
        rns::RnsPoly up = ctx_->tool().modUp(digit, ext_basis);
        up.toEval();
        acc0.addInPlace(up.mul(evk.parts[j].first.restrictTo(ext_basis)));
        acc1.addInPlace(up.mul(evk.parts[j].second.restrictTo(ext_basis)));
    }

    acc0.toCoeff();
    acc1.toCoeff();
    rns::RnsPoly out0 =
        ctx_->tool().modDown(acc0, ct_basis, ctx_->specialBasis());
    rns::RnsPoly out1 =
        ctx_->tool().modDown(acc1, ct_basis, ctx_->specialBasis());
    out0.toEval();
    out1.toEval();
    return {std::move(out0), std::move(out1)};
}

Ciphertext
Evaluator::mul(const Ciphertext &a, const Ciphertext &b,
               const EvalKey &relin) const
{
    CINN_ASSERT(a.level == b.level, "mul requires matching levels");
    rns::RnsPoly d0 = a.c0.mul(b.c0);
    rns::RnsPoly d1 = a.c0.mul(b.c1);
    d1.addInPlace(a.c1.mul(b.c0));
    rns::RnsPoly d2 = a.c1.mul(b.c1);

    auto [k0, k1] = keySwitch(d2, a.level, relin);
    d0.addInPlace(k0);
    d1.addInPlace(k1);
    return Ciphertext{std::move(d0), std::move(d1), a.level,
                      a.scale * b.scale};
}

Ciphertext
Evaluator::rescale(const Ciphertext &a) const
{
    CINN_ASSERT(a.level >= 1, "cannot rescale at level 0");
    const uint64_t q_last = ctx_->q(a.level);
    rns::RnsPoly c0 = a.c0;
    rns::RnsPoly c1 = a.c1;
    c0.toCoeff();
    c1.toCoeff();
    c0 = ctx_->tool().rescale(c0);
    c1 = ctx_->tool().rescale(c1);
    c0.toEval();
    c1.toEval();
    return Ciphertext{std::move(c0), std::move(c1), a.level - 1,
                      a.scale / static_cast<double>(q_last)};
}

Ciphertext
Evaluator::dropToLevel(const Ciphertext &a, std::size_t level) const
{
    CINN_ASSERT(level <= a.level, "dropToLevel cannot raise the level");
    const rns::Basis basis = ctx_->ciphertextBasis(level);
    return Ciphertext{a.c0.restrictTo(basis), a.c1.restrictTo(basis),
                      level, a.scale};
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, int steps,
                  const GaloisKeys &gks) const
{
    if (steps % static_cast<long long>(ctx_->slots()) == 0)
        return a;
    const uint64_t g = ctx_->galoisForRotation(steps);
    const EvalKey &evk = gks.get(g);

    rns::RnsPoly c0 = a.c0;
    rns::RnsPoly c1 = a.c1;
    c0.toCoeff();
    c1.toCoeff();
    rns::RnsPoly r0 = c0.automorphism(g);
    rns::RnsPoly r1 = c1.automorphism(g);
    r0.toEval();
    r1.toEval();

    auto [k0, k1] = keySwitch(r1, a.level, evk);
    k0.addInPlace(r0);
    return Ciphertext{std::move(k0), std::move(k1), a.level, a.scale};
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a, const GaloisKeys &gks) const
{
    const uint64_t g = ctx_->galoisForConjugation();
    const EvalKey &evk = gks.get(g);

    rns::RnsPoly c0 = a.c0;
    rns::RnsPoly c1 = a.c1;
    c0.toCoeff();
    c1.toCoeff();
    rns::RnsPoly r0 = c0.automorphism(g);
    rns::RnsPoly r1 = c1.automorphism(g);
    r0.toEval();
    r1.toEval();

    auto [k0, k1] = keySwitch(r1, a.level, evk);
    k0.addInPlace(r0);
    return Ciphertext{std::move(k0), std::move(k1), a.level, a.scale};
}

} // namespace cinnamon::fhe
