/**
 * @file
 * CKKS bootstrapping (Section 2, "Bootstrapping").
 *
 * Bootstrapping refreshes a ciphertext's multiplicative budget. The
 * pipeline follows Cheon et al. / Han-Ki:
 *
 *  1. ModRaise — reinterpret the exhausted ciphertext (level 0) over
 *     the full prime chain; the plaintext becomes t = Δm + q0·I for a
 *     small integer polynomial I.
 *  2. CoeffToSlot — a homomorphic linear transform (V^{-1} via BSGS)
 *     that moves coefficients into slots, split into real and
 *     imaginary parts with one conjugation.
 *  3. EvalMod — evaluate x ↦ (1/2π)·sin(2πx) ≈ x mod 1 on x = t/q0
 *     using a degree-d Taylor expansion of exp(2πi·x/2^r) followed by
 *     r repeated squarings; the sine is (e - conj(e)) / 2i.
 *  4. SlotToCoeff — the inverse transform (V) back to coefficients.
 *
 * The bootstrap consumes a fixed number of levels and returns a
 * ciphertext at a higher level than it entered with, exactly the
 * budget-refresh contract the paper's benchmarks rely on. The
 * homomorphic structure (two linear transforms full of rotations plus
 * a polynomial evaluation full of multiplies) is also what the
 * workload generators in src/workloads count when they emit
 * paper-scale instruction streams.
 */

#ifndef CINNAMON_FHE_BOOTSTRAP_H_
#define CINNAMON_FHE_BOOTSTRAP_H_

#include <memory>

#include "fhe/linear.h"

namespace cinnamon::fhe {

/** Tunable bootstrap knobs. */
struct BootstrapConfig
{
    std::size_t bsgs_g = 12;  ///< BSGS baby-step count for C2S/S2C
    int taylor_degree = 11;   ///< exp Taylor degree
    int squarings = 7;        ///< r: halvings before / squarings after
};

/** Counters describing one bootstrap invocation. */
struct BootstrapStats
{
    std::size_t rotations = 0;
    std::size_t multiplications = 0;
    std::size_t conjugations = 0;
    std::size_t levels_consumed = 0;
};

/**
 * Precomputes transform diagonals and key material, then bootstraps
 * ciphertexts. One instance is reusable for any number of bootstraps.
 */
class Bootstrapper
{
  public:
    /**
     * @param keygen used to derive the rotation/conjugation keys the
     *        transforms need; the secret key is only used to generate
     *        evaluation keys (as a real deployment's client would).
     */
    Bootstrapper(const CkksContext &ctx, const Encoder &encoder,
                 const Evaluator &eval, KeyGenerator &keygen,
                 const SecretKey &sk, BootstrapConfig config = {});

    /**
     * Refresh `ct` (any level; only its level-0 content is used) to a
     * high-level ciphertext encrypting the same slots.
     */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    /** Raise a level-0 ciphertext to the top of the chain (step 1). */
    Ciphertext modRaise(const Ciphertext &ct) const;

    const BootstrapStats &lastStats() const { return stats_; }
    const BootstrapConfig &config() const { return config_; }

  private:
    Ciphertext coeffToSlot(const Ciphertext &ct, bool imag_part) const;
    Ciphertext evalMod(const Ciphertext &ct, bool imag_input) const;
    Ciphertext slotToCoeff(const Ciphertext &re,
                           const Ciphertext &im) const;

    const CkksContext *ctx_;
    const Encoder *encoder_;
    const Evaluator *eval_;
    BootstrapConfig config_;
    EvalKey relin_;
    GaloisKeys gks_;
    Diagonals c2s_diags_; ///< V^{-1} / 2^{r+1}
    Diagonals s2c_diags_; ///< V
    mutable BootstrapStats stats_;
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_BOOTSTRAP_H_
