/**
 * @file
 * CKKS encoder: complex slot vectors ↔ RNS plaintext polynomials.
 *
 * CKKS batches n/2 complex values into one polynomial via the
 * canonical embedding (Figure 2 of the paper). We use the HEAAN
 * convention: the special FFT evaluates a real polynomial at the odd
 * powers ζ^{5^j} of the primitive 2n-th root of unity, and slot j of
 * the decoded vector is m(ζ^{5^j}) / Δ. Under this ordering the Galois
 * automorphism X → X^5 rotates slots by one position and X → X^{-1}
 * conjugates every slot, which is what homomorphic rotation relies on.
 */

#ifndef CINNAMON_FHE_ENCODER_H_
#define CINNAMON_FHE_ENCODER_H_

#include <complex>
#include <vector>

#include "fhe/params.h"
#include "rns/poly.h"

namespace cinnamon::fhe {

using Cplx = std::complex<double>;

/**
 * Encoder/decoder tied to one CkksContext.
 *
 * encode() produces a coefficient-domain RnsPoly at the requested
 * level whose decryption decodes back to the input slots (up to CKKS
 * approximation error).
 */
class Encoder
{
  public:
    explicit Encoder(const CkksContext &ctx);

    std::size_t slots() const { return slots_; }

    /**
     * Encode complex slots into a plaintext polynomial.
     *
     * @param values up to n/2 complex values (padded with zeros).
     * @param level target level (basis q_0..q_level).
     * @param scale encoding scale Δ (defaults to the context scale).
     */
    rns::RnsPoly encode(const std::vector<Cplx> &values, std::size_t level,
                        double scale = 0.0) const;

    /** Encode a constant into all slots. */
    rns::RnsPoly encodeConstant(Cplx value, std::size_t level,
                                double scale = 0.0) const;

    /**
     * The canonical-embedding transform V as a plain linear map on
     * slot vectors (coefficient pairs → slots). Exposed so
     * bootstrapping can build the CoeffToSlot/SlotToCoeff matrices.
     */
    std::vector<Cplx> embedForward(std::vector<Cplx> vals) const;

    /** The inverse transform V^{-1} (slots → coefficient pairs). */
    std::vector<Cplx> embedInverse(std::vector<Cplx> vals) const;

    /**
     * Decode a plaintext polynomial back into n/2 complex slots.
     *
     * @param plain coefficient-domain polynomial over some prefix
     *        basis q_0..q_l.
     * @param scale the scale the polynomial carries.
     */
    std::vector<Cplx> decode(const rns::RnsPoly &plain, double scale) const;

  private:
    /** Slot → coefficient transform (inverse special FFT). */
    void fftSpecialInv(std::vector<Cplx> &vals) const;

    /** Coefficient → slot transform (forward special FFT). */
    void fftSpecial(std::vector<Cplx> &vals) const;

    const CkksContext *ctx_;
    std::size_t slots_;
    /** 5^j mod 2n, j in [0, n/2). */
    std::vector<uint32_t> rot_group_;
    /** exp(2 pi i j / 2n), j in [0, 2n]. */
    std::vector<Cplx> ksi_pows_;
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_ENCODER_H_
