#include "fhe/encoder.h"

#include <cmath>

#include "common/bigint.h"
#include "common/logging.h"

namespace cinnamon::fhe {

namespace {

void
arrayBitReverse(std::vector<Cplx> &vals)
{
    const std::size_t size = vals.size();
    for (std::size_t i = 1, j = 0; i < size; ++i) {
        std::size_t bit = size >> 1;
        for (; j >= bit; bit >>= 1)
            j -= bit;
        j += bit;
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

} // namespace

Encoder::Encoder(const CkksContext &ctx) : ctx_(&ctx), slots_(ctx.n() / 2)
{
    const std::size_t two_n = 2 * ctx.n();
    rot_group_.resize(slots_);
    uint64_t g = 1;
    for (std::size_t i = 0; i < slots_; ++i) {
        rot_group_[i] = static_cast<uint32_t>(g);
        g = (g * 5) % two_n;
    }
    ksi_pows_.resize(two_n + 1);
    for (std::size_t j = 0; j <= two_n; ++j) {
        const double angle = 2.0 * M_PI * j / static_cast<double>(two_n);
        ksi_pows_[j] = Cplx(std::cos(angle), std::sin(angle));
    }
}

void
Encoder::fftSpecial(std::vector<Cplx> &vals) const
{
    const std::size_t size = vals.size();
    const std::size_t m = 2 * ctx_->n();
    arrayBitReverse(vals);
    for (std::size_t len = 2; len <= size; len <<= 1) {
        for (std::size_t i = 0; i < size; i += len) {
            const std::size_t lenh = len >> 1;
            const std::size_t lenq = len << 2;
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx = (rot_group_[j] % lenq) * (m / lenq);
                Cplx u = vals[i + j];
                Cplx v = vals[i + j + lenh] * ksi_pows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
Encoder::fftSpecialInv(std::vector<Cplx> &vals) const
{
    const std::size_t size = vals.size();
    const std::size_t m = 2 * ctx_->n();
    for (std::size_t len = size; len >= 2; len >>= 1) {
        for (std::size_t i = 0; i < size; i += len) {
            const std::size_t lenh = len >> 1;
            const std::size_t lenq = len << 2;
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx =
                    (lenq - (rot_group_[j] % lenq)) * (m / lenq);
                Cplx u = vals[i + j] + vals[i + j + lenh];
                Cplx v = (vals[i + j] - vals[i + j + lenh]) * ksi_pows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    arrayBitReverse(vals);
    for (auto &v : vals)
        v /= static_cast<double>(size);
}

std::vector<Cplx>
Encoder::embedForward(std::vector<Cplx> vals) const
{
    CINN_ASSERT(vals.size() == slots_, "embed expects a full slot vector");
    fftSpecial(vals);
    return vals;
}

std::vector<Cplx>
Encoder::embedInverse(std::vector<Cplx> vals) const
{
    CINN_ASSERT(vals.size() == slots_, "embed expects a full slot vector");
    fftSpecialInv(vals);
    return vals;
}

rns::RnsPoly
Encoder::encode(const std::vector<Cplx> &values, std::size_t level,
                double scale) const
{
    if (scale == 0.0)
        scale = ctx_->params().scale;
    CINN_ASSERT(values.size() <= slots_, "too many slot values");

    std::vector<Cplx> u(slots_, Cplx(0, 0));
    std::copy(values.begin(), values.end(), u.begin());
    fftSpecialInv(u);

    const std::size_t n = ctx_->n();
    const rns::Basis basis = ctx_->ciphertextBasis(level);
    rns::RnsPoly out(ctx_->rns(), basis, rns::Domain::Coeff);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
        auto limb = out.limb(i);
        for (std::size_t j = 0; j < slots_; ++j) {
            const double re = u[j].real() * scale;
            const double im = u[j].imag() * scale;
            CINN_ASSERT(std::abs(re) < std::ldexp(1.0, 62) &&
                            std::abs(im) < std::ldexp(1.0, 62),
                        "encoded coefficient exceeds 62 bits; "
                        "reduce the scale or input magnitude");
            limb[j] = mod.fromSigned(static_cast<int64_t>(std::llround(re)));
            limb[j + n / 2] =
                mod.fromSigned(static_cast<int64_t>(std::llround(im)));
        }
    }
    return out;
}

rns::RnsPoly
Encoder::encodeConstant(Cplx value, std::size_t level, double scale) const
{
    return encode(std::vector<Cplx>(slots_, value), level, scale);
}

std::vector<Cplx>
Encoder::decode(const rns::RnsPoly &plain, double scale) const
{
    CINN_ASSERT(plain.domain() == rns::Domain::Coeff,
                "decode requires the coefficient domain");
    const std::size_t n = ctx_->n();
    const std::size_t ell = plain.numLimbs();

    // Exact CRT composition: x = sum_j y_j * Qhat_j mod Q, centered.
    // y_j = x_j * (Q/q_j)^{-1} mod q_j.
    std::vector<uint64_t> qhat_inv(ell);
    std::vector<BigUInt> qhat(ell);
    BigUInt q_total(1);
    for (std::size_t j = 0; j < ell; ++j) {
        const rns::Modulus &qj = plain.limbModulus(j);
        uint64_t prod = 1;
        BigUInt big(1);
        for (std::size_t k = 0; k < ell; ++k) {
            if (k == j)
                continue;
            prod = qj.mul(prod, plain.limbModulus(k).value() % qj.value());
            big.mulWord(plain.limbModulus(k).value());
        }
        qhat_inv[j] = qj.inv(prod);
        qhat[j] = big;
        q_total.mulWord(qj.value());
    }
    BigUInt q_half = q_total.shiftRight(1);

    std::vector<double> coeffs(n);
    for (std::size_t c = 0; c < n; ++c) {
        BigUInt acc(0);
        for (std::size_t j = 0; j < ell; ++j) {
            const rns::Modulus &qj = plain.limbModulus(j);
            BigUInt term = qhat[j];
            term.mulWord(qj.mul(plain.limb(j)[c], qhat_inv[j]));
            acc.add(term);
        }
        // Reduce mod Q (acc < ell * Q, so a few subtractions suffice).
        while (acc.compare(q_total) >= 0)
            acc.sub(q_total);
        if (acc.compare(q_half) > 0) {
            BigUInt neg = q_total;
            neg.sub(acc);
            coeffs[c] = -neg.toDouble();
        } else {
            coeffs[c] = acc.toDouble();
        }
    }

    std::vector<Cplx> u(slots_);
    for (std::size_t j = 0; j < slots_; ++j)
        u[j] = Cplx(coeffs[j] / scale, coeffs[j + n / 2] / scale);
    fftSpecial(u);
    return u;
}

} // namespace cinnamon::fhe
