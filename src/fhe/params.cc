#include "fhe/params.h"

#include <cmath>

#include "common/logging.h"
#include "rns/prime_gen.h"

namespace cinnamon::fhe {

CkksParams
CkksParams::makeTest(std::size_t n, std::size_t levels, std::size_t dnum)
{
    CkksParams p;
    p.n = n;
    p.levels = levels;
    p.dnum = dnum;
    // Special primes must cover the largest digit for hybrid
    // keyswitching noise to stay bounded (P > max digit product).
    p.special = (levels + dnum - 1) / dnum;
    p.first_prime_bits = 50;
    p.scale_bits = 40;
    p.scale = std::ldexp(1.0, p.scale_bits);
    return p;
}

CkksParams
CkksParams::makePaper()
{
    // Section 6.2: ring dimension 64K, bootstrap raises to level 51.
    CkksParams p;
    p.n = 1ULL << 16;
    p.levels = 52;   // q_0..q_51
    p.dnum = 4;      // BCU supports up to 13 input limbs => alpha <= 13
    p.special = 13;
    p.first_prime_bits = 50;
    p.scale_bits = 40;
    p.scale = std::ldexp(1.0, p.scale_bits);
    return p;
}

CkksContext::CkksContext(const CkksParams &params) : params_(params)
{
    CINN_FATAL_UNLESS(params.levels >= 1, "need at least one prime");
    CINN_FATAL_UNLESS(params.dnum >= 1 && params.dnum <= params.levels,
                      "dnum must be in [1, levels]");
    // q_0 is wider (integer headroom); the rest sit near the scale.
    auto q0 = rns::generateNttPrimes(params.n, params.first_prime_bits, 1);
    auto qs = rns::generateNttPrimes(params.n, params.scale_bits,
                                     params.levels - 1, q0);
    auto exclude = q0;
    exclude.insert(exclude.end(), qs.begin(), qs.end());
    auto ps = rns::generateNttPrimes(params.n, params.first_prime_bits,
                                     params.special, exclude);

    std::vector<uint64_t> all = q0;
    all.insert(all.end(), qs.begin(), qs.end());
    all.insert(all.end(), ps.begin(), ps.end());
    rns_ = std::make_unique<rns::RnsContext>(params.n, all);
    tool_ = std::make_unique<rns::RnsTool>(*rns_);
}

rns::Basis
CkksContext::ciphertextBasis(std::size_t level) const
{
    CINN_ASSERT(level < params_.levels, "level out of range");
    return rns::rangeBasis(0, static_cast<uint32_t>(level + 1));
}

rns::Basis
CkksContext::specialBasis() const
{
    return rns::rangeBasis(static_cast<uint32_t>(params_.levels),
                           static_cast<uint32_t>(params_.levels +
                                                 params_.special));
}

rns::Basis
CkksContext::keyBasis() const
{
    return rns::rangeBasis(0, static_cast<uint32_t>(params_.levels +
                                                    params_.special));
}

std::vector<rns::Basis>
CkksContext::digits(std::size_t level) const
{
    const std::size_t alpha = (params_.levels + params_.dnum - 1) /
                              params_.dnum;
    std::vector<rns::Basis> out;
    for (std::size_t j = 0; j * alpha <= level; ++j) {
        const uint32_t lo = static_cast<uint32_t>(j * alpha);
        const uint32_t hi = static_cast<uint32_t>(
            std::min((j + 1) * alpha, level + 1));
        out.push_back(rns::rangeBasis(lo, hi));
    }
    return out;
}

uint64_t
CkksContext::q(std::size_t i) const
{
    return rns_->modulus(static_cast<uint32_t>(i)).value();
}

uint64_t
CkksContext::galoisForRotation(int steps) const
{
    const std::size_t slots = params_.n / 2;
    const uint64_t two_n = 2 * params_.n;
    // Normalize steps into [0, slots).
    long long r = steps % static_cast<long long>(slots);
    if (r < 0)
        r += static_cast<long long>(slots);
    uint64_t g = 1;
    for (long long i = 0; i < r; ++i)
        g = (g * 5) % two_n;
    return g;
}

} // namespace cinnamon::fhe
