/**
 * @file
 * CKKS parameter sets.
 *
 * A parameter set fixes the ring dimension n, the ciphertext prime
 * chain q_0..q_L (level L = multiplicative budget, Section 2), the
 * keyswitching extension primes p_0..p_{k-1} (the paper's basis E),
 * the number of keyswitch digits (dnum), and the encoding scale.
 *
 * Two families are provided:
 *  - test parameters: small n (2^10..2^13) for fast functional tests;
 *  - paper parameters: n = 64K, 28-bit datapath metadata used by the
 *    compiler and simulator (no data-plane computation at this size).
 */

#ifndef CINNAMON_FHE_PARAMS_H_
#define CINNAMON_FHE_PARAMS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "rns/base_conv.h"
#include "rns/context.h"

namespace cinnamon::fhe {

/** Static description of a CKKS parameter set. */
struct CkksParams
{
    std::size_t n = 0;          ///< ring dimension (power of two)
    std::size_t levels = 0;     ///< L + 1 ciphertext primes
    std::size_t special = 0;    ///< extension primes (paper's basis E)
    std::size_t dnum = 0;       ///< keyswitch digits at full level
    int first_prime_bits = 0;   ///< q_0 width (integer part head-room)
    int scale_bits = 0;         ///< q_1..q_L width ≈ log2(scale)
    double scale = 0.0;         ///< encoding scale Δ

    /**
     * Small parameters for functional testing.
     *
     * @param n ring dimension.
     * @param levels number of ciphertext primes (L + 1).
     * @param dnum keyswitch digit count.
     */
    static CkksParams makeTest(std::size_t n = 1 << 12,
                               std::size_t levels = 6,
                               std::size_t dnum = 3);

    /**
     * The paper's evaluation parameters (Section 6.2): n = 64K,
     * 128-bit security, bootstrap from level 2 to 51. Intended for
     * compiler/simulator use; instantiating ciphertexts at this size
     * is functional but slow.
     */
    static CkksParams makePaper();
};

/**
 * Instantiated CKKS context: the RNS prime chain with NTT tables,
 * conversion caches, and derived bases.
 *
 * Prime layout inside the RnsContext: indices [0, levels) are the
 * ciphertext chain q_0..q_L; indices [levels, levels+special) are the
 * extension primes.
 */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const rns::RnsContext &rns() const { return *rns_; }
    rns::RnsTool &tool() const { return *tool_; }

    std::size_t n() const { return params_.n; }
    std::size_t slots() const { return params_.n / 2; }

    /** Ciphertext basis at a level: {q_0..q_level}. */
    rns::Basis ciphertextBasis(std::size_t level) const;

    /** The extension (special-prime) basis E. */
    rns::Basis specialBasis() const;

    /** Full key basis Q ∪ E. */
    rns::Basis keyBasis() const;

    /** Top ciphertext level L. */
    std::size_t maxLevel() const { return params_.levels - 1; }

    /**
     * Digit decomposition of the chain prefix {q_0..q_level}: up to
     * dnum contiguous groups of alpha = ceil(levels/dnum) primes,
     * trimmed to the live prefix (Section 2 "Digits").
     */
    std::vector<rns::Basis> digits(std::size_t level) const;

    /** Value of ciphertext prime i. */
    uint64_t q(std::size_t i) const;

    /** Galois element implementing a rotation by `steps` slots. */
    uint64_t galoisForRotation(int steps) const;

    /** Galois element implementing slot conjugation. */
    uint64_t galoisForConjugation() const { return 2 * params_.n - 1; }

  private:
    CkksParams params_;
    std::unique_ptr<rns::RnsContext> rns_;
    mutable std::unique_ptr<rns::RnsTool> tool_;
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_PARAMS_H_
