#include "fhe/linear.h"

#include <algorithm>
#include <cmath>

namespace cinnamon::fhe {

Diagonals
diagonalsOf(const std::vector<std::vector<Cplx>> &matrix)
{
    const std::size_t dim = matrix.size();
    Diagonals out;
    for (std::size_t k = 0; k < dim; ++k) {
        std::vector<Cplx> diag(dim);
        bool nonzero = false;
        for (std::size_t r = 0; r < dim; ++r) {
            diag[r] = matrix[r][(r + k) % dim];
            if (std::abs(diag[r]) > 0)
                nonzero = true;
        }
        if (nonzero)
            out.emplace(static_cast<int>(k), std::move(diag));
    }
    return out;
}

std::vector<int>
bsgsRotations(const Diagonals &diags, std::size_t g)
{
    std::vector<int> rots;
    for (std::size_t j = 1; j < g; ++j)
        rots.push_back(static_cast<int>(j));
    for (const auto &[k, d] : diags) {
        (void)d;
        const int giant = (k / static_cast<int>(g)) * static_cast<int>(g);
        if (giant != 0)
            rots.push_back(giant);
    }
    std::sort(rots.begin(), rots.end());
    rots.erase(std::unique(rots.begin(), rots.end()), rots.end());
    return rots;
}

Ciphertext
applyLinearTransform(const Evaluator &eval, const Encoder &encoder,
                     const Ciphertext &ct, const Diagonals &diags,
                     const GaloisKeys &gks, std::size_t g,
                     double plain_scale)
{
    CINN_ASSERT(!diags.empty(), "linear transform needs diagonals");
    CINN_ASSERT(g >= 1, "BSGS parameter must be positive");
    const auto &ctx = eval.context();
    if (plain_scale == 0.0)
        plain_scale = ctx.params().scale;
    const std::size_t slots = ctx.slots();

    // Baby steps: rot_j(ct) for every needed j in [0, g).
    std::vector<bool> need_baby(g, false);
    for (const auto &[k, d] : diags) {
        (void)d;
        CINN_ASSERT(k >= 0 && static_cast<std::size_t>(k) < slots,
                    "diagonal index out of range");
        need_baby[k % g] = true;
    }
    std::vector<Ciphertext> baby(g);
    for (std::size_t j = 0; j < g; ++j) {
        if (!need_baby[j])
            continue;
        baby[j] = j == 0 ? ct : eval.rotate(ct, static_cast<int>(j), gks);
    }

    // Group diagonals by giant step i = k / g.
    std::map<int, std::vector<int>> by_giant;
    for (const auto &[k, d] : diags) {
        (void)d;
        by_giant[k / static_cast<int>(g)].push_back(k);
    }

    Ciphertext acc;
    for (const auto &[i, ks] : by_giant) {
        const int giant = i * static_cast<int>(g);
        Ciphertext inner;
        for (int k : ks) {
            // Encode the diagonal pre-rotated by -giant so the final
            // giant-step rotation aligns it: rot_{-ig}(d)[r] = d[r-ig].
            const auto &d = diags.at(k);
            std::vector<Cplx> rotated(slots, Cplx(0, 0));
            for (std::size_t r = 0; r < slots; ++r)
                rotated[r] = d[(r + slots - giant % slots) % slots];
            auto plain = encoder.encode(rotated, ct.level, plain_scale);
            auto term = eval.mulPlain(baby[k % g], plain, plain_scale);
            inner = inner.valid() ? eval.add(inner, term) : term;
        }
        if (giant != 0)
            inner = eval.rotate(inner, giant, gks);
        acc = acc.valid() ? eval.add(acc, inner) : inner;
    }
    return acc;
}

Ciphertext
rotateAccumulate(const Evaluator &eval, const Ciphertext &ct, int step,
                 std::size_t span, const GaloisKeys &gks)
{
    CINN_ASSERT(span >= 1 && (span & (span - 1)) == 0,
                "span must be a power of two");
    Ciphertext acc = ct;
    int stride = step;
    for (std::size_t s = 1; s < span; s <<= 1) {
        acc = eval.add(acc, eval.rotate(acc, stride, gks));
        stride *= 2;
    }
    return acc;
}

} // namespace cinnamon::fhe
