/**
 * @file
 * A CKKS ciphertext: two RNS polynomials plus scale/level metadata.
 *
 * Decryption computes c0 + c1 * s ≈ Δ * m over the level's prime
 * chain. The level is the ciphertext's remaining multiplicative
 * budget (Section 2, "Multiplicative Budget"): each rescale after a
 * multiplication drops one prime from the basis.
 */

#ifndef CINNAMON_FHE_CIPHERTEXT_H_
#define CINNAMON_FHE_CIPHERTEXT_H_

#include <cstddef>

#include "rns/poly.h"

namespace cinnamon::fhe {

/** A two-polynomial CKKS ciphertext. Polynomials live in Eval domain. */
struct Ciphertext
{
    rns::RnsPoly c0;
    rns::RnsPoly c1;
    std::size_t level = 0;
    double scale = 0.0;

    bool valid() const { return c0.valid() && c1.valid(); }
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_CIPHERTEXT_H_
