/**
 * @file
 * CKKS key material and key generation.
 *
 * Evaluation keys follow the hybrid (digit-decomposed) keyswitching
 * scheme the paper assumes (Figure 4): the chain is split into dnum
 * digits; the key for digit j encrypts P * g_j * s_old over the
 * extended basis Q ∪ E, where P = prod(E) and g_j is the CRT
 * "selector" integer that is ≡ 1 mod every prime of digit j and
 * ≡ 0 mod every other ciphertext prime. Because the selector is
 * multiplied by P, its residues modulo the extension primes are
 * irrelevant (they carry a factor P ≡ 0), so the per-prime factor
 * reduces to (P mod q) * [q ∈ digit j] — no big-integer arithmetic is
 * required anywhere in key generation.
 */

#ifndef CINNAMON_FHE_KEYS_H_
#define CINNAMON_FHE_KEYS_H_

#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "fhe/params.h"
#include "rns/poly.h"

namespace cinnamon::fhe {

/** The secret key: a ternary polynomial over the full key basis. */
struct SecretKey
{
    rns::RnsPoly s; ///< evaluation domain, basis Q ∪ E
};

/** A public encryption key (b, a) with b = -a s + e over Q. */
struct PublicKey
{
    rns::RnsPoly b;
    rns::RnsPoly a;
};

/**
 * An evaluation key: one (b_j, a_j) pair per digit, over Q ∪ E, with
 * b_j = -a_j s + e_j + (P mod q)[q ∈ D_j] * s_old.
 */
struct EvalKey
{
    std::vector<std::pair<rns::RnsPoly, rns::RnsPoly>> parts;
};

/** A set of rotation/conjugation keys indexed by Galois element. */
struct GaloisKeys
{
    std::map<uint64_t, EvalKey> keys;

    bool has(uint64_t galois) const { return keys.count(galois) != 0; }

    const EvalKey &
    get(uint64_t galois) const
    {
        auto it = keys.find(galois);
        CINN_ASSERT(it != keys.end(),
                    "missing Galois key for element " << galois);
        return it->second;
    }
};

/** Generates all key material from a seeded Rng. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &ctx, uint64_t seed);

    /**
     * A generator whose stream is a pure function of (this generator's
     * seed, identity). Evaluation keys drawn from a derived generator
     * are independent of the order they are requested in, so compiled
     * programs that load the same keys always see the same key bits no
     * matter how the compiler scheduled the loads.
     */
    KeyGenerator derived(const std::string &identity) const;

    /** Sample a fresh ternary secret key. */
    SecretKey secretKey();

    /** Public key for the given secret. */
    PublicKey publicKey(const SecretKey &sk);

    /** Relinearization key: switches s^2 back to s. */
    EvalKey relinKey(const SecretKey &sk);

    /** Rotation key for a specific Galois element. */
    EvalKey galoisKey(const SecretKey &sk, uint64_t galois);

    /** Rotation keys for a set of slot rotations (plus conjugation). */
    GaloisKeys galoisKeys(const SecretKey &sk,
                          const std::vector<int> &rotations,
                          bool include_conjugation = false);

    /**
     * Generic keyswitching key: encrypts old_secret (over Q ∪ E,
     * evaluation domain) so keyswitching re-encrypts a ciphertext
     * component times old_secret under sk.
     */
    EvalKey makeKeySwitchKey(const SecretKey &sk,
                             const rns::RnsPoly &old_secret);

    /**
     * Keyswitching key for an explicit digit partition (the digit
     * choice is free — Section 4.3.1 notes all digit selections are
     * interchangeable; output-aggregation keyswitching uses the
     * per-chip limb partition as its digits).
     */
    EvalKey makeKeySwitchKeyForDigits(const SecretKey &sk,
                                      const rns::RnsPoly &old_secret,
                                      const std::vector<rns::Basis> &digits);

    /** Galois key material for an explicit digit partition. */
    EvalKey galoisKeyForDigits(const SecretKey &sk, uint64_t galois,
                               const std::vector<rns::Basis> &digits);

    Rng &rng() { return rng_; }

    uint64_t seed() const { return seed_; }

  private:
    /** Sample a uniform polynomial over `basis` in the Eval domain. */
    rns::RnsPoly sampleUniform(const rns::Basis &basis);

    /** Sample a gaussian error polynomial, returned in Eval domain. */
    rns::RnsPoly sampleError(const rns::Basis &basis);

    const CkksContext *ctx_;
    uint64_t seed_;
    Rng rng_;
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_KEYS_H_
