#include "fhe/keys.h"

#include <algorithm>

namespace cinnamon::fhe {

KeyGenerator::KeyGenerator(const CkksContext &ctx, uint64_t seed)
    : ctx_(&ctx), seed_(seed), rng_(seed)
{
}

KeyGenerator
KeyGenerator::derived(const std::string &identity) const
{
    // FNV-1a over the identity, mixed with the master seed.
    uint64_t h = 14695981039346656037ull ^ seed_;
    for (char c : identity) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return KeyGenerator(*ctx_, h);
}

rns::RnsPoly
KeyGenerator::sampleUniform(const rns::Basis &basis)
{
    rns::RnsPoly p(ctx_->rns(), basis, rns::Domain::Eval);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const uint64_t q = ctx_->rns().modulus(basis[i]).value();
        p.setLimb(i, rng_.uniformVector(ctx_->n(), q));
    }
    return p;
}

rns::RnsPoly
KeyGenerator::sampleError(const rns::Basis &basis)
{
    auto e = rng_.gaussianVector(ctx_->n());
    rns::RnsPoly p(ctx_->rns(), basis, rns::Domain::Coeff);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
        for (std::size_t j = 0; j < e.size(); ++j)
            p.limb(i)[j] = mod.fromSigned(e[j]);
    }
    p.toEval();
    return p;
}

SecretKey
KeyGenerator::secretKey()
{
    auto t = rng_.ternaryVector(ctx_->n());
    const rns::Basis basis = ctx_->keyBasis();
    rns::RnsPoly s(ctx_->rns(), basis, rns::Domain::Coeff);
    for (std::size_t i = 0; i < basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(basis[i]);
        for (std::size_t j = 0; j < t.size(); ++j)
            s.limb(i)[j] = mod.fromSigned(t[j]);
    }
    s.toEval();
    return SecretKey{std::move(s)};
}

PublicKey
KeyGenerator::publicKey(const SecretKey &sk)
{
    const rns::Basis basis = ctx_->ciphertextBasis(ctx_->maxLevel());
    rns::RnsPoly a = sampleUniform(basis);
    rns::RnsPoly e = sampleError(basis);
    rns::RnsPoly b = a.mul(sk.s.restrictTo(basis));
    b.negateInPlace();
    b.addInPlace(e);
    return PublicKey{std::move(b), std::move(a)};
}

EvalKey
KeyGenerator::makeKeySwitchKey(const SecretKey &sk,
                               const rns::RnsPoly &old_secret)
{
    return makeKeySwitchKeyForDigits(sk, old_secret,
                                     ctx_->digits(ctx_->maxLevel()));
}

EvalKey
KeyGenerator::makeKeySwitchKeyForDigits(
    const SecretKey &sk, const rns::RnsPoly &old_secret,
    const std::vector<rns::Basis> &digits)
{
    const rns::Basis key_basis = ctx_->keyBasis();
    CINN_ASSERT(old_secret.basis() == key_basis &&
                    old_secret.domain() == rns::Domain::Eval,
                "old_secret must span the key basis in Eval domain");

    // P mod q for every prime of the key basis.
    const rns::Basis special = ctx_->specialBasis();
    std::vector<uint64_t> p_mod(key_basis.size());
    for (std::size_t i = 0; i < key_basis.size(); ++i) {
        const rns::Modulus &mod = ctx_->rns().modulus(key_basis[i]);
        uint64_t p = 1;
        for (uint32_t sp : special)
            p = mod.mul(p, ctx_->rns().modulus(sp).value() % mod.value());
        p_mod[i] = p;
    }

    EvalKey evk;
    for (const rns::Basis &digit : digits) {
        rns::RnsPoly a = sampleUniform(key_basis);
        rns::RnsPoly b = sampleError(key_basis);
        rns::RnsPoly as = a.mul(sk.s);
        b.subInPlace(as);

        // Add (P mod q) * [q in digit] * old_secret per limb.
        std::vector<uint64_t> factors(key_basis.size(), 0);
        for (std::size_t i = 0; i < key_basis.size(); ++i) {
            if (std::find(digit.begin(), digit.end(), key_basis[i]) !=
                digit.end()) {
                factors[i] = p_mod[i];
            }
        }
        rns::RnsPoly payload = old_secret;
        payload.mulScalarPerLimb(factors);
        b.addInPlace(payload);

        evk.parts.emplace_back(std::move(b), std::move(a));
    }
    return evk;
}

EvalKey
KeyGenerator::relinKey(const SecretKey &sk)
{
    rns::RnsPoly s2 = sk.s.mul(sk.s);
    return makeKeySwitchKey(sk, s2);
}

EvalKey
KeyGenerator::galoisKey(const SecretKey &sk, uint64_t galois)
{
    rns::RnsPoly s_coeff = sk.s;
    s_coeff.toCoeff();
    rns::RnsPoly s_auto = s_coeff.automorphism(galois);
    s_auto.toEval();
    return makeKeySwitchKey(sk, s_auto);
}

EvalKey
KeyGenerator::galoisKeyForDigits(const SecretKey &sk, uint64_t galois,
                                 const std::vector<rns::Basis> &digits)
{
    rns::RnsPoly s_coeff = sk.s;
    s_coeff.toCoeff();
    rns::RnsPoly s_auto = s_coeff.automorphism(galois);
    s_auto.toEval();
    return makeKeySwitchKeyForDigits(sk, s_auto, digits);
}

GaloisKeys
KeyGenerator::galoisKeys(const SecretKey &sk,
                         const std::vector<int> &rotations,
                         bool include_conjugation)
{
    GaloisKeys gks;
    for (int r : rotations) {
        const uint64_t g = ctx_->galoisForRotation(r);
        if (!gks.has(g))
            gks.keys.emplace(g, galoisKey(sk, g));
    }
    if (include_conjugation) {
        const uint64_t g = ctx_->galoisForConjugation();
        if (!gks.has(g))
            gks.keys.emplace(g, galoisKey(sk, g));
    }
    return gks;
}

} // namespace cinnamon::fhe
