/**
 * @file
 * The CKKS evaluator: encryption, decryption, and all homomorphic
 * operations, including sequential hybrid keyswitching (Figure 4 of
 * the paper). This is the functional reference implementation that
 * the parallel keyswitching engines (src/parallel) and the ISA
 * emulator (src/isa) are validated against.
 */

#ifndef CINNAMON_FHE_EVALUATOR_H_
#define CINNAMON_FHE_EVALUATOR_H_

#include <utility>
#include <vector>

#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/keys.h"
#include "fhe/params.h"

namespace cinnamon::fhe {

/**
 * Stateless-except-for-caches evaluator bound to one context.
 *
 * All ciphertext polynomials are kept in the evaluation (NTT) domain
 * between operations, matching what a real accelerator stores in its
 * register file; domain changes happen inside keyswitch/rescale only.
 */
class Evaluator
{
  public:
    explicit Evaluator(const CkksContext &ctx) : ctx_(&ctx) {}

    const CkksContext &context() const { return *ctx_; }

    /** Symmetric encryption of a coefficient-domain plaintext. */
    Ciphertext encrypt(const rns::RnsPoly &plain, double scale,
                       const SecretKey &sk, Rng &rng) const;

    /** Public-key encryption. */
    Ciphertext encryptPublic(const rns::RnsPoly &plain, double scale,
                             const PublicKey &pk, Rng &rng) const;

    /** Decrypt to a coefficient-domain plaintext polynomial. */
    rns::RnsPoly decrypt(const Ciphertext &ct, const SecretKey &sk) const;

    /** Homomorphic addition (levels must match; scales must agree). */
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;

    /** Homomorphic subtraction. */
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;

    /** Negation. */
    Ciphertext negate(const Ciphertext &a) const;

    /** Add an encoded plaintext (same level; scales must agree). */
    Ciphertext addPlain(const Ciphertext &a, const rns::RnsPoly &plain,
                        double plain_scale) const;

    /**
     * Multiply by an encoded plaintext. The result's scale is the
     * product of the two scales; callers usually rescale() after.
     * @param plain may be in either domain; converted as needed.
     */
    Ciphertext mulPlain(const Ciphertext &a, const rns::RnsPoly &plain,
                        double plain_scale) const;

    /** Ciphertext-ciphertext multiply with relinearization. */
    Ciphertext mul(const Ciphertext &a, const Ciphertext &b,
                   const EvalKey &relin) const;

    /** Divide by the last chain prime; drops one level. */
    Ciphertext rescale(const Ciphertext &a) const;

    /** Drop to a lower level without dividing (modulus switch). */
    Ciphertext dropToLevel(const Ciphertext &a, std::size_t level) const;

    /** Rotate slots left by `steps` (requires the matching key). */
    Ciphertext rotate(const Ciphertext &a, int steps,
                      const GaloisKeys &gks) const;

    /** Conjugate every slot. */
    Ciphertext conjugate(const Ciphertext &a, const GaloisKeys &gks) const;

    /**
     * The sequential hybrid keyswitch kernel (Figure 4): switches the
     * single polynomial `target` (Eval domain, ciphertext basis at
     * `level`) from key s_old to s, returning the two output
     * polynomials (Eval domain, same basis).
     */
    std::pair<rns::RnsPoly, rns::RnsPoly>
    keySwitch(const rns::RnsPoly &target, std::size_t level,
              const EvalKey &evk) const;

  private:
    void checkCompatible(const Ciphertext &a, const Ciphertext &b) const;

    const CkksContext *ctx_;
};

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_EVALUATOR_H_
