/**
 * @file
 * Homomorphic linear algebra: slot-wise matrix-vector products via the
 * diagonal method with baby-step/giant-step (BSGS) rotation batching.
 *
 * For a (slots × slots) matrix M, M·z = Σ_k d_k ⊙ rot_k(z) where d_k
 * is the k-th generalized diagonal. BSGS splits k = i·g + j so only
 * g + D/g distinct rotations are needed instead of D. This kernel is
 * the core of bootstrapping's CoeffToSlot/SlotToCoeff and of every ML
 * benchmark's matrix multiply; it also contains exactly the two
 * communication patterns Cinnamon's keyswitch pass optimizes
 * (Section 4.3.1): many rotations of one ciphertext (baby steps,
 * input-broadcast keyswitching) and rotate-then-accumulate (giant
 * steps, output-aggregation keyswitching).
 */

#ifndef CINNAMON_FHE_LINEAR_H_
#define CINNAMON_FHE_LINEAR_H_

#include <map>
#include <vector>

#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/evaluator.h"

namespace cinnamon::fhe {

/** Sparse set of generalized diagonals of a slots × slots matrix. */
using Diagonals = std::map<int, std::vector<Cplx>>;

/** Extract all nonzero generalized diagonals of a dense matrix. */
Diagonals diagonalsOf(const std::vector<std::vector<Cplx>> &matrix);

/**
 * The rotation steps (baby and giant) required to apply `diags` with
 * BSGS parameter g. Feed to KeyGenerator::galoisKeys.
 */
std::vector<int> bsgsRotations(const Diagonals &diags, std::size_t g);

/**
 * Apply a linear transform to a ciphertext using BSGS.
 *
 * The result has scale ct.scale * plain_scale and the ciphertext's
 * level; callers normally rescale() afterwards.
 *
 * @param g baby-step count (≈ sqrt(#diagonals) is a good choice).
 * @param plain_scale the scale used to encode the diagonals.
 */
Ciphertext applyLinearTransform(const Evaluator &eval,
                                const Encoder &encoder,
                                const Ciphertext &ct,
                                const Diagonals &diags,
                                const GaloisKeys &gks, std::size_t g,
                                double plain_scale = 0.0);

/**
 * Rotate-and-sum over a power-of-two span: Σ_{i<span} rot_{i*step}(ct).
 * Used for slot-wise reductions (inner products, softmax denominators).
 * Requires keys for step, 2*step, 4*step, ...
 */
Ciphertext rotateAccumulate(const Evaluator &eval, const Ciphertext &ct,
                            int step, std::size_t span,
                            const GaloisKeys &gks);

} // namespace cinnamon::fhe

#endif // CINNAMON_FHE_LINEAR_H_
