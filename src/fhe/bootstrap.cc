#include "fhe/bootstrap.h"

#include <cmath>
#include <functional>

namespace cinnamon::fhe {

namespace {

/** Build the matrix of a linear map from its action on unit vectors. */
std::vector<std::vector<Cplx>>
matrixOf(std::size_t dim,
         const std::function<std::vector<Cplx>(std::vector<Cplx>)> &map)
{
    std::vector<std::vector<Cplx>> m(dim, std::vector<Cplx>(dim));
    for (std::size_t c = 0; c < dim; ++c) {
        std::vector<Cplx> e(dim, Cplx(0, 0));
        e[c] = Cplx(1, 0);
        auto col = map(e);
        for (std::size_t r = 0; r < dim; ++r)
            m[r][c] = col[r];
    }
    return m;
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext &ctx, const Encoder &encoder,
                           const Evaluator &eval, KeyGenerator &keygen,
                           const SecretKey &sk, BootstrapConfig config)
    : ctx_(&ctx), encoder_(&encoder), eval_(&eval), config_(config)
{
    const std::size_t slots = ctx.slots();
    // Fold Δ/q0 (the rescale from the raised plaintext t = Δm + q0·I
    // to x = t/q0) and the 1/2^{r+1} pre-division for the squaring
    // chain into the CoeffToSlot matrix, so the ciphertext scale stays
    // at Δ throughout the pipeline.
    const double down = ctx.params().scale /
                        static_cast<double>(ctx.q(0)) *
                        std::ldexp(1.0, -(config_.squarings + 1));

    auto vinv = matrixOf(slots, [&](std::vector<Cplx> v) {
        return encoder.embedInverse(std::move(v));
    });
    for (auto &row : vinv) {
        for (auto &x : row)
            x *= down;
    }
    c2s_diags_ = diagonalsOf(vinv);

    auto vfwd = matrixOf(slots, [&](std::vector<Cplx> v) {
        return encoder.embedForward(std::move(v));
    });
    s2c_diags_ = diagonalsOf(vfwd);

    // Keys: relinearization plus every BSGS rotation and conjugation.
    relin_ = keygen.relinKey(sk);
    auto rots = bsgsRotations(c2s_diags_, config_.bsgs_g);
    auto rots2 = bsgsRotations(s2c_diags_, config_.bsgs_g);
    rots.insert(rots.end(), rots2.begin(), rots2.end());
    gks_ = keygen.galoisKeys(sk, rots, /*include_conjugation=*/true);
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext &ct) const
{
    Ciphertext low = eval_->dropToLevel(ct, 0);
    rns::RnsPoly c0 = low.c0;
    rns::RnsPoly c1 = low.c1;
    c0.toCoeff();
    c1.toCoeff();

    const rns::Basis full = ctx_->ciphertextBasis(ctx_->maxLevel());
    const rns::Modulus &q0 = ctx_->rns().modulus(0);
    auto lift = [&](const rns::RnsPoly &p) {
        rns::RnsPoly out(ctx_->rns(), full, rns::Domain::Coeff);
        for (std::size_t i = 0; i < full.size(); ++i) {
            const rns::Modulus &qi = ctx_->rns().modulus(full[i]);
            for (std::size_t j = 0; j < ctx_->n(); ++j)
                out.limb(i)[j] = qi.fromSigned(q0.toSigned(p.limb(0)[j]));
        }
        out.toEval();
        return out;
    };
    // The raised plaintext is t = Δm + q0·I; the scale stays at Δ and
    // CoeffToSlot's matrix carries the Δ/q0 correction.
    return Ciphertext{lift(c0), lift(c1), ctx_->maxLevel(), low.scale};
}

Ciphertext
Bootstrapper::coeffToSlot(const Ciphertext &ct, bool imag_part) const
{
    // w has slots x / 2^{r+1} in complex-paired form.
    Ciphertext w = applyLinearTransform(*eval_, *encoder_, ct, c2s_diags_,
                                        gks_, config_.bsgs_g);
    w = eval_->rescale(w);
    Ciphertext wc = eval_->conjugate(w, gks_);
    ++stats_.conjugations;
    // Re: w + conj(w) = x_lo / 2^r.  Im: w - conj(w) = i·x_hi / 2^r.
    return imag_part ? eval_->sub(w, wc) : eval_->add(w, wc);
}

Ciphertext
Bootstrapper::evalMod(const Ciphertext &ct, bool imag_input) const
{
    // Input slots hold y = x/2^r (real path) or i·x/2^r (imag path).
    // Either way exp(beta·y)^{2^r} = exp(2πi·x) when beta is 2πi on
    // the real path and 2π on the imaginary path; choosing beta by
    // path avoids an explicit multiplication by -i (one level saved).
    const int d = config_.taylor_degree;
    const Cplx beta = imag_input ? Cplx(2.0 * M_PI, 0.0)
                                 : Cplx(0.0, 2.0 * M_PI);

    std::vector<Cplx> coeff(d + 1);
    Cplx bk(1.0, 0.0);
    double fact = 1.0;
    for (int k = 0; k <= d; ++k) {
        coeff[k] = bk / fact;
        bk *= beta;
        fact *= (k + 1);
    }

    // Horner: acc = c_d; acc = acc*y + c_{k}.
    Ciphertext y = ct;
    auto cd = encoder_->encodeConstant(coeff[d], y.level);
    Ciphertext acc = eval_->mulPlain(y, cd, ctx_->params().scale);
    acc = eval_->rescale(acc);
    ++stats_.multiplications;
    auto cdm1 = encoder_->encodeConstant(coeff[d - 1], acc.level,
                                         acc.scale);
    acc = eval_->addPlain(acc, cdm1, acc.scale);
    for (int k = d - 2; k >= 0; --k) {
        Ciphertext yk = eval_->dropToLevel(y, acc.level);
        acc = eval_->rescale(eval_->mul(acc, yk, relin_));
        ++stats_.multiplications;
        auto ck = encoder_->encodeConstant(coeff[k], acc.level, acc.scale);
        acc = eval_->addPlain(acc, ck, acc.scale);
    }

    // Repeated squaring: e ← e^2, r times.
    for (int r = 0; r < config_.squarings; ++r) {
        acc = eval_->rescale(eval_->mul(acc, acc, relin_));
        ++stats_.multiplications;
    }
    return acc;
}

Ciphertext
Bootstrapper::slotToCoeff(const Ciphertext &re, const Ciphertext &im) const
{
    Ciphertext combined = eval_->add(re, im);
    Ciphertext out = applyLinearTransform(*eval_, *encoder_, combined,
                                          s2c_diags_, gks_, config_.bsgs_g);
    return eval_->rescale(out);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    stats_ = BootstrapStats{};
    const double input_scale = ct.scale;
    const uint64_t q0 = ctx_->q(0);

    Ciphertext raised = modRaise(ct);
    const std::size_t start_level = raised.level;

    Ciphertext y_re = coeffToSlot(raised, /*imag_part=*/false);
    Ciphertext y_im = coeffToSlot(raised, /*imag_part=*/true);

    Ciphertext e_re = evalMod(y_re, /*imag_input=*/false);
    Ciphertext e_im = evalMod(y_im, /*imag_input=*/true);

    // sin(2πx) = (e - conj(e)) / 2i; desired slot value is
    // (q0/Δ)·sin(2πx)/(2π) ≈ m's coefficient pairs. The imaginary
    // path additionally multiplies by i so slotToCoeff's single add
    // reconstructs u_re + i·u_im.
    auto finish = [&](const Ciphertext &e, bool imag) {
        Ciphertext s = eval_->sub(e, eval_->conjugate(e, gks_));
        ++stats_.conjugations;
        const double factor = static_cast<double>(q0) / input_scale;
        Cplx kappa = Cplx(0, -1.0 / (4.0 * M_PI)) * factor;
        if (imag)
            kappa *= Cplx(0, 1);
        auto plain = encoder_->encodeConstant(kappa, s.level);
        Ciphertext out = eval_->mulPlain(s, plain, ctx_->params().scale);
        ++stats_.multiplications;
        return eval_->rescale(out);
    };
    Ciphertext u_re = finish(e_re, false);
    Ciphertext u_im = finish(e_im, true);

    Ciphertext out = slotToCoeff(u_re, u_im);
    stats_.levels_consumed = start_level - out.level;
    // Rotation count: both transforms run BSGS over their diagonals.
    const auto count_lt = [&](const Diagonals &d) {
        std::size_t giants = 0;
        std::size_t babies = std::min<std::size_t>(config_.bsgs_g - 1,
                                                   d.size());
        int last = -1;
        for (const auto &[k, v] : d) {
            (void)v;
            int g = k / static_cast<int>(config_.bsgs_g);
            if (g != last && g != 0)
                ++giants;
            last = g;
        }
        return babies + giants;
    };
    stats_.rotations = 2 * count_lt(c2s_diags_) + count_lt(s2c_diags_);
    return out;
}

} // namespace cinnamon::fhe
