/**
 * @file
 * The paper's benchmark suite (Section 6.2) as phase compositions,
 * plus the runner that times them on simulated Cinnamon machines.
 *
 * Each benchmark is a list of phases: a kernel program, an invocation
 * count, and the program-level parallelism available (how many
 * independent ciphertext streams the phase exposes). The runner
 * compiles each kernel once per (group size, keyswitch options)
 * through the full compiler, times it with the cycle simulator, and
 * composes phases analytically:
 *
 *   phase time = kernel time(group) * ceil(invocations / streams)
 *   streams    = min(available parallelism, chips / group)
 *
 * which is exactly how Cinnamon deploys groups of four chips per
 * stream and parallelizes wide phases across groups (Section 7.1).
 * Published results for CraterLake / ARK / CiFHER / CPU (Table 2) are
 * provided as comparison baselines.
 */

#ifndef CINNAMON_WORKLOADS_BENCHMARKS_H_
#define CINNAMON_WORKLOADS_BENCHMARKS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sharded_cache.h"
#include "compiler/lowering.h"
#include "sim/simulator.h"
#include "workloads/kernels.h"

namespace cinnamon::workloads {

/** One phase of a benchmark. */
struct Phase
{
    std::string name;
    std::shared_ptr<compiler::Program> kernel;
    std::size_t invocations = 1;
    int parallelism = 1; ///< independent ciphertext streams available
};

/** A composed benchmark. */
struct Benchmark
{
    std::string name;
    std::vector<Phase> phases;
};

/** Single bootstrap (Table 2 row 1). */
Benchmark bootstrapBenchmark(const fhe::CkksContext &ctx,
                             const BootstrapShape &shape =
                                 BootstrapShape::bootstrap13());

/** ResNet-20 CIFAR-10 inference [43]: 1 ct, ~50 bootstraps. */
Benchmark resnetBenchmark(const fhe::CkksContext &ctx);

/** HELR logistic-regression training [42], 30 iterations. */
Benchmark helrBenchmark(const fhe::CkksContext &ctx);

/**
 * BERT-base 128-token inference [65-style]: ~1400 bootstraps;
 * attention exposes 6 parallel ciphertexts and GELU 12 (Section 7.1).
 */
Benchmark bertBenchmark(const fhe::CkksContext &ctx);

/** Timing + utilization of one benchmark on one machine. */
struct BenchTiming
{
    double seconds = 0.0;
    double compute_util = 0.0;
    double memory_util = 0.0;
    double network_util = 0.0;
    std::size_t kernels_simulated = 0;
    /** Host wall-clock ms compiling (0 when every kernel hit). */
    double compile_ms = 0.0;
};

/** Published comparison numbers (Table 2), seconds. NaN if absent. */
struct PublishedBaselines
{
    double craterlake, cifher, ark, cpu;
};

PublishedBaselines publishedFor(const std::string &benchmark);

/**
 * Compiles and simulates kernels with caching.
 *
 * Thread-safe: the compiled-program and sim-result caches are sharded
 * and mutex-guarded (common/sharded_cache.h), so one runner can be
 * shared by every worker of the serve runtime's thread pool. Each
 * distinct (kernel, group, hardware, keyswitch-options) configuration
 * is compiled/simulated exactly once; concurrent requests for the
 * same configuration block only each other. Cached entries are never
 * evicted, so returned references stay valid for the runner's
 * lifetime.
 */
class BenchmarkRunner
{
  public:
    explicit BenchmarkRunner(const fhe::CkksContext &ctx)
        : ctx_(&ctx)
    {
    }

    /**
     * Time a benchmark.
     *
     * @param chips total chips (e.g. 4/8/12; 1 for Cinnamon-M).
     * @param hw per-chip hardware model.
     * @param group chips per stream (4 for Cinnamon; 1 for -M).
     * @param ks keyswitch pass configuration (Figure 13 ablations).
     */
    BenchTiming run(const Benchmark &bench, std::size_t chips,
                    const sim::HardwareConfig &hw, std::size_t group,
                    const compiler::KsPassOptions &ks = {});

    /** Simulate one kernel on a chip group (cached). */
    sim::SimResult kernelResult(const compiler::Program &kernel,
                                std::size_t group,
                                const sim::HardwareConfig &hw,
                                const compiler::KsPassOptions &ks);

    /**
     * Compile a kernel for a group (cached).
     *
     * @param compile_ms if non-null, receives the wall-clock ms this
     *        call spent in the compiler (0 on a cache hit).
     */
    const compiler::CompiledProgram &
    compiled(const compiler::Program &kernel, std::size_t group,
             std::size_t phys_regs, const compiler::KsPassOptions &ks,
             double *compile_ms = nullptr);

    /** Combined hit/miss counters over both caches. */
    CacheStats
    cacheStats() const
    {
        CacheStats s = compile_cache_.stats();
        s += sim_cache_.stats();
        return s;
    }

  private:
    const fhe::CkksContext *ctx_;
    ShardedCache<compiler::CompiledProgram> compile_cache_;
    ShardedCache<sim::SimResult> sim_cache_;
};

} // namespace cinnamon::workloads

#endif // CINNAMON_WORKLOADS_BENCHMARKS_H_
