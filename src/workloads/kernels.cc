#include "workloads/kernels.h"

#include "common/logging.h"

namespace cinnamon::workloads {

using compiler::CtHandle;
using compiler::Program;

Program
keyswitchKernel(const fhe::CkksContext &ctx, std::size_t level)
{
    Program p("keyswitch", ctx);
    auto x = p.input("x", level);
    p.output("y", p.rotate(x, 1));
    return p;
}

Program
hoistedRotationsKernel(const fhe::CkksContext &ctx, std::size_t level,
                       int r)
{
    Program p("hoisted_rotations", ctx);
    auto x = p.input("x", level);
    for (int i = 1; i <= r; ++i)
        p.output("y" + std::to_string(i), p.rotate(x, i));
    return p;
}

Program
rotateAggregateKernel(const fhe::CkksContext &ctx, std::size_t level,
                      int r)
{
    CINN_ASSERT(r >= 2, "aggregation needs at least two rotations");
    Program p("rotate_aggregate", ctx);
    std::vector<CtHandle> rotated;
    for (int i = 0; i < r; ++i) {
        auto x = p.input("x" + std::to_string(i), level);
        rotated.push_back(p.rotate(x, i + 1));
    }
    // Balanced addition tree (the pass folds it into one OA batch).
    while (rotated.size() > 1) {
        std::vector<CtHandle> next;
        for (std::size_t i = 0; i + 1 < rotated.size(); i += 2)
            next.push_back(p.add(rotated[i], rotated[i + 1]));
        if (rotated.size() % 2 == 1)
            next.push_back(rotated.back());
        rotated = std::move(next);
    }
    p.output("y", rotated[0]);
    return p;
}

Program
bsgsMatVecKernel(const fhe::CkksContext &ctx, std::size_t level,
                 int baby, int giant, const std::string &name)
{
    CINN_ASSERT(level >= 1, "matvec needs a level to rescale into");
    Program p(name, ctx);
    auto x = p.input("x", level);

    // Baby steps: `baby` rotations of x — pattern 1, one broadcast.
    std::vector<CtHandle> babies;
    babies.push_back(x);
    for (int j = 1; j < baby; ++j)
        babies.push_back(p.rotate(x, j));

    // Giant steps: each giant block multiplies every baby step by a
    // diagonal plaintext, sums, and rotates the block sum; block sums
    // are aggregated — pattern 2, two batched aggregations.
    std::vector<CtHandle> blocks;
    for (int i = 0; i < giant; ++i) {
        CtHandle inner;
        for (int j = 0; j < baby; ++j) {
            std::string diag = name + ":d" + std::to_string(i) + "_" +
                               std::to_string(j);
            auto term = p.mulPlain(babies[j], diag);
            inner = inner.valid() ? p.add(inner, term) : term;
        }
        blocks.push_back(i == 0 ? inner : p.rotate(inner, i * baby));
    }
    CtHandle acc;
    for (auto &b : blocks)
        acc = acc.valid() ? p.add(acc, b) : b;
    p.output("y", p.rescale(acc));
    return p;
}

Program
polyEvalKernel(const fhe::CkksContext &ctx, std::size_t level,
               int depth)
{
    CINN_ASSERT(level >= static_cast<std::size_t>(depth),
                "polynomial depth exceeds the level budget");
    Program p("polyeval", ctx);
    auto x = p.input("x", level);
    auto acc = x;
    for (int d = 0; d < depth; ++d) {
        acc = p.rescale(p.mul(acc, acc));
        // Keep the multiplicand level-aligned via the DSL's graph:
        // squaring needs only acc itself, which models the dominant
        // EvalMod structure (repeated squaring, Section 2).
    }
    p.output("y", acc);
    return p;
}

BootstrapShape
BootstrapShape::bootstrap13()
{
    // Raise to 51, consume 36, leave l_eff = 13 (Section 6.2).
    BootstrapShape s;
    s.start_level = 51;
    s.c2s_stages = 4;
    s.s2c_stages = 3;
    s.evalmod_depth = 29;
    return s;
}

BootstrapShape
BootstrapShape::bootstrap21()
{
    // Refreshes 21 levels: a longer chain and a costlier EvalMod
    // (Section 7.5: "almost 2x the compute of Bootstrap-13").
    BootstrapShape s;
    s.start_level = 59;
    s.c2s_stages = 5;
    s.s2c_stages = 4;
    s.bsgs_baby = 10;
    s.bsgs_giant = 10;
    s.evalmod_depth = 29;
    return s;
}

Program
bootstrapKernel(const fhe::CkksContext &ctx,
                const BootstrapShape &shape)
{
    CINN_ASSERT(shape.start_level <= ctx.maxLevel(),
                "bootstrap shape exceeds the parameter chain");
    CINN_ASSERT(shape.consumed() < shape.start_level,
                "bootstrap shape consumes the whole chain");
    Program p("bootstrap", ctx);
    auto ct = p.input("raised", shape.start_level);

    // CoeffToSlot: BSGS stages, each one level.
    for (int s = 0; s < shape.c2s_stages; ++s) {
        std::string stage = "c2s" + std::to_string(s);
        // Baby steps (pattern 1).
        std::vector<CtHandle> babies{ct};
        for (int j = 1; j < shape.bsgs_baby; ++j)
            babies.push_back(p.rotate(ct, j));
        // Giant blocks (pattern 2).
        std::vector<CtHandle> blocks;
        for (int i = 0; i < shape.bsgs_giant; ++i) {
            CtHandle inner;
            for (int j = 0; j < shape.bsgs_baby; ++j) {
                auto term = p.mulPlain(
                    babies[j], stage + ":d" + std::to_string(i) +
                                   "_" + std::to_string(j));
                inner = inner.valid() ? p.add(inner, term) : term;
            }
            blocks.push_back(
                i == 0 ? inner
                       : p.rotate(inner, i * shape.bsgs_baby));
        }
        CtHandle acc;
        for (auto &b : blocks)
            acc = acc.valid() ? p.add(acc, b) : b;
        ct = p.rescale(acc);
    }

    // EvalMod: the two sine-approximation multiply chains (real and
    // imaginary coefficient paths, split with one conjugation), run
    // sequentially on this machine.
    auto im = p.conjugate(ct);
    auto re = ct;
    for (int d = 0; d < shape.evalmod_depth; ++d) {
        re = p.rescale(p.mul(re, re));
        im = p.rescale(p.mul(im, im));
    }
    ct = p.add(re, im);

    // SlotToCoeff stages.
    for (int s = 0; s < shape.s2c_stages; ++s) {
        std::string stage = "s2c" + std::to_string(s);
        std::vector<CtHandle> babies{ct};
        for (int j = 1; j < shape.bsgs_baby; ++j)
            babies.push_back(p.rotate(ct, j));
        std::vector<CtHandle> blocks;
        for (int i = 0; i < shape.bsgs_giant; ++i) {
            CtHandle inner;
            for (int j = 0; j < shape.bsgs_baby; ++j) {
                auto term = p.mulPlain(
                    babies[j], stage + ":d" + std::to_string(i) +
                                   "_" + std::to_string(j));
                inner = inner.valid() ? p.add(inner, term) : term;
            }
            blocks.push_back(
                i == 0 ? inner
                       : p.rotate(inner, i * shape.bsgs_baby));
        }
        CtHandle acc;
        for (auto &b : blocks)
            acc = acc.valid() ? p.add(acc, b) : b;
        ct = p.rescale(acc);
    }

    p.output("refreshed", ct);
    return p;
}

namespace {

/** One BSGS stage used by the parallel bootstrap builder. */
compiler::CtHandle
bsgsStage(Program &p, compiler::CtHandle ct,
          const BootstrapShape &shape, const std::string &stage)
{
    std::vector<CtHandle> babies{ct};
    for (int j = 1; j < shape.bsgs_baby; ++j)
        babies.push_back(p.rotate(ct, j));
    std::vector<CtHandle> blocks;
    for (int i = 0; i < shape.bsgs_giant; ++i) {
        CtHandle inner;
        for (int j = 0; j < shape.bsgs_baby; ++j) {
            auto term = p.mulPlain(babies[j],
                                   stage + ":d" + std::to_string(i) +
                                       "_" + std::to_string(j));
            inner = inner.valid() ? p.add(inner, term) : term;
        }
        blocks.push_back(
            i == 0 ? inner
                   : p.rotate(inner, i * shape.bsgs_baby));
    }
    CtHandle acc;
    for (auto &b : blocks)
        acc = acc.valid() ? p.add(acc, b) : b;
    return p.rescale(acc);
}

} // namespace

Program
bootstrapParallelKernel(const fhe::CkksContext &ctx,
                        const BootstrapShape &shape)
{
    CINN_ASSERT(shape.start_level <= ctx.maxLevel(),
                "bootstrap shape exceeds the parameter chain");
    Program p("bootstrap_pp", ctx);

    // CoeffToSlot runs in stream 0; its two outputs (real and
    // imaginary paths, split by one conjugation) are processed by two
    // concurrent EvalMod streams — the compiler migrates the
    // imaginary path's limbs to stream 1's chip group automatically.
    auto ct = p.input("raised", shape.start_level);
    for (int st = 0; st < shape.c2s_stages; ++st)
        ct = bsgsStage(p, ct, shape, "c2spp" + std::to_string(st));
    auto re = ct;
    auto im = p.conjugate(ct);

    for (int d = 0; d < shape.evalmod_depth; ++d)
        re = p.rescale(p.mul(re, re));
    p.beginStream(1);
    for (int d = 0; d < shape.evalmod_depth; ++d)
        im = p.rescale(p.mul(im, im));
    p.endStream();

    // Join and SlotToCoeff back in stream 0.
    ct = p.add(re, im);
    for (int st = 0; st < shape.s2c_stages; ++st)
        ct = bsgsStage(p, ct, shape, "s2cpp" + std::to_string(st));
    p.output("refreshed", ct);
    return p;
}

} // namespace cinnamon::workloads
