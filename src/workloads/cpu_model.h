/**
 * @file
 * Analytic CPU baseline model (DESIGN.md substitution for the paper's
 * 48-core Xeon measurements).
 *
 * Table 2's CPU column is only used as a speedup denominator. We
 * model it from operation counts: every homomorphic op costs time
 * proportional to its limb count times n·log2(n) (the NTT bound),
 * with keyswitch-bearing ops paying the hybrid-keyswitch multiplier
 * (dnum mod-ups + evalkey inner products + mod-down). The single
 * calibration constant — effective coefficient-operations per
 * second across all cores — is chosen so a Bootstrap-13 at N = 64K
 * costs the paper's measured 33 s; every other benchmark is then
 * predicted, not fitted, and lands within ~2-3x of the paper's
 * measurements (good enough for a 10^4x speedup denominator).
 */

#ifndef CINNAMON_WORKLOADS_CPU_MODEL_H_
#define CINNAMON_WORKLOADS_CPU_MODEL_H_

#include "compiler/dsl.h"
#include "workloads/benchmarks.h"

namespace cinnamon::workloads {

/** Work accounting for one DSL program on a CPU. */
struct CpuWork
{
    double coeff_ops = 0.0; ///< modular coefficient operations
};

/** CPU throughput model. */
struct CpuModel
{
    /**
     * Effective modular coefficient operations per second over the
     * whole machine. Calibrated so bootstrapKernel(bootstrap13) at
     * N = 64K costs 33 s (Table 2's measured CPU bootstrap).
     */
    double coeff_ops_per_second = 2.6e9;

    /** Count the work in one program. */
    CpuWork work(const compiler::Program &program) const;

    /** Seconds for one program. */
    double seconds(const compiler::Program &program) const;

    /** Seconds for a composed benchmark (no parallel streams: the
     *  paper's CPU baseline runs one inference end to end). */
    double seconds(const Benchmark &bench) const;

    /**
     * Calibrate coeff_ops_per_second so `program` costs
     * `target_seconds`.
     */
    void calibrate(const compiler::Program &program,
                   double target_seconds);
};

} // namespace cinnamon::workloads

#endif // CINNAMON_WORKLOADS_CPU_MODEL_H_
