#include "workloads/benchmarks.h"

#include <chrono>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "exec/backend.h"

namespace cinnamon::workloads {

namespace {

std::shared_ptr<compiler::Program>
share(compiler::Program p)
{
    return std::make_shared<compiler::Program>(std::move(p));
}

} // namespace

Benchmark
bootstrapBenchmark(const fhe::CkksContext &ctx,
                   const BootstrapShape &shape)
{
    Benchmark b;
    b.name = shape.start_level > 51 ? "bootstrap21" : "bootstrap";
    b.phases.push_back(
        Phase{"bootstrap", share(bootstrapKernel(ctx, shape)), 1, 1});
    return b;
}

Benchmark
resnetBenchmark(const fhe::CkksContext &ctx)
{
    // ResNet-20 [43]: one ciphertext carries the whole image; each of
    // the ~20 conv layers is a set of BSGS matvecs; ReLU is a
    // polynomial approximation; ~50 bootstraps refresh the budget.
    // Single-ciphertext model: no program-level parallelism.
    Benchmark b;
    b.name = "resnet";
    b.phases.push_back(Phase{
        "conv", share(bsgsMatVecKernel(ctx, 13, 8, 8, "resnet_conv")),
        76, 1});
    b.phases.push_back(
        Phase{"relu", share(polyEvalKernel(ctx, 13, 4)), 19, 1});
    auto boot =
        share(bootstrapKernel(ctx, BootstrapShape::bootstrap13()));
    b.phases.push_back(Phase{"bootstrap", boot, 50, 1});
    return b;
}

Benchmark
helrBenchmark(const fhe::CkksContext &ctx)
{
    // HELR [42]: 30 iterations of minibatch logistic regression; each
    // iteration is two matvecs (forward + gradient) and a sigmoid
    // polynomial; a bootstrap refreshes the model every other
    // iteration. The minibatch rows give modest 2-wide parallelism.
    Benchmark b;
    b.name = "helr";
    auto mv = share(bsgsMatVecKernel(ctx, 13, 8, 8, "helr_mv"));
    b.phases.push_back(Phase{"matvec", mv, 60, 2});
    b.phases.push_back(
        Phase{"sigmoid", share(polyEvalKernel(ctx, 13, 3)), 30, 2});
    auto boot =
        share(bootstrapKernel(ctx, BootstrapShape::bootstrap13()));
    b.phases.push_back(Phase{"bootstrap", boot, 16, 2});
    return b;
}

Benchmark
bertBenchmark(const fhe::CkksContext &ctx)
{
    // BERT-base, 128-token input (Section 6.2): 3 ciphertexts per
    // activation, ~1400 bootstraps per inference. Attention exposes 6
    // parallel ciphertext streams, GELU 12 (Section 7.1: together
    // about 85% of the program); residual/layernorm sections are
    // narrow.
    Benchmark b;
    b.name = "bert";
    auto boot =
        share(bootstrapKernel(ctx, BootstrapShape::bootstrap13()));
    auto attn_mv =
        share(bsgsMatVecKernel(ctx, 13, 8, 8, "bert_attn"));
    auto gelu = share(polyEvalKernel(ctx, 13, 8));
    auto norm = share(polyEvalKernel(ctx, 13, 4));

    // 12 layers x (QKV + output + 2 FFN matvecs) x 6-wide streams.
    b.phases.push_back(
        Phase{"attention_matvec", attn_mv, 12 * 48, 6});
    b.phases.push_back(Phase{"attention_bootstrap", boot, 700, 6});
    b.phases.push_back(Phase{"gelu", gelu, 12 * 12, 12});
    b.phases.push_back(Phase{"gelu_bootstrap", boot, 520, 12});
    b.phases.push_back(Phase{"layernorm", norm, 12 * 4, 1});
    b.phases.push_back(Phase{"residual_bootstrap", boot, 180, 1});
    return b;
}

PublishedBaselines
publishedFor(const std::string &benchmark)
{
    const double nan = std::nan("");
    if (benchmark == "bootstrap" || benchmark == "bootstrap21")
        return {6.33e-3, 5.58e-3, 3.5e-3, 33.0};
    if (benchmark == "resnet")
        return {321.26e-3, 189e-3, 125e-3, 17.5 * 60};
    if (benchmark == "helr")
        return {121.91e-3, 106.88e-3, nan, 14.9 * 60};
    if (benchmark == "bert")
        return {nan, nan, nan, 1037.5 * 60};
    return {nan, nan, nan, nan};
}

const compiler::CompiledProgram &
BenchmarkRunner::compiled(const compiler::Program &kernel,
                          std::size_t group, std::size_t phys_regs,
                          const compiler::KsPassOptions &ks,
                          double *compile_ms)
{
    compiler::CompilerConfig cfg;
    cfg.chips = group;
    cfg.num_streams = 1;
    cfg.ks = ks;
    cfg.phys_regs = phys_regs;
    // The key must cover every field that changes compiled output
    // (cacheKeyOf serializes them all) plus the program content
    // itself: two same-name kernels with equal op counts but
    // different graphs must not share a compiled artifact.
    std::ostringstream key;
    key << kernel.name() << ':' << compiler::fingerprintOf(kernel)
        << ':' << compiler::cacheKeyOf(cfg);
    if (compile_ms != nullptr)
        *compile_ms = 0.0;
    return compile_cache_.getOrCompute(key.str(), [&] {
        const auto start = std::chrono::steady_clock::now();
        compiler::Compiler comp(*ctx_, cfg);
        auto out = comp.compile(kernel);
        if (compile_ms != nullptr) {
            using Ms = std::chrono::duration<double, std::milli>;
            *compile_ms =
                Ms(std::chrono::steady_clock::now() - start).count();
        }
        return out;
    });
}

sim::SimResult
BenchmarkRunner::kernelResult(const compiler::Program &kernel,
                              std::size_t group,
                              const sim::HardwareConfig &hw,
                              const compiler::KsPassOptions &ks)
{
    std::ostringstream key;
    key << kernel.name() << ':' << compiler::fingerprintOf(kernel)
        << ':' << group
        << ':' << hw.lanes << ':' << hw.phys_regs << ':' << hw.hbm_gbs
        << ':' << hw.link_gbs << ':' << hw.link_dilation << ':'
        << static_cast<int>(hw.topology) << ':' << hw.n << ':'
        << compiler::cacheKeyOf(ks);
    return sim_cache_.getOrCompute(key.str(), [&] {
        const auto &prog = compiled(kernel, group, hw.phys_regs, ks);
        exec::SimulateBackend backend(hw);
        auto report = backend.execute(prog);
        CINN_ASSERT(report.has_sim,
                    "simulate backend missing result");
        return std::move(report.sim);
    });
}

BenchTiming
BenchmarkRunner::run(const Benchmark &bench, std::size_t chips,
                     const sim::HardwareConfig &hw, std::size_t group,
                     const compiler::KsPassOptions &ks)
{
    CINN_FATAL_UNLESS(group >= 1 && chips >= group,
                      "machine must have at least one group");
    const std::size_t max_streams = chips / group;

    BenchTiming total;
    double util_c = 0, util_m = 0, util_n = 0;
    for (const auto &phase : bench.phases) {
        // Compile first (cache-aware) so the benchmark's host-side
        // compile cost is attributable to this run; the simulation
        // below then hits the compile cache.
        double compile_ms = 0.0;
        compiled(*phase.kernel, group, hw.phys_regs, ks, &compile_ms);
        total.compile_ms += compile_ms;
        const auto res = kernelResult(*phase.kernel, group, hw, ks);
        ++total.kernels_simulated;
        const std::size_t streams = std::max<std::size_t>(
            1, std::min<std::size_t>(phase.parallelism, max_streams));
        const double rounds = std::ceil(
            static_cast<double>(phase.invocations) /
            static_cast<double>(streams));
        const double t = res.seconds * rounds;
        total.seconds += t;
        // Utilization weighted by time; idle groups count as zeros.
        const double active =
            static_cast<double>(streams * group) /
            static_cast<double>(chips);
        util_c += t * res.computeUtilization(hw) * active;
        util_m += t * res.memoryUtilization(hw) * active;
        util_n += t * res.networkUtilization(hw) * active;
    }
    if (total.seconds > 0) {
        total.compute_util = util_c / total.seconds;
        total.memory_util = util_m / total.seconds;
        total.network_util = util_n / total.seconds;
    }
    return total;
}

} // namespace cinnamon::workloads
