/**
 * @file
 * Paper-scale FHE kernel generators (Section 6.2 benchmarks).
 *
 * Each kernel is a real DSL program compiled through the full
 * pipeline (keyswitch pass → limb lowering → Belady allocation) at
 * the paper's N = 64K parameters. Benchmarks are composed of phases:
 * a kernel, an invocation count, and the ciphertext-level parallelism
 * available (the paper's stream width — e.g. BERT's attention exposes
 * 6 parallel ciphertexts and its GELU 12).
 *
 * The two building blocks mirror the paper's motivating patterns:
 * BSGS matrix-vector products (hoisted baby-step rotations = pattern
 * 1; giant-step rotate-and-accumulate = pattern 2) and polynomial
 * evaluation chains (sequential multiply + rescale).
 */

#ifndef CINNAMON_WORKLOADS_KERNELS_H_
#define CINNAMON_WORKLOADS_KERNELS_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/dsl.h"

namespace cinnamon::workloads {

/** A single rotation (one keyswitch) at a level. */
compiler::Program keyswitchKernel(const fhe::CkksContext &ctx,
                                  std::size_t level);

/** r rotations of one ciphertext (pattern 1: hoistable broadcast). */
compiler::Program hoistedRotationsKernel(const fhe::CkksContext &ctx,
                                         std::size_t level, int r);

/** r rotations of r cts summed (pattern 2: batched aggregation). */
compiler::Program rotateAggregateKernel(const fhe::CkksContext &ctx,
                                        std::size_t level, int r);

/**
 * A BSGS matrix-vector product: `baby` hoisted rotations, `giant`
 * diagonal-block partial products each rotated and aggregated, one
 * rescale. Consumes one level.
 */
compiler::Program bsgsMatVecKernel(
    const fhe::CkksContext &ctx, std::size_t level, int baby,
    int giant, const std::string &name = "matvec");

/**
 * A polynomial-evaluation chain: `depth` sequential ciphertext
 * multiplications (relinearize + rescale each). Consumes `depth`
 * levels.
 */
compiler::Program polyEvalKernel(const fhe::CkksContext &ctx,
                                 std::size_t level, int depth);

/** The structural knobs of a bootstrap implementation. */
struct BootstrapShape
{
    std::size_t start_level = 51; ///< level after ModRaise
    int c2s_stages = 4;           ///< CoeffToSlot BSGS stages
    int s2c_stages = 3;           ///< SlotToCoeff BSGS stages
    int bsgs_baby = 8;            ///< rotations per stage (pattern 1)
    int bsgs_giant = 8;           ///< aggregations/stage (pattern 2)
    int evalmod_depth = 29;       ///< sine-evaluation multiply chain

    /** Levels a bootstrap with this shape consumes. */
    std::size_t
    consumed() const
    {
        return c2s_stages + s2c_stages + evalmod_depth;
    }

    /** The paper's Bootstrap-13 (refreshes down to l_eff = 13). */
    static BootstrapShape bootstrap13();

    /** Bootstrap-21 (Section 7.5: ~2x Bootstrap-13's compute). */
    static BootstrapShape bootstrap21();
};

/**
 * A full bootstrap kernel: CoeffToSlot stages, the EvalMod multiply
 * chain, SlotToCoeff stages (Section 2 "Bootstrapping" structure at
 * paper scale).
 */
compiler::Program bootstrapKernel(const fhe::CkksContext &ctx,
                                  const BootstrapShape &shape);

/**
 * The program-parallel bootstrap (Section 7.3, "+ Program
 * parallelism"): the two homomorphic modular-reduction paths (the
 * real and imaginary EvalMod chains) run as two concurrent streams,
 * each with its own CoeffToSlot, joined before SlotToCoeff.
 */
compiler::Program bootstrapParallelKernel(
    const fhe::CkksContext &ctx, const BootstrapShape &shape);

} // namespace cinnamon::workloads

#endif // CINNAMON_WORKLOADS_KERNELS_H_
