#include "workloads/oblivious_join.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/random.h"
#include "fhe/encoder.h"
#include "fhe/evaluator.h"
#include "fhe/keys.h"

namespace cinnamon::workloads {

using compiler::CtHandle;
using compiler::Program;

// ---------------------------------------------------------------
// Shape + schedule
// ---------------------------------------------------------------

std::size_t
ObliviousJoinShape::sortLayers() const
{
    std::size_t lg = 0;
    while ((std::size_t{1} << lg) < rows)
        ++lg;
    return lg * (lg + 1) / 2;
}

ObliviousJoinShape
ObliviousJoinShape::mini()
{
    // 3 compare-exchange layers * 3 levels + 2 merge levels = 11,
    // inside the ~13-level budget the serving test chains hand out.
    ObliviousJoinShape s;
    s.rows = 4;
    s.key_bits = 3;
    s.cmp_depth = 1;
    return s;
}

ObliviousJoinShape
ObliviousJoinShape::paper()
{
    // 10 layers * 4 levels + 3 merge levels = 43, inside the paper
    // chain's level-50 serving budget.
    ObliviousJoinShape s;
    s.rows = 16;
    s.key_bits = 4;
    s.cmp_depth = 2;
    return s;
}

std::vector<CompareExchangeLayer>
bitonicSchedule(std::size_t rows)
{
    CINN_ASSERT(rows >= 2 && (rows & (rows - 1)) == 0,
                "bitonic networks need a power-of-two row count");
    std::vector<CompareExchangeLayer> layers;
    for (std::size_t block = 2; block <= rows; block <<= 1) {
        for (std::size_t dist = block >> 1; dist >= 1; dist >>= 1) {
            CompareExchangeLayer layer;
            layer.distance = static_cast<int>(dist);
            layer.low_mask.assign(rows, 0);
            layer.descending.assign(rows, 0);
            for (std::size_t i = 0; i < rows; ++i) {
                if ((i & dist) != 0 || i + dist >= rows)
                    continue;
                layer.low_mask[i] = 1;
                layer.descending[i] = (i & block) != 0 ? 1 : 0;
            }
            layers.push_back(std::move(layer));
        }
    }
    return layers;
}

namespace {

/**
 * The comparator the encrypted path implements: swap when
 * (a > b) XOR descending. In descending blocks equal elements swap
 * (1 - gt with gt = 0); harmless for sorting, and mirroring it here
 * keeps the oracle bit-exact.
 */
template <typename T>
void
plainCompareExchange(const CompareExchangeLayer &layer,
                     std::vector<T> &keys, std::vector<T> *payloads)
{
    const std::size_t d = static_cast<std::size_t>(layer.distance);
    for (std::size_t i = 0; i < layer.low_mask.size(); ++i) {
        if (!layer.low_mask[i])
            continue;
        const bool gt = keys[i] > keys[i + d];
        const bool swap = layer.descending[i] ? !gt : gt;
        if (swap) {
            std::swap(keys[i], keys[i + d]);
            if (payloads)
                std::swap((*payloads)[i], (*payloads)[i + d]);
        }
    }
}

} // namespace

std::vector<int64_t>
applyBitonicNetwork(std::vector<int64_t> v)
{
    for (const auto &layer : bitonicSchedule(v.size()))
        plainCompareExchange<int64_t>(layer, v, nullptr);
    return v;
}

std::size_t
rotationChainDepth(const compiler::Program &prog)
{
    std::vector<std::size_t> depth(prog.ops().size(), 0);
    std::size_t deepest = 0;
    for (const auto &op : prog.ops()) {
        std::size_t d = 0;
        for (int arg : op.args)
            d = std::max(d, depth[arg]);
        if (op.kind == compiler::CtOpKind::Rotate)
            ++d;
        depth[op.id] = d;
        deepest = std::max(deepest, d);
    }
    return deepest;
}

// ---------------------------------------------------------------
// DSL kernels
// ---------------------------------------------------------------

namespace {

/** mulPlain + rescale: re-align a ciphertext with the round below. */
CtHandle
dslBump(Program &p, CtHandle x, const std::string &prefix)
{
    return p.rescale(p.mulPlain(x, prefix + ":one"));
}

/**
 * The sort dataflow on (keys, payload) handles. Every layer rotates
 * by +/- distance, runs a cmp_depth comparator chain, folds the
 * plaintext direction/pair masks, and blends the swap — consuming
 * shape.layerLevels() levels.
 */
std::pair<CtHandle, CtHandle>
sortBody(Program &p, CtHandle keys, CtHandle pay,
         const ObliviousJoinShape &shape, const std::string &prefix)
{
    const auto schedule = bitonicSchedule(shape.rows);
    std::size_t li = 0;
    for (const auto &layer : schedule) {
        const int d = layer.distance;
        const std::string lname =
            prefix + ":l" + std::to_string(li++);

        // Comparator chain (pattern: rotate + multiply, repeated).
        auto cmp = p.rescale(p.mul(keys, p.rotate(keys, d)));
        keys = dslBump(p, keys, lname);
        pay = dslBump(p, pay, lname);
        for (int j = 1; j < shape.cmp_depth; ++j) {
            cmp = p.rescale(p.mul(cmp, p.rotate(cmp, d)));
            keys = dslBump(p, keys, lname);
            pay = dslBump(p, pay, lname);
        }

        // Direction/low-pair fold: one plaintext mask per layer.
        auto sel = p.rescale(p.mulPlain(cmp, lname + ":dirmask"));
        keys = dslBump(p, keys, lname);
        pay = dslBump(p, pay, lname);

        // Masked select: x + s*(rot(x,d) - x) + s_up*(rot(x,-d) - x).
        auto sel_up = p.rotate(sel, -d);
        for (CtHandle *x : {&keys, &pay}) {
            auto lo = p.rescale(
                p.mul(sel, p.sub(p.rotate(*x, d), *x)));
            auto hi = p.rescale(
                p.mul(sel_up, p.sub(p.rotate(*x, -d), *x)));
            *x = p.add(p.add(dslBump(p, *x, lname), lo), hi);
        }
    }
    return {keys, pay};
}

/**
 * The aligned merge dataflow: one equality probe + payload blend per
 * window offset, a log-depth contribution tree, and the rotate-
 * accumulate total — consuming shape.mergeLevels() levels.
 */
void
mergeBody(Program &p, CtHandle kr, CtHandle pr, CtHandle ks,
          CtHandle ps, const ObliviousJoinShape &shape,
          const std::string &prefix)
{
    // Payloads ride below the equality chain.
    for (int j = 0; j < shape.cmp_depth; ++j) {
        pr = dslBump(p, pr, prefix);
        ps = dslBump(p, ps, prefix);
    }

    const int w = static_cast<int>(shape.rows) - 1;
    std::vector<CtHandle> contribs;
    for (int o = -w; o <= w; ++o) {
        auto kso = o == 0 ? ks : p.rotate(ks, o);
        auto eq = p.rescale(p.mul(kr, kso));
        for (int j = 1; j < shape.cmp_depth; ++j)
            eq = p.rescale(p.mul(eq, eq));
        auto pso = o == 0 ? ps : p.rotate(ps, o);
        contribs.push_back(
            p.rescale(p.mul(eq, p.add(pr, pso))));
    }

    // Log-depth aggregation tree over the window contributions.
    while (contribs.size() > 1) {
        std::vector<CtHandle> next;
        for (std::size_t i = 0; i + 1 < contribs.size(); i += 2)
            next.push_back(p.add(contribs[i], contribs[i + 1]));
        if (contribs.size() % 2 == 1)
            next.push_back(contribs.back());
        contribs = std::move(next);
    }
    p.output(prefix + ":join", contribs[0]);

    // Aggregate total: rotate-accumulate tree over the table slots.
    auto total = contribs[0];
    for (int d = 1; d < static_cast<int>(shape.rows); d <<= 1)
        total = p.add(total, p.rotate(total, d));
    p.output(prefix + ":total", total);
}

} // namespace

Program
bitonicSortKernel(const fhe::CkksContext &ctx, std::size_t level,
                  const ObliviousJoinShape &shape,
                  const std::string &name)
{
    CINN_ASSERT(level >= shape.sortLevels(),
                "bitonic sort exceeds the level budget");
    Program p(name, ctx);
    auto keys = p.input(name + ":keys", level);
    auto pay = p.input(name + ":pay", level);
    auto [ks, ps] = sortBody(p, keys, pay, shape, name);
    p.output(name + ":keys_sorted", ks);
    p.output(name + ":pay_sorted", ps);
    return p;
}

Program
alignedMergeJoinKernel(const fhe::CkksContext &ctx, std::size_t level,
                       const ObliviousJoinShape &shape,
                       const std::string &name)
{
    CINN_ASSERT(level >= shape.mergeLevels(),
                "aligned merge exceeds the level budget");
    Program p(name, ctx);
    auto kr = p.input(name + ":keys_r", level);
    auto pr = p.input(name + ":pay_r", level);
    auto ks = p.input(name + ":keys_s", level);
    auto ps = p.input(name + ":pay_s", level);
    mergeBody(p, kr, pr, ks, ps, shape, name);
    return p;
}

Program
obliviousJoinKernel(const fhe::CkksContext &ctx, std::size_t level,
                    const ObliviousJoinShape &shape)
{
    CINN_ASSERT(level >= shape.consumed(),
                "oblivious join exceeds the level budget");
    Program p("oblivious_join", ctx);

    // The two table sorts are independent — expressed as two
    // concurrent streams, exactly like the parallel bootstrap's
    // EvalMod paths (the compiler spreads them across chip groups).
    auto kr = p.input("oj:keys_r", level);
    auto pr = p.input("oj:pay_r", level);
    auto [krs, prs] = sortBody(p, kr, pr, shape, "oj:r");
    p.beginStream(1);
    auto ks = p.input("oj:keys_s", level);
    auto ps = p.input("oj:pay_s", level);
    auto [kss, pss] = sortBody(p, ks, ps, shape, "oj:s");
    p.endStream();

    mergeBody(p, krs, prs, kss, pss, shape, "oj");
    return p;
}

Benchmark
obliviousJoinBenchmark(const fhe::CkksContext &ctx)
{
    const bool paper_scale = ctx.maxLevel() >= 51;
    const ObliviousJoinShape shape = paper_scale
                                         ? ObliviousJoinShape::paper()
                                         : ObliviousJoinShape::mini();
    const std::size_t lvl =
        paper_scale ? 50 : ctx.maxLevel() - 2;

    auto share = [](Program prog) {
        return std::make_shared<Program>(std::move(prog));
    };
    Benchmark b;
    b.name = "oblivious_join";
    b.phases.push_back(Phase{
        "sort",
        share(bitonicSortKernel(ctx, lvl, shape, "oj_sort")), 2, 2});
    b.phases.push_back(Phase{
        "merge",
        share(alignedMergeJoinKernel(ctx, lvl, shape, "oj_merge")),
        1, 1});
    return b;
}

// ---------------------------------------------------------------
// Plaintext reference
// ---------------------------------------------------------------

JoinTable
randomJoinTable(const ObliviousJoinShape &shape, uint64_t seed)
{
    const uint64_t key_space =
        (uint64_t{1} << shape.key_bits) - 1; // key 0 = slot padding
    CINN_ASSERT(shape.rows <= key_space,
                "key space too small for distinct keys");
    std::vector<uint64_t> candidates;
    for (uint64_t k = 1; k <= key_space; ++k)
        candidates.push_back(k);
    Rng rng(seed);
    for (std::size_t i = candidates.size() - 1; i > 0; --i) {
        const std::size_t j =
            static_cast<std::size_t>(rng.uniformMod(i + 1));
        std::swap(candidates[i], candidates[j]);
    }
    JoinTable t;
    for (std::size_t i = 0; i < shape.rows; ++i) {
        t.keys.push_back(candidates[i]);
        t.payloads.push_back(
            1 + static_cast<int64_t>(rng.uniformMod(9)));
    }
    return t;
}

JoinResult
plainSortMergeJoin(const ObliviousJoinShape &shape,
                   const JoinTable &r, const JoinTable &s)
{
    CINN_ASSERT(r.keys.size() == shape.rows &&
                    s.keys.size() == shape.rows,
                "table size must match the shape");
    auto sortTable = [&](const JoinTable &t) {
        std::vector<int64_t> keys(t.keys.begin(), t.keys.end());
        std::vector<int64_t> pays = t.payloads;
        for (const auto &layer : bitonicSchedule(shape.rows))
            plainCompareExchange<int64_t>(layer, keys, &pays);
        return std::make_pair(std::move(keys), std::move(pays));
    };
    auto [rk, rp] = sortTable(r);
    auto [sk, sp] = sortTable(s);

    JoinResult out;
    out.r_keys_sorted = rk;
    out.join.assign(shape.rows, 0);
    for (std::size_t i = 0; i < shape.rows; ++i) {
        for (std::size_t j = 0; j < shape.rows; ++j) {
            if (sk[j] == rk[i]) {
                out.join[i] = rp[i] + sp[j];
                break;
            }
        }
        out.total += out.join[i];
    }
    return out;
}

// ---------------------------------------------------------------
// Real-FHE pipeline
// ---------------------------------------------------------------

namespace {

/**
 * Level/scale lockstep for the encrypted network: every tracked
 * ciphertext is multiplied exactly once per round (by a partner or
 * by an all-ones plaintext encoded at its exact scale) and rescaled,
 * so scales stay bit-identical across branches and additions never
 * see drift. This is the ciphertext-side discipline the DSL's
 * waterline inference models.
 */
struct FheRound
{
    const fhe::CkksContext *ctx;
    fhe::Encoder *enc;
    fhe::Evaluator *ev;
    const fhe::EvalKey *relin;
    const fhe::GaloisKeys *gks;

    using Ct = fhe::Ciphertext;

    rns::RnsPoly
    encodeAt(const std::vector<double> &vals, const Ct &like) const
    {
        std::vector<fhe::Cplx> slots(vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i)
            slots[i] = fhe::Cplx(vals[i], 0.0);
        return enc->encode(slots, like.level, like.scale);
    }

    Ct
    mulc(const Ct &a, const Ct &b) const
    {
        return ev->rescale(ev->mul(a, b, *relin));
    }

    Ct
    mulp(const Ct &a, const std::vector<double> &vals) const
    {
        return ev->rescale(
            ev->mulPlain(a, encodeAt(vals, a), a.scale));
    }

    Ct
    bump(const Ct &a) const
    {
        return mulp(a, std::vector<double>(ctx->slots(), 1.0));
    }

    /** 1 - a, exact at a's level and scale. */
    Ct
    oneMinus(const Ct &a) const
    {
        return ev->addPlain(
            ev->negate(a),
            enc->encodeConstant(1.0, a.level, a.scale), a.scale);
    }

    Ct
    addp(const Ct &a, const std::vector<double> &vals) const
    {
        return ev->addPlain(a, encodeAt(vals, a), a.scale);
    }

    /**
     * Scale re-anchor: multiply by ones encoded at Δ·q/s so the
     * rescaled result lands on Δ exactly. The exact-scale ladder
     * squares its per-prime drift every round (the double-
     * exponential compounding the DSL's waterline comment warns
     * about), so deep networks re-anchor once per layer.
     */
    Ct
    anchor(const Ct &a) const
    {
        const double target = ctx->params().scale *
                              static_cast<double>(ctx->q(a.level)) /
                              a.scale;
        return ev->rescale(ev->mulPlain(
            a,
            enc->encodeConstant(1.0, a.level, target), target));
    }

    Ct
    rot(const Ct &a, int steps) const
    {
        return ev->rotate(a, steps, *gks);
    }
};

struct EncTable
{
    std::vector<fhe::Ciphertext> planes; ///< key bits, LSB first
    fhe::Ciphertext pay;
};

/**
 * One compare-exchange layer on every table in lockstep. Key
 * comparison is the exact bitwise circuit: per bit, gt_t = a_t(1-b_t)
 * and eq_t = 1-(a_t-b_t)^2, folded MSB-down as
 * gt = gt_{b-1} + eq_{b-1}(gt_{b-2} + eq_{b-2}(...)). All values stay
 * in {0,1}, so the swap select is exact arithmetic.
 */
void
encryptedCompareExchange(const FheRound &f,
                         const CompareExchangeLayer &layer,
                         std::vector<EncTable *> tables,
                         std::size_t slots)
{
    const int d = layer.distance;
    const std::size_t bits = tables[0]->planes.size();

    // Round 1: per-bit gt and squared-difference terms.
    struct Scratch
    {
        std::vector<fhe::Ciphertext> g, sq;
        fhe::Ciphertext inner;
    };
    std::vector<Scratch> scratch(tables.size());
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
        EncTable &t = *tables[ti];
        Scratch &sc = scratch[ti];
        for (std::size_t b = 0; b < bits; ++b) {
            auto rotated = f.rot(t.planes[b], d);
            sc.g.push_back(
                f.mulc(t.planes[b], f.oneMinus(rotated)));
            auto diff = f.ev->sub(t.planes[b], rotated);
            sc.sq.push_back(f.mulc(diff, diff));
        }
        for (auto &pl : t.planes)
            pl = f.bump(pl);
        t.pay = f.bump(t.pay);
        sc.inner = sc.g[0];
    }

    // Fold rounds: one lexicographic composition step per extra bit.
    for (std::size_t b = 1; b < bits; ++b) {
        for (std::size_t ti = 0; ti < tables.size(); ++ti) {
            EncTable &t = *tables[ti];
            Scratch &sc = scratch[ti];
            sc.inner = f.ev->add(
                f.bump(sc.g[b]),
                f.mulc(f.oneMinus(sc.sq[b]), sc.inner));
            for (std::size_t j = b + 1; j < bits; ++j) {
                sc.g[j] = f.bump(sc.g[j]);
                sc.sq[j] = f.bump(sc.sq[j]);
            }
            for (auto &pl : t.planes)
                pl = f.bump(pl);
            t.pay = f.bump(t.pay);
        }
    }

    // Direction/mask fold: sel = low * (gt XOR dir), dir plaintext.
    std::vector<double> flip(slots, 0.0), offset(slots, 0.0);
    for (std::size_t i = 0; i < layer.low_mask.size(); ++i) {
        if (!layer.low_mask[i])
            continue;
        flip[i] = layer.descending[i] ? -1.0 : 1.0;
        offset[i] = layer.descending[i] ? 1.0 : 0.0;
    }
    std::vector<fhe::Ciphertext> sel(tables.size());
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
        EncTable &t = *tables[ti];
        sel[ti] = f.addp(f.mulp(scratch[ti].inner, flip), offset);
        for (auto &pl : t.planes)
            pl = f.bump(pl);
        t.pay = f.bump(t.pay);
    }

    // Blend select: x + s*(rot(x,d)-x) + rot(s,-d)*(rot(x,-d)-x).
    for (std::size_t ti = 0; ti < tables.size(); ++ti) {
        EncTable &t = *tables[ti];
        const auto &s = sel[ti];
        auto s_up = f.rot(s, -d);
        auto blend = [&](fhe::Ciphertext &x) {
            auto lo = f.mulc(s, f.ev->sub(f.rot(x, d), x));
            auto hi = f.mulc(s_up, f.ev->sub(f.rot(x, -d), x));
            x = f.ev->add(f.ev->add(f.bump(x), lo), hi);
        };
        for (auto &pl : t.planes)
            blend(pl);
        blend(t.pay);
    }

    // Re-anchor every survivor on the waterline scale.
    for (EncTable *t : tables) {
        for (auto &pl : t->planes)
            pl = f.anchor(pl);
        t->pay = f.anchor(t->pay);
    }
}

std::vector<int64_t>
roundedSlots(const FheRound &f, const fhe::Ciphertext &ct,
             const fhe::SecretKey &sk, std::size_t count)
{
    const auto slots =
        f.enc->decode(f.ev->decrypt(ct, sk), ct.scale);
    std::vector<int64_t> out(count);
    for (std::size_t i = 0; i < count; ++i)
        out[i] = std::llround(slots[i].real());
    return out;
}

} // namespace

JoinResult
encryptedObliviousJoin(const ObliviousJoinShape &shape,
                       const JoinTable &r, const JoinTable &s,
                       uint64_t key_seed)
{
    const std::size_t bits =
        static_cast<std::size_t>(shape.key_bits);
    const std::size_t layers = shape.sortLayers();
    // Rounds: per layer 1 (bit terms) + bits-1 (fold) + 1 (mask) +
    // 1 (select) + 1 (scale re-anchor); merge 1 (probes) + bits-1
    // (fold) + 1 (blend).
    const std::size_t rounds =
        layers * (bits + 3) + bits + 1;
    const std::size_t levels = rounds + 2;

    auto params =
        fhe::CkksParams::makeTest(std::size_t{1} << 8, levels, 4);
    fhe::CkksContext ctx(params);
    const std::size_t slots = ctx.slots();
    CINN_ASSERT(2 * shape.rows <= slots,
                "table does not fit the slot vector");

    fhe::Encoder enc(ctx);
    fhe::Evaluator ev(ctx);
    fhe::KeyGenerator keygen(ctx, key_seed);
    auto sk = keygen.secretKey();
    auto relin = keygen.relinKey(sk);

    // Every rotation the network needs: +/- the layer distances, the
    // merge window offsets, and the total-sum tree strides.
    std::set<int> steps;
    for (const auto &layer : bitonicSchedule(shape.rows)) {
        steps.insert(layer.distance);
        steps.insert(-layer.distance);
    }
    for (int o = 1; o < static_cast<int>(shape.rows); ++o) {
        steps.insert(o);
        steps.insert(-o);
    }
    for (int d = 1; d < static_cast<int>(shape.rows); d <<= 1)
        steps.insert(d);
    auto gks = keygen.galoisKeys(
        sk, std::vector<int>(steps.begin(), steps.end()));

    FheRound f{&ctx, &enc, &ev, &relin, &gks};
    Rng rng(key_seed ^ 0x9e3779b97f4a7c15ULL);

    auto encryptTable = [&](const JoinTable &t) {
        EncTable et;
        for (std::size_t b = 0; b < bits; ++b) {
            std::vector<fhe::Cplx> plane(slots, 0.0);
            for (std::size_t i = 0; i < shape.rows; ++i)
                plane[i] = fhe::Cplx(
                    static_cast<double>((t.keys[i] >> b) & 1), 0.0);
            et.planes.push_back(ev.encrypt(
                enc.encode(plane, ctx.maxLevel()), params.scale, sk,
                rng));
        }
        std::vector<fhe::Cplx> pay(slots, 0.0);
        for (std::size_t i = 0; i < shape.rows; ++i)
            pay[i] = fhe::Cplx(
                static_cast<double>(t.payloads[i]), 0.0);
        et.pay = ev.encrypt(enc.encode(pay, ctx.maxLevel()),
                            params.scale, sk, rng);
        return et;
    };
    EncTable tr = encryptTable(r);
    EncTable ts = encryptTable(s);

    // Both tables sort through the same rounds so the merge sees
    // level/scale-aligned operands.
    for (const auto &layer : bitonicSchedule(shape.rows))
        encryptedCompareExchange(f, layer, {&tr, &ts}, slots);

    // Merge round 1: key reconstruction for the sorted-R output plus
    // one squared-difference probe per (offset, bit).
    fhe::Ciphertext r_keys;
    for (std::size_t b = 0; b < bits; ++b) {
        auto term = f.mulp(
            tr.planes[b],
            std::vector<double>(slots,
                                static_cast<double>(1ULL << b)));
        r_keys = b == 0 ? term : ev.add(r_keys, term);
    }
    const int w = static_cast<int>(shape.rows) - 1;
    std::vector<std::vector<fhe::Ciphertext>> sq;
    for (int o = -w; o <= w; ++o) {
        std::vector<fhe::Ciphertext> per_bit;
        for (std::size_t b = 0; b < bits; ++b) {
            auto kso =
                o == 0 ? ts.planes[b] : f.rot(ts.planes[b], o);
            auto diff = ev.sub(tr.planes[b], kso);
            per_bit.push_back(f.mulc(diff, diff));
        }
        sq.push_back(std::move(per_bit));
    }
    tr.pay = f.bump(tr.pay);
    ts.pay = f.bump(ts.pay);

    // Fold rounds: eq_o = prod_b (1 - sq_{o,b}).
    std::vector<fhe::Ciphertext> eq(sq.size());
    for (std::size_t oi = 0; oi < sq.size(); ++oi)
        eq[oi] = f.oneMinus(sq[oi][0]);
    for (std::size_t b = 1; b < bits; ++b) {
        for (std::size_t oi = 0; oi < sq.size(); ++oi) {
            eq[oi] = f.mulc(eq[oi], f.oneMinus(sq[oi][b]));
            for (std::size_t j = b + 1; j < bits; ++j)
                sq[oi][j] = f.bump(sq[oi][j]);
        }
        tr.pay = f.bump(tr.pay);
        ts.pay = f.bump(ts.pay);
    }

    // Blend round: join[i] = sum_o eq_o[i] * (pr[i] + ps[i + o]).
    fhe::Ciphertext join;
    std::size_t oi = 0;
    for (int o = -w; o <= w; ++o, ++oi) {
        auto pso = o == 0 ? ts.pay : f.rot(ts.pay, o);
        auto contrib = f.mulc(eq[oi], ev.add(tr.pay, pso));
        join = oi == 0 ? contrib : ev.add(join, contrib);
    }

    // Log-depth rotate-accumulate for the aggregate total.
    auto total = join;
    for (int d = 1; d < static_cast<int>(shape.rows); d <<= 1)
        total = ev.add(total, f.rot(total, d));

    JoinResult out;
    out.r_keys_sorted = roundedSlots(f, r_keys, sk, shape.rows);
    out.join = roundedSlots(f, join, sk, shape.rows);
    out.total = roundedSlots(f, total, sk, 1)[0];
    return out;
}

} // namespace cinnamon::workloads
