#include "workloads/cpu_model.h"

#include <cmath>

namespace cinnamon::workloads {

CpuWork
CpuModel::work(const compiler::Program &program) const
{
    const auto &ctx = program.context();
    const double n = static_cast<double>(ctx.n());
    const double logn = std::log2(n);
    const double special =
        static_cast<double>(ctx.specialBasis().size());
    const double dnum = static_cast<double>(ctx.params().dnum);

    CpuWork w;
    for (const auto &op : program.ops()) {
        const double limbs = static_cast<double>(op.level + 1);
        switch (op.kind) {
          case compiler::CtOpKind::Add:
          case compiler::CtOpKind::Sub:
          case compiler::CtOpKind::AddPlain:
            w.coeff_ops += 2.0 * limbs * n;
            break;
          case compiler::CtOpKind::MulPlain:
            w.coeff_ops += 2.0 * limbs * n;
            break;
          case compiler::CtOpKind::Rescale:
            // INTT + NTT per remaining limb plus the subtraction.
            w.coeff_ops += 2.0 * limbs * n * logn + 3.0 * limbs * n;
            break;
          case compiler::CtOpKind::Mul:
          case compiler::CtOpKind::Rotate:
          case compiler::CtOpKind::Conjugate: {
            // Tensor/automorphism plus a hybrid keyswitch: dnum
            // digit mod-ups to (limbs + special) limbs, each with an
            // (I)NTT pair and an evalkey MAC, then the mod-down.
            const double ext = limbs + special;
            const double tensor =
                op.kind == compiler::CtOpKind::Mul ? 4.0 * limbs * n
                                                   : 2.0 * limbs * n;
            const double modup =
                dnum * ext * (2.0 * n * logn + 4.0 * n);
            const double macs = dnum * ext * 4.0 * n;
            const double moddown =
                2.0 * (limbs + special) * n * logn + 6.0 * limbs * n;
            w.coeff_ops += tensor + modup + macs + moddown;
            break;
          }
          case compiler::CtOpKind::Input:
          case compiler::CtOpKind::Output:
            break;
        }
    }
    return w;
}

double
CpuModel::seconds(const compiler::Program &program) const
{
    return work(program).coeff_ops / coeff_ops_per_second;
}

double
CpuModel::seconds(const Benchmark &bench) const
{
    double total = 0.0;
    for (const auto &phase : bench.phases) {
        total += seconds(*phase.kernel) *
                 static_cast<double>(phase.invocations);
    }
    return total;
}

void
CpuModel::calibrate(const compiler::Program &program,
                    double target_seconds)
{
    const double w = work(program).coeff_ops;
    coeff_ops_per_second = w / target_seconds;
}

} // namespace cinnamon::workloads
