/**
 * @file
 * The oblivious equi-join family (`Workload::ObliviousJoin`).
 *
 * Encrypted-analytics counterpart to the ML benchmarks: a fully
 * data-independent sort-merge join in the style of Krastnikov et al.
 * (PVLDB'20), expressed over packed CKKS slots. Both join tables are
 * sorted by a bitonic sorting network whose compare-exchange is a
 * rotate + masked select (the comparator outcome is a {0,1} slot
 * vector, so every swap is an arithmetic blend — no data-dependent
 * control flow ever exists), then merged by an aligned window of
 * equality probes, and reduced by a log-depth aggregation tree.
 *
 * Two faces share one schedule:
 *
 *  - DSL kernels (`bitonicSortKernel` / `alignedMergeJoinKernel` /
 *    `obliviousJoinKernel`) feed the compiler, simulator, catalog,
 *    and PlanTuner. Their rotate-heavy compare-exchange layers and
 *    wide merge fan-in stress the keyswitch pass very differently
 *    from the BSGS matvec shapes of the ML suite.
 *
 *  - A real-FHE pipeline (`encryptedObliviousJoin`) runs the same
 *    network through fhe::Evaluator with keys encoded bitwise, so
 *    comparisons are exact {0,1} arithmetic and the decrypted join
 *    output matches `plainSortMergeJoin` bit for bit after rounding.
 */

#ifndef CINNAMON_WORKLOADS_OBLIVIOUS_JOIN_H_
#define CINNAMON_WORKLOADS_OBLIVIOUS_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/dsl.h"
#include "workloads/benchmarks.h"

namespace cinnamon::workloads {

/** The structural knobs of an oblivious-join instance. */
struct ObliviousJoinShape
{
    std::size_t rows = 4; ///< rows per table (a power of two)
    int key_bits = 3;     ///< keys drawn from [1, 2^key_bits)
    /**
     * Depth of the comparator chain a DSL compare-exchange layer
     * models (the real pipeline's depth follows key_bits instead).
     */
    int cmp_depth = 1;

    /** Compare-exchange layers of the bitonic network: lg^2 form. */
    std::size_t sortLayers() const;

    /** Levels one DSL compare-exchange layer consumes. */
    std::size_t
    layerLevels() const
    {
        return static_cast<std::size_t>(cmp_depth) + 2;
    }

    /** Levels the DSL sort kernel consumes. */
    std::size_t
    sortLevels() const
    {
        return sortLayers() * layerLevels();
    }

    /** Levels the DSL merge kernel consumes. */
    std::size_t
    mergeLevels() const
    {
        return static_cast<std::size_t>(cmp_depth) + 1;
    }

    /** Levels the fused DSL join kernel consumes. */
    std::size_t
    consumed() const
    {
        return sortLevels() + mergeLevels();
    }

    /** Merge window width: every offset in (-rows, rows). */
    std::size_t
    window() const
    {
        return 2 * rows - 1;
    }

    /** 4-row miniature fitting the ~16-level test chains. */
    static ObliviousJoinShape mini();

    /** The paper-parameter variant (16-row tables, deeper keys). */
    static ObliviousJoinShape paper();
};

/**
 * One compare-exchange layer of the bitonic network over `rows`
 * slots. Pairs are (i, i + distance) for every slot i with
 * low_mask[i] = 1; descending[i] says whether the pair at low slot i
 * orders descending. Both masks are data-independent functions of the
 * slot index only, which is what lets them be *plaintext* masks under
 * CKKS packing.
 */
struct CompareExchangeLayer
{
    int distance = 1;
    std::vector<uint8_t> low_mask;   ///< size rows; 1 = low element
    std::vector<uint8_t> descending; ///< size rows; dir at low slot
};

/** The full layer schedule for a `rows`-input bitonic sort. */
std::vector<CompareExchangeLayer> bitonicSchedule(std::size_t rows);

/**
 * Apply the bitonic network to a plain vector (ascending). Exactly
 * the arithmetic the encrypted path performs — including the
 * swap-on-equal convention in descending blocks — so it doubles as
 * the 0-1-principle test oracle.
 */
std::vector<int64_t> applyBitonicNetwork(std::vector<int64_t> v);

/** Longest rotate-to-rotate dependence chain in a DSL program. */
std::size_t rotationChainDepth(const compiler::Program &prog);

// ---------------------------------------------------------------
// DSL kernels (compiler / simulator / catalog face)
// ---------------------------------------------------------------

/**
 * Bitonic sort of one packed table (keys + payload ciphertexts):
 * per layer, rotate by ±distance, a cmp_depth comparator chain, a
 * masked direction fold, and the blend select. Consumes
 * shape.sortLevels() levels from `level`.
 */
compiler::Program
bitonicSortKernel(const fhe::CkksContext &ctx, std::size_t level,
                  const ObliviousJoinShape &shape,
                  const std::string &name = "oblivious_sort");

/**
 * Aligned merge of two sorted tables: every window offset rotates
 * the S table, probes key equality, and blends the payload pair;
 * contributions reduce through a log-depth addition tree, and a
 * rotate-accumulate tree emits the aggregate total. Consumes
 * shape.mergeLevels() levels.
 */
compiler::Program
alignedMergeJoinKernel(const fhe::CkksContext &ctx, std::size_t level,
                       const ObliviousJoinShape &shape,
                       const std::string &name = "oblivious_merge");

/**
 * The fused pipeline: both table sorts as two concurrent streams
 * (program-level parallelism), then the aligned merge + aggregation
 * in stream 0. Consumes shape.consumed() levels.
 */
compiler::Program
obliviousJoinKernel(const fhe::CkksContext &ctx, std::size_t level,
                    const ObliviousJoinShape &shape);

/**
 * The catalog benchmark: two sort invocations exposing 2-wide
 * program parallelism, then the merge phase. Shape auto-scales to
 * the context (paper variant at a >= 51-level chain, the miniature
 * otherwise).
 */
Benchmark obliviousJoinBenchmark(const fhe::CkksContext &ctx);

// ---------------------------------------------------------------
// Plaintext reference + real-FHE pipeline
// ---------------------------------------------------------------

/** One plaintext join table: distinct keys with integer payloads. */
struct JoinTable
{
    std::vector<uint64_t> keys;
    std::vector<int64_t> payloads;
};

/**
 * Deterministic random table for `seed`: shape.rows distinct keys
 * from [1, 2^key_bits) (0 is reserved as slot padding) and small
 * positive payloads.
 */
JoinTable randomJoinTable(const ObliviousJoinShape &shape,
                          uint64_t seed);

/** The reference outputs the encrypted pipeline must reproduce. */
struct JoinResult
{
    /** R's keys after the sort network (slot i = rank i). */
    std::vector<int64_t> r_keys_sorted;
    /**
     * Slot i: payload_R[i] + payload_S[match] when sorted-R row i's
     * key exists in S, else 0 — the join vector.
     */
    std::vector<int64_t> join;
    int64_t total = 0; ///< sum of the join vector
};

/** Plain sort + merge join (the oracle). */
JoinResult plainSortMergeJoin(const ObliviousJoinShape &shape,
                              const JoinTable &r, const JoinTable &s);

/**
 * The real-FHE pipeline: encrypt both tables (keys as per-bit
 * ciphertext planes), run the bitonic network and aligned merge
 * homomorphically, decrypt, and round slots to integers. With
 * bitwise keys every comparator is exact {0,1} arithmetic, so the
 * rounded outputs equal plainSortMergeJoin exactly. Builds its own
 * small CKKS deployment sized to the network depth.
 */
JoinResult encryptedObliviousJoin(const ObliviousJoinShape &shape,
                                  const JoinTable &r,
                                  const JoinTable &s,
                                  uint64_t key_seed = 777);

} // namespace cinnamon::workloads

#endif // CINNAMON_WORKLOADS_OBLIVIOUS_JOIN_H_
