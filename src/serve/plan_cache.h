/**
 * @file
 * Serving-tier compiled-plan cache.
 *
 * Steady-state traffic must never recompile: every (program content,
 * CompilerConfig) pair is compiled exactly once per process and the
 * compiled plan is shared by all workers. The key is a *content
 * fingerprint* of the program (FNV-1a over op kinds/args — name and
 * op count alone would alias distinct graphs) plus the full
 * CompilerConfig serialization, including `num_streams`, so batched
 * variants of a workload never collide with the single-stream plan
 * and keyswitch-strategy variants never alias (the CiFlow lesson).
 *
 * Built on common/sharded_cache.h: insert-only, compute-once per key,
 * references stable for the cache's lifetime. Hits and misses are
 * booked both in local CacheStats (ServeStats::report) and in the
 * process-wide metrics registry (serve.plan_cache.{hit,miss},
 * serve.plan_cache.compile_ms).
 */

#ifndef CINNAMON_SERVE_PLAN_CACHE_H_
#define CINNAMON_SERVE_PLAN_CACHE_H_

#include <cstddef>
#include <string>

#include "common/sharded_cache.h"
#include "compiler/lowering.h"

namespace cinnamon::serve {

/** Process-wide cache of compiled programs for the serving tier. */
class PlanCache
{
  public:
    explicit PlanCache(const fhe::CkksContext &ctx) : ctx_(&ctx) {}

    /**
     * Fetch the compiled plan for `program` under `cfg`, compiling on
     * a miss (at most once per key across all threads).
     *
     * @param compile_ms if non-null, receives the wall-clock ms this
     *        call spent compiling (0 on a cache hit).
     */
    const compiler::CompiledProgram &
    get(const compiler::Program &program,
        const compiler::CompilerConfig &cfg,
        double *compile_ms = nullptr);

    /** The cache key `get` uses (exposed for tests). */
    static std::string keyOf(const compiler::Program &program,
                             const compiler::CompilerConfig &cfg);

    CacheStats stats() const { return cache_.stats(); }
    std::size_t size() const { return cache_.size(); }

  private:
    const fhe::CkksContext *ctx_;
    ShardedCache<compiler::CompiledProgram> cache_;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_PLAN_CACHE_H_
