/**
 * @file
 * Chip-group scheduler for the serving runtime.
 *
 * Cinnamon deploys one ciphertext stream per group of (typically
 * four) chips and parallelizes across groups (Section 7.1). For
 * serving, the machine is therefore partitioned statically: an 8-chip
 * Cinnamon-8 becomes two independent 4-chip groups, each able to run
 * one request at a time. The scheduler hands out whole groups —
 * a chip can never belong to two leases at once — and admits waiters
 * in strict FIFO ticket order so a burst of workers cannot starve an
 * early one. Per-group busy time is accounted on release, which is
 * what the ServeStats utilization report is built from.
 *
 * Degraded mode: when a chip dies mid-program (markChipFailed) its
 * whole group is quarantined — release() parks it instead of freeing
 * it, so the dead hardware serves no further request — and the
 * machine keeps serving on the remaining groups. A health probe
 * re-admits quarantined groups once their repair time has elapsed
 * (readmitRecovered). If every group is quarantined, acquire() throws
 * NoHealthyGroupsError instead of deadlocking.
 */

#ifndef CINNAMON_SERVE_SCHEDULER_H_
#define CINNAMON_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "serve/request.h"

namespace cinnamon::serve {

class ChipGroupScheduler;

/**
 * Thrown by acquire() when every group is quarantined: there is no
 * healthy hardware to wait for, so blocking would deadlock the worker.
 * Retryable — the health probe re-admits repaired groups.
 */
class NoHealthyGroupsError : public std::runtime_error
{
  public:
    NoHealthyGroupsError()
        : std::runtime_error("no healthy chip groups: every group is "
                             "quarantined pending repair")
    {
    }
};

/** RAII ownership of one chip group; releases on destruction. */
class GroupLease
{
  public:
    GroupLease() = default;
    GroupLease(ChipGroupScheduler *sched, std::size_t group)
        : sched_(sched), group_(group)
    {
    }
    GroupLease(GroupLease &&o) noexcept { *this = std::move(o); }
    GroupLease &
    operator=(GroupLease &&o) noexcept
    {
        // Self-move guard: without it, release() frees the held group
        // and the assignment then reads the just-nulled fields,
        // silently dropping the lease.
        if (this == &o)
            return *this;
        release();
        sched_ = o.sched_;
        group_ = o.group_;
        o.sched_ = nullptr;
        return *this;
    }
    GroupLease(const GroupLease &) = delete;
    GroupLease &operator=(const GroupLease &) = delete;
    ~GroupLease() { release(); }

    bool held() const { return sched_ != nullptr; }
    std::size_t group() const { return group_; }

    void release();

  private:
    ChipGroupScheduler *sched_ = nullptr;
    std::size_t group_ = 0;
};

/**
 * RAII ownership of one or more chip groups at once — the
 * batch-granularity lease behind continuous cross-request batching:
 * one multi-stream program spans every group in the lease, one stream
 * per group. Releases all held groups on destruction; shrinkTo()
 * returns surplus groups early when the batch former could not fill
 * the lease.
 */
class BatchLease
{
  public:
    BatchLease() = default;
    BatchLease(ChipGroupScheduler *sched, std::vector<std::size_t> groups)
        : sched_(sched), groups_(std::move(groups))
    {
    }
    BatchLease(BatchLease &&o) noexcept { *this = std::move(o); }
    BatchLease &
    operator=(BatchLease &&o) noexcept
    {
        if (this == &o)
            return *this;
        release();
        sched_ = o.sched_;
        groups_ = std::move(o.groups_);
        o.sched_ = nullptr;
        o.groups_.clear();
        return *this;
    }
    BatchLease(const BatchLease &) = delete;
    BatchLease &operator=(const BatchLease &) = delete;
    ~BatchLease() { release(); }

    bool held() const { return sched_ != nullptr && !groups_.empty(); }
    std::size_t size() const { return groups_.size(); }
    const std::vector<std::size_t> &groups() const { return groups_; }
    std::size_t group(std::size_t i) const { return groups_.at(i); }

    /** Release groups beyond the first `n` (batch smaller than lease). */
    void shrinkTo(std::size_t n);

    void release();

  private:
    ChipGroupScheduler *sched_ = nullptr;
    std::vector<std::size_t> groups_;
};

/** Partitions `chips` into `chips / group_size` exclusive groups. */
class ChipGroupScheduler
{
  public:
    /**
     * @param chips total chips in the machine (must be a multiple of
     *        group_size; a remainder would strand chips).
     * @param group_size chips per ciphertext stream (4 for Cinnamon).
     */
    ChipGroupScheduler(std::size_t chips, std::size_t group_size);

    /**
     * Block until a group is free (FIFO among waiters) and lease it.
     *
     * @throws NoHealthyGroupsError if every group is quarantined —
     *         there is nothing to wait for until a repair.
     */
    GroupLease acquire();

    /** Lease a group only if one is free right now. */
    GroupLease tryAcquire();

    /**
     * Batch-granularity lease: block (FIFO, same ticket line as
     * acquire) until at least one group is free, then additionally
     * grab every other free group up to `max_groups` total without
     * waiting further. The batch former fills the lease with
     * compatible requests and shrinkTo()s the surplus.
     *
     * @throws NoHealthyGroupsError if every group is quarantined.
     */
    BatchLease acquireUpTo(std::size_t max_groups);

    /**
     * Lease one *specific* group if it is free and healthy right now
     * (seed-keyed placement in the distributed front-end: requests
     * prefer the group their seed hashes to, falling back to
     * acquire() when it is busy). Does not overtake FIFO waiters.
     */
    GroupLease tryAcquireGroup(std::size_t group);

    std::size_t numGroups() const { return busy_since_.size(); }
    std::size_t groupSize() const { return group_size_; }

    /** Chip indices [lo, hi) of a group. */
    std::pair<std::size_t, std::size_t>
    chipsOf(std::size_t group) const
    {
        return {group * group_size_, (group + 1) * group_size_};
    }

    /** Groups currently leased. */
    std::size_t busyGroups() const;

    /**
     * Cumulative busy seconds per group (leased time; an in-flight
     * lease counts up to now).
     */
    std::vector<double> busySeconds() const;

    /**
     * Degraded mode: record that `chip` died and quarantine its group.
     * Called at fault-injection time, while the victim's lease is
     * still held — release() then parks the group instead of
     * returning it to the free list, so no later request can lease
     * dead hardware. Idempotent per group.
     */
    void markChipFailed(std::size_t chip);

    /**
     * Health probe: re-admit every quarantined, unleased group whose
     * quarantine is at least `repair_ms` old (the repair / hot-spare
     * swap time has elapsed). Clears the group's failed-chip marks.
     *
     * @return the groups re-admitted, for tracing.
     */
    std::vector<std::size_t> readmitRecovered(double repair_ms);

    /** Immediately re-admit one quarantined group (test hook). */
    void readmit(std::size_t group);

    bool isQuarantined(std::size_t group) const;
    /** Per-group quarantine flags (one consistent snapshot). */
    std::vector<uint8_t> quarantinedMask() const;
    /** Groups currently quarantined. */
    std::size_t quarantinedGroups() const;
    /** Groups neither quarantined nor permanently lost. */
    std::size_t
    healthyGroups() const
    {
        return numGroups() - quarantinedGroups();
    }
    /** Chips currently marked failed. */
    std::vector<std::size_t> failedChips() const;
    /** Quarantine events so far (monotone; readmission never decrements). */
    std::size_t quarantinesTotal() const;
    /** Readmission events so far. */
    std::size_t readmissionsTotal() const;

  private:
    friend class GroupLease;
    friend class BatchLease;
    void release(std::size_t group);

    /** Readmit one group; caller holds mutex_. */
    void readmitLocked(std::size_t group);

    const std::size_t group_size_;
    mutable std::mutex mutex_;
    std::condition_variable freed_;
    std::vector<std::size_t> free_;         ///< free-group LIFO
    std::vector<Clock::time_point> busy_since_; ///< epoch = free
    std::vector<double> busy_seconds_;
    std::vector<uint8_t> quarantined_;      ///< per group
    std::vector<Clock::time_point> quarantined_since_;
    std::vector<uint8_t> chip_failed_;      ///< per chip
    std::size_t quarantined_count_ = 0;
    std::size_t quarantines_total_ = 0;
    std::size_t readmissions_total_ = 0;
    uint64_t next_ticket_ = 0;  ///< next ticket to hand out
    uint64_t serving_ticket_ = 0; ///< lowest ticket allowed to lease
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_SCHEDULER_H_
