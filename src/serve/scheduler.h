/**
 * @file
 * Chip-group scheduler for the serving runtime.
 *
 * Cinnamon deploys one ciphertext stream per group of (typically
 * four) chips and parallelizes across groups (Section 7.1). For
 * serving, the machine is therefore partitioned statically: an 8-chip
 * Cinnamon-8 becomes two independent 4-chip groups, each able to run
 * one request at a time. The scheduler hands out whole groups —
 * a chip can never belong to two leases at once — and admits waiters
 * in strict FIFO ticket order so a burst of workers cannot starve an
 * early one. Per-group busy time is accounted on release, which is
 * what the ServeStats utilization report is built from.
 */

#ifndef CINNAMON_SERVE_SCHEDULER_H_
#define CINNAMON_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace cinnamon::serve {

class ChipGroupScheduler;

/** RAII ownership of one chip group; releases on destruction. */
class GroupLease
{
  public:
    GroupLease() = default;
    GroupLease(ChipGroupScheduler *sched, std::size_t group)
        : sched_(sched), group_(group)
    {
    }
    GroupLease(GroupLease &&o) noexcept { *this = std::move(o); }
    GroupLease &
    operator=(GroupLease &&o) noexcept
    {
        release();
        sched_ = o.sched_;
        group_ = o.group_;
        o.sched_ = nullptr;
        return *this;
    }
    GroupLease(const GroupLease &) = delete;
    GroupLease &operator=(const GroupLease &) = delete;
    ~GroupLease() { release(); }

    bool held() const { return sched_ != nullptr; }
    std::size_t group() const { return group_; }

    void release();

  private:
    ChipGroupScheduler *sched_ = nullptr;
    std::size_t group_ = 0;
};

/** Partitions `chips` into `chips / group_size` exclusive groups. */
class ChipGroupScheduler
{
  public:
    /**
     * @param chips total chips in the machine (must be a multiple of
     *        group_size; a remainder would strand chips).
     * @param group_size chips per ciphertext stream (4 for Cinnamon).
     */
    ChipGroupScheduler(std::size_t chips, std::size_t group_size);

    /** Block until a group is free (FIFO among waiters) and lease it. */
    GroupLease acquire();

    /** Lease a group only if one is free right now. */
    GroupLease tryAcquire();

    std::size_t numGroups() const { return busy_since_.size(); }
    std::size_t groupSize() const { return group_size_; }

    /** Chip indices [lo, hi) of a group. */
    std::pair<std::size_t, std::size_t>
    chipsOf(std::size_t group) const
    {
        return {group * group_size_, (group + 1) * group_size_};
    }

    /** Groups currently leased. */
    std::size_t busyGroups() const;

    /**
     * Cumulative busy seconds per group (leased time; an in-flight
     * lease counts up to now).
     */
    std::vector<double> busySeconds() const;

  private:
    friend class GroupLease;
    void release(std::size_t group);

    const std::size_t group_size_;
    mutable std::mutex mutex_;
    std::condition_variable freed_;
    std::vector<std::size_t> free_;         ///< free-group LIFO
    std::vector<Clock::time_point> busy_since_; ///< epoch = free
    std::vector<double> busy_seconds_;
    uint64_t next_ticket_ = 0;  ///< next ticket to hand out
    uint64_t serving_ticket_ = 0; ///< lowest ticket allowed to lease
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_SCHEDULER_H_
