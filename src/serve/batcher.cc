#include "serve/batcher.h"

#include "common/metrics.h"

namespace cinnamon::serve {

std::vector<Request>
BatchFormer::next(std::size_t max)
{
    double lingered_ms = 0.0;
    auto batch = queue_->popBatch(max, linger_ms_, &compatible,
                                  &lingered_ms);
    if (!batch.empty()) {
        auto &reg = MetricsRegistry::global();
        reg.counter("serve.batch.formed").add();
        reg.histogram("serve.batch_occupancy")
            .observe(static_cast<double>(batch.size()));
        reg.histogram("serve.batch.linger_wait_ms").observe(lingered_ms);
    }
    return batch;
}

} // namespace cinnamon::serve
