#include "serve/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "common/metrics.h"

namespace cinnamon::serve {

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    const double rank =
        std::clamp(p, 0.0, 100.0) / 100.0 *
        static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ServeStats
ServeStats::fromResponses(const std::vector<Response> &responses,
                          std::size_t submitted, std::size_t rejected,
                          double wall_seconds, const CacheStats &cache,
                          const std::vector<double> &group_busy_seconds,
                          const std::vector<uint8_t> &group_quarantined)
{
    ServeStats s;
    s.submitted = submitted;
    s.rejected = rejected;
    s.wall_seconds = wall_seconds;
    s.cache = cache;
    s.group_quarantined = group_quarantined;
    s.group_completed.assign(group_busy_seconds.size(), 0);
    s.group_retried.assign(group_busy_seconds.size(), 0);
    auto bump = [](std::vector<std::size_t> &v, std::size_t g) {
        if (g >= v.size())
            v.resize(g + 1, 0); // responses may know more groups
        ++v[g];
    };

    std::vector<double> lat_ms, sim_s, queue_ms;
    double occupancy_sum = 0.0;
    const auto no_group = static_cast<std::size_t>(-1);
    for (const auto &r : responses) {
        switch (r.status) {
        case RequestStatus::Completed:
            ++s.completed;
            lat_ms.push_back(r.total_ms);
            queue_ms.push_back(r.queue_ms);
            sim_s.push_back(r.sim_seconds);
            s.sim_seconds_total += r.sim_seconds;
            occupancy_sum += static_cast<double>(r.batch_streams);
            if (r.batch_streams > 1)
                ++s.batched_completed;
            s.batch_occupancy_max =
                std::max(s.batch_occupancy_max, r.batch_streams);
            if (r.group != no_group)
                bump(s.group_completed, r.group);
            break;
        case RequestStatus::Expired: ++s.expired; break;
        case RequestStatus::Failed:
            ++s.failed;
            if (r.retryable)
                ++s.failed_retryable;
            break;
        case RequestStatus::Rejected:
            // Counted via `rejected`; the row only adds the signal.
            if (r.retryable)
                ++s.rejected_retryable;
            break;
        case RequestStatus::Retried:
            ++s.retried;
            if (r.requeued)
                ++s.requeued;
            if (r.group != no_group)
                bump(s.group_retried, r.group);
            break;
        }
    }
    if (wall_seconds > 0)
        s.throughput_rps =
            static_cast<double>(s.completed) / wall_seconds;
    if (!queue_ms.empty())
        s.queue_ms_mean =
            std::accumulate(queue_ms.begin(), queue_ms.end(), 0.0) /
            static_cast<double>(queue_ms.size());
    if (s.completed > 0)
        s.batch_occupancy_mean =
            occupancy_sum / static_cast<double>(s.completed);
    s.latency_ms_p50 = percentile(lat_ms, 50);
    s.latency_ms_p95 = percentile(lat_ms, 95);
    s.latency_ms_p99 = percentile(lat_ms, 99);
    s.sim_seconds_p50 = percentile(sim_s, 50);
    s.sim_seconds_p99 = percentile(sim_s, 99);

    s.group_utilization.reserve(group_busy_seconds.size());
    for (double busy : group_busy_seconds)
        s.group_utilization.push_back(
            wall_seconds > 0 ? busy / wall_seconds : 0.0);
    return s;
}

std::string
ServeStats::report() const
{
    char buf[256];
    std::string out;
    auto line = [&](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof(buf), fmt, args...);
        out += buf;
        out += '\n';
    };
    line("requests: %zu submitted, %zu completed, %zu rejected "
         "(backpressure), %zu expired, %zu failed",
         submitted, completed, rejected, expired, failed);
    if (rejected_full > 0 || rejected_closed > 0)
        line("rejections: %zu queue-full (retryable), "
             "%zu after shutdown",
             rejected_full, rejected_closed);
    if (retried > 0 || rejected_retryable > 0 || failed_retryable > 0)
        line("resilience: %zu retried (%zu requeued after chip loss), "
             "%zu retryable rejections, %zu retryable failures",
             retried, requeued, rejected_retryable, failed_retryable);
    line("wall time: %.3f s   throughput: %.2f req/s", wall_seconds,
         throughput_rps);
    line("latency (wall ms): p50 %.2f  p95 %.2f  p99 %.2f   "
         "queue wait mean %.2f",
         latency_ms_p50, latency_ms_p95, latency_ms_p99,
         queue_ms_mean);
    line("simulated seconds: p50 %.6f  p99 %.6f  total %.6f",
         sim_seconds_p50, sim_seconds_p99, sim_seconds_total);
    line("cache: %zu hits / %zu lookups (%.1f%% hit rate)",
         cache.hits, cache.lookups(), 100.0 * cache.hitRate());
    if (plan_cache.lookups() > 0)
        line("plan cache: %zu hits / %zu lookups (%.1f%% hit rate)",
             plan_cache.hits, plan_cache.lookups(),
             100.0 * plan_cache.hitRate());
    if (tuner_cache.lookups() > 0)
        line("plan tuner: %zu decisions memoized, %zu hits / "
             "%zu lookups (%.1f%% hit rate)",
             tuner_cache.misses, tuner_cache.hits,
             tuner_cache.lookups(), 100.0 * tuner_cache.hitRate());
    if (batched_completed > 0)
        line("batching: %zu of %zu completed rode a shared batch  "
             "occupancy mean %.2f / max %zu streams",
             batched_completed, completed, batch_occupancy_mean,
             batch_occupancy_max);
    // Per-group placement: utilization, request counts, and live
    // quarantine state on one line per group, so placement skew and
    // parked hardware are visible at a glance.
    out += "groups (busy% / completed / retried-on):\n";
    for (std::size_t g = 0; g < group_utilization.size(); ++g) {
        const std::size_t done =
            g < group_completed.size() ? group_completed[g] : 0;
        const std::size_t retr =
            g < group_retried.size() ? group_retried[g] : 0;
        const bool quarantined =
            g < group_quarantined.size() && group_quarantined[g] != 0;
        std::snprintf(buf, sizeof(buf),
                      "  g%zu: %5.1f%%  %4zu req  %3zu retried%s\n",
                      g, 100.0 * group_utilization[g], done, retr,
                      quarantined ? "  [QUARANTINED]" : "");
        out += buf;
    }

    // The process-wide registry: request outcome counters and latency
    // histograms booked by every server in this process.
    std::string metrics =
        MetricsRegistry::global().textSnapshot("serve.");
    metrics += MetricsRegistry::global().textSnapshot("faults.");
    metrics += MetricsRegistry::global().textSnapshot("emulator.");
    metrics += MetricsRegistry::global().textSnapshot("pool.");
    if (!metrics.empty()) {
        out += "metrics (process-wide):\n";
        std::istringstream lines(metrics);
        std::string metric_line;
        while (std::getline(lines, metric_line)) {
            out += "  ";
            out += metric_line;
            out += '\n';
        }
    }
    return out;
}

} // namespace cinnamon::serve
