#include "serve/plan_cache.h"

#include <chrono>
#include <sstream>

#include "common/metrics.h"

namespace cinnamon::serve {

std::string
PlanCache::keyOf(const compiler::Program &program,
                 const compiler::CompilerConfig &cfg)
{
    std::ostringstream key;
    key << program.name() << ':' << compiler::fingerprintOf(program)
        << ':' << compiler::cacheKeyOf(cfg);
    return key.str();
}

const compiler::CompiledProgram &
PlanCache::get(const compiler::Program &program,
               const compiler::CompilerConfig &cfg, double *compile_ms)
{
    if (compile_ms != nullptr)
        *compile_ms = 0.0;
    bool missed = false;
    const auto &plan =
        cache_.getOrCompute(keyOf(program, cfg), [&] {
            missed = true;
            const auto start = std::chrono::steady_clock::now();
            compiler::Compiler comp(*ctx_, cfg);
            auto out = comp.compile(program);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (compile_ms != nullptr)
                *compile_ms = ms;
            MetricsRegistry::global()
                .histogram("serve.plan_cache.compile_ms")
                .observe(ms);
            return out;
        });
    auto &reg = MetricsRegistry::global();
    if (missed)
        reg.counter("serve.plan_cache.miss").add();
    else
        reg.counter("serve.plan_cache.hit").add();
    return plan;
}

} // namespace cinnamon::serve
