/**
 * @file
 * Bounded admission queue for the serving runtime.
 *
 * Admission control is the backpressure point of the system: when the
 * queue is full, submit() fails immediately instead of blocking the
 * client or growing without bound — exactly the behaviour a front-end
 * load balancer needs to shed load onto another replica. Workers pop
 * FIFO; a request whose deadline elapsed while it waited is handed
 * back as expired rather than executed (its latency budget is already
 * spent, so running it would only delay the requests behind it).
 */

#ifndef CINNAMON_SERVE_QUEUE_H_
#define CINNAMON_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace cinnamon::serve {

/** MPMC bounded FIFO with admission control and shutdown. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Admit a request. Stamps `admitted` on success.
     *
     * @return false when the queue is full (backpressure) or closed.
     */
    bool submit(Request request);

    /**
     * Pop the oldest request, blocking while the queue is empty and
     * open.
     *
     * @return nullopt once the queue is closed *and* drained.
     */
    std::optional<Request> pop();

    /**
     * Pop the oldest request, waiting at most `timeout_ms` while the
     * queue is empty. Unlike pop(), returns nullopt on timeout even
     * while the queue is open — the remote front-end's dispatcher
     * uses this to interleave queue draining with liveness checks
     * (a closed-and-empty queue may still grow again via requeue()
     * when a worker connection dies mid-request).
     */
    std::optional<Request> popFor(double timeout_ms);

    /** Two requests that may share one batched program. */
    using CompatFn =
        std::function<bool(const Request &, const Request &)>;

    /**
     * Pop a *batch*: block like pop() for the oldest request, then
     * coalesce up to `max - 1` further requests `compatible` with it,
     * scanning past incompatible ones (which keep their FIFO slots).
     * If the batch is still short and the queue is open, linger up to
     * `linger_ms` for compatible arrivals — trading a bounded bit of
     * head latency for occupancy, continuous-batching style.
     *
     * @return empty once the queue is closed *and* drained.
     *
     * @param lingered_ms if non-null, receives the wall-clock ms spent
     *        in the linger window (0 when the batch filled instantly).
     */
    std::vector<Request> popBatch(std::size_t max, double linger_ms,
                                  const CompatFn &compatible,
                                  double *lingered_ms = nullptr);

    /**
     * Re-admit a faulted request for another attempt. Bypasses both
     * the capacity check (the request already holds an admission slot;
     * bouncing it here would turn a transient fault into a loss) and
     * the closed check (drainAndStop() closes the queue before workers
     * finish, and an in-flight retry must still drain). Safe against
     * worker shutdown: the requeuing worker itself returns to pop()
     * and the queue only reports drained when empty, so a requeued
     * request is always picked up. Restamps `admitted` — per-attempt
     * queue wait — while `born` keeps the cross-attempt budget.
     *
     * @return false once the queue is sealed: nothing will drain it
     *         anymore, so accepting the request would strand it and
     *         break request conservation. The caller must finalize
     *         the request as Failed instead.
     */
    bool requeue(Request request);

    /** Reject new work; pending requests still drain. */
    void close();

    /**
     * Final shutdown: after seal() even requeue() is refused, because
     * the consumers are gone and an accepted request could never
     * drain. Implies close().
     */
    void seal();

    /** True once close() was called (submit failures are permanent). */
    bool closed() const;

    /** True once seal() was called. */
    bool sealed() const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

    /** Requests bounced by admission control so far (full + closed). */
    std::size_t rejected() const;

    /** Rejections due to capacity backpressure (queue full). */
    std::size_t rejectedFull() const;

    /** Rejections because the queue was already closed (shutdown). */
    std::size_t rejectedClosed() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Request> items_;
    std::size_t rejected_full_ = 0;   ///< capacity backpressure
    std::size_t rejected_closed_ = 0; ///< submits after close()
    bool closed_ = false;
    bool sealed_ = false;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_QUEUE_H_
