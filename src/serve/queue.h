/**
 * @file
 * Bounded admission queue for the serving runtime.
 *
 * Admission control is the backpressure point of the system: when the
 * queue is full, submit() fails immediately instead of blocking the
 * client or growing without bound — exactly the behaviour a front-end
 * load balancer needs to shed load onto another replica. Workers pop
 * FIFO; a request whose deadline elapsed while it waited is handed
 * back as expired rather than executed (its latency budget is already
 * spent, so running it would only delay the requests behind it).
 */

#ifndef CINNAMON_SERVE_QUEUE_H_
#define CINNAMON_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "serve/request.h"

namespace cinnamon::serve {

/** MPMC bounded FIFO with admission control and shutdown. */
class RequestQueue
{
  public:
    explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Admit a request. Stamps `admitted` on success.
     *
     * @return false when the queue is full (backpressure) or closed.
     */
    bool submit(Request request);

    /**
     * Pop the oldest request, blocking while the queue is empty and
     * open.
     *
     * @return nullopt once the queue is closed *and* drained.
     */
    std::optional<Request> pop();

    /**
     * Pop the oldest request, waiting at most `timeout_ms` while the
     * queue is empty. Unlike pop(), returns nullopt on timeout even
     * while the queue is open — the remote front-end's dispatcher
     * uses this to interleave queue draining with liveness checks
     * (a closed-and-empty queue may still grow again via requeue()
     * when a worker connection dies mid-request).
     */
    std::optional<Request> popFor(double timeout_ms);

    /**
     * Re-admit a faulted request for another attempt. Bypasses both
     * the capacity check (the request already holds an admission slot;
     * bouncing it here would turn a transient fault into a loss) and
     * the closed check (drainAndStop() closes the queue before workers
     * finish, and an in-flight retry must still drain). Safe against
     * worker shutdown: the requeuing worker itself returns to pop()
     * and the queue only reports drained when empty, so a requeued
     * request is always picked up. Restamps `admitted` — per-attempt
     * queue wait — while `born` keeps the cross-attempt budget.
     */
    void requeue(Request request);

    /** Reject new work; pending requests still drain. */
    void close();

    /** True once close() was called (submit failures are permanent). */
    bool closed() const;

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }

    /** Requests bounced by admission control so far. */
    std::size_t rejected() const;

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<Request> items_;
    std::size_t rejected_ = 0;
    bool closed_ = false;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_QUEUE_H_
