/**
 * @file
 * The multi-tenant serving runtime.
 *
 * A Server owns the whole pipeline a Cinnamon deployment needs to go
 * from "request arrived" to "encrypted result + latency numbers":
 *
 *   submit() → RequestQueue (bounded, admission-controlled)
 *            → worker pool (std::thread)
 *            → ChipGroupScheduler (one exclusive chip group/request)
 *            → BenchmarkRunner (shared thread-safe compile/sim cache)
 *            → optional end-to-end probe on the ISA emulator
 *            → Response (latency split, simulated time, output hash)
 *
 * Each served request simulates its workload's kernels on its chip
 * group (hitting the shared compile/sim cache after the first request
 * of a kind) and, at small parameter sets, executes the catalog probe
 * program end-to-end — request-seeded keys, encryption, compiled ISA
 * on the functional emulator — so the serving path is continuously
 * validated, not just timed. If `time_dilation` is set, the worker
 * additionally holds its group for `sim_seconds * time_dilation`
 * wall-clock seconds, modelling the accelerator's real occupancy (the
 * host thread waits on the device); that is what makes multi-worker
 * runs overlap device time across groups, exactly as a real serving
 * tier overlaps accelerator work.
 *
 * Determinism contract: a request's output hash depends only on
 * (request seed, workload catalog, parameter set) — never on worker
 * count, scheduling order, or cache state. Concurrent and serial runs
 * of the same trace are bit-identical.
 *
 * Resilience (DESIGN.md §5c): when ServeOptions::faults enables a
 * fault schedule, attempts can suffer injected chip death, transient
 * execution errors, or link degradation. Faulted attempts are retried
 * under RetryPolicy (bounded attempts, seeded exponential backoff,
 * never past the deadline); a chip death quarantines its group and
 * the request is requeued onto healthy hardware; a health probe
 * re-admits repaired groups. Fault decisions are pure functions of
 * (fault seed, request seed, attempt), so the determinism contract
 * survives: a retried request's output hash equals the unfaulted
 * run's.
 */

#ifndef CINNAMON_SERVE_SERVER_H_
#define CINNAMON_SERVE_SERVER_H_

#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "faults/fault_plan.h"
#include "fhe/encoder.h"
#include "isa/emulator.h"
#include "serve/batcher.h"
#include "serve/catalog.h"
#include "serve/plan_cache.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/stats.h"
#include "serve/tuner.h"
#include "workloads/benchmarks.h"

namespace cinnamon::serve {

/**
 * Bounded, deadline-aware retry for faulted attempts. Backoff is
 * exponential with jitter drawn from the request seed (a pure
 * function of (seed, attempt) — reproducible run to run), and a
 * retry is scheduled only if its backoff still fits inside the
 * request's deadline: the runtime never retries past the deadline.
 */
struct RetryPolicy
{
    /** Total execution attempts per request (1 = no retries). */
    std::size_t max_attempts = 3;
    double backoff_base_ms = 1.0; ///< delay before the first retry
    double backoff_mult = 2.0;    ///< growth per attempt
    double backoff_max_ms = 50.0; ///< cap on the pre-jitter delay
    /** Jitter width: the delay is scaled by [1 - j/2, 1 + j/2). */
    double backoff_jitter = 0.5;
};

/** Deployment shape of one serving replica. */
struct ServeOptions
{
    std::size_t chips = 8;       ///< simulated machine size
    std::size_t group_size = 4;  ///< chips per ciphertext stream
    std::size_t workers = 2;     ///< host worker threads
    std::size_t queue_capacity = 64;
    /** Run the end-to-end emulator probe per request (small n only). */
    bool emulate = true;
    /**
     * Ring dimension above which the probe is skipped. The flat
     * limb-plane data plane (Shoup/Harvey NTT kernels, arena-backed
     * emulator memory) made bit-exact emulation >3x faster, so the
     * default covers one ring-dimension step beyond the old 1<<12.
     */
    std::size_t emulate_max_n = 1 << 14;
    /**
     * Wall-clock seconds a chip group stays occupied per simulated
     * second (device-occupancy modelling). 0 disables the dwell.
     */
    double time_dilation = 0.0;
    /**
     * Record per-request spans (queue → acquire → simulate → probe →
     * dwell) into the server's TraceRecorder, exportable as Chrome
     * trace-event JSON via trace().
     */
    bool trace = false;
    sim::HardwareConfig hw; ///< per-chip model (hw.n set from ctx)
    /**
     * Deterministic fault schedule (chip death, transient errors,
     * link degradation). Disabled by default; see faults/fault_plan.h.
     */
    faults::FaultConfig faults;
    /** Retry policy for faulted attempts. */
    RetryPolicy retry;
    /**
     * Poll interval of the health probe that re-admits quarantined
     * groups once their repair time elapsed (runs only when faults
     * are enabled).
     */
    double health_probe_interval_ms = 10.0;
    /**
     * Continuous cross-request batching: coalesce up to this many
     * compatible queued requests (same workload shape) into one
     * multi-stream program spanning that many chip groups, one
     * member per group. 1 (the default) serves every request alone
     * on the classic path; digests are bit-identical either way.
     */
    std::size_t batch_max_streams = 1;
    /**
     * How long a short batch lingers for compatible arrivals before
     * dispatching anyway (only with batch_max_streams > 1).
     */
    double batch_linger_ms = 2.0;
    /**
     * Autotune the execution plan per workload: the PlanTuner
     * evaluates every registry strategy × stream split on this
     * machine's hardware model and the winner drives both the sim
     * timing and the probe's compile config. The decision is a pure
     * function of (workload, hardware), so distributed digests stay
     * bit-identical to in-process runs. Ignored when `strategy` is
     * set.
     */
    bool autotune = false;
    /**
     * Force one named StrategyRegistry strategy for every request
     * ("" = the default compile config). Unknown names throw at
     * request time with the registry's list.
     */
    std::string strategy;
    /**
     * Size of the shared execution TaskPool (chip advance + limb
     * slicing in the emulator probe). 0 keeps the pool's current size
     * (CINNAMON_WORKERS or hardware concurrency); a non-zero value
     * resizes the process-wide pool once in start(). Never affects
     * results — digests are bit-identical at any size.
     */
    std::size_t exec_workers = 0;
};

class Server
{
  public:
    Server(const fhe::CkksContext &ctx, ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Spawn the worker pool and open the queue. */
    void start();

    /**
     * Admit a request.
     *
     * @return false when the request was not admitted. The recorded
     *         Response distinguishes why: a queue-full bounce is
     *         backpressure and marked `retryable` — the caller should
     *         retry once the queue drains — while a submit after
     *         shutdown began is permanent (`retryable` false).
     */
    bool submit(Workload workload, uint64_t seed,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(0));

    /**
     * Stop admitting, drain every queued request, and join the pool.
     * After this returns, responses() and stats() are final.
     */
    void drainAndStop();

    /** Responses recorded so far (complete after drainAndStop). */
    std::vector<Response> responses() const;

    /** Aggregate statistics for the run so far. */
    ServeStats stats() const;

    const WorkloadCatalog &catalog() const { return *catalog_; }
    const ChipGroupScheduler &scheduler() const { return *scheduler_; }
    workloads::BenchmarkRunner &runner() { return *runner_; }
    const PlanCache &planCache() const { return *plans_; }
    const PlanTuner &tuner() const { return *tuner_; }

    /** Per-request span recorder (populated when options.trace). */
    const TraceRecorder &trace() const { return trace_; }

  private:
    /**
     * The execution plan a workload runs under: the forced strategy,
     * the autotuned winner, or the default config. `strategy` feeds
     * the probe's CompilerConfig (distinct plan-cache keys per
     * strategy); `ks`/`sim_group` feed the sim-timing run.
     */
    struct PlanChoice
    {
        std::string strategy;       ///< "" = default compile config
        compiler::KsPassOptions ks; ///< keyswitch options of the plan
        std::size_t sim_group = 0;  ///< chips per stream, sim timing
    };
    PlanChoice planFor(Workload workload);

    void workerLoop(std::size_t worker);
    Response process(const Request &request, std::size_t worker);

    /**
     * Batched worker loop (batch_max_streams > 1): forms compatible
     * batches through the BatchFormer, leases one chip group per
     * member, and executes them as one multi-stream program.
     */
    void batchedWorkerLoop(std::size_t worker);
    void processBatch(std::vector<Request> batch, std::size_t worker);

    /**
     * Health-probe loop: periodically re-admits quarantined groups
     * whose repair time elapsed. Runs only when faults are enabled.
     */
    void healthProbeLoop();

    /**
     * The end-to-end emulator probe; returns the output hash. Any
     * wall-clock ms spent compiling the probe is added to *compile_ms.
     * `fault` (may be null) is injected into this attempt.
     */
    uint64_t runProbe(const Request &request, std::size_t group_chips,
                      double *compile_ms = nullptr,
                      const faults::FaultDecision *fault = nullptr,
                      const std::string &strategy = std::string());

    const fhe::CkksContext *ctx_;
    ServeOptions options_;
    std::unique_ptr<WorkloadCatalog> catalog_;
    std::unique_ptr<workloads::BenchmarkRunner> runner_;
    std::unique_ptr<PlanCache> plans_;
    std::unique_ptr<PlanTuner> tuner_;
    std::unique_ptr<RequestQueue> queue_;
    std::unique_ptr<BatchFormer> batcher_;
    std::unique_ptr<ChipGroupScheduler> scheduler_;
    std::unique_ptr<fhe::Encoder> encoder_;
    /**
     * Recycles emulator arenas across probe requests (all workers
     * share it; acquire/release are thread-safe).
     */
    std::unique_ptr<isa::EmulatorCache> emu_cache_;
    /** Non-null iff options_.faults.enabled(); shared, stateless. */
    std::unique_ptr<faults::FaultPlan> fault_plan_;

    std::vector<std::thread> workers_;
    TraceRecorder trace_;

    /** Health-probe lifecycle (thread runs start → drainAndStop). */
    std::thread health_probe_;
    std::mutex probe_mutex_;
    std::condition_variable probe_cv_;
    bool probe_stop_ = false;

    /**
     * Guards the run lifecycle fields below: stats() reads them from
     * arbitrary threads while start()/drainAndStop() write them.
     */
    mutable std::mutex state_mutex_;
    bool started_ = false;
    Clock::time_point start_time_{};
    double wall_seconds_ = 0.0; ///< fixed at drainAndStop

    mutable std::mutex responses_mutex_;
    std::vector<Response> responses_;
    std::size_t submitted_ = 0;
    uint64_t next_id_ = 1;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_SERVER_H_
