#include "serve/queue.h"

namespace cinnamon::serve {

bool
RequestQueue::submit(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
        ++rejected_;
        return false;
    }
    request.admitted = Clock::now();
    items_.push_back(std::move(request));
    ready_.notify_one();
    return true;
}

std::optional<Request>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Request r = std::move(items_.front());
    items_.pop_front();
    return r;
}

void
RequestQueue::requeue(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    request.admitted = Clock::now();
    items_.push_back(std::move(request));
    ready_.notify_one();
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

std::size_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

} // namespace cinnamon::serve
