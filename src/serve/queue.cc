#include "serve/queue.h"

namespace cinnamon::serve {

bool
RequestQueue::submit(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
        // Book the two causes separately: capacity rejections are the
        // load balancer's backpressure signal, while shutdown-time
        // rejections are expected during drain and would pollute it.
        if (closed_)
            ++rejected_closed_;
        else
            ++rejected_full_;
        return false;
    }
    request.admitted = Clock::now();
    // The queue is the authority for the deadline anchor: if the
    // caller did not stamp `born` (direct queue users — the remote
    // front-end, tests), first admission is it. An unset anchor
    // would otherwise make every deadline check nonsense.
    if (request.born == Clock::time_point{})
        request.born = request.admitted;
    items_.push_back(std::move(request));
    ready_.notify_one();
    return true;
}

std::optional<Request>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Request r = std::move(items_.front());
    items_.pop_front();
    return r;
}

std::optional<Request>
RequestQueue::popFor(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Request r = std::move(items_.front());
    items_.pop_front();
    return r;
}

std::vector<Request>
RequestQueue::popBatch(std::size_t max, double linger_ms,
                       const CompatFn &compatible,
                       double *lingered_ms)
{
    if (lingered_ms != nullptr)
        *lingered_ms = 0.0;
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    std::vector<Request> batch;
    if (items_.empty())
        return batch; // closed and drained
    batch.push_back(std::move(items_.front()));
    items_.pop_front();

    // Coalesce compatible followers; incompatible requests keep their
    // FIFO position for the next batch.
    const auto sweep = [&] {
        for (auto it = items_.begin();
             it != items_.end() && batch.size() < max;) {
            if (compatible(batch.front(), *it)) {
                batch.push_back(std::move(*it));
                it = items_.erase(it);
            } else {
                ++it;
            }
        }
    };
    sweep();

    // Linger briefly for late compatible arrivals. Bounded by the
    // deadline, and cut short the moment the batch fills or the
    // queue closes (drain must not stall on the linger window).
    const auto linger_start = Clock::now();
    const auto deadline =
        linger_start +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(linger_ms));
    bool lingered = false;
    while (batch.size() < max && !closed_ && linger_ms > 0) {
        lingered = true;
        if (ready_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            sweep();
            break;
        }
        sweep();
    }
    if (lingered && lingered_ms != nullptr)
        *lingered_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - linger_start)
                           .count();
    return batch;
}

bool
RequestQueue::requeue(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) {
        // The consumers are gone: accepting the request would strand
        // it forever. Refuse, so the caller finalizes it as Failed
        // and request conservation holds at shutdown.
        ++rejected_closed_;
        return false;
    }
    const auto now = Clock::now();
    // `born` is NEVER restamped here: the deadline budget spans every
    // attempt, measured from first admission. Restamping it would
    // silently extend a requeued request's deadline — each retry
    // would reset the clock and a request could outlive its budget
    // indefinitely. A requeue path that somehow reaches us without an
    // anchor (unit tests driving the queue directly) inherits the
    // original admission stamp rather than the requeue time for the
    // same reason.
    if (request.born == Clock::time_point{})
        request.born = request.admitted != Clock::time_point{}
                           ? request.admitted
                           : now;
    request.admitted = now; // per-attempt queue wait restarts
    items_.push_back(std::move(request));
    ready_.notify_one();
    return true;
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

void
RequestQueue::seal()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    sealed_ = true;
    ready_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

bool
RequestQueue::sealed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sealed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

std::size_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_full_ + rejected_closed_;
}

std::size_t
RequestQueue::rejectedFull() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_full_;
}

std::size_t
RequestQueue::rejectedClosed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_closed_;
}

} // namespace cinnamon::serve
