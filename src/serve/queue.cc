#include "serve/queue.h"

namespace cinnamon::serve {

bool
RequestQueue::submit(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
        ++rejected_;
        return false;
    }
    request.admitted = Clock::now();
    // The queue is the authority for the deadline anchor: if the
    // caller did not stamp `born` (direct queue users — the remote
    // front-end, tests), first admission is it. An unset anchor
    // would otherwise make every deadline check nonsense.
    if (request.born == Clock::time_point{})
        request.born = request.admitted;
    items_.push_back(std::move(request));
    ready_.notify_one();
    return true;
}

std::optional<Request>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Request r = std::move(items_.front());
    items_.pop_front();
    return r;
}

std::optional<Request>
RequestQueue::popFor(double timeout_ms)
{
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        [&] { return closed_ || !items_.empty(); });
    if (items_.empty())
        return std::nullopt;
    Request r = std::move(items_.front());
    items_.pop_front();
    return r;
}

void
RequestQueue::requeue(Request request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = Clock::now();
    // `born` is NEVER restamped here: the deadline budget spans every
    // attempt, measured from first admission. Restamping it would
    // silently extend a requeued request's deadline — each retry
    // would reset the clock and a request could outlive its budget
    // indefinitely. A requeue path that somehow reaches us without an
    // anchor (unit tests driving the queue directly) inherits the
    // original admission stamp rather than the requeue time for the
    // same reason.
    if (request.born == Clock::time_point{})
        request.born = request.admitted != Clock::time_point{}
                           ? request.admitted
                           : now;
    request.admitted = now; // per-attempt queue wait restarts
    items_.push_back(std::move(request));
    ready_.notify_one();
}

void
RequestQueue::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    ready_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

std::size_t
RequestQueue::rejected() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

} // namespace cinnamon::serve
