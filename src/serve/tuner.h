/**
 * @file
 * The serving-tier plan autotuner (DESIGN.md §6).
 *
 * A PlanTuner turns the Figure 13 strategy ladder into a serving-time
 * optimization: for one (benchmark, chips, HardwareConfig) point it
 * evaluates every candidate CompileStrategy × stream split through
 * the simulator (via the shared BenchmarkRunner, so every evaluated
 * candidate lands in — and later serves from — the compile/sim
 * caches), scores candidates on simulated seconds with the src/cost
 * power model as the deterministic tiebreak, and memoizes the winner.
 *
 * Determinism contract: the decision is a pure function of the
 * benchmark's content fingerprint, the chip count, and the hardware
 * model — never of wall-clock, thread timing, or cache state. The
 * in-process Server and every distributed worker therefore compute
 * the *same* TunedPlan independently, which is what keeps autotuned
 * distributed digests bit-identical to in-process runs.
 *
 * The default candidate (the `cinnamon-ks` strategy on one
 * whole-lease stream) is exactly the untuned serving path, so a tuned
 * plan's simulated time can never exceed the default's — the CI
 * autotune smoke gate (`scripts/check_bench.py --tuner`) checks that
 * invariant for every catalog workload.
 */

#ifndef CINNAMON_SERVE_TUNER_H_
#define CINNAMON_SERVE_TUNER_H_

#include <cstddef>
#include <string>

#include "common/sharded_cache.h"
#include "sim/hardware.h"
#include "workloads/benchmarks.h"

namespace cinnamon::serve {

/** The memoized outcome of tuning one (bench, chips, hw) point. */
struct TunedPlan
{
    std::string strategy;        ///< winning registry strategy name
    std::size_t group = 0;       ///< chips per stream in the plan
    std::size_t streams = 1;     ///< concurrent streams (chips/group)
    double tuned_seconds = 0.0;  ///< winner's simulated seconds
    double default_seconds = 0.0; ///< untuned path's seconds
    double energy_j = 0.0;       ///< winner's modeled energy (joules)
    std::size_t candidates = 0; ///< plans evaluated for the pick

    /** One-line human rendering for decision logs. */
    std::string summary() const;
};

/**
 * Evaluates and memoizes tuned plans. Thread-safe: decisions live in
 * a sharded compute-once cache, so concurrent workers asking for the
 * same (benchmark, chips, hw) point block only each other and the
 * evaluation runs exactly once per process.
 *
 * Books serve.tuner.{hit,miss,tune_ms,candidates} metrics and prints
 * one `[tuner]` decision line per memoized entry — the line every
 * side of a digest comparison must agree on.
 */
class PlanTuner
{
  public:
    explicit PlanTuner(workloads::BenchmarkRunner &runner)
        : runner_(&runner)
    {
    }

    /**
     * The tuned plan for running `bench` on `chips` chips of `hw`.
     * Evaluated once per distinct point, then served from cache; the
     * returned reference stays valid for the tuner's lifetime.
     */
    const TunedPlan &plan(const workloads::Benchmark &bench,
                          std::size_t chips,
                          const sim::HardwareConfig &hw);

    /** Hit/miss counters of the decision cache. */
    CacheStats stats() const { return cache_.stats(); }

  private:
    workloads::BenchmarkRunner *runner_;
    ShardedCache<TunedPlan> cache_;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_TUNER_H_
