#include "serve/remote/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/task_pool.h"
#include "compiler/strategy.h"
#include "exec/backend.h"
#include "fhe/encoder.h"
#include "net/message.h"
#include "net/socket.h"
#include "serve/catalog.h"
#include "serve/plan_cache.h"
#include "serve/request.h"
#include "serve/tuner.h"
#include "workloads/benchmarks.h"

namespace cinnamon::serve::remote {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
}

/**
 * Everything one worker needs to execute requests; shares the
 * single-process server's building blocks so results are
 * bit-identical to in-process serving.
 */
struct WorkerState
{
    const fhe::CkksContext *ctx;
    WorkerOptions opt;
    WorkloadCatalog catalog;
    workloads::BenchmarkRunner runner;
    PlanCache plans; ///< serving-tier compiled-plan cache
    PlanTuner tuner; ///< autotuned plan decisions (pure function)
    fhe::Encoder encoder;
    isa::EmulatorCache emu_cache; ///< recycled probe arenas
    std::unique_ptr<faults::FaultPlan> fault_plan;

    net::Socket sock;
    /** Serializes frame writes: heartbeat thread vs request loop. */
    std::mutex send_mutex;
    std::atomic<uint64_t> inflight{0};
    uint64_t completed = 0;

    WorkerState(const fhe::CkksContext &c, const WorkerOptions &o)
        : ctx(&c), opt(o), catalog(c), runner(c), plans(c),
          tuner(runner), encoder(c), emu_cache(c)
    {
        opt.hw.n = c.n();
        if (opt.faults.enabled())
            fault_plan =
                std::make_unique<faults::FaultPlan>(opt.faults);
    }

    bool
    sendFrame(net::MsgType type, const std::vector<uint8_t> &payload)
    {
        const auto bytes = net::encodeFrame(type, payload);
        std::lock_guard<std::mutex> lock(send_mutex);
        return sock.sendAll(bytes.data(), bytes.size());
    }
};

/**
 * The execution plan a workload runs under — byte-for-byte the
 * in-process Server::planFor: forced strategy, autotuned winner, or
 * the default config. Decided on the undilated hardware model so
 * injected link degradation can never change what gets compiled.
 */
struct PlanChoice
{
    std::string strategy;       ///< "" = default compile config
    compiler::KsPassOptions ks; ///< keyswitch options of the plan
    std::size_t sim_group = 0;  ///< chips per stream, sim timing
};

PlanChoice
planChoiceFor(WorkerState &state, Workload workload)
{
    PlanChoice choice;
    choice.sim_group = state.opt.group_size;
    if (!state.opt.strategy.empty()) {
        const auto &strat = compiler::StrategyRegistry::global().at(
            state.opt.strategy);
        choice.strategy = strat.name;
        choice.ks = strat.ks;
    } else if (state.opt.autotune) {
        const auto &bench = state.catalog.benchmark(workload);
        const TunedPlan &plan = state.tuner.plan(
            bench, state.opt.group_size, state.opt.hw);
        const auto &strat =
            compiler::StrategyRegistry::global().at(plan.strategy);
        choice.strategy = strat.name;
        choice.ks = strat.ks;
        choice.sim_group = plan.group;
    }
    return choice;
}

/**
 * Execute one request exactly the way Server::process does, minus
 * scheduling (this process IS the chip group). Returns the Result to
 * ship back; sets *drop_conn when a conn-drop fault fired and the
 * worker must sever the connection instead of replying.
 */
net::ResultMsg
executeSubmit(WorkerState &state, const net::SubmitMsg &submit,
              bool *drop_conn)
{
    const auto start = Clock::now();
    net::ResultMsg result;
    result.request_id = submit.request_id;
    result.attempt = submit.attempt;

    const faults::FaultDecision fault =
        state.fault_plan != nullptr
            ? state.fault_plan->decide(
                  submit.seed,
                  static_cast<std::size_t>(submit.attempt))
            : faults::FaultDecision{};
    // An injected connection drop severs the link mid-request: the
    // front-end sees EOF with this request in flight, quarantines the
    // group, and requeues — the same observable as a real crash.
    if (fault.conn_drops) {
        *drop_conn = true;
        MetricsRegistry::global()
            .counter("faults.injected.conn")
            .add();
        return result;
    }

    const auto workload = static_cast<Workload>(submit.workload);
    try {
        const PlanChoice choice = planChoiceFor(state, workload);
        {
            sim::HardwareConfig hw = state.opt.hw;
            if (fault.link_dilation > 1.0) {
                hw.link_dilation = fault.link_dilation;
                MetricsRegistry::global()
                    .counter("faults.injected.link")
                    .add();
            }
            const auto &bench = state.catalog.benchmark(workload);
            const auto timing = state.runner.run(
                bench, state.opt.group_size, hw, choice.sim_group,
                choice.ks);
            result.sim_seconds = timing.seconds;
            result.compile_ms = timing.compile_ms;
        }

        if (fault.chip_fails)
            MetricsRegistry::global()
                .counter("faults.injected.chip")
                .add();
        if (fault.transient)
            MetricsRegistry::global()
                .counter("faults.injected.transient")
                .add();

        if (state.opt.emulate &&
            state.ctx->n() <= state.opt.emulate_max_n) {
            double probe_compile_ms = 0.0;
            compiler::CompilerConfig cfg;
            cfg.chips = state.opt.group_size;
            cfg.num_streams = 1;
            cfg.phys_regs = state.opt.hw.phys_regs;
            cfg.strategy = choice.strategy;
            const auto &compiled = state.plans.get(
                state.catalog.probe(), cfg, &probe_compile_ms);
            result.compile_ms += probe_compile_ms;
            const auto report = exec::EmulateBackend::executeSeeded(
                *state.ctx, state.encoder, state.catalog.probe(),
                compiled, submit.seed, 0,
                fault.any() ? &fault : nullptr, &state.emu_cache);
            result.digest = report.digest;
        } else if (fault.chip_fails) {
            throw faults::ChipFailedError(
                fault.chip_offset % state.opt.group_size,
                "injected chip failure (sim abort)");
        } else if (fault.transient) {
            throw faults::TransientFaultError(
                "injected transient execution fault");
        }

        if (state.opt.time_dilation > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                result.sim_seconds * state.opt.time_dilation));

        result.status =
            static_cast<uint16_t>(net::WireStatus::Completed);
    } catch (const std::exception &e) {
        result.status = static_cast<uint16_t>(net::WireStatus::Failed);
        result.error = e.what();
        result.retryable = fault.any() ? 1 : 0;
        result.chip_failed = fault.chip_fails ? 1 : 0;
        result.digest = 0;
    }
    result.service_ms = msSince(start);
    return result;
}

/**
 * Execute a wire-v2 batched Submit: the worker's group hosts every
 * member's stream of one replicateStreams() program (the physical
 * machine behind one worker emulates the multi-group layout), so one
 * execution serves the whole batch and each member's digest is
 * bit-identical to a solo run. Returns one Result per member, lead
 * request first. Sets *drop_conn when any member drew a conn-drop
 * fault (the whole batch is lost with the connection, exactly like a
 * real crash).
 */
std::vector<net::ResultMsg>
executeSubmitBatch(WorkerState &state, const net::SubmitMsg &submit,
                   bool *drop_conn)
{
    const auto start = Clock::now();

    struct Mem
    {
        uint64_t request_id;
        uint64_t seed;
        uint64_t attempt;
    };
    std::vector<Mem> mems;
    mems.push_back({submit.request_id, submit.seed, submit.attempt});
    for (const auto &e : submit.extras)
        mems.push_back({e.request_id, e.seed, e.attempt});
    const std::size_t k = mems.size();

    std::vector<net::ResultMsg> results(k);
    std::vector<faults::FaultDecision> faults_of(k);
    auto &metrics = MetricsRegistry::global();
    for (std::size_t i = 0; i < k; ++i) {
        results[i].request_id = mems[i].request_id;
        results[i].attempt = mems[i].attempt;
        faults_of[i] =
            state.fault_plan != nullptr
                ? state.fault_plan->decide(
                      mems[i].seed,
                      static_cast<std::size_t>(mems[i].attempt))
                : faults::FaultDecision{};
        if (faults_of[i].conn_drops) {
            *drop_conn = true;
            metrics.counter("faults.injected.conn").add();
            return results;
        }
    }

    const auto workload = static_cast<Workload>(submit.workload);
    std::size_t fault_member = k; // k = no chip fault in the batch
    try {
        // One plan for the whole batch (members share a workload).
        const PlanChoice choice = planChoiceFor(state, workload);
        // Per-member sim timing (first member compiles, rest hit the
        // shared cache; the members run concurrently on the batched
        // program, so each reports its own stream's seconds).
        for (std::size_t i = 0; i < k; ++i) {
            sim::HardwareConfig hw = state.opt.hw;
            if (faults_of[i].link_dilation > 1.0) {
                hw.link_dilation = faults_of[i].link_dilation;
                metrics.counter("faults.injected.link").add();
            }
            const auto &bench = state.catalog.benchmark(workload);
            const auto timing =
                state.runner.run(bench, state.opt.group_size, hw,
                                 choice.sim_group, choice.ks);
            results[i].sim_seconds = timing.seconds;
            results[i].compile_ms = timing.compile_ms;
        }

        for (std::size_t i = 0; i < k; ++i) {
            if (faults_of[i].chip_fails) {
                metrics.counter("faults.injected.chip").add();
                if (fault_member == k)
                    fault_member = i;
            }
            if (faults_of[i].transient)
                metrics.counter("faults.injected.transient").add();
        }

        if (state.opt.emulate &&
            state.ctx->n() <= state.opt.emulate_max_n) {
            double probe_compile_ms = 0.0;
            compiler::CompilerConfig cfg;
            cfg.chips = k * state.opt.group_size;
            cfg.num_streams = static_cast<int>(k);
            cfg.phys_regs = state.opt.hw.phys_regs;
            cfg.strategy = choice.strategy;
            const auto &plan = state.plans.get(
                state.catalog.batchedProbe(k), cfg, &probe_compile_ms);
            std::vector<uint64_t> seeds;
            seeds.reserve(k);
            for (const auto &m : mems)
                seeds.push_back(m.seed);
            const auto reports =
                exec::EmulateBackend::executeSeededBatch(
                    *state.ctx, state.encoder, state.catalog.probe(),
                    plan, seeds, 0,
                    fault_member < k ? &faults_of[fault_member]
                                     : nullptr,
                    fault_member, &state.emu_cache);
            for (std::size_t i = 0; i < k; ++i) {
                results[i].digest = reports[i].digest;
                results[i].compile_ms += probe_compile_ms;
            }
        } else if (fault_member < k) {
            throw faults::ChipFailedError(
                faults_of[fault_member].chip_offset %
                    state.opt.group_size,
                "injected chip failure (sim abort)");
        }

        if (state.opt.time_dilation > 0.0) {
            double max_sim = 0.0;
            for (const auto &r : results)
                max_sim = std::max(max_sim, r.sim_seconds);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                max_sim * state.opt.time_dilation));
        }

        for (std::size_t i = 0; i < k; ++i) {
            if (faults_of[i].transient) {
                // Per-member loss: the batch ran, this member's
                // result is spuriously gone. It retries alone.
                results[i].status =
                    static_cast<uint16_t>(net::WireStatus::Failed);
                results[i].error =
                    "injected transient execution fault";
                results[i].retryable = 1;
                results[i].digest = 0;
            } else {
                results[i].status = static_cast<uint16_t>(
                    net::WireStatus::Completed);
            }
        }
    } catch (const std::exception &e) {
        // Whole-batch abort (chip death mid-program): every member's
        // attempt is lost together. chip_failed routes the group
        // quarantine on the front-end (idempotent per group).
        for (std::size_t i = 0; i < k; ++i) {
            results[i].status =
                static_cast<uint16_t>(net::WireStatus::Failed);
            results[i].error = e.what();
            results[i].retryable =
                (fault_member < k || faults_of[i].any()) ? 1 : 0;
            results[i].chip_failed = fault_member < k ? 1 : 0;
            results[i].digest = 0;
        }
    }
    const double service_ms = msSince(start);
    for (auto &r : results)
        r.service_ms = service_ms;
    return results;
}

} // namespace

int
runWorker(const fhe::CkksContext &ctx, const WorkerOptions &options)
{
    // Size this process's shared execution pool before any request
    // is in flight (0 keeps the CINNAMON_WORKERS/hardware default).
    if (options.exec_workers != 0)
        TaskPool::global().resize(options.exec_workers);
    WorkerState state(ctx, options);

    state.sock = net::Socket::connectLoopback(
        options.port, options.connect_timeout_ms);
    if (!state.sock.valid()) {
        std::fprintf(stderr,
                     "worker %llu: cannot reach front-end on port %u\n",
                     static_cast<unsigned long long>(options.worker_id),
                     options.port);
        return 1;
    }

    net::HelloMsg hello;
    hello.worker_id = options.worker_id;
    hello.chips = options.group_size;
    hello.group_size = options.group_size;
    hello.pid = static_cast<uint64_t>(::getpid());
    if (!state.sendFrame(net::MsgType::Hello, hello.encode()))
        return 1;

    // Frame reader over the blocking socket.
    net::FrameDecoder decoder;
    auto readFrame = [&](net::Frame *frame) -> bool {
        for (;;) {
            const auto status = decoder.next(frame);
            if (status == net::DecodeStatus::Ok)
                return true;
            if (status != net::DecodeStatus::NeedMore)
                return false; // poisoned stream: hang up
            uint8_t buf[64 * 1024];
            const ssize_t n =
                state.sock.recvSome(buf, sizeof(buf));
            if (n <= 0)
                return false;
            decoder.feed(buf, static_cast<std::size_t>(n));
        }
    };

    net::Frame frame;
    if (!readFrame(&frame) || frame.type != net::MsgType::HelloAck)
        return 1;
    net::HelloAckMsg ack;
    if (!ack.decode(frame.payload) || ack.accepted == 0) {
        std::fprintf(stderr, "worker %llu: rejected by front-end: %s\n",
                     static_cast<unsigned long long>(options.worker_id),
                     ack.reason.c_str());
        return 1;
    }

    // Liveness beacon, decoupled from request execution: beats even
    // while a long request runs, so slow ≠ dead.
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread heartbeat([&] {
        uint64_t seq = 0;
        std::unique_lock<std::mutex> lock(hb_mutex);
        while (!hb_stop) {
            hb_cv.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(
                    options.heartbeat_interval_ms),
                [&] { return hb_stop; });
            if (hb_stop)
                return;
            lock.unlock();
            net::HeartbeatMsg beat;
            beat.worker_id = options.worker_id;
            beat.seq = seq++;
            beat.inflight = state.inflight.load();
            state.sendFrame(net::MsgType::Heartbeat, beat.encode());
            lock.lock();
        }
    });
    auto stopHeartbeat = [&] {
        {
            std::lock_guard<std::mutex> lock(hb_mutex);
            hb_stop = true;
        }
        hb_cv.notify_all();
        heartbeat.join();
    };

    int exit_code = 0;
    for (;;) {
        if (!readFrame(&frame)) {
            exit_code = 1; // front-end gone
            break;
        }
        if (frame.type == net::MsgType::Submit) {
            net::SubmitMsg submit;
            if (!submit.decode(frame.payload)) {
                exit_code = 1;
                break;
            }
            state.inflight.store(1 + submit.extras.size());
            bool drop_conn = false;
            // Solo dispatches keep the classic path; a batched one
            // runs every member as one multi-stream program and
            // answers with one Result per member.
            std::vector<net::ResultMsg> results;
            if (submit.extras.empty())
                results.push_back(
                    executeSubmit(state, submit, &drop_conn));
            else
                results =
                    executeSubmitBatch(state, submit, &drop_conn);
            state.inflight.store(0);
            if (drop_conn) {
                // Injected crash: sever without replying.
                stopHeartbeat();
                state.sock.close();
                return kConnDropExit;
            }
            bool send_failed = false;
            for (const auto &result : results) {
                if (result.status ==
                    static_cast<uint16_t>(net::WireStatus::Completed))
                    ++state.completed;
                if (!state.sendFrame(net::MsgType::Result,
                                     result.encode())) {
                    send_failed = true;
                    break;
                }
            }
            if (send_failed) {
                exit_code = 1;
                break;
            }
        } else if (frame.type == net::MsgType::Drain) {
            net::DrainAckMsg drained;
            drained.worker_id = options.worker_id;
            drained.completed = state.completed;
            state.sendFrame(net::MsgType::DrainAck, drained.encode());
            break;
        }
        // Unknown types are ignored: forward compatibility within a
        // wire version.
    }

    stopHeartbeat();
    return exit_code;
}

} // namespace cinnamon::serve::remote
