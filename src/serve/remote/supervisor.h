/**
 * @file
 * Process supervisor for the distributed serving tier.
 *
 * Launches worker processes (fork + execv), tracks their pids, reaps
 * exits, and can deliver signals — including the SIGKILL the
 * worker-kill resilience drill and CI job use to prove that a dead
 * worker's in-flight requests are requeued losslessly. The supervisor
 * is deliberately policy-free: *whether* to restart a dead worker is
 * the caller's decision (the serve_distributed demo restarts on
 * --respawn, the kill drill does not).
 *
 * Destruction is fail-safe: any child still alive is SIGKILLed and
 * reaped, so a crashing front-end never leaks worker processes.
 */

#ifndef CINNAMON_SERVE_REMOTE_SUPERVISOR_H_
#define CINNAMON_SERVE_REMOTE_SUPERVISOR_H_

#include <string>
#include <sys/types.h>
#include <vector>

namespace cinnamon::serve::remote {

class ProcessSupervisor
{
  public:
    ProcessSupervisor() = default;
    ~ProcessSupervisor();

    ProcessSupervisor(const ProcessSupervisor &) = delete;
    ProcessSupervisor &operator=(const ProcessSupervisor &) = delete;

    /**
     * Fork + execv `argv` (argv[0] is the binary path).
     *
     * @return the child pid, or -1 on failure.
     */
    pid_t spawn(const std::vector<std::string> &argv);

    /** Still running (reaps zombies as a side effect)? */
    bool alive(pid_t pid);

    /** Deliver `sig` (e.g. SIGKILL) to a live child. */
    bool kill(pid_t pid, int sig);

    /**
     * Block until the child exits.
     *
     * @return its exit code, or -signal when signal-terminated, or
     *         INT_MIN if the pid is not ours.
     */
    int wait(pid_t pid);

    /** Children spawned and not yet reaped by wait(). */
    std::vector<pid_t> pids() const;

  private:
    struct Child
    {
        pid_t pid;
        bool exited = false;
        int status = 0; ///< raw waitpid status once exited
    };

    Child *find(pid_t pid);
    /** Non-blocking reap of one child; updates bookkeeping. */
    void poll(Child &child);

    std::vector<Child> children_;
};

} // namespace cinnamon::serve::remote

#endif // CINNAMON_SERVE_REMOTE_SUPERVISOR_H_
