#include "serve/remote/frontend.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metrics.h"

namespace cinnamon::serve::remote {

namespace {

double
msSince(Clock::time_point t)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
}

} // namespace

bool
RemoteFrontEnd::Conn::send(net::MsgType type,
                           const std::vector<uint8_t> &payload)
{
    const auto bytes = net::encodeFrame(type, payload);
    std::lock_guard<std::mutex> lock(send_mutex);
    return sock.sendAll(bytes.data(), bytes.size());
}

RemoteFrontEnd::RemoteFrontEnd(FrontEndOptions options)
    : options_(options)
{
    CINN_FATAL_UNLESS(options_.workers >= 1,
                      "the distributed tier needs at least one worker");
    options_.batch_max_streams =
        std::max<std::size_t>(1, options_.batch_max_streams);
    queue_ = std::make_unique<RequestQueue>(options_.queue_capacity);
    batcher_ = std::make_unique<BatchFormer>(*queue_,
                                             options_.batch_linger_ms);
    // Each worker process owns one chip group: the scheduler that
    // expressed intra-process placement now expresses inter-process
    // placement, and its quarantine machinery maps worker death.
    scheduler_ = std::make_unique<ChipGroupScheduler>(
        options_.workers * options_.group_size, options_.group_size);
    group_conns_.resize(options_.workers);
}

RemoteFrontEnd::~RemoteFrontEnd()
{
    bool started;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        started = started_;
    }
    if (started)
        drainAndStop();
}

bool
RemoteFrontEnd::start()
{
    listener_ = net::Socket::listenLoopback(options_.port, &port_);
    if (!listener_.valid())
        return false;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(!started_, "front-end already started");
        started_ = true;
        start_time_ = Clock::now();
    }
    loop_.add(listener_.fd(), POLLIN,
              [this](int, short) { onAccept(); });
    io_thread_ = std::thread(
        [this] { loop_.run(options_.tick_ms, [this] { tick(); }); });
    dispatch_thread_ = std::thread([this] { dispatchLoop(); });
    return true;
}

bool
RemoteFrontEnd::waitForWorkers(std::size_t n, double timeout_ms)
{
    std::unique_lock<std::mutex> lock(net_mutex_);
    const auto ready = [&] {
        std::size_t count = 0;
        for (const auto &conn : group_conns_)
            if (conn && conn->ready)
                ++count;
        return count >= n;
    };
    return workers_cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms),
        ready);
}

std::size_t
RemoteFrontEnd::connectedWorkers() const
{
    std::lock_guard<std::mutex> lock(net_mutex_);
    std::size_t count = 0;
    for (const auto &conn : group_conns_)
        if (conn && conn->ready)
            ++count;
    return count;
}

bool
RemoteFrontEnd::submit(Workload workload, uint64_t seed,
                       std::chrono::milliseconds deadline)
{
    Request r;
    r.workload = workload;
    r.seed = seed;
    r.deadline = deadline;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        r.id = next_id_++;
        ++submitted_;
    }
    auto &metrics = MetricsRegistry::global();
    metrics.counter("serve.requests.submitted").add();
    const uint64_t id = r.id;
    // The queue stamps `born` (the deadline anchor) at admission.
    const bool admitted = queue_->submit(std::move(r));
    std::lock_guard<std::mutex> lock(responses_mutex_);
    if (admitted) {
        ++admitted_;
        return true;
    }
    metrics.counter("serve.requests.rejected").add();
    Response resp;
    resp.id = id;
    resp.workload = workload;
    resp.status = RequestStatus::Rejected;
    resp.retryable = !queue_->closed();
    resp.error = resp.retryable
                     ? "queue full (backpressure): retry later"
                     : "front-end draining: submit elsewhere";
    if (resp.retryable)
        metrics.counter("serve.requests.rejected_retryable").add();
    responses_.push_back(std::move(resp));
    return false;
}

void
RemoteFrontEnd::dispatchLoop()
{
    const bool batched = options_.batch_max_streams > 1;
    while (!stop_dispatch_.load()) {
        if (batched) {
            auto batch = batcher_->next(options_.batch_max_streams);
            if (batch.empty()) {
                // Closed and drained — but requeues may still arrive
                // until stop_dispatch_ flips, so idle one tick instead
                // of spinning on the empty queue.
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        options_.tick_ms));
                continue;
            }
            dispatch(std::move(batch));
            continue;
        }
        auto request = queue_->popFor(options_.tick_ms);
        if (!request)
            continue;
        std::vector<Request> solo;
        solo.push_back(std::move(*request));
        dispatch(std::move(solo));
    }
}

void
RemoteFrontEnd::dispatch(std::vector<Request> batch)
{
    auto &metrics = MetricsRegistry::global();
    constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

    // Startup grace: while no worker has connected yet and admission
    // is still open, park the batch back in the queue instead of
    // burning its retry budget against empty group slots. Once the
    // drain begins (queue closed) attempts do burn, so a drain with
    // zero workers still terminates.
    bool any_ready;
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        any_ready = std::any_of(
            group_conns_.begin(), group_conns_.end(),
            [](const std::shared_ptr<Conn> &c) {
                return c && c->ready;
            });
    }
    if (!any_ready && !queue_->closed()) {
        for (auto &request : batch) {
            const uint64_t id = request.id;
            const Workload workload = request.workload;
            if (!queue_->requeue(std::move(request))) {
                // Sealed mid-flight: finalize loudly, never drop.
                Response resp;
                resp.id = id;
                resp.workload = workload;
                resp.status = RequestStatus::Failed;
                resp.error = "retry refused: queue sealed";
                metrics.counter("serve.requests.failed").add();
                metrics.counter("serve.requeue_refused").add();
                finalize(std::move(resp));
            }
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                options_.tick_ms));
        return;
    }

    // Shed members whose budget was spent waiting — same policy,
    // and the same `born` anchor, as the in-process server. The rest
    // stay batched.
    std::vector<Request> live;
    std::vector<double> live_queue_ms;
    live.reserve(batch.size());
    for (auto &request : batch) {
        const double queue_ms = msSince(request.admitted);
        if (request.deadline.count() > 0 &&
            msSince(request.born) >
                static_cast<double>(request.deadline.count())) {
            Response resp;
            resp.id = request.id;
            resp.workload = request.workload;
            resp.attempt = request.attempt;
            resp.status = RequestStatus::Expired;
            resp.queue_ms = queue_ms;
            resp.total_ms = queue_ms;
            metrics.counter("serve.requests.expired").add();
            finalize(std::move(resp));
            continue;
        }
        live.push_back(std::move(request));
        live_queue_ms.push_back(queue_ms);
    }
    if (live.empty())
        return;

    // Placement: one group for the whole batch — the worker behind it
    // executes the members as one multi-stream program. Prefer the
    // group the lead seed hashes to (reproducible run to run), fall
    // back to whichever group frees up first.
    GroupLease lease;
    try {
        if (options_.seed_routing)
            lease = scheduler_->tryAcquireGroup(
                live.front().seed % scheduler_->numGroups());
        if (!lease.held())
            lease = scheduler_->acquire();
    } catch (const NoHealthyGroupsError &e) {
        // Every group is quarantined. Mirror the in-process policy:
        // wait out one repair window, then burn an attempt per member.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(
                options_.repair_ms + options_.tick_ms));
        for (std::size_t i = 0; i < live.size(); ++i) {
            InFlight in_flight;
            in_flight.request = std::move(live[i]);
            in_flight.dispatched = Clock::now();
            in_flight.queue_ms = live_queue_ms[i];
            in_flight.batch_streams = live.size();
            retryOrFail(std::move(in_flight), kNoGroup, e.what(),
                        /*chip_failed=*/true);
        }
        return;
    }

    std::shared_ptr<Conn> conn;
    const std::size_t group = lease.group();
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        if (group_conns_[group] && group_conns_[group]->ready &&
            inflight_.count(group) == 0) {
            conn = group_conns_[group];
            GroupWork work;
            work.lease = std::move(lease);
            const auto now = Clock::now();
            for (std::size_t i = 0; i < live.size(); ++i) {
                InFlight in_flight;
                in_flight.request = live[i];
                in_flight.dispatched = now;
                in_flight.queue_ms = live_queue_ms[i];
                in_flight.batch_streams = live.size();
                work.members.emplace(live[i].id, std::move(in_flight));
            }
            // Register before sending: if the worker dies the instant
            // the Submit lands, the EOF handler must already see every
            // member in flight to requeue it.
            inflight_.emplace(group, std::move(work));
        }
    }
    if (!conn) {
        // The leased group has no live worker (its connection died
        // between quarantine bookkeeping and this dispatch, or no
        // worker ever claimed the slot). Treat it like a lost attempt
        // for every member.
        if (lease.held())
            scheduler_->markChipFailed(
                scheduler_->chipsOf(lease.group()).first);
        for (std::size_t i = 0; i < live.size(); ++i) {
            InFlight in_flight;
            in_flight.request = std::move(live[i]);
            in_flight.dispatched = Clock::now();
            in_flight.queue_ms = live_queue_ms[i];
            in_flight.batch_streams = live.size();
            retryOrFail(std::move(in_flight), group,
                        "no live worker for group",
                        /*chip_failed=*/true);
        }
        lease.release(); // after markChipFailed: parks, not frees
        return;
    }

    // One Submit carries the whole batch: the lead request in the
    // flat fields, co-members in `extras` (wire v2). The worker
    // answers one Result per member.
    const Request &lead = live.front();
    net::SubmitMsg submit;
    submit.request_id = lead.id;
    submit.workload = static_cast<uint16_t>(lead.workload);
    submit.seed = lead.seed;
    submit.attempt = lead.attempt;
    submit.deadline_budget_ms =
        lead.deadline.count() > 0
            ? static_cast<uint64_t>(std::max(
                  0.0, static_cast<double>(lead.deadline.count()) -
                           msSince(lead.born)))
            : 0;
    for (std::size_t i = 1; i < live.size(); ++i) {
        net::SubmitMsg::Member member;
        member.request_id = live[i].id;
        member.seed = live[i].seed;
        member.attempt = live[i].attempt;
        submit.extras.push_back(member);
    }
    metrics.counter("serve.remote.dispatched").add();
    if (live.size() > 1)
        metrics.counter("serve.remote.batched_dispatches").add();
    if (!conn->send(net::MsgType::Submit, submit.encode()))
        // The connection is dead; the I/O thread's EOF handling (or
        // this call) tears it down and requeues the in-flight batch.
        dropConn(conn, "send failed");
}

void
RemoteFrontEnd::onAccept()
{
    net::Socket sock = listener_.accept();
    if (!sock.valid())
        return;
    auto conn = std::make_shared<Conn>();
    conn->sock = std::move(sock);
    conn->last_heartbeat = Clock::now();
    const int fd = conn->sock.fd();
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        conns_.emplace(fd, conn);
    }
    loop_.add(fd, POLLIN, [this, conn](int, short revents) {
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
            dropConn(conn, "socket error");
            return;
        }
        onReadable(conn);
    });
}

void
RemoteFrontEnd::onReadable(const std::shared_ptr<Conn> &conn)
{
    uint8_t buf[64 * 1024];
    const ssize_t n = conn->sock.recvSome(buf, sizeof(buf));
    if (n <= 0) {
        dropConn(conn, n == 0 ? "connection closed" : "read error");
        return;
    }
    conn->decoder.feed(buf, static_cast<std::size_t>(n));
    for (;;) {
        net::Frame frame;
        const auto status = conn->decoder.next(&frame);
        if (status == net::DecodeStatus::NeedMore)
            return;
        if (status != net::DecodeStatus::Ok) {
            dropConn(conn, net::decodeStatusName(status));
            return;
        }
        handleFrame(conn, frame);
    }
}

void
RemoteFrontEnd::handleFrame(const std::shared_ptr<Conn> &conn,
                            const net::Frame &frame)
{
    // Any well-formed frame proves the peer alive.
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        conn->last_heartbeat = Clock::now();
    }
    switch (frame.type) {
    case net::MsgType::Hello: {
        net::HelloMsg hello;
        if (!hello.decode(frame.payload)) {
            dropConn(conn, "malformed Hello");
            return;
        }
        handleHello(conn, hello);
        return;
    }
    case net::MsgType::Heartbeat:
        return; // the timestamp update above is the whole effect
    case net::MsgType::Result: {
        net::ResultMsg result;
        if (!result.decode(frame.payload)) {
            dropConn(conn, "malformed Result");
            return;
        }
        handleResult(conn, result);
        return;
    }
    case net::MsgType::DrainAck: {
        std::lock_guard<std::mutex> lock(net_mutex_);
        ++drain_acks_;
        workers_cv_.notify_all();
        return;
    }
    default:
        return; // forward compatibility within a wire version
    }
}

void
RemoteFrontEnd::handleHello(const std::shared_ptr<Conn> &conn,
                            const net::HelloMsg &hello)
{
    net::HelloAckMsg ack;
    const std::string reason =
        net::checkHello(hello, options_.group_size);
    if (!reason.empty()) {
        ack.accepted = 0;
        ack.reason = reason;
        conn->send(net::MsgType::HelloAck, ack.encode());
        dropConn(conn, reason.c_str());
        return;
    }

    std::size_t group = static_cast<std::size_t>(-1);
    bool readmitted = false;
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        // Prefer the slot the worker id hashes to, then any slot with
        // no live worker — a replacement for a dead one reclaims (and
        // un-quarantines) the dead worker's group.
        const std::size_t preferred = hello.worker_id % options_.workers;
        if (!group_conns_[preferred]) {
            group = preferred;
        } else {
            for (std::size_t g = 0; g < group_conns_.size(); ++g) {
                if (!group_conns_[g]) {
                    group = g;
                    break;
                }
            }
        }
        if (group != static_cast<std::size_t>(-1)) {
            conn->worker_id = hello.worker_id;
            conn->group = group;
            conn->ready = true;
            conn->last_heartbeat = Clock::now();
            group_conns_[group] = conn;
            // A conn-loss quarantine heals the moment a replacement
            // worker owns the group again (chip-fault quarantines
            // heal on the repair timer in tick() instead).
            readmitted = repairable_since_.count(group) == 0 &&
                         scheduler_->isQuarantined(group);
        }
    }
    if (group == static_cast<std::size_t>(-1)) {
        ack.accepted = 0;
        ack.reason = "no free group slot: all workers connected";
        conn->send(net::MsgType::HelloAck, ack.encode());
        dropConn(conn, ack.reason.c_str());
        return;
    }
    if (readmitted) {
        scheduler_->readmit(group);
        MetricsRegistry::global().counter("serve.readmissions").add();
    }
    ack.accepted = 1;
    ack.assigned_group = group;
    conn->send(net::MsgType::HelloAck, ack.encode());
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        workers_cv_.notify_all();
    }
}

void
RemoteFrontEnd::handleResult(const std::shared_ptr<Conn> &conn,
                             const net::ResultMsg &result)
{
    auto &metrics = MetricsRegistry::global();
    InFlight in_flight;
    bool chip_failed = false;
    std::size_t group = static_cast<std::size_t>(-1);
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        if (conn->group == static_cast<std::size_t>(-1))
            return; // result before Hello: protocol violation, ignore
        group = conn->group;
        auto it = inflight_.find(group);
        if (it == inflight_.end())
            return; // stale result for a superseded attempt
        auto member = it->second.members.find(result.request_id);
        if (member == it->second.members.end() ||
            member->second.request.attempt != result.attempt)
            return; // not a member of the batch this group is running
        chip_failed = result.chip_failed != 0;
        if (chip_failed) {
            // Park the group before the lease releases (below), so
            // release() quarantines instead of freeing — the same
            // ordering contract as the in-process server. The repair
            // timer may heal it: the worker process is still alive.
            // A batched chip fault reports once per member;
            // markChipFailed is idempotent, but only the first report
            // books the quarantine.
            scheduler_->markChipFailed(
                scheduler_->chipsOf(group).first);
            if (repairable_since_.count(group) == 0) {
                repairable_since_[group] = Clock::now();
                metrics.counter("serve.quarantines").add();
            }
        }
        in_flight = std::move(member->second);
        it->second.members.erase(member);
        // The last member to resolve releases the lease — after any
        // markChipFailed above, so a faulted group parks.
        if (it->second.members.empty())
            inflight_.erase(it);
    }

    if (result.status ==
        static_cast<uint16_t>(net::WireStatus::Completed)) {
        Response resp;
        resp.id = in_flight.request.id;
        resp.workload = in_flight.request.workload;
        resp.attempt = in_flight.request.attempt;
        resp.status = RequestStatus::Completed;
        resp.queue_ms = in_flight.queue_ms;
        resp.service_ms = msSince(in_flight.dispatched);
        resp.total_ms = resp.queue_ms + resp.service_ms;
        resp.sim_seconds = result.sim_seconds;
        resp.compile_ms = result.compile_ms;
        resp.output_hash = result.digest;
        resp.group = group;
        resp.batch_streams = in_flight.batch_streams;
        metrics.counter("serve.requests.completed").add();
        metrics.histogram("serve.queue_ms").observe(resp.queue_ms);
        metrics.histogram("serve.service_ms").observe(resp.service_ms);
        metrics.histogram("serve.total_ms").observe(resp.total_ms);
        finalize(std::move(resp));
        return;
    }
    if (result.retryable == 0) {
        // A permanent program error: no retry will change it.
        Response resp;
        resp.id = in_flight.request.id;
        resp.workload = in_flight.request.workload;
        resp.attempt = in_flight.request.attempt;
        resp.status = RequestStatus::Failed;
        resp.queue_ms = in_flight.queue_ms;
        resp.service_ms = msSince(in_flight.dispatched);
        resp.total_ms = resp.queue_ms + resp.service_ms;
        resp.group = group;
        resp.batch_streams = in_flight.batch_streams;
        resp.error = result.error;
        metrics.counter("serve.requests.failed").add();
        finalize(std::move(resp));
        return;
    }
    retryOrFail(std::move(in_flight), group, result.error,
                chip_failed);
}

void
RemoteFrontEnd::retryOrFail(InFlight in_flight, std::size_t group,
                            const std::string &error, bool chip_failed)
{
    auto &metrics = MetricsRegistry::global();
    Request &request = in_flight.request;
    Response resp;
    resp.id = request.id;
    resp.workload = request.workload;
    resp.attempt = request.attempt;
    resp.queue_ms = in_flight.queue_ms;
    resp.service_ms = msSince(in_flight.dispatched);
    resp.total_ms = resp.queue_ms + resp.service_ms;
    if (group != static_cast<std::size_t>(-1))
        resp.group = group;
    resp.batch_streams = in_flight.batch_streams;
    resp.error = error;
    resp.retryable = true;

    const bool attempts_left =
        request.attempt + 1 < options_.retry.max_attempts;
    // Distributed retries requeue immediately: the victim hardware is
    // quarantined, so a backoff dwell would only delay the reroute
    // (and this runs on the I/O thread, which must not sleep). The
    // deadline check still uses the seeded backoff delay, so a
    // request that could not have been retried in time in-process is
    // not retried here either.
    const double delay_ms = faults::backoffMs(
        request.seed, request.attempt, options_.retry.backoff_base_ms,
        options_.retry.backoff_mult, options_.retry.backoff_max_ms,
        options_.retry.backoff_jitter);
    const bool deadline_allows =
        request.deadline.count() == 0 ||
        msSince(request.born) + delay_ms <=
            static_cast<double>(request.deadline.count());

    if (attempts_left && deadline_allows) {
        Request next = request;
        ++next.attempt;
        // requeue() restamps `admitted` (per-attempt queue wait) but
        // never `born`: the deadline budget is not extended by the
        // failure that caused this retry. Requeue BEFORE recording the
        // Retried row: a sealed queue refuses the requeue, and then
        // the request must finalize as Failed instead of vanishing.
        if (queue_->requeue(std::move(next))) {
            resp.status = RequestStatus::Retried;
            resp.requeued = chip_failed;
            metrics.counter("serve.retries").add();
            if (resp.requeued)
                metrics.counter("serve.requeued").add();
            record(std::move(resp));
            return;
        }
        resp.status = RequestStatus::Failed;
        resp.error += " (retry refused: queue sealed)";
        metrics.counter("serve.requests.failed").add();
        metrics.counter("serve.requeue_refused").add();
        finalize(std::move(resp));
        return;
    }
    if (!deadline_allows) {
        resp.status = RequestStatus::Expired;
        metrics.counter("serve.requests.expired").add();
    } else {
        resp.status = RequestStatus::Failed;
        metrics.counter("serve.requests.failed").add();
    }
    finalize(std::move(resp));
}

void
RemoteFrontEnd::dropConn(const std::shared_ptr<Conn> &conn,
                         const char *why)
{
    GroupWork work;
    bool had_inflight = false;
    bool quarantine = false;
    std::size_t group = static_cast<std::size_t>(-1);
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        const int fd = conn->sock.fd();
        if (fd < 0 || conns_.erase(fd) == 0)
            return; // already torn down (idempotent)
        loop_.remove(fd);
        group = conn->group;
        if (group != static_cast<std::size_t>(-1) &&
            group_conns_[group] == conn) {
            group_conns_[group].reset();
            if (!draining_) {
                // The worker process behind this group is gone: park
                // the group so no later request is placed on it. It
                // recovers only when a replacement worker says Hello —
                // deliberately NOT on the repair timer, so erase any
                // pending chip-repair entry.
                quarantine = !scheduler_->isQuarantined(group);
                repairable_since_.erase(group);
                auto it = inflight_.find(group);
                if (it != inflight_.end()) {
                    // Pull the whole batch out, lease included, so it
                    // releases *after* markChipFailed below (parks,
                    // not frees).
                    work = std::move(it->second);
                    inflight_.erase(it);
                    had_inflight = true;
                }
            }
        }
        conn->ready = false;
        conn->sock.close();
        workers_cv_.notify_all();
    }
    if (quarantine) {
        scheduler_->markChipFailed(scheduler_->chipsOf(group).first);
        MetricsRegistry::global().counter("serve.quarantines").add();
        MetricsRegistry::global()
            .counter("serve.remote.conn_lost")
            .add();
        warn("front-end: worker for group " + std::to_string(group) +
             " lost (" + why + "); group quarantined");
    }
    if (had_inflight)
        // Lossless: every member of the dead worker's batch reroutes
        // to surviving hardware with its deadline budget intact.
        for (auto &[id, member] : work.members) {
            (void)id;
            retryOrFail(std::move(member), group,
                        std::string("worker connection lost: ") + why,
                        /*chip_failed=*/true);
        }
}

void
RemoteFrontEnd::tick()
{
    // Heartbeat sweep: a worker that went silent past the timeout is
    // dead or partitioned — same observable either way.
    std::vector<std::shared_ptr<Conn>> dead;
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        for (const auto &[fd, conn] : conns_) {
            (void)fd;
            if (conn->ready &&
                msSince(conn->last_heartbeat) >
                    options_.heartbeat_timeout_ms)
                dead.push_back(conn);
        }
    }
    for (const auto &conn : dead)
        dropConn(conn, "heartbeat timeout");

    // Repair readmissions: heal chip-fault quarantines whose repair
    // time elapsed and whose worker process is still connected.
    std::vector<std::size_t> healed;
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        for (auto it = repairable_since_.begin();
             it != repairable_since_.end();) {
            const std::size_t group = it->first;
            if (msSince(it->second) >= options_.repair_ms &&
                group_conns_[group] && group_conns_[group]->ready) {
                healed.push_back(group);
                it = repairable_since_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const std::size_t group : healed) {
        scheduler_->readmit(group);
        MetricsRegistry::global().counter("serve.readmissions").add();
    }
}

void
RemoteFrontEnd::record(Response resp)
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    responses_.push_back(std::move(resp));
}

void
RemoteFrontEnd::finalize(Response resp)
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    responses_.push_back(std::move(resp));
    ++finalized_;
    drained_cv_.notify_all();
}

void
RemoteFrontEnd::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(started_, "front-end not started");
    }
    queue_->close();
    // Every admitted request must reach a final state — completed,
    // expired, or failed — before the workers may be drained. Worker
    // deaths during this wait still requeue losslessly; the retry
    // bound guarantees termination even with zero live workers.
    {
        std::unique_lock<std::mutex> lock(responses_mutex_);
        drained_cv_.wait(lock, [&] { return finalized_ >= admitted_; });
    }
    stop_dispatch_.store(true);
    dispatch_thread_.join();
    // Everything admitted is finalized and the dispatcher is gone:
    // a straggling requeue now would vanish silently, so seal the
    // queue — any late requeue fails loudly and finalizes as Failed.
    queue_->seal();

    // Orderly worker shutdown: Drain → DrainAck → worker exits. The
    // EOFs that follow must not read as failures.
    std::size_t drains_sent = 0;
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        draining_ = true;
        for (const auto &conn : group_conns_)
            if (conn && conn->ready &&
                conn->send(net::MsgType::Drain, net::DrainMsg{}.encode()))
                ++drains_sent;
    }
    {
        std::unique_lock<std::mutex> lock(net_mutex_);
        workers_cv_.wait_for(
            lock, std::chrono::milliseconds(2000),
            [&] { return drain_acks_ >= drains_sent; });
    }

    loop_.stop();
    io_thread_.join();
    {
        std::lock_guard<std::mutex> lock(net_mutex_);
        conns_.clear();
        for (auto &conn : group_conns_)
            conn.reset();
    }
    listener_.close();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall_seconds_ =
            std::chrono::duration<double>(Clock::now() - start_time_)
                .count();
        started_ = false;
    }
}

std::vector<Response>
RemoteFrontEnd::responses() const
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    return responses_;
}

ServeStats
RemoteFrontEnd::stats() const
{
    std::vector<Response> resp;
    std::size_t submitted;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        resp = responses_;
        submitted = submitted_;
    }
    double wall;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall = started_
                   ? std::chrono::duration<double>(Clock::now() -
                                                   start_time_)
                         .count()
                   : wall_seconds_;
    }
    // The compile/sim caches live in the worker processes; the
    // front-end has none, so cache stats are empty here.
    auto s = ServeStats::fromResponses(resp, submitted,
                                       queue_->rejected(), wall,
                                       CacheStats{},
                                       scheduler_->busySeconds(),
                                       scheduler_->quarantinedMask());
    s.rejected_full = queue_->rejectedFull();
    s.rejected_closed = queue_->rejectedClosed();
    return s;
}

} // namespace cinnamon::serve::remote
