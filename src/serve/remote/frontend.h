/**
 * @file
 * The orchestrating front-end of the distributed serving tier
 * (DESIGN.md §5d).
 *
 * The front-end owns everything a request needs before and after it
 * touches hardware — admission (the same bounded RequestQueue as the
 * in-process server), dispatch order (FIFO with seed-keyed group
 * preference), and placement (one chip group per connected worker
 * process, leased through the existing ChipGroupScheduler) — while
 * the compile → simulate → emulate pipeline itself runs in worker
 * processes across standing TCP connections.
 *
 * Failure mapping (the §5c machinery, verbatim): a worker that
 * misses heartbeats, drops its connection, or reports a chip fault is
 * a quarantined group — markChipFailed parks it, its in-flight
 * request is requeued losslessly with its original deadline budget
 * (born is never restamped), and the request completes on a
 * surviving worker. Because a request's output digest is a pure
 * function of its seed, the rerouted request produces the exact bytes
 * the dead worker would have — distributed results are bit-identical
 * to single-process runs, kill or no kill.
 *
 * Threads: the caller's (submit/drainAndStop), an I/O thread running
 * the poll event loop (accepts, frame reads, heartbeat timeouts,
 * repair readmissions), and a dispatcher thread that pairs queued
 * requests with idle workers. Worker connections are shared_ptr'd:
 * the I/O thread may tear one down while the dispatcher holds it.
 */

#ifndef CINNAMON_SERVE_REMOTE_FRONTEND_H_
#define CINNAMON_SERVE_REMOTE_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/socket.h"
#include "serve/batcher.h"
#include "serve/queue.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "serve/stats.h"

namespace cinnamon::serve::remote {

/** Deployment shape of the front-end. */
struct FrontEndOptions
{
    std::size_t workers = 2;    ///< chip groups = worker slots
    std::size_t group_size = 4; ///< chips per worker's group
    std::size_t queue_capacity = 64;
    uint16_t port = 0; ///< loopback listen port (0 = OS-assigned)
    /** Missed-heartbeat window before a worker is declared dead. */
    double heartbeat_timeout_ms = 1000.0;
    /** Event-loop tick: heartbeat sweep + repair readmissions. */
    double tick_ms = 20.0;
    /**
     * Quarantine age after which a chip-fault-quarantined group with
     * a live worker is re-admitted (repair time). Groups whose worker
     * died stay parked until a replacement reconnects.
     */
    double repair_ms = 50.0;
    /** Retry policy for faulted/lost attempts (shared semantics). */
    RetryPolicy retry;
    /**
     * Route each request to group (seed % groups) when that worker is
     * idle (falls back to any idle worker). Placement never affects
     * results — digests depend only on the seed — but keyed routing
     * keeps placement reproducible run to run.
     */
    bool seed_routing = true;
    /**
     * Continuous cross-request batching (wire v2): coalesce up to
     * this many compatible queued requests into one Submit — the
     * worker executes them as a single multi-stream program. 1 (the
     * default) dispatches every request alone; digests are
     * bit-identical either way.
     */
    std::size_t batch_max_streams = 1;
    /**
     * How long a short batch lingers for compatible arrivals before
     * dispatching anyway (only with batch_max_streams > 1).
     */
    double batch_linger_ms = 2.0;
};

/**
 * The front-end process. Lifecycle: construct → start() →
 * waitForWorkers() → submit()× → drainAndStop() → stats().
 */
class RemoteFrontEnd
{
  public:
    explicit RemoteFrontEnd(FrontEndOptions options);
    ~RemoteFrontEnd();

    RemoteFrontEnd(const RemoteFrontEnd &) = delete;
    RemoteFrontEnd &operator=(const RemoteFrontEnd &) = delete;

    /**
     * Bind the loopback listener and start the I/O + dispatcher
     * threads.
     *
     * @return false when the port cannot be bound.
     */
    bool start();

    /** The bound listen port (valid after start()). */
    uint16_t port() const { return port_; }

    /** Block until `n` workers completed the Hello handshake. */
    bool waitForWorkers(std::size_t n, double timeout_ms = 10000.0);

    /** Admit a request (same contract as Server::submit). */
    bool submit(Workload workload, uint64_t seed,
                std::chrono::milliseconds deadline =
                    std::chrono::milliseconds(0));

    /**
     * Stop admitting, wait until every admitted request reached a
     * final state (completed / expired / failed — lossless even
     * across worker deaths), drain the workers, and join.
     */
    void drainAndStop();

    /** Responses recorded so far (complete after drainAndStop). */
    std::vector<Response> responses() const;

    /** Aggregate statistics, including per-group placement. */
    ServeStats stats() const;

    const ChipGroupScheduler &scheduler() const { return *scheduler_; }

    /** Workers currently connected and ready. */
    std::size_t connectedWorkers() const;

  private:
    /** One worker connection (shared between I/O and dispatcher). */
    struct Conn
    {
        net::Socket sock;
        net::FrameDecoder decoder;
        std::mutex send_mutex;
        uint64_t worker_id = 0;
        std::size_t group = static_cast<std::size_t>(-1);
        bool ready = false; ///< Hello handshake completed
        Clock::time_point last_heartbeat{};

        bool send(net::MsgType type,
                  const std::vector<uint8_t> &payload);
    };

    /** One request currently executing on a worker. */
    struct InFlight
    {
        Request request;
        Clock::time_point dispatched{};
        double queue_ms = 0.0; ///< admission → dispatch, precomputed
        /** Members of the batch this attempt rode (1 = solo). */
        std::size_t batch_streams = 1;
    };

    /**
     * Everything one leased group is executing: the lease plus the
     * batch members (by request id). The lease releases when the last
     * member resolves — after any markChipFailed, so a faulted group
     * parks instead of freeing.
     */
    struct GroupWork
    {
        GroupLease lease;
        std::map<uint64_t, InFlight> members;
    };

    // I/O thread.
    void onAccept();
    void onReadable(const std::shared_ptr<Conn> &conn);
    void handleFrame(const std::shared_ptr<Conn> &conn,
                     const net::Frame &frame);
    void handleHello(const std::shared_ptr<Conn> &conn,
                     const net::HelloMsg &hello);
    void handleResult(const std::shared_ptr<Conn> &conn,
                      const net::ResultMsg &result);
    /** Heartbeat sweep + repair readmissions. */
    void tick();
    /** Connection death: quarantine the group, requeue in-flight. */
    void dropConn(const std::shared_ptr<Conn> &conn,
                  const char *why);

    // Dispatcher thread.
    void dispatchLoop();
    /**
     * Place a batch of compatible requests (size 1 = the unbatched
     * path) on one worker as a single multi-stream Submit.
     */
    void dispatch(std::vector<Request> batch);

    /**
     * Record a final response and wake drainAndStop when everything
     * admitted is accounted for.
     */
    void finalize(Response resp);
    /** Record an intermediate (Retried) response row. */
    void record(Response resp);
    /**
     * Requeue-or-finalize a faulted attempt: mirrors the in-process
     * retry policy (bounded attempts, deadline never extended).
     * `in_flight` is consumed; `group` is the placement for the
     * response row (size_t(-1) when no group was ever leased).
     */
    void retryOrFail(InFlight in_flight, std::size_t group,
                     const std::string &error, bool chip_failed);

    FrontEndOptions options_;
    std::unique_ptr<RequestQueue> queue_;
    std::unique_ptr<BatchFormer> batcher_;
    std::unique_ptr<ChipGroupScheduler> scheduler_;
    net::EventLoop loop_;
    net::Socket listener_;
    uint16_t port_ = 0;

    std::thread io_thread_;
    std::thread dispatch_thread_;

    /** Guards conns_, group_conns_, inflight_, hello_count_. */
    mutable std::mutex net_mutex_;
    std::map<int, std::shared_ptr<Conn>> conns_; ///< by fd
    std::vector<std::shared_ptr<Conn>> group_conns_; ///< by group
    std::map<std::size_t, GroupWork> inflight_;      ///< by group
    /** Groups quarantined by a *reported chip fault* (repairable
        in place); connection-loss quarantines are absent here — they
        recover only via a replacement Hello. */
    std::map<std::size_t, Clock::time_point> repairable_since_;
    std::condition_variable workers_cv_;
    std::size_t drain_acks_ = 0;
    /** Set during drainAndStop: worker EOFs are orderly, not faults. */
    bool draining_ = false;

    mutable std::mutex responses_mutex_;
    std::condition_variable drained_cv_;
    std::vector<Response> responses_;
    std::size_t submitted_ = 0;
    std::size_t admitted_ = 0;
    std::size_t finalized_ = 0;
    uint64_t next_id_ = 1;

    mutable std::mutex state_mutex_;
    bool started_ = false;
    std::atomic<bool> stop_dispatch_{false};
    Clock::time_point start_time_{};
    double wall_seconds_ = 0.0;
};

} // namespace cinnamon::serve::remote

#endif // CINNAMON_SERVE_REMOTE_FRONTEND_H_
