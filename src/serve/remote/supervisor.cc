#include "serve/remote/supervisor.h"

#include <climits>
#include <csignal>
#include <cstdio>
#include <sys/wait.h>
#include <unistd.h>

namespace cinnamon::serve::remote {

ProcessSupervisor::~ProcessSupervisor()
{
    for (auto &child : children_) {
        poll(child);
        if (child.exited)
            continue;
        ::kill(child.pid, SIGKILL);
        ::waitpid(child.pid, &child.status, 0);
        child.exited = true;
    }
}

pid_t
ProcessSupervisor::spawn(const std::vector<std::string> &argv)
{
    if (argv.empty())
        return -1;
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &arg : argv)
        cargv.push_back(const_cast<char *>(arg.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return -1;
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // Only reached when exec failed; _exit so the child never
        // runs the parent's atexit handlers or flushes its buffers.
        std::perror("execv");
        ::_exit(127);
    }
    children_.push_back({pid, false, 0});
    return pid;
}

ProcessSupervisor::Child *
ProcessSupervisor::find(pid_t pid)
{
    for (auto &child : children_)
        if (child.pid == pid)
            return &child;
    return nullptr;
}

void
ProcessSupervisor::poll(Child &child)
{
    if (child.exited)
        return;
    int status = 0;
    const pid_t r = ::waitpid(child.pid, &status, WNOHANG);
    if (r == child.pid) {
        child.exited = true;
        child.status = status;
    }
}

bool
ProcessSupervisor::alive(pid_t pid)
{
    Child *child = find(pid);
    if (child == nullptr)
        return false;
    poll(*child);
    return !child->exited;
}

bool
ProcessSupervisor::kill(pid_t pid, int sig)
{
    Child *child = find(pid);
    if (child == nullptr)
        return false;
    poll(*child);
    if (child->exited)
        return false;
    return ::kill(pid, sig) == 0;
}

int
ProcessSupervisor::wait(pid_t pid)
{
    Child *child = find(pid);
    if (child == nullptr)
        return INT_MIN;
    if (!child->exited) {
        if (::waitpid(pid, &child->status, 0) != pid)
            return INT_MIN;
        child->exited = true;
    }
    if (WIFEXITED(child->status))
        return WEXITSTATUS(child->status);
    if (WIFSIGNALED(child->status))
        return -WTERMSIG(child->status);
    return INT_MIN;
}

std::vector<pid_t>
ProcessSupervisor::pids() const
{
    std::vector<pid_t> out;
    out.reserve(children_.size());
    for (const auto &child : children_)
        if (!child.exited)
            out.push_back(child.pid);
    return out;
}

} // namespace cinnamon::serve::remote
