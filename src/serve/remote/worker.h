/**
 * @file
 * The chip-group worker process of the distributed serving tier
 * (DESIGN.md §5d).
 *
 * A worker owns exactly one chip group of the logical machine and
 * runs the same compile → simulate → emulate pipeline the in-process
 * server runs, behind a TCP connection instead of a function call:
 *
 *   connect → Hello/HelloAck handshake → loop { Submit → execute →
 *   Result } → Drain → DrainAck → exit
 *
 * Execution is byte-for-byte the single-process path: the workload's
 * kernels are timed through a BenchmarkRunner, and the catalog probe
 * program is emulated end-to-end with request-seeded keys via
 * exec::EmulateBackend::executeSeeded — so a request's output digest
 * is a pure function of (seed, catalog, parameters), identical
 * whether it was served in-process or by any worker process. That is
 * the distributed tier's determinism contract.
 *
 * A heartbeat thread beats every heartbeat_interval_ms for the whole
 * worker lifetime, including while a request is executing — liveness
 * and request latency are deliberately decoupled, so a slow request
 * is never mistaken for a dead worker.
 *
 * Fault injection: the worker draws from the same deterministic
 * FaultPlan as the in-process server. Chip and transient faults are
 * reported back in the Result (the front-end quarantines/retries);
 * a conn-drop fault makes the worker sever its connection mid-request
 * and exit with kConnDropExit — indistinguishable, to the front-end,
 * from a real crash or partition.
 */

#ifndef CINNAMON_SERVE_REMOTE_WORKER_H_
#define CINNAMON_SERVE_REMOTE_WORKER_H_

#include <cstdint>
#include <string>

#include "faults/fault_plan.h"
#include "fhe/params.h"
#include "sim/hardware.h"

namespace cinnamon::serve::remote {

/** Exit code of a worker that drew an injected connection drop. */
constexpr int kConnDropExit = 86;

/** Deployment shape of one worker process. */
struct WorkerOptions
{
    uint16_t port = 0;       ///< front-end's loopback port
    uint64_t worker_id = 0;  ///< stable identity across reconnects
    std::size_t group_size = 4; ///< chips in this worker's group
    /** Run the end-to-end emulator probe per request (small n only). */
    bool emulate = true;
    std::size_t emulate_max_n = 1 << 14;
    /**
     * Wall-clock seconds the group stays occupied per simulated
     * second (device-occupancy modelling, as in ServeOptions).
     */
    double time_dilation = 0.0;
    double heartbeat_interval_ms = 20.0;
    /** How long to keep retrying the initial connect. */
    double connect_timeout_ms = 5000.0;
    sim::HardwareConfig hw; ///< per-chip model (hw.n set from ctx)
    /** Deterministic fault schedule (same semantics as ServeOptions). */
    faults::FaultConfig faults;
    /**
     * Autotune the execution plan per workload (same semantics as
     * ServeOptions::autotune). The worker's PlanTuner sees the same
     * (workload, hardware) inputs as the in-process server's, so both
     * sides compute identical decisions — and identical digests.
     */
    bool autotune = false;
    /** Force one named registry strategy ("" = default config). */
    std::string strategy;
    /**
     * Size of this process's shared execution TaskPool (same
     * semantics as ServeOptions::exec_workers: 0 keeps the
     * CINNAMON_WORKERS / hardware default). Results are bit-identical
     * at any size.
     */
    std::size_t exec_workers = 0;
};

/**
 * Run one worker process to completion: serve requests until the
 * front-end drains us or the connection is lost.
 *
 * @return 0 after an orderly drain, kConnDropExit after an injected
 *         connection drop, 1 on connection/handshake failure.
 */
int runWorker(const fhe::CkksContext &ctx, const WorkerOptions &options);

} // namespace cinnamon::serve::remote

#endif // CINNAMON_SERVE_REMOTE_WORKER_H_
