#include "serve/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace cinnamon::serve {

namespace {

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

} // namespace

void
GroupLease::release()
{
    if (sched_ != nullptr) {
        sched_->release(group_);
        sched_ = nullptr;
    }
}

void
BatchLease::shrinkTo(std::size_t n)
{
    if (sched_ == nullptr)
        return;
    while (groups_.size() > n && groups_.size() > 1) {
        sched_->release(groups_.back());
        groups_.pop_back();
    }
}

void
BatchLease::release()
{
    if (sched_ != nullptr) {
        for (const std::size_t g : groups_)
            sched_->release(g);
        sched_ = nullptr;
        groups_.clear();
    }
}

ChipGroupScheduler::ChipGroupScheduler(std::size_t chips,
                                       std::size_t group_size)
    : group_size_(group_size)
{
    CINN_FATAL_UNLESS(group_size >= 1 && chips >= group_size,
                      "machine must have at least one chip group");
    CINN_FATAL_UNLESS(chips % group_size == 0,
                      "chips (" << chips << ") must be a multiple of "
                                << "the group size (" << group_size
                                << "); a remainder would strand chips");
    const std::size_t groups = chips / group_size;
    busy_since_.assign(groups, Clock::time_point{});
    busy_seconds_.assign(groups, 0.0);
    quarantined_.assign(groups, 0);
    quarantined_since_.assign(groups, Clock::time_point{});
    chip_failed_.assign(chips, 0);
    free_.reserve(groups);
    for (std::size_t g = groups; g-- > 0;)
        free_.push_back(g); // pop_back hands out group 0 first
}

GroupLease
ChipGroupScheduler::acquire()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t ticket = next_ticket_++;
    freed_.wait(lock, [&] {
        return ticket == serving_ticket_ &&
               (!free_.empty() ||
                quarantined_count_ == busy_since_.size());
    });
    if (free_.empty()) {
        // Every group is quarantined: nothing will be released, so
        // waiting would deadlock. Pass the baton and report upward;
        // the caller retries after the health probe repairs a group.
        ++serving_ticket_;
        freed_.notify_all();
        throw NoHealthyGroupsError();
    }
    ++serving_ticket_;
    const std::size_t group = free_.back();
    free_.pop_back();
    busy_since_[group] = Clock::now();
    // Wake the next ticket holder (they wait on the same cv).
    freed_.notify_all();
    return GroupLease(this, group);
}

BatchLease
ChipGroupScheduler::acquireUpTo(std::size_t max_groups)
{
    CINN_ASSERT(max_groups >= 1, "acquireUpTo needs at least one group");
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t ticket = next_ticket_++;
    freed_.wait(lock, [&] {
        return ticket == serving_ticket_ &&
               (!free_.empty() ||
                quarantined_count_ == busy_since_.size());
    });
    if (free_.empty()) {
        ++serving_ticket_;
        freed_.notify_all();
        throw NoHealthyGroupsError();
    }
    ++serving_ticket_;
    // One group is guaranteed; take any further *currently free*
    // groups opportunistically — waiting for more would trade the
    // lease we already hold for latency.
    std::vector<std::size_t> groups;
    const auto now = Clock::now();
    while (!free_.empty() && groups.size() < max_groups) {
        const std::size_t group = free_.back();
        free_.pop_back();
        busy_since_[group] = now;
        groups.push_back(group);
    }
    freed_.notify_all();
    return BatchLease(this, std::move(groups));
}

GroupLease
ChipGroupScheduler::tryAcquire()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Respect FIFO: if someone holds an earlier ticket, don't overtake.
    if (next_ticket_ != serving_ticket_ || free_.empty())
        return GroupLease();
    const std::size_t group = free_.back();
    free_.pop_back();
    busy_since_[group] = Clock::now();
    return GroupLease(this, group);
}

GroupLease
ChipGroupScheduler::tryAcquireGroup(std::size_t group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(group < busy_since_.size(),
                "tryAcquireGroup of unknown group " << group);
    // Respect FIFO: if someone holds an earlier ticket, don't overtake.
    if (next_ticket_ != serving_ticket_)
        return GroupLease();
    const auto it = std::find(free_.begin(), free_.end(), group);
    if (it == free_.end())
        return GroupLease(); // busy or quarantined
    free_.erase(it);
    busy_since_[group] = Clock::now();
    return GroupLease(this, group);
}

void
ChipGroupScheduler::release(std::size_t group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(group < busy_since_.size(), "release of unknown group");
    CINN_ASSERT(busy_since_[group] != Clock::time_point{},
                "double release of group " << group);
    busy_seconds_[group] += secondsSince(busy_since_[group]);
    busy_since_[group] = Clock::time_point{};
    // A group quarantined while leased (its chip died mid-program) is
    // parked, not freed: no later request may lease dead hardware.
    if (!quarantined_[group])
        free_.push_back(group);
    freed_.notify_all();
}

void
ChipGroupScheduler::markChipFailed(std::size_t chip)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(chip < chip_failed_.size(),
                "failure report for unknown chip " << chip);
    chip_failed_[chip] = 1;
    const std::size_t group = chip / group_size_;
    if (!quarantined_[group]) {
        quarantined_[group] = 1;
        quarantined_since_[group] = Clock::now();
        ++quarantined_count_;
        ++quarantines_total_;
        // If the group is idle, pull it off the free list now.
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (*it == group) {
                free_.erase(it);
                break;
            }
        }
    }
    // Wake waiters: if this was the last healthy group, blocked
    // acquire() calls must observe it and fail over to a retry.
    freed_.notify_all();
}

void
ChipGroupScheduler::readmitLocked(std::size_t group)
{
    quarantined_[group] = 0;
    --quarantined_count_;
    ++readmissions_total_;
    const auto [lo, hi] = chipsOf(group);
    for (std::size_t c = lo; c < hi; ++c)
        chip_failed_[c] = 0;
    if (busy_since_[group] == Clock::time_point{})
        free_.push_back(group);
    freed_.notify_all();
}

std::vector<std::size_t>
ChipGroupScheduler::readmitRecovered(double repair_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> readmitted;
    const auto now = Clock::now();
    for (std::size_t g = 0; g < quarantined_.size(); ++g) {
        if (!quarantined_[g])
            continue;
        if (busy_since_[g] != Clock::time_point{})
            continue; // still leased; park until released
        const double since_ms =
            std::chrono::duration<double, std::milli>(
                now - quarantined_since_[g])
                .count();
        if (since_ms < repair_ms)
            continue;
        readmitLocked(g);
        readmitted.push_back(g);
    }
    return readmitted;
}

void
ChipGroupScheduler::readmit(std::size_t group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(group < quarantined_.size(),
                "readmit of unknown group " << group);
    if (quarantined_[group])
        readmitLocked(group);
}

bool
ChipGroupScheduler::isQuarantined(std::size_t group) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(group < quarantined_.size(),
                "query of unknown group " << group);
    return quarantined_[group] != 0;
}

std::vector<uint8_t>
ChipGroupScheduler::quarantinedMask() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_;
}

std::size_t
ChipGroupScheduler::quarantinedGroups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantined_count_;
}

std::vector<std::size_t>
ChipGroupScheduler::failedChips() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < chip_failed_.size(); ++c)
        if (chip_failed_[c])
            out.push_back(c);
    return out;
}

std::size_t
ChipGroupScheduler::quarantinesTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantines_total_;
}

std::size_t
ChipGroupScheduler::readmissionsTotal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return readmissions_total_;
}

std::size_t
ChipGroupScheduler::busyGroups() const
{
    // Count leases directly: quarantined groups are neither free nor
    // busy, so groups − free would overcount while one is parked.
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t busy = 0;
    for (const auto &since : busy_since_)
        if (since != Clock::time_point{})
            ++busy;
    return busy;
}

std::vector<double>
ChipGroupScheduler::busySeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<double> out = busy_seconds_;
    for (std::size_t g = 0; g < out.size(); ++g) {
        if (busy_since_[g] != Clock::time_point{})
            out[g] += secondsSince(busy_since_[g]);
    }
    return out;
}

} // namespace cinnamon::serve
