#include "serve/scheduler.h"

#include "common/logging.h"

namespace cinnamon::serve {

namespace {

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

} // namespace

void
GroupLease::release()
{
    if (sched_ != nullptr) {
        sched_->release(group_);
        sched_ = nullptr;
    }
}

ChipGroupScheduler::ChipGroupScheduler(std::size_t chips,
                                       std::size_t group_size)
    : group_size_(group_size)
{
    CINN_FATAL_UNLESS(group_size >= 1 && chips >= group_size,
                      "machine must have at least one chip group");
    CINN_FATAL_UNLESS(chips % group_size == 0,
                      "chips (" << chips << ") must be a multiple of "
                                << "the group size (" << group_size
                                << "); a remainder would strand chips");
    const std::size_t groups = chips / group_size;
    busy_since_.assign(groups, Clock::time_point{});
    busy_seconds_.assign(groups, 0.0);
    free_.reserve(groups);
    for (std::size_t g = groups; g-- > 0;)
        free_.push_back(g); // pop_back hands out group 0 first
}

GroupLease
ChipGroupScheduler::acquire()
{
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t ticket = next_ticket_++;
    freed_.wait(lock, [&] {
        return ticket == serving_ticket_ && !free_.empty();
    });
    ++serving_ticket_;
    const std::size_t group = free_.back();
    free_.pop_back();
    busy_since_[group] = Clock::now();
    // Wake the next ticket holder (they wait on the same cv).
    freed_.notify_all();
    return GroupLease(this, group);
}

GroupLease
ChipGroupScheduler::tryAcquire()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Respect FIFO: if someone holds an earlier ticket, don't overtake.
    if (next_ticket_ != serving_ticket_ || free_.empty())
        return GroupLease();
    const std::size_t group = free_.back();
    free_.pop_back();
    busy_since_[group] = Clock::now();
    return GroupLease(this, group);
}

void
ChipGroupScheduler::release(std::size_t group)
{
    std::lock_guard<std::mutex> lock(mutex_);
    CINN_ASSERT(group < busy_since_.size(), "release of unknown group");
    CINN_ASSERT(busy_since_[group] != Clock::time_point{},
                "double release of group " << group);
    busy_seconds_[group] += secondsSince(busy_since_[group]);
    busy_since_[group] = Clock::time_point{};
    free_.push_back(group);
    freed_.notify_all();
}

std::size_t
ChipGroupScheduler::busyGroups() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return busy_since_.size() - free_.size();
}

std::vector<double>
ChipGroupScheduler::busySeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<double> out = busy_seconds_;
    for (std::size_t g = 0; g < out.size(); ++g) {
        if (busy_since_[g] != Clock::time_point{})
            out[g] += secondsSince(busy_since_[g]);
    }
    return out;
}

} // namespace cinnamon::serve
