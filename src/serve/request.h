/**
 * @file
 * Request/response types for the multi-tenant serving runtime.
 *
 * A request names an encrypted-inference workload (one of the paper's
 * Section 6.2 benchmarks, or the small end-to-end probe program), a
 * seed that determines its key material and input ciphertexts, and an
 * optional deadline. The runtime answers with a response carrying the
 * request's fate, its latency decomposition (queue wait, service,
 * total — wall-clock), the simulated on-accelerator seconds, and a
 * hash of the decrypted-able output ciphertexts so that concurrent
 * and serial executions can be compared bit-for-bit.
 */

#ifndef CINNAMON_SERVE_REQUEST_H_
#define CINNAMON_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace cinnamon::serve {

using Clock = std::chrono::steady_clock;

/**
 * The workload a request asks the runtime to execute.
 *
 * Serialized as a uint16 on the wire (src/net/message.h), so new
 * workloads are appended at the end — reordering would silently remap
 * requests between mixed-version peers.
 */
enum class Workload {
    Bootstrap,     ///< one full CKKS bootstrap
    ResNet,        ///< ResNet-20 CIFAR-10 inference
    Helr,          ///< HELR logistic-regression training
    Bert,          ///< BERT-base 128-token inference (S16, DESIGN §3)
    Keyswitch,     ///< a single rotation (smallest kernel)
    ObliviousJoin, ///< oblivious equi-join (bitonic sort + merge)
};

const char *workloadName(Workload w);

/** Parse a workloadName() string; false if unknown. */
bool workloadFromName(const std::string &name, Workload *out);

/** One encrypted-inference request. */
struct Request
{
    uint64_t id = 0;
    Workload workload = Workload::Keyswitch;
    /** Determines the request's keys and input ciphertexts. */
    uint64_t seed = 0;
    /** Wall-clock deadline measured from first admission; 0 = none. */
    std::chrono::milliseconds deadline{0};
    /** Stamped by the queue at (re-)admission. */
    Clock::time_point admitted{};
    /**
     * First admission; the deadline budget spans every attempt, so
     * retries never reset it. Stamped once by Server::submit().
     */
    Clock::time_point born{};
    /** Execution attempt, 0-based; bumped on each requeue. */
    std::size_t attempt = 0;
};

/** How a request left the system. */
enum class RequestStatus {
    Completed, ///< executed end-to-end
    Rejected,  ///< bounced at admission (queue full — backpressure)
    Expired,   ///< deadline passed while queued
    Failed,    ///< execution raised an error
    Retried,   ///< attempt faulted; requeued for another attempt
};

const char *statusName(RequestStatus s);

/** The runtime's answer to one request. */
struct Response
{
    uint64_t id = 0;
    Workload workload = Workload::Keyswitch;
    RequestStatus status = RequestStatus::Completed;

    double queue_ms = 0.0;   ///< admission → dequeue
    double service_ms = 0.0; ///< dequeue → completion (incl. group wait)
    double total_ms = 0.0;   ///< admission → completion
    double sim_seconds = 0.0; ///< simulated on-accelerator time
    /** Host wall-clock ms compiling for this request (0 = all hits). */
    double compile_ms = 0.0;

    /** FNV-1a over the output ciphertext limbs (0 if not emulated). */
    uint64_t output_hash = 0;
    /** Chip group that served the request (size_t(-1) if none). */
    std::size_t group = static_cast<std::size_t>(-1);
    std::string error; ///< for Failed / Retried
    /** Execution attempt this response describes (0-based). */
    std::size_t attempt = 0;
    /**
     * True when the condition behind a non-Completed status is
     * transient: a Rejected submit may be retried once the queue
     * drains, and a Failed/Retried attempt hit an injected or
     * infrastructure fault rather than a permanent program error.
     */
    bool retryable = false;
    /**
     * For Retried: the attempt was requeued onto different hardware
     * because its group lost a chip (or the machine was fully
     * quarantined), not merely because of a transient error.
     */
    bool requeued = false;
    /**
     * How many requests shared the multi-stream program this attempt
     * executed in (1 = served alone; >1 = continuous batching).
     */
    std::size_t batch_streams = 1;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_REQUEST_H_
