#include "serve/tuner.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "common/metrics.h"
#include "compiler/strategy.h"
#include "cost/cost_model.h"

namespace cinnamon::serve {

namespace {

/** The strategy the untuned serving path compiles with. */
constexpr const char *kDefaultStrategy = "cinnamon-ks";

/**
 * Content fingerprint of a benchmark: name plus every phase's kernel
 * fingerprint and composition numbers. Two benchmarks with equal keys
 * time identically under every candidate, so they may share a
 * decision.
 */
std::string
benchKeyOf(const workloads::Benchmark &bench)
{
    std::ostringstream key;
    key << bench.name;
    for (const auto &phase : bench.phases)
        key << '|' << phase.name << ':'
            << compiler::fingerprintOf(*phase.kernel) << ':'
            << phase.invocations << ':' << phase.parallelism;
    return key.str();
}

/** The hardware fields that affect simulated time (the sim cache's
 *  own key fields, kept in lockstep). */
std::string
hwKeyOf(const sim::HardwareConfig &hw)
{
    std::ostringstream key;
    key << hw.lanes << ':' << hw.phys_regs << ':' << hw.hbm_gbs << ':'
        << hw.link_gbs << ':' << hw.link_dilation << ':'
        << static_cast<int>(hw.topology) << ':' << hw.n;
    return key.str();
}

} // namespace

std::string
TunedPlan::summary() const
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "strategy=%s group=%zu streams=%zu "
                  "sim=%.6fs default=%.6fs energy=%.1fJ "
                  "(%zu candidates)",
                  strategy.c_str(), group, streams, tuned_seconds,
                  default_seconds, energy_j, candidates);
    return buf;
}

const TunedPlan &
PlanTuner::plan(const workloads::Benchmark &bench, std::size_t chips,
                const sim::HardwareConfig &hw)
{
    std::ostringstream key;
    key << benchKeyOf(bench) << '@' << chips << '@' << hwKeyOf(hw);

    auto &metrics = MetricsRegistry::global();
    bool computed = false;
    const TunedPlan &plan = cache_.getOrCompute(key.str(), [&] {
        computed = true;
        const auto start = std::chrono::steady_clock::now();
        const double watts =
            cost::chipPowerWatts(cost::ChipSpec::cinnamon());

        TunedPlan best;
        double best_energy = 0.0;
        // Candidates: every non-sequential single-stream registry
        // strategy (multi-stream entries are hints for benches; the
        // tuner explores stream counts itself) × every even split of
        // the lease into streams. Registry order × ascending stream
        // count makes first-wins ties deterministic.
        for (const auto &strat :
             compiler::StrategyRegistry::global().entries()) {
            if (strat.sequential || strat.streams != 1)
                continue;
            for (std::size_t streams = 1; streams <= chips;
                 ++streams) {
                if (chips % streams != 0)
                    continue;
                const std::size_t group = chips / streams;
                const auto timing =
                    runner_->run(bench, chips, hw, group, strat.ks);
                // Modeled machine energy: every chip of the lease is
                // powered for the whole run, busy or idle.
                const double energy = watts *
                                      static_cast<double>(chips) *
                                      timing.seconds;
                ++best.candidates;
                if (strat.name == kDefaultStrategy && group == chips)
                    best.default_seconds = timing.seconds;
                const bool wins =
                    best.strategy.empty() ||
                    timing.seconds < best.tuned_seconds ||
                    (timing.seconds == best.tuned_seconds &&
                     energy < best_energy);
                if (wins) {
                    best.strategy = strat.name;
                    best.group = group;
                    best.streams = streams;
                    best.tuned_seconds = timing.seconds;
                    best_energy = energy;
                }
            }
        }
        best.energy_j = best_energy;

        const double tune_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        metrics.histogram("serve.tuner.tune_ms").observe(tune_ms);
        metrics.counter("serve.tuner.candidates")
            .add(static_cast<double>(best.candidates));
        // The decision line both sides of a digest comparison must
        // print identically (modulo tune_ms, which is host time).
        std::printf(
            "[tuner] %s on %zu chips: %s (tuned in %.1f ms)\n",
            bench.name.c_str(), chips, best.summary().c_str(),
            tune_ms);
        return best;
    });
    metrics.counter(computed ? "serve.tuner.miss" : "serve.tuner.hit")
        .add();
    return plan;
}

} // namespace cinnamon::serve
