/**
 * @file
 * Serving statistics: the report a deployment would put on a
 * dashboard — throughput, queue wait, latency percentiles (wall-clock
 * and simulated on-accelerator seconds), compile/sim cache hit rate,
 * admission-control counters, and per-chip-group utilization.
 */

#ifndef CINNAMON_SERVE_STATS_H_
#define CINNAMON_SERVE_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/sharded_cache.h"
#include "serve/request.h"

namespace cinnamon::serve {

/**
 * Linear-interpolated percentile of an unsorted sample, p in [0, 100].
 * Returns 0 for an empty sample.
 */
double percentile(std::vector<double> values, double p);

/** Aggregated over one serving run. */
struct ServeStats
{
    // Request accounting. Final fates partition the admitted set:
    // completed + expired + failed + rejected == submitted (Retried
    // responses are intermediate rows, counted separately below).
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0; ///< bounced at admission (full + closed)
    std::size_t expired = 0;  ///< deadline passed in queue
    std::size_t failed = 0;

    // Admission rejections split by cause: capacity backpressure is
    // the load balancer's signal; shutdown-time rejections are
    // expected during drain and must not pollute it. Assigned by the
    // owner of the queue (fromResponses only knows the sum).
    std::size_t rejected_full = 0;   ///< queue at capacity
    std::size_t rejected_closed = 0; ///< submitted after close()

    // Resilience accounting.
    std::size_t retried = 0;  ///< faulted attempts that were requeued
    /** Retries caused by a chip loss / quarantined machine. */
    std::size_t requeued = 0;
    /** Rejections the caller may retry (backpressure, not shutdown). */
    std::size_t rejected_retryable = 0;
    /** Failed requests whose last error was a transient fault. */
    std::size_t failed_retryable = 0;

    double wall_seconds = 0.0; ///< first submit → drain complete
    double throughput_rps = 0.0; ///< completed / wall_seconds

    // Wall-clock latency (ms) over completed requests.
    double queue_ms_mean = 0.0;
    double latency_ms_p50 = 0.0;
    double latency_ms_p95 = 0.0;
    double latency_ms_p99 = 0.0;

    // Simulated on-accelerator seconds over completed requests.
    double sim_seconds_p50 = 0.0;
    double sim_seconds_p99 = 0.0;
    double sim_seconds_total = 0.0;

    CacheStats cache; ///< compile + sim cache hits/misses
    /**
     * Serving-tier plan cache (content-fingerprint + compiler-config
     * keyed CompiledPrograms). Steady state should show ~100% hits:
     * every compile after the first for a given (program, config) is
     * amortized away. Assigned by the owner of the PlanCache.
     */
    CacheStats plan_cache;
    /**
     * Plan-tuner decision cache (autotune only). One miss per
     * distinct (workload, chips, hardware) point ever tuned; every
     * later request of that kind hits. Assigned by the PlanTuner's
     * owner.
     */
    CacheStats tuner_cache;

    // Continuous batching (fromResponses derives these from the
    // per-response batch_streams field).
    /** Completed requests that shared a multi-stream batch (>1). */
    std::size_t batched_completed = 0;
    /** Mean members per executed batch over completed requests. */
    double batch_occupancy_mean = 0.0;
    /** Largest batch any completed request rode in. */
    std::size_t batch_occupancy_max = 0;

    /** Busy fraction of each chip group over wall_seconds. */
    std::vector<double> group_utilization;

    // Per-group placement accounting (indexed by chip group). The
    // aggregates above say *how much* was served; these say *where*
    // — the signal needed to debug placement skew and to see which
    // groups are sitting in quarantine right now.
    /** Requests completed by each group. */
    std::vector<std::size_t> group_completed;
    /** Attempts each group served that ended in a retry/requeue. */
    std::vector<std::size_t> group_retried;
    /** Whether each group is quarantined at report time. */
    std::vector<uint8_t> group_quarantined;

    /**
     * Compute the derived fields from a set of responses.
     *
     * @param group_quarantined current per-group quarantine state
     *        (scheduler snapshot); may be empty when the caller has
     *        no scheduler.
     */
    static ServeStats fromResponses(
        const std::vector<Response> &responses, std::size_t submitted,
        std::size_t rejected, double wall_seconds,
        const CacheStats &cache,
        const std::vector<double> &group_busy_seconds,
        const std::vector<uint8_t> &group_quarantined = {});

    /** Multi-line human-readable report. */
    std::string report() const;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_STATS_H_
