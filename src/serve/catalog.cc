#include "serve/catalog.h"

#include "common/logging.h"
#include "workloads/oblivious_join.h"

namespace cinnamon::serve {

namespace {

using workloads::Benchmark;
using workloads::BootstrapShape;
using workloads::Phase;

std::shared_ptr<compiler::Program>
share(compiler::Program p)
{
    return std::make_shared<compiler::Program>(std::move(p));
}

/** A shallow bootstrap that fits a ~16-level test chain. */
BootstrapShape
miniBootstrapShape(std::size_t max_level)
{
    BootstrapShape s;
    s.start_level = max_level - 1;
    s.c2s_stages = 2;
    s.s2c_stages = 2;
    s.bsgs_baby = 3;
    s.bsgs_giant = 3;
    s.evalmod_depth = 6;
    return s;
}

/** Miniature Section 6.2 suite for small test parameter sets. */
std::map<Workload, Benchmark>
miniSuite(const fhe::CkksContext &ctx)
{
    const std::size_t max_level = ctx.maxLevel();
    CINN_FATAL_UNLESS(
        max_level >= 14,
        "serving needs a chain of >= 15 levels for the miniature "
        "bootstrap (got max level " << max_level << ")");
    const auto shape = miniBootstrapShape(max_level);
    const std::size_t lvl = max_level - 2;
    auto boot = share(workloads::bootstrapKernel(ctx, shape));

    std::map<Workload, Benchmark> suite;

    Benchmark ks;
    ks.name = "keyswitch";
    ks.phases.push_back(
        Phase{"keyswitch", share(workloads::keyswitchKernel(ctx, lvl)), 1, 1});
    suite[Workload::Keyswitch] = std::move(ks);

    Benchmark bs;
    bs.name = "bootstrap";
    bs.phases.push_back(Phase{"bootstrap", boot, 1, 1});
    suite[Workload::Bootstrap] = std::move(bs);

    // Single-ciphertext ResNet miniature: conv matvecs, polynomial
    // ReLU, refresh bootstraps — same phase structure, fewer rounds.
    Benchmark rn;
    rn.name = "resnet";
    rn.phases.push_back(Phase{
        "conv", share(workloads::bsgsMatVecKernel(ctx, lvl, 4, 4, "serve_conv")),
        8, 1});
    rn.phases.push_back(
        Phase{"relu", share(workloads::polyEvalKernel(ctx, lvl, 2)), 4, 1});
    rn.phases.push_back(Phase{"bootstrap", boot, 5, 1});
    suite[Workload::ResNet] = std::move(rn);

    // HELR miniature: 2-wide minibatch parallelism as in the paper.
    Benchmark lr;
    lr.name = "helr";
    lr.phases.push_back(Phase{
        "matvec", share(workloads::bsgsMatVecKernel(ctx, lvl, 4, 4, "serve_mv")),
        6, 2});
    lr.phases.push_back(
        Phase{"sigmoid", share(workloads::polyEvalKernel(ctx, lvl, 2)), 3, 2});
    lr.phases.push_back(Phase{"bootstrap", boot, 2, 2});
    suite[Workload::Helr] = std::move(lr);

    // BERT miniature: attention matvecs with 2-wide streams, GELU
    // polynomials, refresh bootstraps — the paper's S16 phase shape
    // (attention/GELU expose program-level parallelism, the residual
    // sections are narrow) at unit-test scale.
    Benchmark bt;
    bt.name = "bert";
    bt.phases.push_back(Phase{
        "attention",
        share(workloads::bsgsMatVecKernel(ctx, lvl, 4, 4, "serve_attn")),
        6, 2});
    bt.phases.push_back(
        Phase{"gelu", share(workloads::polyEvalKernel(ctx, lvl, 2)), 4, 2});
    bt.phases.push_back(Phase{"bootstrap", boot, 3, 1});
    suite[Workload::Bert] = std::move(bt);

    // Encrypted-analytics miniature: the two bitonic table sorts
    // expose 2-wide program parallelism, then the aligned merge —
    // the same phase structure obliviousJoinBenchmark() builds at
    // paper scale (rotate-heavy, no bootstrap).
    suite[Workload::ObliviousJoin] =
        workloads::obliviousJoinBenchmark(ctx);

    return suite;
}

/** The paper's suite, used when the chain supports Bootstrap-13. */
std::map<Workload, Benchmark>
paperSuite(const fhe::CkksContext &ctx)
{
    std::map<Workload, Benchmark> suite;
    suite[Workload::Bootstrap] = workloads::bootstrapBenchmark(ctx);
    suite[Workload::ResNet] = workloads::resnetBenchmark(ctx);
    suite[Workload::Helr] = workloads::helrBenchmark(ctx);
    suite[Workload::Bert] = workloads::bertBenchmark(ctx);
    Benchmark ks;
    ks.name = "keyswitch";
    ks.phases.push_back(Phase{
        "keyswitch", share(workloads::keyswitchKernel(ctx, 13)), 1, 1});
    suite[Workload::Keyswitch] = std::move(ks);
    suite[Workload::ObliviousJoin] =
        workloads::obliviousJoinBenchmark(ctx);
    return suite;
}

} // namespace

const char *
workloadName(Workload w)
{
    switch (w) {
    case Workload::Bootstrap: return "bootstrap";
    case Workload::ResNet: return "resnet";
    case Workload::Helr: return "helr";
    case Workload::Bert: return "bert";
    case Workload::Keyswitch: return "keyswitch";
    case Workload::ObliviousJoin: return "oblivious_join";
    }
    return "?";
}

bool
workloadFromName(const std::string &name, Workload *out)
{
    for (Workload w :
         {Workload::Bootstrap, Workload::ResNet, Workload::Helr,
          Workload::Bert, Workload::Keyswitch,
          Workload::ObliviousJoin}) {
        if (name == workloadName(w)) {
            *out = w;
            return true;
        }
    }
    return false;
}

const char *
statusName(RequestStatus s)
{
    switch (s) {
    case RequestStatus::Completed: return "completed";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Expired: return "expired";
    case RequestStatus::Failed: return "failed";
    case RequestStatus::Retried: return "retried";
    }
    return "?";
}

WorkloadCatalog::WorkloadCatalog(const fhe::CkksContext &ctx)
{
    benchmarks_ = ctx.maxLevel() >= 51 ? paperSuite(ctx)
                                       : miniSuite(ctx);

    // The end-to-end probe: both keyswitch patterns (a hoisted
    // rotation window summed by an addition tree) plus a square, so
    // every request exercises rotation keys, the relin key, and a
    // rescale through the compiled ISA on the emulator.
    probe_level_ = 4;
    probe_ = std::make_unique<compiler::Program>("serve_probe", ctx);
    auto x = probe_->input("x", probe_level_);
    auto window = probe_->add(
        probe_->add(probe_->rotate(x, 1), probe_->rotate(x, 2)),
        probe_->add(probe_->rotate(x, 3), probe_->rotate(x, 4)));
    probe_->output("window_sum", window);
    probe_->output("square",
                   probe_->rescale(probe_->mul(x, x)));
}

const compiler::Program &
WorkloadCatalog::batchedProbe(std::size_t streams) const
{
    CINN_ASSERT(streams >= 1, "batched probe needs >= 1 stream");
    if (streams == 1)
        return *probe_;
    std::lock_guard<std::mutex> lock(probe_mutex_);
    auto &slot = batched_probes_[streams];
    if (!slot) {
        slot = std::make_unique<compiler::Program>(
            compiler::replicateStreams(*probe_,
                                       static_cast<int>(streams)));
    }
    return *slot;
}

const workloads::Benchmark &
WorkloadCatalog::benchmark(Workload w) const
{
    auto it = benchmarks_.find(w);
    CINN_ASSERT(it != benchmarks_.end(), "workload missing from catalog");
    return it->second;
}

} // namespace cinnamon::serve
