#include "serve/server.h"

#include "exec/backend.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/task_pool.h"
#include "compiler/runtime.h"
#include "compiler/strategy.h"
#include "fhe/evaluator.h"

namespace cinnamon::serve {

namespace {

/** pid of the server's track in the request trace. */
constexpr uint32_t kServerPid = 0;

double
msSince(Clock::time_point t)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
}

} // namespace

Server::Server(const fhe::CkksContext &ctx, ServeOptions options)
    : ctx_(&ctx), options_(options)
{
    options_.hw.n = ctx.n();
    CINN_FATAL_UNLESS(options_.workers >= 1,
                      "the worker pool needs at least one thread");
    catalog_ = std::make_unique<WorkloadCatalog>(ctx);
    runner_ = std::make_unique<workloads::BenchmarkRunner>(ctx);
    plans_ = std::make_unique<PlanCache>(ctx);
    tuner_ = std::make_unique<PlanTuner>(*runner_);
    queue_ = std::make_unique<RequestQueue>(options_.queue_capacity);
    scheduler_ = std::make_unique<ChipGroupScheduler>(
        options_.chips, options_.group_size);
    // A batch cannot span more chip groups than the machine has.
    options_.batch_max_streams =
        std::max<std::size_t>(1, std::min(options_.batch_max_streams,
                                          scheduler_->numGroups()));
    batcher_ = std::make_unique<BatchFormer>(*queue_,
                                             options_.batch_linger_ms);
    encoder_ = std::make_unique<fhe::Encoder>(ctx);
    emu_cache_ = std::make_unique<isa::EmulatorCache>(ctx);
    if (options_.faults.enabled())
        fault_plan_ =
            std::make_unique<faults::FaultPlan>(options_.faults);
    if (options_.trace) {
        trace_.setProcessName(kServerPid, "cinnamon-serve");
        for (std::size_t w = 0; w < options_.workers; ++w)
            trace_.setThreadName(kServerPid, static_cast<uint32_t>(w),
                                 "worker " + std::to_string(w));
        if (fault_plan_)
            trace_.setThreadName(
                kServerPid, static_cast<uint32_t>(options_.workers),
                "health-probe");
    }
}

Server::~Server()
{
    bool started;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        started = started_;
    }
    if (started)
        drainAndStop();
}

void
Server::start()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(!started_, "server already started");
        started_ = true;
        start_time_ = Clock::now();
    }
    // The serving tier owns the deployment shape, so it sizes the
    // shared execution pool once, before any request is in flight.
    // 0 leaves the pool at its CINNAMON_WORKERS / hardware default.
    if (options_.exec_workers != 0)
        TaskPool::global().resize(options_.exec_workers);
    workers_.reserve(options_.workers);
    const bool batched = options_.batch_max_streams > 1;
    for (std::size_t w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w, batched] {
            batched ? batchedWorkerLoop(w) : workerLoop(w);
        });
    if (fault_plan_) {
        {
            std::lock_guard<std::mutex> lock(probe_mutex_);
            probe_stop_ = false;
        }
        health_probe_ = std::thread([this] { healthProbeLoop(); });
    }
}

bool
Server::submit(Workload workload, uint64_t seed,
               std::chrono::milliseconds deadline)
{
    Request r;
    r.workload = workload;
    r.seed = seed;
    r.deadline = deadline;
    r.born = Clock::now();
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        r.id = next_id_++;
        ++submitted_;
    }
    auto &metrics = MetricsRegistry::global();
    metrics.counter("serve.requests.submitted").add();
    const uint64_t id = r.id;
    const bool admitted = queue_->submit(std::move(r));
    if (!admitted) {
        metrics.counter("serve.requests.rejected").add();
        // Tell the caller whether this rejection is worth retrying:
        // a queue-full bounce clears as the queue drains; a submit
        // after shutdown began never will.
        Response resp;
        resp.id = id;
        resp.workload = workload;
        resp.status = RequestStatus::Rejected;
        resp.retryable = !queue_->closed();
        resp.error = resp.retryable
                         ? "queue full (backpressure): retry later"
                         : "server draining: submit elsewhere";
        if (resp.retryable)
            metrics.counter("serve.requests.rejected_retryable")
                .add();
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    }
    return admitted;
}

void
Server::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(started_, "server not started");
    }
    queue_->close();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    // The consumers are gone: seal the queue so any straggling
    // requeue attempt (e.g. from a caller holding a stale handle)
    // fails loudly instead of stranding a request nobody will drain.
    queue_->seal();
    // Stop the health probe only after the workers are gone: a drain
    // stuck on an all-quarantined machine needs the probe to re-admit
    // repaired groups for the final retries to complete.
    if (health_probe_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(probe_mutex_);
            probe_stop_ = true;
        }
        probe_cv_.notify_all();
        health_probe_.join();
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall_seconds_ =
            std::chrono::duration<double>(Clock::now() - start_time_)
                .count();
        started_ = false;
    }
}

void
Server::workerLoop(std::size_t worker)
{
    while (auto request = queue_->pop()) {
        Response resp = process(*request, worker);
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    }
}

void
Server::batchedWorkerLoop(std::size_t worker)
{
    while (true) {
        auto batch = batcher_->next(options_.batch_max_streams);
        if (batch.empty())
            return; // closed and drained
        processBatch(std::move(batch), worker);
    }
}

void
Server::processBatch(std::vector<Request> batch, std::size_t worker)
{
    auto &metrics = MetricsRegistry::global();
    TraceRecorder *trace = options_.trace ? &trace_ : nullptr;
    const auto tid = static_cast<uint32_t>(worker);

    auto push = [&](Response resp) {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    };

    // Per-member state: the request, its response under construction,
    // and its fault decision (pure in (fault seed, request seed,
    // attempt) — identical to what the unbatched path would draw, so
    // batching never changes a request's fate schedule).
    struct Member
    {
        Request req;
        Response resp;
        faults::FaultDecision fault;
    };
    std::vector<Member> members;
    members.reserve(batch.size());
    for (auto &req : batch) {
        Member m;
        m.resp.id = req.id;
        m.resp.workload = req.workload;
        m.resp.attempt = req.attempt;
        m.resp.queue_ms = msSince(req.admitted);
        m.fault = fault_plan_ != nullptr
                      ? fault_plan_->decide(req.seed, req.attempt)
                      : faults::FaultDecision{};
        m.req = std::move(req);
        members.push_back(std::move(m));
    }

    const auto deadline_ms = [](const Request &r) {
        return static_cast<double>(r.deadline.count());
    };
    const auto over_deadline = [&](const Request &r) {
        return r.deadline.count() > 0 &&
               msSince(r.born) > deadline_ms(r);
    };
    auto expire = [&](Member &m, bool after_lease) {
        m.resp.status = RequestStatus::Expired;
        m.resp.total_ms = m.resp.queue_ms + m.resp.service_ms;
        metrics.counter("serve.requests.expired").add();
        if (after_lease)
            metrics.counter("serve.requests.expired_after_lease")
                .add();
        push(std::move(m.resp));
    };
    auto fail = [&](Member &m) {
        m.resp.status = RequestStatus::Failed;
        m.resp.total_ms = m.resp.queue_ms + m.resp.service_ms;
        metrics.counter("serve.requests.failed").add();
        push(std::move(m.resp));
    };

    // Shed members whose latency budget was spent in the queue —
    // same rule as the single-request path.
    {
        std::vector<Member> live;
        live.reserve(members.size());
        for (auto &m : members) {
            if (over_deadline(m.req))
                expire(m, /*after_lease=*/false);
            else
                live.push_back(std::move(m));
        }
        members = std::move(live);
    }
    if (members.empty())
        return;

    const auto service_start = Clock::now();

    // Retry-or-finalize for members whose attempt aborted; mirrors
    // the single-request catch block member by member (per-member
    // backoff and deadline math), but sleeps once for the whole set
    // — the members shared one attempt, they share one backoff.
    auto settle_aborted = [&](std::vector<Member> aborted,
                              const std::string &error, bool retryable,
                              bool requeued_flag,
                              double delay_floor_ms) {
        double max_delay_ms = 0.0;
        std::vector<Member> retries;
        for (auto &m : aborted) {
            m.resp.service_ms = msSince(service_start);
            m.resp.retryable = retryable;
            m.resp.error = error;
            if (!retryable) {
                fail(m);
                continue;
            }
            const bool attempts_left =
                m.req.attempt + 1 < options_.retry.max_attempts;
            double delay_ms = faults::backoffMs(
                m.req.seed, m.req.attempt,
                options_.retry.backoff_base_ms,
                options_.retry.backoff_mult,
                options_.retry.backoff_max_ms,
                options_.retry.backoff_jitter);
            delay_ms = std::max(delay_ms, delay_floor_ms);
            const bool deadline_allows =
                m.req.deadline.count() == 0 ||
                msSince(m.req.born) + delay_ms <= deadline_ms(m.req);
            if (attempts_left && deadline_allows) {
                max_delay_ms = std::max(max_delay_ms, delay_ms);
                retries.push_back(std::move(m));
            } else if (!deadline_allows) {
                // The fault burned the rest of the budget: shed, not
                // lost.
                expire(m, /*after_lease=*/false);
            } else {
                fail(m);
            }
        }
        if (retries.empty())
            return;
        {
            ScopedSpan s(trace, "backoff", "serve", kServerPid, tid);
            s.arg("members", static_cast<double>(retries.size()));
            s.arg("delay_ms", max_delay_ms);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    max_delay_ms));
        }
        for (auto &m : retries) {
            Request next = m.req;
            ++next.attempt;
            if (!queue_->requeue(std::move(next))) {
                m.resp.error += " (retry refused: queue sealed)";
                metrics.counter("serve.requeue_refused").add();
                fail(m);
                continue;
            }
            m.resp.status = RequestStatus::Retried;
            m.resp.requeued = requeued_flag;
            metrics.counter("serve.retries").add();
            if (requeued_flag)
                metrics.counter("serve.requeued").add();
            push(std::move(m.resp));
        }
    };

    try {
        BatchLease lease;
        {
            ScopedSpan s(trace, "acquire", "serve", kServerPid, tid);
            s.arg("members", static_cast<double>(members.size()));
            lease = scheduler_->acquireUpTo(members.size());
        }

        // Surplus members beyond the lease go back to the queue —
        // not a retry, so the attempt counter is untouched and no
        // response row is emitted; they will be served by a later
        // batch.
        while (members.size() > lease.size()) {
            Member m = std::move(members.back());
            members.pop_back();
            if (!queue_->requeue(std::move(m.req))) {
                m.resp.service_ms = msSince(service_start);
                m.resp.error = "batch overflow: queue sealed";
                metrics.counter("serve.requeue_refused").add();
                fail(m);
            }
        }

        // Re-check deadlines after the (possibly long) wait for
        // hardware, then return any groups the shed members held.
        {
            std::vector<Member> live;
            live.reserve(members.size());
            for (auto &m : members) {
                if (over_deadline(m.req)) {
                    m.resp.service_ms = msSince(service_start);
                    expire(m, /*after_lease=*/true);
                } else {
                    live.push_back(std::move(m));
                }
            }
            members = std::move(live);
            if (members.empty())
                return; // lease destructor releases everything
            lease.shrinkTo(members.size());
        }

        const std::size_t k = members.size();
        for (std::size_t i = 0; i < k; ++i) {
            members[i].resp.group = lease.group(i);
            members[i].resp.batch_streams = k;
        }

        // Quarantine every chip-fault victim's group *before*
        // executing, exactly like the single-request path: the
        // injected EmulatorError unwinds through the lease destructor
        // and release() must already know those groups are poisoned.
        // The emulator can only arm one victim chip per run; the
        // first chip-fault member supplies it (the whole batch aborts
        // either way).
        std::size_t fault_member = k; // k = no chip fault in batch
        faults::FaultDecision batch_fault{};
        for (std::size_t i = 0; i < k; ++i) {
            const auto &f = members[i].fault;
            if (f.chip_fails) {
                const auto [lo, hi] =
                    scheduler_->chipsOf(lease.group(i));
                const std::size_t victim =
                    lo + f.chip_offset % options_.group_size;
                (void)hi;
                metrics.counter("faults.injected.chip").add();
                metrics.counter("serve.quarantines").add();
                scheduler_->markChipFailed(victim);
                if (trace != nullptr) {
                    TraceEvent e;
                    e.name = "quarantine";
                    e.category = "faults";
                    e.pid = kServerPid;
                    e.tid = tid;
                    e.ts_us = trace->nowUs();
                    e.num_args.emplace_back(
                        "chip", static_cast<double>(victim));
                    e.num_args.emplace_back(
                        "group",
                        static_cast<double>(lease.group(i)));
                    e.num_args.emplace_back(
                        "rid",
                        static_cast<double>(members[i].req.id));
                    trace->complete(std::move(e));
                }
                if (fault_member == k) {
                    fault_member = i;
                    batch_fault = f;
                }
            }
            if (f.transient)
                metrics.counter("faults.injected.transient").add();
            if (f.link_dilation > 1.0)
                metrics.counter("faults.injected.link").add();
        }

        // Per-member sim timing on its own group (shared cache: the
        // first member of a kind compiles, the rest hit). A member
        // with a degraded link times under the dilated config.
        // One plan for the whole batch: batch compatibility requires
        // a shared workload, so every member gets the same choice.
        const PlanChoice choice = planFor(members[0].req.workload);
        {
            ScopedSpan s(trace, "simulate", "serve", kServerPid, tid);
            s.arg("members", static_cast<double>(k));
            for (auto &m : members) {
                sim::HardwareConfig hw = options_.hw;
                if (m.fault.link_dilation > 1.0)
                    hw.link_dilation = m.fault.link_dilation;
                const auto &bench =
                    catalog_->benchmark(m.req.workload);
                const auto timing =
                    runner_->run(bench, options_.group_size, hw,
                                 choice.sim_group, choice.ks);
                m.resp.sim_seconds = timing.seconds;
                m.resp.compile_ms = timing.compile_ms;
            }
        }

        // One multi-stream program for the whole batch: member i's
        // stream lands on the chips of lease.group(i). Digests are
        // bit-identical to each member's unbatched run (per-member
        // seeded keys; the compiled layout keeps every stream's chip
        // digits identical to the single-stream plan).
        if (options_.emulate && ctx_->n() <= options_.emulate_max_n) {
            ScopedSpan s(trace, "probe", "serve", kServerPid, tid);
            s.arg("members", static_cast<double>(k));
            double probe_compile_ms = 0.0;
            compiler::CompilerConfig cfg;
            cfg.chips = k * options_.group_size;
            cfg.num_streams = static_cast<int>(k);
            cfg.phys_regs = options_.hw.phys_regs;
            cfg.strategy = choice.strategy;
            const auto &plan = plans_->get(catalog_->batchedProbe(k),
                                           cfg, &probe_compile_ms);
            std::vector<uint64_t> seeds;
            seeds.reserve(k);
            for (const auto &m : members)
                seeds.push_back(m.req.seed);
            // workers=0: take the shared pool's full parallelism —
            // idle capacity slices limb planes, results unchanged.
            auto reports = exec::EmulateBackend::executeSeededBatch(
                *ctx_, *encoder_, catalog_->probe(), plan, seeds, 0,
                fault_member < k ? &batch_fault : nullptr,
                fault_member, emu_cache_.get());
            for (std::size_t i = 0; i < k; ++i) {
                members[i].resp.output_hash = reports[i].digest;
                members[i].resp.compile_ms += probe_compile_ms;
            }
        } else if (fault_member < k) {
            const std::size_t victim =
                lease.group(fault_member) * options_.group_size +
                batch_fault.chip_offset % options_.group_size;
            throw faults::ChipFailedError(
                victim, "injected chip failure: chip " +
                            std::to_string(victim) +
                            " lost mid-run (sim abort)");
        }

        // Model device occupancy once for the whole batch: every
        // leased group runs concurrently, so the host thread dwells
        // for the slowest member only.
        if (options_.time_dilation > 0.0) {
            ScopedSpan s(trace, "dwell", "serve", kServerPid, tid);
            double max_sim = 0.0;
            for (const auto &m : members)
                max_sim = std::max(max_sim, m.resp.sim_seconds);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                max_sim * options_.time_dilation));
        }

        // Transient faults are per-member: the batch ran, but a
        // transient member's result is spuriously lost and the member
        // retries alone. Split them out before completing the rest.
        std::vector<Member> transients, completed;
        for (auto &m : members) {
            if (m.fault.transient) {
                m.resp.output_hash = 0; // the result was lost
                transients.push_back(std::move(m));
            } else {
                completed.push_back(std::move(m));
            }
        }
        members = std::move(completed);

        for (auto &m : members) {
            m.resp.status = RequestStatus::Completed;
            m.resp.service_ms = msSince(service_start);
            m.resp.total_ms = m.resp.queue_ms + m.resp.service_ms;
            metrics.counter("serve.requests.completed").add();
            metrics.histogram("serve.queue_ms")
                .observe(m.resp.queue_ms);
            metrics.histogram("serve.service_ms")
                .observe(m.resp.service_ms);
            metrics.histogram("serve.total_ms")
                .observe(m.resp.total_ms);
            metrics.histogram("serve.compile_ms")
                .observe(m.resp.compile_ms);
            push(std::move(m.resp));
        }

        if (!transients.empty()) {
            lease.release(); // don't hold hardware through backoff
            settle_aborted(std::move(transients),
                           "injected transient execution fault",
                           /*retryable=*/true, /*requeued_flag=*/false,
                           /*delay_floor_ms=*/0.0);
        }
    } catch (const std::exception &e) {
        // The whole attempt aborted — injected chip death unwinding
        // out of the emulator, or a fully-quarantined machine. Every
        // member shares the abort; each retries (or finalizes) under
        // its own backoff/deadline math.
        const bool no_healthy =
            dynamic_cast<const NoHealthyGroupsError *>(&e) != nullptr;
        bool any_fault = false;
        bool any_chip = false;
        for (const auto &m : members) {
            any_fault = any_fault || m.fault.any();
            any_chip = any_chip || m.fault.chip_fails;
        }
        const bool retryable = no_healthy || any_fault;
        // A full outage clears no sooner than the repair time; wait
        // at least one repair + probe window before retrying.
        const double delay_floor_ms =
            no_healthy ? options_.faults.chip_repair_ms +
                             options_.health_probe_interval_ms
                       : 0.0;
        settle_aborted(std::move(members), e.what(), retryable,
                       /*requeued_flag=*/any_chip || no_healthy,
                       delay_floor_ms);
    }
}

void
Server::healthProbeLoop()
{
    auto &metrics = MetricsRegistry::global();
    const auto interval = std::chrono::duration<double, std::milli>(
        options_.health_probe_interval_ms);
    std::unique_lock<std::mutex> lock(probe_mutex_);
    while (!probe_stop_) {
        probe_cv_.wait_for(lock, interval,
                           [&] { return probe_stop_; });
        if (probe_stop_)
            return;
        lock.unlock();
        const auto readmitted = scheduler_->readmitRecovered(
            options_.faults.chip_repair_ms);
        for (const std::size_t group : readmitted) {
            metrics.counter("serve.readmissions").add();
            if (options_.trace) {
                TraceEvent e;
                e.name = "readmit";
                e.category = "faults";
                e.pid = kServerPid;
                e.tid = static_cast<uint32_t>(options_.workers);
                e.ts_us = trace_.nowUs();
                e.num_args.emplace_back(
                    "group", static_cast<double>(group));
                trace_.complete(std::move(e));
            }
        }
        lock.lock();
    }
}

Response
Server::process(const Request &request, std::size_t worker)
{
    TraceRecorder *trace = options_.trace ? &trace_ : nullptr;
    const auto tid = static_cast<uint32_t>(worker);
    auto span = [&](const char *name) {
        ScopedSpan s(trace, name, "serve", kServerPid, tid);
        s.arg("rid", static_cast<double>(request.id));
        s.arg("workload", workloadName(request.workload));
        return s;
    };

    auto &metrics = MetricsRegistry::global();
    Response resp;
    resp.id = request.id;
    resp.workload = request.workload;
    resp.attempt = request.attempt;
    resp.queue_ms = msSince(request.admitted);
    if (trace != nullptr) {
        TraceEvent e;
        e.name = "queue";
        e.category = "serve";
        e.pid = kServerPid;
        e.tid = tid;
        e.ts_us = trace->toUs(request.admitted);
        e.dur_us = resp.queue_ms * 1e3;
        e.num_args.emplace_back("rid",
                                static_cast<double>(request.id));
        e.str_args.emplace_back("workload",
                                workloadName(request.workload));
        trace->complete(std::move(e));
    }

    auto expire = [&] {
        resp.status = RequestStatus::Expired;
        resp.total_ms = resp.queue_ms + resp.service_ms;
        metrics.counter("serve.requests.expired").add();
    };

    // The deadline budget is measured from first admission (`born`),
    // so a retried attempt inherits whatever its earlier attempts
    // already spent — retries never reset the clock.
    const auto budget_ms = [&] { return msSince(request.born); };
    const auto deadline_ms =
        static_cast<double>(request.deadline.count());

    // A request whose latency budget was spent in the queue is shed
    // here: running it would only push the requests behind it past
    // their own deadlines.
    if (request.deadline.count() > 0 && budget_ms() > deadline_ms) {
        expire();
        return resp;
    }

    // The faults this attempt suffers — a pure function of
    // (fault seed, request seed, attempt), fixed before execution so
    // the catch block below can classify what it sees.
    const faults::FaultDecision fault =
        fault_plan_ != nullptr
            ? fault_plan_->decide(request.seed, request.attempt)
            : faults::FaultDecision{};

    const auto service_start = Clock::now();
    try {
        GroupLease lease;
        {
            auto s = span("acquire");
            lease = scheduler_->acquire();
        }
        resp.group = lease.group();

        // Re-check after the (possibly long) wait for a chip group: a
        // request whose deadline lapsed while other tenants held the
        // machine must be shed, not run — otherwise it occupies the
        // group for work nobody can use and delays everyone behind it.
        if (request.deadline.count() > 0 &&
            budget_ms() > deadline_ms) {
            resp.service_ms = msSince(service_start);
            expire();
            metrics.counter("serve.requests.expired_after_lease")
                .add();
            return resp;
        }

        // Quarantine the victim's group *before* executing: the
        // injected EmulatorError unwinds through the lease destructor,
        // and release() must already know the group is poisoned so it
        // parks it instead of freeing it.
        std::size_t victim = 0;
        if (fault.chip_fails) {
            const auto [lo, hi] = scheduler_->chipsOf(lease.group());
            victim = lo + fault.chip_offset % options_.group_size;
            (void)hi;
            metrics.counter("faults.injected.chip").add();
            metrics.counter("serve.quarantines").add();
            scheduler_->markChipFailed(victim);
            if (trace != nullptr) {
                TraceEvent e;
                e.name = "quarantine";
                e.category = "faults";
                e.pid = kServerPid;
                e.tid = tid;
                e.ts_us = trace->nowUs();
                e.num_args.emplace_back(
                    "chip", static_cast<double>(victim));
                e.num_args.emplace_back(
                    "group", static_cast<double>(lease.group()));
                e.num_args.emplace_back(
                    "rid", static_cast<double>(request.id));
                trace->complete(std::move(e));
            }
        }
        if (fault.transient)
            metrics.counter("faults.injected.transient").add();
        if (fault.link_dilation > 1.0)
            metrics.counter("faults.injected.link").add();

        // Time the workload's kernels on this group (shared cache:
        // the first request of a kind compiles, the rest hit). A
        // degraded link stretches every collective in the timing
        // model; the dilated config has its own cache key.
        const PlanChoice choice = planFor(request.workload);
        {
            auto s = span("simulate");
            sim::HardwareConfig hw = options_.hw;
            if (fault.link_dilation > 1.0) {
                hw.link_dilation = fault.link_dilation;
                s.arg("link_dilation", fault.link_dilation);
            }
            const auto &bench = catalog_->benchmark(request.workload);
            const auto timing =
                runner_->run(bench, options_.group_size, hw,
                             choice.sim_group, choice.ks);
            resp.sim_seconds = timing.seconds;
            resp.compile_ms = timing.compile_ms;
        }

        // End-to-end functional execution at small parameter sets;
        // chip and transient faults are injected into the emulated
        // attempt. When the probe is skipped (large n) the same
        // faults surface directly as a sim-side abort.
        if (options_.emulate && ctx_->n() <= options_.emulate_max_n) {
            auto s = span("probe");
            resp.output_hash =
                runProbe(request, options_.group_size,
                         &resp.compile_ms,
                         fault.any() ? &fault : nullptr,
                         choice.strategy);
        } else if (fault.chip_fails) {
            throw faults::ChipFailedError(
                victim, "injected chip failure: chip " +
                            std::to_string(victim) +
                            " lost mid-run (sim abort)");
        } else if (fault.transient) {
            throw faults::TransientFaultError(
                "injected transient execution fault");
        }

        // Model the accelerator group's real occupancy: the host
        // thread waits on the device for the simulated duration
        // (scaled), keeping the group leased the whole time.
        if (options_.time_dilation > 0.0) {
            auto s = span("dwell");
            const auto dwell = std::chrono::duration<double>(
                resp.sim_seconds * options_.time_dilation);
            std::this_thread::sleep_for(dwell);
        }
        resp.status = RequestStatus::Completed;
    } catch (const std::exception &e) {
        resp.service_ms = msSince(service_start);
        // Injected faults and a fully-quarantined machine are
        // transient infrastructure conditions: the attempt is
        // retryable. Anything else is a permanent program error.
        const bool no_healthy =
            dynamic_cast<const NoHealthyGroupsError *>(&e) != nullptr;
        const bool retryable = fault.any() || no_healthy;
        resp.retryable = retryable;
        resp.error = e.what();

        const bool attempts_left =
            request.attempt + 1 < options_.retry.max_attempts;
        double delay_ms = faults::backoffMs(
            request.seed, request.attempt,
            options_.retry.backoff_base_ms, options_.retry.backoff_mult,
            options_.retry.backoff_max_ms,
            options_.retry.backoff_jitter);
        // A full outage clears no sooner than the repair time, so
        // retrying faster would only burn the attempt budget; wait
        // at least one repair + probe window.
        if (no_healthy)
            delay_ms = std::max(
                delay_ms, options_.faults.chip_repair_ms +
                              options_.health_probe_interval_ms);
        // Deadline-aware: a retry is scheduled only if its backoff
        // still fits inside the budget. Never retry past the deadline.
        const bool deadline_allows =
            request.deadline.count() == 0 ||
            budget_ms() + delay_ms <= deadline_ms;

        if (retryable && attempts_left && deadline_allows) {
            resp.status = RequestStatus::Retried;
            resp.total_ms = resp.queue_ms + resp.service_ms;
            metrics.counter("serve.retries").add();
            resp.requeued = fault.chip_fails || no_healthy;
            if (resp.requeued)
                metrics.counter("serve.requeued").add();
            {
                auto s = span("backoff");
                s.arg("attempt",
                      static_cast<double>(request.attempt));
                s.arg("delay_ms", delay_ms);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        delay_ms));
            }
            Request next = request;
            ++next.attempt;
            if (!queue_->requeue(std::move(next))) {
                // The queue was sealed while we backed off: nothing
                // will ever drain the retry, so accepting it would
                // strand the request. Finalize as Failed instead —
                // request conservation over a silent loss.
                resp.status = RequestStatus::Failed;
                resp.error += " (retry refused: queue sealed)";
                metrics.counter("serve.requests.failed").add();
                metrics.counter("serve.requeue_refused").add();
            }
            return resp;
        }
        if (retryable && !deadline_allows) {
            // The fault burned the rest of the budget: the request
            // expires rather than fails — it was shed, not lost.
            expire();
            return resp;
        }
        resp.status = RequestStatus::Failed;
        metrics.counter("serve.requests.failed").add();
        resp.total_ms = resp.queue_ms + resp.service_ms;
        return resp;
    }
    resp.service_ms = msSince(service_start);
    resp.total_ms = resp.queue_ms + resp.service_ms;
    if (resp.status == RequestStatus::Completed) {
        metrics.counter("serve.requests.completed").add();
        metrics.histogram("serve.queue_ms").observe(resp.queue_ms);
        metrics.histogram("serve.service_ms").observe(resp.service_ms);
        metrics.histogram("serve.total_ms").observe(resp.total_ms);
        metrics.histogram("serve.compile_ms").observe(resp.compile_ms);
    }
    return resp;
}

Server::PlanChoice
Server::planFor(Workload workload)
{
    PlanChoice choice;
    choice.sim_group = options_.group_size;
    if (!options_.strategy.empty()) {
        const auto &strat =
            compiler::StrategyRegistry::global().at(options_.strategy);
        choice.strategy = strat.name;
        choice.ks = strat.ks;
    } else if (options_.autotune) {
        // Decide on the *undilated* hardware model: the decision must
        // be a pure function of (workload, machine) so an injected
        // link degradation can never change what gets compiled — and
        // thereby a retried request's digest.
        const auto &bench = catalog_->benchmark(workload);
        const TunedPlan &plan =
            tuner_->plan(bench, options_.group_size, options_.hw);
        const auto &strat =
            compiler::StrategyRegistry::global().at(plan.strategy);
        choice.strategy = strat.name;
        choice.ks = strat.ks;
        choice.sim_group = plan.group;
    }
    return choice;
}

uint64_t
Server::runProbe(const Request &request, std::size_t group_chips,
                 double *compile_ms, const faults::FaultDecision *fault,
                 const std::string &strategy)
{
    double probe_compile_ms = 0.0;
    compiler::CompilerConfig cfg;
    cfg.chips = group_chips;
    cfg.num_streams = 1;
    cfg.phys_regs = options_.hw.phys_regs;
    cfg.strategy = strategy;
    const auto &compiled =
        plans_->get(catalog_->probe(), cfg, &probe_compile_ms);
    if (compile_ms != nullptr)
        *compile_ms += probe_compile_ms;

    // All randomness is derived from the request seed, so the output
    // hash is a pure function of (seed, catalog, parameters) — never
    // of worker count or scheduling order. The seeded emulate backend
    // owns that discipline now; the digest semantics are unchanged,
    // and an all-clear fault decision executes identically to none.
    auto report = exec::EmulateBackend::executeSeeded(
        *ctx_, *encoder_, catalog_->probe(), compiled, request.seed,
        0, fault, emu_cache_.get());
    return report.digest;
}

std::vector<Response>
Server::responses() const
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    return responses_;
}

ServeStats
Server::stats() const
{
    std::vector<Response> resp;
    std::size_t submitted;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        resp = responses_;
        submitted = submitted_;
    }
    double wall;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall = started_
                   ? std::chrono::duration<double>(Clock::now() -
                                                   start_time_)
                         .count()
                   : wall_seconds_;
    }
    auto s = ServeStats::fromResponses(resp, submitted,
                                       queue_->rejected(), wall,
                                       runner_->cacheStats(),
                                       scheduler_->busySeconds(),
                                       scheduler_->quarantinedMask());
    s.plan_cache = plans_->stats();
    s.tuner_cache = tuner_->stats();
    s.rejected_full = queue_->rejectedFull();
    s.rejected_closed = queue_->rejectedClosed();
    return s;
}

} // namespace cinnamon::serve
