#include "serve/server.h"

#include "exec/backend.h"

#include <stdexcept>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "compiler/runtime.h"
#include "fhe/evaluator.h"

namespace cinnamon::serve {

namespace {

/** pid of the server's track in the request trace. */
constexpr uint32_t kServerPid = 0;

double
msSince(Clock::time_point t)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
}

} // namespace

Server::Server(const fhe::CkksContext &ctx, ServeOptions options)
    : ctx_(&ctx), options_(options)
{
    options_.hw.n = ctx.n();
    CINN_FATAL_UNLESS(options_.workers >= 1,
                      "the worker pool needs at least one thread");
    catalog_ = std::make_unique<WorkloadCatalog>(ctx);
    runner_ = std::make_unique<workloads::BenchmarkRunner>(ctx);
    queue_ = std::make_unique<RequestQueue>(options_.queue_capacity);
    scheduler_ = std::make_unique<ChipGroupScheduler>(
        options_.chips, options_.group_size);
    encoder_ = std::make_unique<fhe::Encoder>(ctx);
    if (options_.faults.enabled())
        fault_plan_ =
            std::make_unique<faults::FaultPlan>(options_.faults);
    if (options_.trace) {
        trace_.setProcessName(kServerPid, "cinnamon-serve");
        for (std::size_t w = 0; w < options_.workers; ++w)
            trace_.setThreadName(kServerPid, static_cast<uint32_t>(w),
                                 "worker " + std::to_string(w));
        if (fault_plan_)
            trace_.setThreadName(
                kServerPid, static_cast<uint32_t>(options_.workers),
                "health-probe");
    }
}

Server::~Server()
{
    bool started;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        started = started_;
    }
    if (started)
        drainAndStop();
}

void
Server::start()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(!started_, "server already started");
        started_ = true;
        start_time_ = Clock::now();
    }
    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
    if (fault_plan_) {
        {
            std::lock_guard<std::mutex> lock(probe_mutex_);
            probe_stop_ = false;
        }
        health_probe_ = std::thread([this] { healthProbeLoop(); });
    }
}

bool
Server::submit(Workload workload, uint64_t seed,
               std::chrono::milliseconds deadline)
{
    Request r;
    r.workload = workload;
    r.seed = seed;
    r.deadline = deadline;
    r.born = Clock::now();
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        r.id = next_id_++;
        ++submitted_;
    }
    auto &metrics = MetricsRegistry::global();
    metrics.counter("serve.requests.submitted").add();
    const uint64_t id = r.id;
    const bool admitted = queue_->submit(std::move(r));
    if (!admitted) {
        metrics.counter("serve.requests.rejected").add();
        // Tell the caller whether this rejection is worth retrying:
        // a queue-full bounce clears as the queue drains; a submit
        // after shutdown began never will.
        Response resp;
        resp.id = id;
        resp.workload = workload;
        resp.status = RequestStatus::Rejected;
        resp.retryable = !queue_->closed();
        resp.error = resp.retryable
                         ? "queue full (backpressure): retry later"
                         : "server draining: submit elsewhere";
        if (resp.retryable)
            metrics.counter("serve.requests.rejected_retryable")
                .add();
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    }
    return admitted;
}

void
Server::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(started_, "server not started");
    }
    queue_->close();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    // Stop the health probe only after the workers are gone: a drain
    // stuck on an all-quarantined machine needs the probe to re-admit
    // repaired groups for the final retries to complete.
    if (health_probe_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(probe_mutex_);
            probe_stop_ = true;
        }
        probe_cv_.notify_all();
        health_probe_.join();
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall_seconds_ =
            std::chrono::duration<double>(Clock::now() - start_time_)
                .count();
        started_ = false;
    }
}

void
Server::workerLoop(std::size_t worker)
{
    while (auto request = queue_->pop()) {
        Response resp = process(*request, worker);
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    }
}

void
Server::healthProbeLoop()
{
    auto &metrics = MetricsRegistry::global();
    const auto interval = std::chrono::duration<double, std::milli>(
        options_.health_probe_interval_ms);
    std::unique_lock<std::mutex> lock(probe_mutex_);
    while (!probe_stop_) {
        probe_cv_.wait_for(lock, interval,
                           [&] { return probe_stop_; });
        if (probe_stop_)
            return;
        lock.unlock();
        const auto readmitted = scheduler_->readmitRecovered(
            options_.faults.chip_repair_ms);
        for (const std::size_t group : readmitted) {
            metrics.counter("serve.readmissions").add();
            if (options_.trace) {
                TraceEvent e;
                e.name = "readmit";
                e.category = "faults";
                e.pid = kServerPid;
                e.tid = static_cast<uint32_t>(options_.workers);
                e.ts_us = trace_.nowUs();
                e.num_args.emplace_back(
                    "group", static_cast<double>(group));
                trace_.complete(std::move(e));
            }
        }
        lock.lock();
    }
}

Response
Server::process(const Request &request, std::size_t worker)
{
    TraceRecorder *trace = options_.trace ? &trace_ : nullptr;
    const auto tid = static_cast<uint32_t>(worker);
    auto span = [&](const char *name) {
        ScopedSpan s(trace, name, "serve", kServerPid, tid);
        s.arg("rid", static_cast<double>(request.id));
        s.arg("workload", workloadName(request.workload));
        return s;
    };

    auto &metrics = MetricsRegistry::global();
    Response resp;
    resp.id = request.id;
    resp.workload = request.workload;
    resp.attempt = request.attempt;
    resp.queue_ms = msSince(request.admitted);
    if (trace != nullptr) {
        TraceEvent e;
        e.name = "queue";
        e.category = "serve";
        e.pid = kServerPid;
        e.tid = tid;
        e.ts_us = trace->toUs(request.admitted);
        e.dur_us = resp.queue_ms * 1e3;
        e.num_args.emplace_back("rid",
                                static_cast<double>(request.id));
        e.str_args.emplace_back("workload",
                                workloadName(request.workload));
        trace->complete(std::move(e));
    }

    auto expire = [&] {
        resp.status = RequestStatus::Expired;
        resp.total_ms = resp.queue_ms + resp.service_ms;
        metrics.counter("serve.requests.expired").add();
    };

    // The deadline budget is measured from first admission (`born`),
    // so a retried attempt inherits whatever its earlier attempts
    // already spent — retries never reset the clock.
    const auto budget_ms = [&] { return msSince(request.born); };
    const auto deadline_ms =
        static_cast<double>(request.deadline.count());

    // A request whose latency budget was spent in the queue is shed
    // here: running it would only push the requests behind it past
    // their own deadlines.
    if (request.deadline.count() > 0 && budget_ms() > deadline_ms) {
        expire();
        return resp;
    }

    // The faults this attempt suffers — a pure function of
    // (fault seed, request seed, attempt), fixed before execution so
    // the catch block below can classify what it sees.
    const faults::FaultDecision fault =
        fault_plan_ != nullptr
            ? fault_plan_->decide(request.seed, request.attempt)
            : faults::FaultDecision{};

    const auto service_start = Clock::now();
    try {
        GroupLease lease;
        {
            auto s = span("acquire");
            lease = scheduler_->acquire();
        }
        resp.group = lease.group();

        // Re-check after the (possibly long) wait for a chip group: a
        // request whose deadline lapsed while other tenants held the
        // machine must be shed, not run — otherwise it occupies the
        // group for work nobody can use and delays everyone behind it.
        if (request.deadline.count() > 0 &&
            budget_ms() > deadline_ms) {
            resp.service_ms = msSince(service_start);
            expire();
            metrics.counter("serve.requests.expired_after_lease")
                .add();
            return resp;
        }

        // Quarantine the victim's group *before* executing: the
        // injected EmulatorError unwinds through the lease destructor,
        // and release() must already know the group is poisoned so it
        // parks it instead of freeing it.
        std::size_t victim = 0;
        if (fault.chip_fails) {
            const auto [lo, hi] = scheduler_->chipsOf(lease.group());
            victim = lo + fault.chip_offset % options_.group_size;
            (void)hi;
            metrics.counter("faults.injected.chip").add();
            metrics.counter("serve.quarantines").add();
            scheduler_->markChipFailed(victim);
            if (trace != nullptr) {
                TraceEvent e;
                e.name = "quarantine";
                e.category = "faults";
                e.pid = kServerPid;
                e.tid = tid;
                e.ts_us = trace->nowUs();
                e.num_args.emplace_back(
                    "chip", static_cast<double>(victim));
                e.num_args.emplace_back(
                    "group", static_cast<double>(lease.group()));
                e.num_args.emplace_back(
                    "rid", static_cast<double>(request.id));
                trace->complete(std::move(e));
            }
        }
        if (fault.transient)
            metrics.counter("faults.injected.transient").add();
        if (fault.link_dilation > 1.0)
            metrics.counter("faults.injected.link").add();

        // Time the workload's kernels on this group (shared cache:
        // the first request of a kind compiles, the rest hit). A
        // degraded link stretches every collective in the timing
        // model; the dilated config has its own cache key.
        {
            auto s = span("simulate");
            sim::HardwareConfig hw = options_.hw;
            if (fault.link_dilation > 1.0) {
                hw.link_dilation = fault.link_dilation;
                s.arg("link_dilation", fault.link_dilation);
            }
            const auto &bench = catalog_->benchmark(request.workload);
            const auto timing =
                runner_->run(bench, options_.group_size, hw,
                             options_.group_size);
            resp.sim_seconds = timing.seconds;
            resp.compile_ms = timing.compile_ms;
        }

        // End-to-end functional execution at small parameter sets;
        // chip and transient faults are injected into the emulated
        // attempt. When the probe is skipped (large n) the same
        // faults surface directly as a sim-side abort.
        if (options_.emulate && ctx_->n() <= options_.emulate_max_n) {
            auto s = span("probe");
            resp.output_hash =
                runProbe(request, options_.group_size,
                         &resp.compile_ms,
                         fault.any() ? &fault : nullptr);
        } else if (fault.chip_fails) {
            throw faults::ChipFailedError(
                victim, "injected chip failure: chip " +
                            std::to_string(victim) +
                            " lost mid-run (sim abort)");
        } else if (fault.transient) {
            throw faults::TransientFaultError(
                "injected transient execution fault");
        }

        // Model the accelerator group's real occupancy: the host
        // thread waits on the device for the simulated duration
        // (scaled), keeping the group leased the whole time.
        if (options_.time_dilation > 0.0) {
            auto s = span("dwell");
            const auto dwell = std::chrono::duration<double>(
                resp.sim_seconds * options_.time_dilation);
            std::this_thread::sleep_for(dwell);
        }
        resp.status = RequestStatus::Completed;
    } catch (const std::exception &e) {
        resp.service_ms = msSince(service_start);
        // Injected faults and a fully-quarantined machine are
        // transient infrastructure conditions: the attempt is
        // retryable. Anything else is a permanent program error.
        const bool no_healthy =
            dynamic_cast<const NoHealthyGroupsError *>(&e) != nullptr;
        const bool retryable = fault.any() || no_healthy;
        resp.retryable = retryable;
        resp.error = e.what();

        const bool attempts_left =
            request.attempt + 1 < options_.retry.max_attempts;
        double delay_ms = faults::backoffMs(
            request.seed, request.attempt,
            options_.retry.backoff_base_ms, options_.retry.backoff_mult,
            options_.retry.backoff_max_ms,
            options_.retry.backoff_jitter);
        // A full outage clears no sooner than the repair time, so
        // retrying faster would only burn the attempt budget; wait
        // at least one repair + probe window.
        if (no_healthy)
            delay_ms = std::max(
                delay_ms, options_.faults.chip_repair_ms +
                              options_.health_probe_interval_ms);
        // Deadline-aware: a retry is scheduled only if its backoff
        // still fits inside the budget. Never retry past the deadline.
        const bool deadline_allows =
            request.deadline.count() == 0 ||
            budget_ms() + delay_ms <= deadline_ms;

        if (retryable && attempts_left && deadline_allows) {
            resp.status = RequestStatus::Retried;
            resp.total_ms = resp.queue_ms + resp.service_ms;
            metrics.counter("serve.retries").add();
            resp.requeued = fault.chip_fails || no_healthy;
            if (resp.requeued)
                metrics.counter("serve.requeued").add();
            {
                auto s = span("backoff");
                s.arg("attempt",
                      static_cast<double>(request.attempt));
                s.arg("delay_ms", delay_ms);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        delay_ms));
            }
            Request next = request;
            ++next.attempt;
            queue_->requeue(std::move(next));
            return resp;
        }
        if (retryable && !deadline_allows) {
            // The fault burned the rest of the budget: the request
            // expires rather than fails — it was shed, not lost.
            expire();
            return resp;
        }
        resp.status = RequestStatus::Failed;
        metrics.counter("serve.requests.failed").add();
        resp.total_ms = resp.queue_ms + resp.service_ms;
        return resp;
    }
    resp.service_ms = msSince(service_start);
    resp.total_ms = resp.queue_ms + resp.service_ms;
    if (resp.status == RequestStatus::Completed) {
        metrics.counter("serve.requests.completed").add();
        metrics.histogram("serve.queue_ms").observe(resp.queue_ms);
        metrics.histogram("serve.service_ms").observe(resp.service_ms);
        metrics.histogram("serve.total_ms").observe(resp.total_ms);
        metrics.histogram("serve.compile_ms").observe(resp.compile_ms);
    }
    return resp;
}

uint64_t
Server::runProbe(const Request &request, std::size_t group_chips,
                 double *compile_ms, const faults::FaultDecision *fault)
{
    double probe_compile_ms = 0.0;
    const auto &compiled = runner_->compiled(
        catalog_->probe(), group_chips, options_.hw.phys_regs, {},
        &probe_compile_ms);
    if (compile_ms != nullptr)
        *compile_ms += probe_compile_ms;

    // All randomness is derived from the request seed, so the output
    // hash is a pure function of (seed, catalog, parameters) — never
    // of worker count or scheduling order. The seeded emulate backend
    // owns that discipline now; the digest semantics are unchanged,
    // and an all-clear fault decision executes identically to none.
    auto report = exec::EmulateBackend::executeSeeded(
        *ctx_, *encoder_, catalog_->probe(), compiled, request.seed,
        1, fault);
    return report.digest;
}

std::vector<Response>
Server::responses() const
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    return responses_;
}

ServeStats
Server::stats() const
{
    std::vector<Response> resp;
    std::size_t submitted;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        resp = responses_;
        submitted = submitted_;
    }
    double wall;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall = started_
                   ? std::chrono::duration<double>(Clock::now() -
                                                   start_time_)
                         .count()
                   : wall_seconds_;
    }
    return ServeStats::fromResponses(resp, submitted,
                                     queue_->rejected(), wall,
                                     runner_->cacheStats(),
                                     scheduler_->busySeconds(),
                                     scheduler_->quarantinedMask());
}

} // namespace cinnamon::serve
