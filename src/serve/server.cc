#include "serve/server.h"

#include "exec/backend.h"

#include <stdexcept>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "compiler/runtime.h"
#include "fhe/evaluator.h"

namespace cinnamon::serve {

namespace {

/** pid of the server's track in the request trace. */
constexpr uint32_t kServerPid = 0;

double
msSince(Clock::time_point t)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t)
        .count();
}

} // namespace

Server::Server(const fhe::CkksContext &ctx, ServeOptions options)
    : ctx_(&ctx), options_(options)
{
    options_.hw.n = ctx.n();
    CINN_FATAL_UNLESS(options_.workers >= 1,
                      "the worker pool needs at least one thread");
    catalog_ = std::make_unique<WorkloadCatalog>(ctx);
    runner_ = std::make_unique<workloads::BenchmarkRunner>(ctx);
    queue_ = std::make_unique<RequestQueue>(options_.queue_capacity);
    scheduler_ = std::make_unique<ChipGroupScheduler>(
        options_.chips, options_.group_size);
    encoder_ = std::make_unique<fhe::Encoder>(ctx);
    if (options_.trace) {
        trace_.setProcessName(kServerPid, "cinnamon-serve");
        for (std::size_t w = 0; w < options_.workers; ++w)
            trace_.setThreadName(kServerPid, static_cast<uint32_t>(w),
                                 "worker " + std::to_string(w));
    }
}

Server::~Server()
{
    bool started;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        started = started_;
    }
    if (started)
        drainAndStop();
}

void
Server::start()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(!started_, "server already started");
        started_ = true;
        start_time_ = Clock::now();
    }
    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

bool
Server::submit(Workload workload, uint64_t seed,
               std::chrono::milliseconds deadline)
{
    Request r;
    r.workload = workload;
    r.seed = seed;
    r.deadline = deadline;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        r.id = next_id_++;
        ++submitted_;
    }
    auto &metrics = MetricsRegistry::global();
    metrics.counter("serve.requests.submitted").add();
    const bool admitted = queue_->submit(std::move(r));
    if (!admitted)
        metrics.counter("serve.requests.rejected").add();
    return admitted;
}

void
Server::drainAndStop()
{
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        CINN_ASSERT(started_, "server not started");
    }
    queue_->close();
    for (auto &t : workers_)
        t.join();
    workers_.clear();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall_seconds_ =
            std::chrono::duration<double>(Clock::now() - start_time_)
                .count();
        started_ = false;
    }
}

void
Server::workerLoop(std::size_t worker)
{
    while (auto request = queue_->pop()) {
        Response resp = process(*request, worker);
        std::lock_guard<std::mutex> lock(responses_mutex_);
        responses_.push_back(std::move(resp));
    }
}

Response
Server::process(const Request &request, std::size_t worker)
{
    TraceRecorder *trace = options_.trace ? &trace_ : nullptr;
    const auto tid = static_cast<uint32_t>(worker);
    auto span = [&](const char *name) {
        ScopedSpan s(trace, name, "serve", kServerPid, tid);
        s.arg("rid", static_cast<double>(request.id));
        s.arg("workload", workloadName(request.workload));
        return s;
    };

    auto &metrics = MetricsRegistry::global();
    Response resp;
    resp.id = request.id;
    resp.workload = request.workload;
    resp.queue_ms = msSince(request.admitted);
    if (trace != nullptr) {
        TraceEvent e;
        e.name = "queue";
        e.category = "serve";
        e.pid = kServerPid;
        e.tid = tid;
        e.ts_us = trace->toUs(request.admitted);
        e.dur_us = resp.queue_ms * 1e3;
        e.num_args.emplace_back("rid",
                                static_cast<double>(request.id));
        e.str_args.emplace_back("workload",
                                workloadName(request.workload));
        trace->complete(std::move(e));
    }

    auto expire = [&] {
        resp.status = RequestStatus::Expired;
        resp.total_ms = resp.queue_ms + resp.service_ms;
        metrics.counter("serve.requests.expired").add();
    };

    // A request whose latency budget was spent in the queue is shed
    // here: running it would only push the requests behind it past
    // their own deadlines.
    if (request.deadline.count() > 0 &&
        resp.queue_ms >
            static_cast<double>(request.deadline.count())) {
        expire();
        return resp;
    }

    const auto service_start = Clock::now();
    try {
        GroupLease lease;
        {
            auto s = span("acquire");
            lease = scheduler_->acquire();
        }
        resp.group = lease.group();

        // Re-check after the (possibly long) wait for a chip group: a
        // request whose deadline lapsed while other tenants held the
        // machine must be shed, not run — otherwise it occupies the
        // group for work nobody can use and delays everyone behind it.
        if (request.deadline.count() > 0 &&
            msSince(request.admitted) >
                static_cast<double>(request.deadline.count())) {
            resp.service_ms = msSince(service_start);
            expire();
            metrics.counter("serve.requests.expired_after_lease")
                .add();
            return resp;
        }

        // Time the workload's kernels on this group (shared cache:
        // the first request of a kind compiles, the rest hit).
        {
            auto s = span("simulate");
            const auto &bench = catalog_->benchmark(request.workload);
            const auto timing =
                runner_->run(bench, options_.group_size, options_.hw,
                             options_.group_size);
            resp.sim_seconds = timing.seconds;
            resp.compile_ms = timing.compile_ms;
        }

        // End-to-end functional execution at small parameter sets.
        if (options_.emulate && ctx_->n() <= options_.emulate_max_n) {
            auto s = span("probe");
            resp.output_hash =
                runProbe(request, options_.group_size,
                         &resp.compile_ms);
        }

        // Model the accelerator group's real occupancy: the host
        // thread waits on the device for the simulated duration
        // (scaled), keeping the group leased the whole time.
        if (options_.time_dilation > 0.0) {
            auto s = span("dwell");
            const auto dwell = std::chrono::duration<double>(
                resp.sim_seconds * options_.time_dilation);
            std::this_thread::sleep_for(dwell);
        }
        resp.status = RequestStatus::Completed;
    } catch (const std::exception &e) {
        resp.status = RequestStatus::Failed;
        resp.error = e.what();
        metrics.counter("serve.requests.failed").add();
    }
    resp.service_ms = msSince(service_start);
    resp.total_ms = resp.queue_ms + resp.service_ms;
    if (resp.status == RequestStatus::Completed) {
        metrics.counter("serve.requests.completed").add();
        metrics.histogram("serve.queue_ms").observe(resp.queue_ms);
        metrics.histogram("serve.service_ms").observe(resp.service_ms);
        metrics.histogram("serve.total_ms").observe(resp.total_ms);
        metrics.histogram("serve.compile_ms").observe(resp.compile_ms);
    }
    return resp;
}

uint64_t
Server::runProbe(const Request &request, std::size_t group_chips,
                 double *compile_ms)
{
    double probe_compile_ms = 0.0;
    const auto &compiled = runner_->compiled(
        catalog_->probe(), group_chips, options_.hw.phys_regs, {},
        &probe_compile_ms);
    if (compile_ms != nullptr)
        *compile_ms += probe_compile_ms;

    // All randomness is derived from the request seed, so the output
    // hash is a pure function of (seed, catalog, parameters) — never
    // of worker count or scheduling order. The seeded emulate backend
    // owns that discipline now; the digest semantics are unchanged.
    auto report = exec::EmulateBackend::executeSeeded(
        *ctx_, *encoder_, catalog_->probe(), compiled, request.seed);
    return report.digest;
}

std::vector<Response>
Server::responses() const
{
    std::lock_guard<std::mutex> lock(responses_mutex_);
    return responses_;
}

ServeStats
Server::stats() const
{
    std::vector<Response> resp;
    std::size_t submitted;
    {
        std::lock_guard<std::mutex> lock(responses_mutex_);
        resp = responses_;
        submitted = submitted_;
    }
    double wall;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        wall = started_
                   ? std::chrono::duration<double>(Clock::now() -
                                                   start_time_)
                         .count()
                   : wall_seconds_;
    }
    return ServeStats::fromResponses(resp, submitted,
                                     queue_->rejected(), wall,
                                     runner_->cacheStats(),
                                     scheduler_->busySeconds());
}

} // namespace cinnamon::serve
