/**
 * @file
 * Workload catalog: maps a request's Workload tag to an executable
 * description, scaled to the serving context's parameter set.
 *
 * At paper parameters (level budget ≥ 51) the catalog hands out the
 * Section 6.2 benchmarks verbatim; at the small test parameter sets
 * used by unit tests and the demo it substitutes structurally
 * faithful miniatures (a shallow bootstrap shape, narrower matvecs)
 * so every workload still compiles and simulates in milliseconds.
 *
 * The catalog also owns the *probe* program: a small two-stream DSL
 * program (hoisted rotations summed + an independent square) that the
 * runtime executes end-to-end on the ISA emulator per request with
 * request-seeded keys and inputs. The probe is what makes a served
 * request verifiable — its output ciphertexts hash to a value that
 * must be identical whether the trace ran on one worker or many.
 */

#ifndef CINNAMON_SERVE_CATALOG_H_
#define CINNAMON_SERVE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>

#include "serve/request.h"
#include "workloads/benchmarks.h"

namespace cinnamon::serve {

/** Immutable after construction; shared by all worker threads. */
class WorkloadCatalog
{
  public:
    explicit WorkloadCatalog(const fhe::CkksContext &ctx);

    /** The benchmark a workload tag runs on the simulator. */
    const workloads::Benchmark &benchmark(Workload w) const;

    /** The shared end-to-end probe program. */
    const compiler::Program &probe() const { return *probe_; }

    /**
     * The probe replicated into `streams` data-parallel copies
     * (replicateStreams): the batched execution unit for a lease of
     * `streams` chip groups. streams == 1 is probe() itself; replicas
     * are built once and cached (thread-safe).
     */
    const compiler::Program &batchedProbe(std::size_t streams) const;

    /** Level the probe's input ciphertext is encrypted at. */
    std::size_t probeLevel() const { return probe_level_; }

  private:
    std::map<Workload, workloads::Benchmark> benchmarks_;
    std::unique_ptr<compiler::Program> probe_;
    std::size_t probe_level_ = 0;
    mutable std::mutex probe_mutex_;
    mutable std::map<std::size_t, std::unique_ptr<compiler::Program>>
        batched_probes_;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_CATALOG_H_
