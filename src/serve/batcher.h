/**
 * @file
 * Batch former for continuous cross-request batching.
 *
 * Sits between the admission queue and the workers: drains up to
 * `num_streams` *compatible* requests (same workload shape — the
 * compiler/keyswitch configuration is server-global, so shape is the
 * whole compatibility key) into one batch, lingering a small bounded
 * window for late compatible arrivals when the batch is short —
 * LLM-serving-style continuous batching mapped onto Cinnamon's
 * program-level parallelism: each member becomes one stream of a
 * replicated multi-stream program spanning its own chip group.
 *
 * Every formed batch is booked in the process metrics registry:
 * serve.batch_occupancy (members per batch), serve.batch.formed, and
 * serve.batch.linger_wait_ms (time spent in the linger window).
 */

#ifndef CINNAMON_SERVE_BATCHER_H_
#define CINNAMON_SERVE_BATCHER_H_

#include <cstddef>
#include <vector>

#include "serve/queue.h"

namespace cinnamon::serve {

/** Drains compatible request batches from a RequestQueue. */
class BatchFormer
{
  public:
    /**
     * @param queue the admission queue to drain (not owned).
     * @param linger_ms how long a short batch waits for compatible
     *        arrivals before dispatching anyway.
     */
    BatchFormer(RequestQueue &queue, double linger_ms)
        : queue_(&queue), linger_ms_(linger_ms)
    {
    }

    /**
     * Two requests that may share one batched program: same workload
     * shape. Seeds, deadlines, and attempt counts may differ — each
     * member keeps its own.
     */
    static bool compatible(const Request &a, const Request &b)
    {
        return a.workload == b.workload;
    }

    /**
     * Pop the next batch of at most `max` compatible requests,
     * blocking while the queue is empty and open.
     *
     * @return empty once the queue is closed and drained.
     */
    std::vector<Request> next(std::size_t max);

  private:
    RequestQueue *queue_;
    double linger_ms_;
};

} // namespace cinnamon::serve

#endif // CINNAMON_SERVE_BATCHER_H_
