/**
 * @file
 * The compiler pass pipeline (Section 4.2): a PassManager runs named
 * passes over materialized IRs, with per-pass tracing, metrics, an
 * inter-pass verifier, and optional IR dumps.
 *
 * The pipeline owns one PassContext — the blackboard every pass reads
 * from and writes to: the source ciphertext program, the keyswitch
 * analysis, the polynomial IR, the limb IR, and finally the compiled
 * ISA program. Each Pass declares
 *
 *  - `run`:    the transformation itself;
 *  - `verify`: an invariant check over the pass's output IR, executed
 *              when CompilerConfig::verify_ir is set; violations throw
 *              VerifyError (never abort), so both the serving runtime
 *              and the negative tests can catch them;
 *  - `dump`:   a printer for the output IR, routed to the manager's
 *              dump handler (--dump-ir=<stage>);
 *  - `count`:  the op count of the output IR, booked as
 *              compiler.pass.<name>.ops_out (and the next pass's
 *              ops_in) so per-pass expansion ratios are observable.
 *
 * Every pass additionally books a compiler.pass.<name>.ms histogram
 * and, when a TraceRecorder is attached, a "compiler.<name>" span.
 */

#ifndef CINNAMON_COMPILER_PASS_H_
#define CINNAMON_COMPILER_PASS_H_

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/trace.h"
#include "compiler/compiled.h"
#include "compiler/dsl.h"
#include "compiler/ks_pass.h"
#include "compiler/limb_ir.h"
#include "compiler/poly_ir.h"

namespace cinnamon::compiler {

/** An IR invariant violation found by an inter-pass verifier. */
class VerifyError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The shared state the pipeline threads through its passes. */
struct PassContext
{
    const fhe::CkksContext *ctx = nullptr;
    const Program *prog = nullptr;
    CompilerConfig cfg;

    KsPassResult ks;     ///< after "keyswitch"
    PolyProgram poly;    ///< after "expand-poly" (annotated in place)
    LimbProgram limb;    ///< after "lower-limb"
    CompiledProgram out; ///< after "lower-isa" / "regalloc"
    /** First address past program data (spill slots start here). */
    uint64_t next_addr = 1;

    TraceRecorder *trace = nullptr; ///< null = no tracing
};

/** One named pipeline stage. Only `run` is mandatory. */
struct Pass
{
    std::string name;       ///< metric/trace suffix ("expand-poly", …)
    std::string dump_stage; ///< --dump-ir stage name ("" = not dumpable)
    std::function<void(PassContext &)> run;
    std::function<void(const PassContext &)> verify;
    std::function<std::string(const PassContext &)> dump;
    std::function<std::size_t(const PassContext &)> count;
};

/** Runs passes in order with observability around each one. */
class PassManager
{
  public:
    /** Receives (dump_stage, printed IR) after the matching pass. */
    using DumpHandler =
        std::function<void(const std::string &, const std::string &)>;

    void add(Pass pass) { passes_.push_back(std::move(pass)); }

    const std::vector<Pass> &passes() const { return passes_; }

    /**
     * Run every pass over `pcx`. Verifiers run when
     * pcx.cfg.verify_ir is set; `dump` (may be null) is invoked for
     * passes that declare a dump stage.
     */
    void run(PassContext &pcx, const DumpHandler &dump = nullptr) const;

  private:
    std::vector<Pass> passes_;
};

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_PASS_H_
