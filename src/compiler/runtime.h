/**
 * @file
 * Execution runtime for compiled programs.
 *
 * The runtime materializes every DataDescriptor of a CompiledProgram
 * into the ISA emulator's per-chip memories — input ciphertext limbs,
 * encoded plaintext limbs, and evaluation-key limbs (generating the
 * exact key material each keyswitch variant expects, including
 * chip-digit-partition keys for output-aggregation batches) — then
 * runs the program and reassembles the named outputs into ordinary
 * Ciphertexts. It is the bridge that lets compiled instruction
 * streams be validated against the fhe/ reference implementation
 * (Section 6.2's correctness methodology).
 */

#ifndef CINNAMON_COMPILER_RUNTIME_H_
#define CINNAMON_COMPILER_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiled.h"
#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/keys.h"
#include "isa/emulator.h"

namespace cinnamon::compiler {

/** Binds program inputs and executes compiled programs. */
class ProgramRuntime
{
  public:
    ProgramRuntime(const fhe::CkksContext &ctx,
                   const fhe::Encoder &encoder, fhe::KeyGenerator &keygen,
                   const fhe::SecretKey &sk)
        : ctx_(&ctx), encoder_(&encoder), keygen_(&keygen), sk_(&sk)
    {
    }

    ~ProgramRuntime()
    {
        if (emu_cache_ && emu_)
            emu_cache_->release(std::move(emu_));
    }

    ProgramRuntime(const ProgramRuntime &) = delete;
    ProgramRuntime &operator=(const ProgramRuntime &) = delete;

    /**
     * Borrow emulators from (and return them to) `cache` instead of
     * building one per runtime: a short-lived per-request runtime then
     * starts with a warm arena instead of growing one from zero. The
     * cache must be built on the same CkksContext and must outlive
     * this runtime. Call before the first run().
     */
    void setEmulatorCache(isa::EmulatorCache *cache)
    {
        emu_cache_ = cache;
    }

    /**
     * Bind an encrypted input by name. Rebinding (any name) marks the
     * pre-loaded chip memories stale, so the next run() re-stores
     * every Load address.
     */
    void bindInput(const std::string &name, const fhe::Ciphertext &ct);

    /**
     * Per-copy key material for batched (replicated-stream) programs:
     * copy k of a replicateStreams() program occupies chips
     * [k*g, (k+1)*g) and must draw its evaluation keys from its *own*
     * request's key generator so every member's outputs stay
     * bit-identical to an unbatched run under the same seed. The
     * pointers are non-owning and must outlive the next run(). An
     * empty vector (the default) restores single-tenant behaviour:
     * every chip uses the constructor's keygen/sk.
     */
    struct CopyKeys
    {
        fhe::KeyGenerator *keygen = nullptr;
        const fhe::SecretKey *sk = nullptr;
    };
    void setCopyKeys(std::vector<CopyKeys> copies)
    {
        copy_keys_ = std::move(copies);
        ++bindings_version_;
    }

    /** Bind a plaintext slot vector by name (encoded on demand). */
    void bindPlain(const std::string &name,
                   std::vector<fhe::Cplx> values);

    /**
     * Execute a compiled program on the ISA emulator.
     *
     * @return the named output ciphertexts.
     */
    std::map<std::string, fhe::Ciphertext>
    run(const CompiledProgram &program);

    /** Emulator statistics from the last run. */
    const isa::EmulatorStats &lastStats() const { return last_stats_; }

    /**
     * Worker threads for the emulator's inter-collective chip advance
     * (default 1; results are bit-identical at any count).
     */
    void setEmulatorWorkers(std::size_t w) { emu_workers_ = w; }

    /**
     * Arm a one-shot injected chip failure for the next run(): chip
     * `chip` dies after executing `at_fraction` of its instruction
     * stream (the run throws isa::EmulatorError). Consumed by the
     * next run(); subsequent runs execute cleanly again.
     */
    void
    armFault(std::size_t chip, double at_fraction)
    {
        fault_armed_ = true;
        fault_chip_ = chip;
        fault_at_ = at_fraction;
    }

  private:
    /**
     * Produce the limb a descriptor names, as a view into runtime-
     * owned storage (inputs / plaintext cache / key cache), valid for
     * the lifetime of this runtime.
     */
    isa::LimbRef materialize(const DataDescriptor &desc,
                             std::size_t copy);

    /** Fetch or create the evaluation key a descriptor names. */
    const fhe::EvalKey &evalKeyFor(const DataDescriptor &desc,
                                   std::size_t copy);

    const fhe::CkksContext *ctx_;
    const fhe::Encoder *encoder_;
    fhe::KeyGenerator *keygen_;
    const fhe::SecretKey *sk_;

    std::map<std::string, fhe::Ciphertext> inputs_;
    std::map<std::string, std::vector<fhe::Cplx>> plains_;
    std::map<std::string, fhe::EvalKey> key_cache_;
    std::vector<CopyKeys> copy_keys_; ///< empty = single tenant
    std::map<std::string, rns::RnsPoly> plain_cache_;
    /**
     * The emulator is kept across run() calls (rebuilt only when the
     * chip count changes) so its arena, register files, and address
     * tables are allocated once; every Load address is re-stored at
     * the start of each run, so repeated runs — including with
     * re-bound inputs — stay bit-identical to a fresh emulator.
     */
    std::unique_ptr<isa::Emulator> emu_;
    isa::EmulatorCache *emu_cache_ = nullptr; ///< optional, non-owning
    /**
     * Identity of the last program run: a recycled or kept emulator is
     * resetMemory()'d when the program changes, so one program's
     * mappings and register definitions can never mask another's
     * unmapped-load / undefined-read faults.
     */
    const void *last_program_ = nullptr;
    /**
     * Pre-store validity: when the same program re-runs on the same
     * emulator instance and no binding changed since
     * (`bindings_version_` matches), every pre-loaded address the
     * program never Stores to still holds exactly the limb the last
     * run stored there, so run() skips its materialize+memcpy.
     * Invalidated whenever the emulator is replaced or reset and by
     * every bind/setCopyKeys call.
     */
    uint64_t bindings_version_ = 0;
    uint64_t prestored_version_ = 0;
    const void *prestored_program_ = nullptr;
    std::size_t emu_chips_ = 0;
    isa::EmulatorStats last_stats_;
    std::size_t emu_workers_ = 1;
    /** One-shot injected fault for the next run(). */
    bool fault_armed_ = false;
    std::size_t fault_chip_ = 0;
    double fault_at_ = 0.5;
};

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_RUNTIME_H_
