/**
 * @file
 * Execution runtime for compiled programs.
 *
 * The runtime materializes every DataDescriptor of a CompiledProgram
 * into the ISA emulator's per-chip memories — input ciphertext limbs,
 * encoded plaintext limbs, and evaluation-key limbs (generating the
 * exact key material each keyswitch variant expects, including
 * chip-digit-partition keys for output-aggregation batches) — then
 * runs the program and reassembles the named outputs into ordinary
 * Ciphertexts. It is the bridge that lets compiled instruction
 * streams be validated against the fhe/ reference implementation
 * (Section 6.2's correctness methodology).
 */

#ifndef CINNAMON_COMPILER_RUNTIME_H_
#define CINNAMON_COMPILER_RUNTIME_H_

#include <map>
#include <string>
#include <vector>

#include "compiler/compiled.h"
#include "fhe/ciphertext.h"
#include "fhe/encoder.h"
#include "fhe/keys.h"
#include "isa/emulator.h"

namespace cinnamon::compiler {

/** Binds program inputs and executes compiled programs. */
class ProgramRuntime
{
  public:
    ProgramRuntime(const fhe::CkksContext &ctx,
                   const fhe::Encoder &encoder, fhe::KeyGenerator &keygen,
                   const fhe::SecretKey &sk)
        : ctx_(&ctx), encoder_(&encoder), keygen_(&keygen), sk_(&sk)
    {
    }

    /** Bind an encrypted input by name. */
    void bindInput(const std::string &name, const fhe::Ciphertext &ct);

    /** Bind a plaintext slot vector by name (encoded on demand). */
    void bindPlain(const std::string &name,
                   std::vector<fhe::Cplx> values);

    /**
     * Execute a compiled program on the ISA emulator.
     *
     * @return the named output ciphertexts.
     */
    std::map<std::string, fhe::Ciphertext>
    run(const CompiledProgram &program);

    /** Emulator statistics from the last run. */
    const isa::EmulatorStats &lastStats() const { return last_stats_; }

  private:
    /** Produce the limb a descriptor names. */
    isa::Limb materialize(const DataDescriptor &desc);

    /** Fetch or create the evaluation key a descriptor names. */
    const fhe::EvalKey &evalKeyFor(const DataDescriptor &desc);

    const fhe::CkksContext *ctx_;
    const fhe::Encoder *encoder_;
    fhe::KeyGenerator *keygen_;
    const fhe::SecretKey *sk_;

    std::map<std::string, fhe::Ciphertext> inputs_;
    std::map<std::string, std::vector<fhe::Cplx>> plains_;
    std::map<std::string, fhe::EvalKey> key_cache_;
    std::map<std::string, rns::RnsPoly> plain_cache_;
    isa::EmulatorStats last_stats_;
};

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_RUNTIME_H_
