#include "compiler/pass.h"

#include <chrono>

#include "common/metrics.h"

namespace cinnamon::compiler {

void
PassManager::run(PassContext &pcx, const DumpHandler &dump) const
{
    auto &metrics = MetricsRegistry::global();
    // Op-count chaining: each pass's output count is the next pass's
    // input count; the pipeline's input is the ciphertext program.
    double last_count =
        pcx.prog ? static_cast<double>(pcx.prog->ops().size()) : 0.0;

    for (const auto &pass : passes_) {
        ScopedSpan span(pcx.trace, "compiler." + pass.name, "compiler",
                        0, 0);
        span.arg("ops_in", last_count);

        const auto start = std::chrono::steady_clock::now();
        pass.run(pcx);
        if (pcx.cfg.verify_ir && pass.verify)
            pass.verify(pcx);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();

        metrics.histogram("compiler.pass." + pass.name + ".ms")
            .observe(ms);
        metrics.counter("compiler.pass." + pass.name + ".ops_in")
            .add(last_count);
        if (pass.count) {
            last_count = static_cast<double>(pass.count(pcx));
            metrics.counter("compiler.pass." + pass.name + ".ops_out")
                .add(last_count);
            span.arg("ops_out", last_count);
        }
        if (dump && pass.dump && !pass.dump_stage.empty())
            dump(pass.dump_stage, pass.dump(pcx));
    }
}

} // namespace cinnamon::compiler
