/**
 * @file
 * Belady MIN register allocation for Cinnamon ISA streams
 * (Section 4.4: "lowers the limb level representation to the Cinnamon
 * ISA using Belady's min to allocate registers").
 *
 * Each chip's vector register file holds a fixed number of limb
 * registers (224 × 256 KB = 56 MB for the paper's chip). The lowering
 * produces SSA virtual registers; this pass maps them onto physical
 * registers, evicting — per Belady — the value whose next use is
 * farthest in the future, and inserting spill Stores/Loads to HBM.
 * Spill traffic is what makes register-file size matter in the cycle
 * simulator (Figures 6 and 16).
 */

#ifndef CINNAMON_COMPILER_REGALLOC_H_
#define CINNAMON_COMPILER_REGALLOC_H_

#include <cstdint>

#include "isa/isa.h"

namespace cinnamon::compiler {

/** Spill statistics from one allocation run. */
struct RegAllocStats
{
    std::size_t spill_stores = 0;
    std::size_t spill_loads = 0;
    std::size_t max_live = 0; ///< peak simultaneous live values
};

/**
 * Eviction policy. Belady's MIN (the paper's choice) evicts the value
 * whose next use is farthest away; LRU is provided as the ablation
 * baseline a hardware cache would implement.
 */
enum class EvictionPolicy { Belady, Lru };

/**
 * Allocate registers in-place for every chip of `program`.
 *
 * Chips are fully independent (separate streams, register files, and
 * spill memories), so they allocate concurrently on `workers`
 * threads; the result is identical for any worker count.
 *
 * @param phys_regs physical registers per chip.
 * @param spill_addr_base first memory address usable for spill slots
 *        (addresses below it belong to program data).
 * @param policy eviction policy (Belady unless ablating).
 * @param workers worker threads (0 = one per hardware core).
 * @return spill statistics: stores/loads summed over all chips,
 *         max_live the maximum over chips.
 */
RegAllocStats allocateRegisters(isa::MachineProgram &program,
                                std::size_t phys_regs,
                                uint64_t spill_addr_base,
                                EvictionPolicy policy =
                                    EvictionPolicy::Belady,
                                std::size_t workers = 1);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_REGALLOC_H_
