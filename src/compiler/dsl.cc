#include "compiler/dsl.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"

namespace cinnamon::compiler {

std::size_t
CtHandle::level() const
{
    CINN_ASSERT(program_ != nullptr, "invalid ciphertext handle");
    return program_->op(id_).level;
}

double
CtHandle::scale() const
{
    CINN_ASSERT(program_ != nullptr, "invalid ciphertext handle");
    return program_->op(id_).scale;
}

int
Program::append(CtOp op)
{
    op.id = static_cast<int>(ops_.size());
    op.stream = current_stream_;
    ops_.push_back(std::move(op));
    return ops_.back().id;
}

const CtOp &
Program::checkHandle(CtHandle h) const
{
    CINN_ASSERT(h.valid(), "operation on an invalid handle");
    CINN_ASSERT(h.id() >= 0 && h.id() < static_cast<int>(ops_.size()),
                "handle out of range");
    return ops_[h.id()];
}

CtHandle
Program::input(const std::string &name, std::size_t level)
{
    CINN_FATAL_UNLESS(level <= ctx_->maxLevel(),
                      "input level exceeds the parameter chain");
    CtOp op;
    op.kind = CtOpKind::Input;
    op.name = name;
    op.level = level;
    op.scale = ctx_->params().scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::add(CtHandle a, CtHandle b)
{
    const CtOp &oa = checkHandle(a);
    const CtOp &ob = checkHandle(b);
    CINN_FATAL_UNLESS(oa.level == ob.level,
                      "add: operand levels differ (" << oa.level << " vs "
                                                     << ob.level << ")");
    CINN_FATAL_UNLESS(std::abs(oa.scale - ob.scale) <
                          1e-6 * std::max(oa.scale, ob.scale),
                      "add: operand scales differ");
    CtOp op;
    op.kind = CtOpKind::Add;
    op.args = {a.id(), b.id()};
    op.level = oa.level;
    op.scale = oa.scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::sub(CtHandle a, CtHandle b)
{
    CtHandle h = add(a, b); // same checks and shape
    ops_.back().kind = CtOpKind::Sub;
    return h;
}

CtHandle
Program::mul(CtHandle a, CtHandle b)
{
    const CtOp &oa = checkHandle(a);
    const CtOp &ob = checkHandle(b);
    CINN_FATAL_UNLESS(oa.level == ob.level, "mul: operand levels differ");
    CtOp op;
    op.kind = CtOpKind::Mul;
    op.args = {a.id(), b.id()};
    op.level = oa.level;
    op.scale = oa.scale * ob.scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::mulPlain(CtHandle a, const std::string &plain)
{
    const CtOp &oa = checkHandle(a);
    CtOp op;
    op.kind = CtOpKind::MulPlain;
    op.args = {a.id()};
    op.name = plain;
    op.level = oa.level;
    op.scale = oa.scale * ctx_->params().scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::addPlain(CtHandle a, const std::string &plain)
{
    const CtOp &oa = checkHandle(a);
    CtOp op;
    op.kind = CtOpKind::AddPlain;
    op.args = {a.id()};
    op.name = plain;
    op.level = oa.level;
    op.scale = oa.scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::rescale(CtHandle a)
{
    const CtOp &oa = checkHandle(a);
    CINN_FATAL_UNLESS(oa.level >= 1, "rescale at level 0");
    CtOp op;
    op.kind = CtOpKind::Rescale;
    op.args = {a.id()};
    op.level = oa.level - 1;
    // EVA-style waterline scale management: the exact post-rescale
    // scale is s/q_level ≈ Δ (each chain prime sits near the
    // waterline); tracking it exactly would let the per-prime drift
    // compound double-exponentially through squaring chains, so —
    // like the paper's EVA-derived frontend — we pin the result to
    // the waterline. The ≲2^-28 relative value error this introduces
    // per rescale is far below the CKKS noise floor.
    op.scale = oa.scale /
               static_cast<double>(ctx_->q(oa.level)) /
               ctx_->params().scale;
    op.scale = ctx_->params().scale *
               (op.scale > 0.5 && op.scale < 2.0 ? 1.0 : op.scale);
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::rotate(CtHandle a, int steps)
{
    const CtOp &oa = checkHandle(a);
    CtOp op;
    op.kind = CtOpKind::Rotate;
    op.args = {a.id()};
    op.rotation = steps;
    op.level = oa.level;
    op.scale = oa.scale;
    return CtHandle(this, append(std::move(op)));
}

CtHandle
Program::conjugate(CtHandle a)
{
    const CtOp &oa = checkHandle(a);
    CtOp op;
    op.kind = CtOpKind::Conjugate;
    op.args = {a.id()};
    op.level = oa.level;
    op.scale = oa.scale;
    return CtHandle(this, append(std::move(op)));
}

void
Program::output(const std::string &name, CtHandle a)
{
    const CtOp &oa = checkHandle(a);
    CtOp op;
    op.kind = CtOpKind::Output;
    op.args = {a.id()};
    op.name = name;
    op.level = oa.level;
    op.scale = oa.scale;
    append(std::move(op));
}

void
Program::beginStream(int stream_id)
{
    CINN_ASSERT(stream_id >= 0, "stream ids must be non-negative");
    current_stream_ = stream_id;
}

void
Program::endStream()
{
    current_stream_ = 0;
}

int
Program::numStreams() const
{
    int max_stream = 0;
    for (const auto &op : ops_)
        max_stream = std::max(max_stream, op.stream);
    return max_stream + 1;
}

std::vector<int>
Program::rotationSteps() const
{
    std::set<int> steps;
    for (const auto &op : ops_) {
        if (op.kind == CtOpKind::Rotate && op.rotation != 0)
            steps.insert(op.rotation);
    }
    return std::vector<int>(steps.begin(), steps.end());
}

bool
Program::usesConjugation() const
{
    return std::any_of(ops_.begin(), ops_.end(), [](const CtOp &op) {
        return op.kind == CtOpKind::Conjugate;
    });
}

Program
replicateStreams(const Program &prog, int copies)
{
    CINN_ASSERT(copies >= 1, "replicateStreams needs at least one copy");
    const int base_streams = prog.numStreams();
    Program out(prog.name() +
                    (copies > 1 ? "x" + std::to_string(copies) : ""),
                prog.context());
    for (int k = 0; k < copies; ++k) {
        const std::string suffix =
            k == 0 ? std::string() : "@" + std::to_string(k);
        std::vector<CtHandle> cloned(prog.ops().size());
        for (const CtOp &op : prog.ops()) {
            out.beginStream(k * base_streams + op.stream);
            switch (op.kind) {
            case CtOpKind::Input:
                cloned[op.id] = out.input(op.name + suffix, op.level);
                break;
            case CtOpKind::Add:
                cloned[op.id] =
                    out.add(cloned[op.args[0]], cloned[op.args[1]]);
                break;
            case CtOpKind::Sub:
                cloned[op.id] =
                    out.sub(cloned[op.args[0]], cloned[op.args[1]]);
                break;
            case CtOpKind::Mul:
                cloned[op.id] =
                    out.mul(cloned[op.args[0]], cloned[op.args[1]]);
                break;
            case CtOpKind::MulPlain:
                cloned[op.id] = out.mulPlain(cloned[op.args[0]], op.name);
                break;
            case CtOpKind::AddPlain:
                cloned[op.id] = out.addPlain(cloned[op.args[0]], op.name);
                break;
            case CtOpKind::Rescale:
                cloned[op.id] = out.rescale(cloned[op.args[0]]);
                break;
            case CtOpKind::Rotate:
                cloned[op.id] =
                    out.rotate(cloned[op.args[0]], op.rotation);
                break;
            case CtOpKind::Conjugate:
                cloned[op.id] = out.conjugate(cloned[op.args[0]]);
                break;
            case CtOpKind::Output:
                out.output(op.name + suffix, cloned[op.args[0]]);
                break;
            }
        }
    }
    out.endStream();
    return out;
}

namespace {

inline void
fnv1a(uint64_t *h, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        *h ^= bytes[i];
        *h *= 0x100000001b3ull;
    }
}

template <typename T>
inline void
fnv1aPod(uint64_t *h, const T &v)
{
    fnv1a(h, &v, sizeof(v));
}

} // namespace

uint64_t
fingerprintOf(const Program &prog)
{
    uint64_t h = 0xcbf29ce484222325ull;
    fnv1a(&h, prog.name().data(), prog.name().size());
    for (const CtOp &op : prog.ops()) {
        fnv1aPod(&h, static_cast<uint32_t>(op.kind));
        for (const int arg : op.args)
            fnv1aPod(&h, static_cast<int64_t>(arg));
        // Separate the variable-length arg list from the fixed tail so
        // shifting a value between fields cannot collide.
        fnv1aPod(&h, static_cast<uint64_t>(op.args.size()));
        fnv1aPod(&h, static_cast<int64_t>(op.rotation));
        fnv1a(&h, op.name.data(), op.name.size());
        fnv1aPod(&h, static_cast<uint64_t>(op.name.size()));
        fnv1aPod(&h, static_cast<int64_t>(op.stream));
        fnv1aPod(&h, static_cast<uint64_t>(op.level));
        fnv1aPod(&h, op.scale);
    }
    return h;
}

} // namespace cinnamon::compiler
