#include "compiler/limb_ir.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/parallel.h"
#include "compiler/pass.h"

namespace cinnamon::compiler {

namespace {

using isa::Opcode;

/** A contiguous chip range hosting one stream. */
struct Group
{
    uint32_t lo = 0;
    uint32_t hi = 0;

    std::size_t size() const { return hi - lo; }
};

/**
 * Lowers the poly ops assigned to one LimbUnit. This is the port of
 * the pre-pipeline monolithic lowering, emitting placed SSA limb ops
 * instead of ISA instructions; the emitted dataflow graph is
 * identical op for op, which is what the golden-equivalence suite
 * pins down.
 */
class UnitLowerer
{
  public:
    UnitLowerer(const fhe::CkksContext &ctx, const PolyProgram &poly,
                const CompilerConfig &cfg,
                const std::vector<int> &op_ids, LimbUnit &unit)
        : ctx_(&ctx), poly_(&poly), cfg_(cfg), op_ids_(&op_ids),
          unit_(&unit)
    {
    }

    void
    run()
    {
        for (int idx : *op_ids_) {
            const PolyOp &op = poly_->ops[idx];
            switch (op.kind) {
            case PolyOpKind::Input:
                lowerInput(op);
                break;
            case PolyOpKind::Add:
            case PolyOpKind::Sub:
            case PolyOpKind::Mul:
                lowerBinary(op);
                break;
            case PolyOpKind::PlainMul:
            case PolyOpKind::PlainAdd:
                lowerPlain(op);
                break;
            case PolyOpKind::Rescale:
                lowerRescale(op);
                break;
            case PolyOpKind::Automorph:
                lowerAutomorph(op);
                break;
            case PolyOpKind::KeySwitch:
                lowerKeySwitch(op);
                break;
            case PolyOpKind::OaBatch:
                lowerOaBatch(op);
                break;
            case PolyOpKind::Output:
                lowerOutput(op);
                break;
            }
        }
    }

  private:
    // ---- plumbing -------------------------------------------------
    Group
    groupOf(int stream) const
    {
        const uint32_t g =
            static_cast<uint32_t>(cfg_.chips / cfg_.num_streams);
        CINN_ASSERT(stream >= 0 && stream < cfg_.num_streams,
                    "op stream " << stream << " exceeds configured "
                                 << cfg_.num_streams << " streams");
        return Group{static_cast<uint32_t>(stream) * g,
                     static_cast<uint32_t>(stream + 1) * g};
    }

    uint32_t
    chipOfLimb(const Group &g, std::size_t limb) const
    {
        return g.lo + static_cast<uint32_t>(limb % g.size());
    }

    int
    emitUnary(uint32_t chip, Opcode opc, int src, uint32_t prime,
              uint64_t imm = 0)
    {
        LimbOp op;
        op.op = opc;
        op.chip = chip;
        op.args = {src};
        op.prime = prime;
        op.imm = imm;
        op.result = unit_->newValue(chip, prime);
        const int r = op.result;
        unit_->ops.push_back(std::move(op));
        return r;
    }

    int
    emitBinary(uint32_t chip, Opcode opc, int a, int b, uint32_t prime)
    {
        LimbOp op;
        op.op = opc;
        op.chip = chip;
        op.args = {a, b};
        op.prime = prime;
        op.result = unit_->newValue(chip, prime);
        const int r = op.result;
        unit_->ops.push_back(std::move(op));
        return r;
    }

    int
    emitBConv(uint32_t chip, const std::vector<int> &srcs,
              const rns::Basis &basis, uint32_t prime)
    {
        LimbOp op;
        op.op = Opcode::BConv;
        op.chip = chip;
        op.args = srcs;
        op.aux.assign(basis.begin(), basis.end());
        op.prime = prime;
        op.result = unit_->newValue(chip, prime);
        const int r = op.result;
        unit_->ops.push_back(std::move(op));
        return r;
    }

    int
    descIndex(const DataDescriptor &desc)
    {
        std::string key = descKeyOf(desc);
        auto it = desc_by_key_.find(key);
        if (it != desc_by_key_.end())
            return it->second;
        const int idx = static_cast<int>(unit_->descs.size());
        unit_->descs.push_back(desc);
        unit_->desc_keys.push_back(key);
        desc_by_key_.emplace(std::move(key), idx);
        return idx;
    }

    int
    emitLoad(uint32_t chip, const DataDescriptor &desc)
    {
        // Load CSE: repeated uses of the same read-only limb (inputs,
        // plaintexts, evaluation keys) share one SSA value. Belady
        // then decides whether the value stays resident; if it is
        // evicted, the allocator rematerializes it from its address
        // instead of spilling.
        const int d = descIndex(desc);
        const auto key = std::make_pair(chip, d);
        auto it = load_cache_.find(key);
        if (it != load_cache_.end())
            return it->second;
        LimbOp op;
        op.op = Opcode::Load;
        op.chip = chip;
        op.prime = desc.prime;
        op.desc = d;
        op.result = unit_->newValue(chip, desc.prime);
        const int r = op.result;
        unit_->ops.push_back(std::move(op));
        load_cache_.emplace(key, r);
        return r;
    }

    // ---- scalar precomputation ------------------------------------
    /** (D/d_i)^{-1} mod d_i for a digit basis D. */
    uint64_t
    digitShatInv(const rns::Basis &digit, std::size_t i) const
    {
        const rns::Modulus &di = ctx_->rns().modulus(digit[i]);
        uint64_t prod = 1;
        for (std::size_t k = 0; k < digit.size(); ++k) {
            if (k != i)
                prod = di.mul(prod,
                              ctx_->rns().modulus(digit[k]).value() %
                                  di.value());
        }
        return di.inv(prod);
    }

    /** P^{-1} mod q_i with P = product of the special primes. */
    uint64_t
    specialProdInv(uint32_t prime) const
    {
        const rns::Modulus &qi = ctx_->rns().modulus(prime);
        uint64_t p = 1;
        for (uint32_t s : ctx_->specialBasis())
            p = qi.mul(p, ctx_->rns().modulus(s).value() % qi.value());
        return qi.inv(p);
    }

    // ---- collective emission --------------------------------------
    /** Broadcast one limb (on `owner`) to every chip in `g`. */
    std::vector<int>
    emitBcast(const Group &g, uint32_t owner, int src, uint32_t prime)
    {
        LimbOp op;
        op.op = Opcode::Bcast;
        op.args = {src};
        op.prime = prime;
        op.imm = owner;
        op.part_lo = g.lo;
        op.part_hi = g.hi;
        op.coll_dsts.assign(g.size(), -1);
        std::vector<int> dsts(cfg_.chips, -1);
        for (uint32_t c = g.lo; c < g.hi; ++c) {
            const int v = unit_->newValue(c, prime);
            op.coll_dsts[c - g.lo] = v;
            dsts[c] = v;
        }
        unit_->ops.push_back(std::move(op));
        ++unit_->comm.broadcast_limbs;
        return dsts;
    }

    /** Aggregate per-chip partials; result lands on `owner` only. */
    int
    emitAgg(const Group &g, uint32_t owner,
            const std::vector<int> &srcs_per_chip, uint32_t prime)
    {
        LimbOp op;
        op.op = Opcode::Agg;
        op.prime = prime;
        op.imm = owner;
        op.part_lo = g.lo;
        op.part_hi = g.hi;
        op.coll_srcs.assign(g.size(), -1);
        for (uint32_t c = g.lo; c < g.hi; ++c)
            op.coll_srcs[c - g.lo] = srcs_per_chip[c];
        op.result = unit_->newValue(owner, prime);
        op.chip = owner;
        const int r = op.result;
        unit_->ops.push_back(std::move(op));
        ++unit_->comm.aggregation_limbs;
        return r;
    }

    /** Move one limb from chip `from` to chip `to` (no-op if equal). */
    int
    emitTransfer(uint32_t from, uint32_t to, int src, uint32_t prime)
    {
        if (from == to)
            return src;
        const uint32_t lo = std::min(from, to);
        const uint32_t hi = std::max(from, to) + 1;
        LimbOp op;
        op.op = Opcode::Bcast;
        op.args = {src};
        op.prime = prime;
        op.imm = from;
        op.part_lo = lo;
        op.part_hi = hi;
        op.coll_dsts.assign(hi - lo, -1);
        op.result = -1;
        const int v = unit_->newValue(to, prime);
        op.coll_dsts[to - lo] = v;
        unit_->ops.push_back(std::move(op));
        ++unit_->comm.broadcast_limbs;
        return v;
    }

    /**
     * Fetch a poly value's limbs, migrating them to `stream`'s chip
     * group first if the value was produced by a different stream.
     */
    const std::vector<int> &
    limbsFor(int value_id, int stream)
    {
        const auto &base = limbs_.at(value_id);
        const int vs = poly_->values[value_id].stream;
        if (vs == stream)
            return base;
        const auto key = std::make_pair(value_id, stream);
        auto it = migrated_.find(key);
        if (it != migrated_.end())
            return it->second;
        const Group gf = groupOf(vs);
        const Group gt = groupOf(stream);
        std::vector<int> out(base.size());
        for (std::size_t i = 0; i < base.size(); ++i) {
            out[i] = emitTransfer(chipOfLimb(gf, i), chipOfLimb(gt, i),
                                  base[i], static_cast<uint32_t>(i));
        }
        return migrated_.emplace(key, std::move(out)).first->second;
    }

    // ---- op lowering ----------------------------------------------
    void
    lowerInput(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        std::vector<int> limbs(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            DataDescriptor desc;
            desc.kind = DataDescriptor::Kind::InputCt;
            desc.name = op.name;
            desc.poly = op.poly;
            desc.prime = static_cast<uint32_t>(i);
            limbs[i] = emitLoad(chipOfLimb(g, i), desc);
        }
        limbs_[op.results[0]] = std::move(limbs);
    }

    void
    lowerBinary(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const auto &a = limbsFor(op.args[0], op.stream);
        const auto &b = limbsFor(op.args[1], op.stream);
        const Opcode opc = op.kind == PolyOpKind::Add   ? Opcode::Add
                           : op.kind == PolyOpKind::Sub ? Opcode::Sub
                                                        : Opcode::Mul;
        std::vector<int> out(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            out[i] = emitBinary(chipOfLimb(g, i), opc, a[i], b[i],
                                static_cast<uint32_t>(i));
        }
        limbs_[op.results[0]] = std::move(out);
    }

    void
    lowerPlain(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const auto &a = limbsFor(op.args[0], op.stream);
        const bool is_mul = op.kind == PolyOpKind::PlainMul;
        std::vector<int> out(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            const uint32_t chip = chipOfLimb(g, i);
            DataDescriptor desc;
            desc.kind = DataDescriptor::Kind::Plain;
            desc.name = op.name;
            desc.prime = static_cast<uint32_t>(i);
            desc.level = op.level;
            desc.scale = ctx_->params().scale;
            const int p = emitLoad(chip, desc);
            out[i] = emitBinary(chip, is_mul ? Opcode::Mul : Opcode::Add,
                                a[i], p, static_cast<uint32_t>(i));
        }
        limbs_[op.results[0]] = std::move(out);
    }

    void
    lowerRescale(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const auto &a = limbsFor(op.args[0], op.stream);
        const std::size_t last = a.size() - 1;
        const uint32_t last_owner = chipOfLimb(g, last);
        const uint64_t q_last = ctx_->q(last);

        // INTT the dropped limb and broadcast it to the group.
        const int last_coeff =
            emitUnary(last_owner, Opcode::Intt, a[last],
                      static_cast<uint32_t>(last));
        auto copies = emitBcast(g, last_owner, last_coeff,
                                static_cast<uint32_t>(last));

        std::vector<int> out(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            const uint32_t chip = chipOfLimb(g, i);
            const uint32_t prime = static_cast<uint32_t>(i);
            const rns::Modulus &qi = ctx_->rns().modulus(prime);
            const int xi = emitUnary(chip, Opcode::Intt, a[i], prime);
            // Reduce the dropped limb's residues into q_i.
            LimbOp red;
            red.op = Opcode::Mod;
            red.chip = chip;
            red.args = {copies[chip]};
            red.prime = prime;
            red.aux = {static_cast<uint32_t>(last)};
            red.result = unit_->newValue(chip, prime);
            const int xl = red.result;
            unit_->ops.push_back(std::move(red));
            const int diff = emitBinary(chip, Opcode::Sub, xi, xl, prime);
            const int scaled =
                emitUnary(chip, Opcode::MulScalar, diff, prime,
                          qi.inv(q_last % qi.value()));
            out[i] = emitUnary(chip, Opcode::Ntt, scaled, prime);
        }
        limbs_[op.results[0]] = std::move(out);
    }

    void
    lowerAutomorph(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const auto &a = limbsFor(op.args[0], op.stream);
        std::vector<int> out(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            const uint32_t chip = chipOfLimb(g, i);
            const uint32_t prime = static_cast<uint32_t>(i);
            const int coeff = emitUnary(chip, Opcode::Intt, a[i], prime);
            const int rot = emitUnary(chip, Opcode::Automorph, coeff,
                                      prime, op.galois);
            out[i] = emitUnary(chip, Opcode::Ntt, rot, prime);
        }
        limbs_[op.results[0]] = std::move(out);
    }

    /**
     * Broadcast all limbs of one polynomial (Eval domain, distributed)
     * so every chip in the group holds coefficient-domain copies.
     * @return bc[chip][limb] values (valid for chips in the group).
     */
    std::vector<std::vector<int>>
    broadcastPolyCoeff(const Group &g, const std::vector<int> &limbs,
                       std::size_t level)
    {
        std::vector<std::vector<int>> bc(cfg_.chips);
        for (auto &v : bc)
            v.assign(level + 1, -1);
        for (std::size_t i = 0; i <= level; ++i) {
            const uint32_t owner = chipOfLimb(g, i);
            const uint32_t prime = static_cast<uint32_t>(i);
            const int coeff =
                emitUnary(owner, Opcode::Intt, limbs[i], prime);
            auto copies = emitBcast(g, owner, coeff, prime);
            for (uint32_t c = g.lo; c < g.hi; ++c)
                bc[c][i] = copies[c];
        }
        return bc;
    }

    /**
     * The per-chip keyswitch compute shared by input-broadcast and
     * CiFHER lowering: digits, mod-up, evalkey MACs, mod-down.
     */
    std::array<std::vector<int>, 2>
    lowerKsCompute(const Group &g,
                   const std::vector<std::vector<int>> &bc,
                   std::size_t level, const std::string &key,
                   uint64_t galois, bool cifher)
    {
        const auto digits = ctx_->digits(level);
        const rns::Basis special = ctx_->specialBasis();

        std::array<std::vector<int>, 2> result;
        result[0].assign(level + 1, -1);
        result[1].assign(level + 1, -1);

        // Per-chip accumulators over the chip's mod-up output basis.
        std::vector<std::array<std::map<uint32_t, int>, 2>> acc(
            cfg_.chips);

        for (uint32_t c = g.lo; c < g.hi; ++c) {
            // Apply the automorphism on-chip to the broadcast copies.
            std::vector<int> limbs = bc[c];
            if (galois != 1) {
                for (std::size_t i = 0; i <= level; ++i) {
                    limbs[i] =
                        emitUnary(c, Opcode::Automorph, limbs[i],
                                  static_cast<uint32_t>(i), galois);
                }
            }

            // Output primes handled on this chip.
            std::vector<uint32_t> out_primes;
            for (std::size_t i = 0; i <= level; ++i) {
                if (chipOfLimb(g, i) == c)
                    out_primes.push_back(static_cast<uint32_t>(i));
            }
            for (std::size_t k = 0; k < special.size(); ++k) {
                if (!cifher || chipOfLimb(g, special[k]) == c)
                    out_primes.push_back(special[k]);
            }

            for (std::size_t j = 0; j < digits.size(); ++j) {
                const rns::Basis &digit = digits[j];
                // Stage 1 of the BCU: pre-scale the digit limbs.
                std::vector<int> scaled(digit.size());
                for (std::size_t d = 0; d < digit.size(); ++d) {
                    scaled[d] = emitUnary(c, Opcode::MulScalar,
                                          limbs[digit[d]], digit[d],
                                          digitShatInv(digit, d));
                }
                for (uint32_t t : out_primes) {
                    int up;
                    const bool in_digit =
                        std::find(digit.begin(), digit.end(), t) !=
                        digit.end();
                    if (in_digit)
                        up = limbs[t];
                    else
                        up = emitBConv(c, scaled, digit, t);
                    const int up_eval = emitUnary(c, Opcode::Ntt, up, t);
                    for (int poly = 0; poly < 2; ++poly) {
                        DataDescriptor desc;
                        desc.kind = DataDescriptor::Kind::EvalKey;
                        desc.name = key;
                        desc.poly = poly;
                        desc.prime = t;
                        desc.digit = j;
                        desc.galois = galois;
                        const int k = emitLoad(c, desc);
                        const int prod =
                            emitBinary(c, Opcode::Mul, up_eval, k, t);
                        auto it = acc[c][poly].find(t);
                        if (it == acc[c][poly].end()) {
                            acc[c][poly][t] = prod;
                        } else {
                            it->second = emitBinary(
                                c, Opcode::Add, it->second, prod, t);
                        }
                    }
                }
            }
        }

        // Mod-down. Under CiFHER both the ciphertext and extension
        // limbs of each accumulator are partitioned, so the mod-down
        // needs the whole polynomial broadcast (the paper's "2
        // broadcasts in (6)"); these are the rounds the keyswitch pass
        // cannot hoist.
        for (int poly = 0; poly < 2; ++poly) {
            if (cifher) {
                for (std::size_t i = 0; i <= level; ++i) {
                    const uint32_t owner = chipOfLimb(g, i);
                    const uint32_t prime = static_cast<uint32_t>(i);
                    (void)emitBcast(g, owner,
                                    acc[owner][poly].at(prime), prime);
                }
            }
            // INTT the extension accumulators on their owners.
            std::vector<std::vector<int>> ext(cfg_.chips);
            for (auto &v : ext)
                v.assign(special.size(), -1);
            for (std::size_t k = 0; k < special.size(); ++k) {
                const uint32_t s = special[k];
                if (cifher) {
                    const uint32_t owner = chipOfLimb(g, s);
                    const int coeff = emitUnary(
                        owner, Opcode::Intt, acc[owner][poly].at(s), s);
                    auto copies = emitBcast(g, owner, coeff, s);
                    for (uint32_t c = g.lo; c < g.hi; ++c)
                        ext[c][k] = copies[c];
                } else {
                    for (uint32_t c = g.lo; c < g.hi; ++c) {
                        ext[c][k] = emitUnary(c, Opcode::Intt,
                                              acc[c][poly].at(s), s);
                    }
                }
            }

            for (uint32_t c = g.lo; c < g.hi; ++c) {
                // Pre-scale the extension limbs for the mod-down BConv.
                std::vector<int> scaled(special.size());
                for (std::size_t k = 0; k < special.size(); ++k) {
                    scaled[k] =
                        emitUnary(c, Opcode::MulScalar, ext[c][k],
                                  special[k], digitShatInv(special, k));
                }
                for (std::size_t i = 0; i <= level; ++i) {
                    if (chipOfLimb(g, i) != c)
                        continue;
                    const uint32_t prime = static_cast<uint32_t>(i);
                    const int xi =
                        emitUnary(c, Opcode::Intt,
                                  acc[c][poly].at(prime), prime);
                    const int conv = emitBConv(c, scaled, special, prime);
                    const int diff =
                        emitBinary(c, Opcode::Sub, xi, conv, prime);
                    const int down =
                        emitUnary(c, Opcode::MulScalar, diff, prime,
                                  specialProdInv(prime));
                    result[poly][i] = emitUnary(c, Opcode::Ntt, down,
                                                prime);
                }
            }
        }
        return result;
    }

    void
    lowerKeySwitch(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const auto &c1 = limbsFor(op.args[0], op.stream);
        const bool cifher = op.algo == KsAlgo::Cifher;

        // Hoisted broadcast: rotations in one input-broadcast batch
        // reuse the batch's coefficient copies.
        std::vector<std::vector<int>> bc;
        if (op.batch >= 0 && !cifher && op.galois != 1) {
            auto it = ib_cache_.find(op.batch);
            if (it != ib_cache_.end()) {
                bc = it->second;
            } else {
                bc = broadcastPolyCoeff(g, c1, op.level);
                ib_cache_.emplace(op.batch, bc);
            }
        } else {
            bc = broadcastPolyCoeff(g, c1, op.level);
        }

        auto ks = lowerKsCompute(g, bc, op.level, op.name, op.galois,
                                 cifher);
        limbs_[op.results[0]] = std::move(ks[0]);
        limbs_[op.results[1]] = std::move(ks[1]);
    }

    void
    lowerOaBatch(const PolyOp &op)
    {
        const Group g = groupOf(op.stream);
        const std::size_t level = op.level;
        const std::size_t R = op.rotation_galois.size();
        const rns::Basis special = ctx_->specialBasis();
        const auto digits = chipDigitBases(level, g.size());
        CINN_FATAL_UNLESS(digits.size() == g.size(),
                          "output aggregation requires level+1 >= group "
                          "size so every chip owns a digit");

        // Full output basis: all ciphertext limbs + all specials.
        std::vector<uint32_t> full;
        for (std::size_t i = 0; i <= level; ++i)
            full.push_back(static_cast<uint32_t>(i));
        for (uint32_t s : special)
            full.push_back(s);

        // Per chip: accumulators over the full basis; per-limb c0 sums.
        std::vector<std::array<std::map<uint32_t, int>, 2>> acc(
            cfg_.chips);
        std::vector<int> c0sum(level + 1, -1);

        for (uint32_t c = g.lo; c < g.hi; ++c) {
            const std::size_t p = c - g.lo;
            const rns::Basis &digit = digits[p];

            for (std::size_t m = 0; m < R; ++m) {
                const auto &a1 = limbsFor(op.args[2 * m], op.stream);
                const auto &a0 = limbsFor(op.args[2 * m + 1], op.stream);
                const uint64_t galois = op.rotation_galois[m];
                std::ostringstream key;
                key << "galois:" << galois;

                // Digit limbs: this chip's resident limbs of c1,
                // rotated.
                std::vector<int> scaled(digit.size());
                std::vector<int> rotated(digit.size());
                for (std::size_t d = 0; d < digit.size(); ++d) {
                    const uint32_t prime = digit[d];
                    const int coeff = emitUnary(c, Opcode::Intt,
                                                a1[prime], prime);
                    rotated[d] = emitUnary(c, Opcode::Automorph, coeff,
                                           prime, galois);
                    scaled[d] =
                        emitUnary(c, Opcode::MulScalar, rotated[d],
                                  prime, digitShatInv(digit, d));
                }

                for (uint32_t t : full) {
                    int up;
                    auto pos = std::find(digit.begin(), digit.end(), t);
                    if (pos != digit.end())
                        up = rotated[pos - digit.begin()];
                    else
                        up = emitBConv(c, scaled, digit, t);
                    const int up_eval = emitUnary(c, Opcode::Ntt, up, t);
                    for (int poly = 0; poly < 2; ++poly) {
                        DataDescriptor desc;
                        desc.kind = DataDescriptor::Kind::EvalKey;
                        desc.name = key.str();
                        desc.poly = poly;
                        desc.prime = t;
                        desc.digit = p;
                        desc.galois = galois;
                        desc.chip_digits = true;
                        desc.group_size =
                            static_cast<uint32_t>(g.size());
                        const int k = emitLoad(c, desc);
                        const int prod =
                            emitBinary(c, Opcode::Mul, up_eval, k, t);
                        auto it = acc[c][poly].find(t);
                        if (it == acc[c][poly].end()) {
                            acc[c][poly][t] = prod;
                        } else {
                            it->second = emitBinary(
                                c, Opcode::Add, it->second, prod, t);
                        }
                    }
                }

                // c0 part: owners accumulate Σ_r auto(c0_r) locally.
                for (std::size_t d = 0; d < digit.size(); ++d) {
                    const uint32_t prime = digit[d];
                    const int c0 = emitUnary(c, Opcode::Intt, a0[prime],
                                             prime);
                    const int rc0 = emitUnary(c, Opcode::Automorph, c0,
                                              prime, galois);
                    const int ev = emitUnary(c, Opcode::Ntt, rc0, prime);
                    if (c0sum[prime] < 0) {
                        c0sum[prime] = ev;
                    } else {
                        c0sum[prime] = emitBinary(
                            c, Opcode::Add, c0sum[prime], ev, prime);
                    }
                }
            }
        }

        // Local mod-down on every chip, then ONE batched
        // aggregate+scatter per output polynomial.
        std::array<std::vector<int>, 2> out;
        for (int poly = 0; poly < 2; ++poly) {
            std::vector<std::vector<int>> partial(cfg_.chips);
            for (auto &v : partial)
                v.assign(level + 1, -1);
            for (uint32_t c = g.lo; c < g.hi; ++c) {
                std::vector<int> scaled(special.size());
                for (std::size_t k = 0; k < special.size(); ++k) {
                    const int coeff =
                        emitUnary(c, Opcode::Intt,
                                  acc[c][poly].at(special[k]),
                                  special[k]);
                    scaled[k] =
                        emitUnary(c, Opcode::MulScalar, coeff,
                                  special[k], digitShatInv(special, k));
                }
                for (std::size_t i = 0; i <= level; ++i) {
                    const uint32_t prime = static_cast<uint32_t>(i);
                    const int xi =
                        emitUnary(c, Opcode::Intt,
                                  acc[c][poly].at(prime), prime);
                    const int conv = emitBConv(c, scaled, special, prime);
                    const int diff =
                        emitBinary(c, Opcode::Sub, xi, conv, prime);
                    partial[c][i] =
                        emitUnary(c, Opcode::MulScalar, diff, prime,
                                  specialProdInv(prime));
                }
            }

            out[poly].resize(level + 1);
            for (std::size_t i = 0; i <= level; ++i) {
                const uint32_t owner = chipOfLimb(g, i);
                const uint32_t prime = static_cast<uint32_t>(i);
                std::vector<int> srcs(cfg_.chips, -1);
                for (uint32_t c = g.lo; c < g.hi; ++c)
                    srcs[c] = partial[c][i];
                const int agg = emitAgg(g, owner, srcs, prime);
                int ev = emitUnary(owner, Opcode::Ntt, agg, prime);
                if (poly == 0)
                    ev = emitBinary(owner, Opcode::Add, ev, c0sum[i],
                                    prime);
                // Non-rotation leaves of the add tree join here.
                for (std::size_t e = 0; e < op.num_extras; ++e) {
                    const auto &ex = limbsFor(
                        op.args[2 * R + 2 * e + poly], op.stream);
                    ev = emitBinary(owner, Opcode::Add, ev, ex[i],
                                    prime);
                }
                out[poly][i] = ev;
            }
        }
        limbs_[op.results[0]] = std::move(out[0]);
        limbs_[op.results[1]] = std::move(out[1]);
    }

    void
    lowerOutput(const PolyOp &op)
    {
        // Outputs are stored wherever their c0 lives; c1 migrates
        // there if a plain-add alias left it on another stream.
        const PolyValue &v0 = poly_->values[op.args[0]];
        const Group g = groupOf(v0.stream);
        const auto &c0 = limbsFor(op.args[0], v0.stream);
        const auto &c1 = limbsFor(op.args[1], v0.stream);

        OutputSpec spec;
        spec.name = op.name;
        spec.level = v0.level;
        spec.scale = v0.scale;
        for (int poly = 0; poly < 2; ++poly) {
            const auto &regs = poly == 0 ? c0 : c1;
            spec.desc_idx[poly].resize(v0.level + 1);
            for (std::size_t i = 0; i <= v0.level; ++i) {
                DataDescriptor desc;
                desc.kind = DataDescriptor::Kind::Output;
                desc.name = op.name;
                desc.poly = poly;
                desc.prime = static_cast<uint32_t>(i);
                const int d = descIndex(desc);
                const uint32_t chip = chipOfLimb(g, i);
                LimbOp store;
                store.op = Opcode::Store;
                store.chip = chip;
                store.args = {regs[i]};
                store.prime = static_cast<uint32_t>(i);
                store.desc = d;
                unit_->ops.push_back(std::move(store));
                spec.desc_idx[poly][i] = d;
                if (poly == 0)
                    spec.owners.push_back(chip);
            }
        }
        unit_->outputs.push_back(std::move(spec));
    }

    const fhe::CkksContext *ctx_;
    const PolyProgram *poly_;
    CompilerConfig cfg_;
    const std::vector<int> *op_ids_;
    LimbUnit *unit_;

    /** poly value id → limb value ids (index = limb). */
    std::map<int, std::vector<int>> limbs_;
    /** (poly value id, stream) → cross-group migrated copies. */
    std::map<std::pair<int, int>, std::vector<int>> migrated_;
    /** (chip, desc index) → value holding that read-only limb. */
    std::map<std::pair<uint32_t, int>, int> load_cache_;
    std::map<std::string, int> desc_by_key_;
    /** IB batch id → cached broadcast copies of the shared input. */
    std::map<int, std::vector<std::vector<int>>> ib_cache_;
};

[[noreturn]] void
fail(const std::string &what)
{
    throw VerifyError("limb IR: " + what);
}

} // namespace

std::string
descKeyOf(const DataDescriptor &desc)
{
    std::ostringstream key;
    key << static_cast<int>(desc.kind) << ':' << desc.name << ':'
        << desc.poly << ':' << desc.prime << ':' << desc.digit << ':'
        << desc.level << ':' << desc.galois << ':' << desc.chip_digits
        << ':' << desc.group_size;
    return key.str();
}

LimbProgram
buildLimbProgram(const PolyProgram &poly, const fhe::CkksContext &ctx,
                 const CompilerConfig &cfg)
{
    const int S = poly.num_streams;
    const uint32_t g = static_cast<uint32_t>(cfg.chips / S);

    // Union streams that exchange values: any op consuming a value
    // produced under another stream couples the two chip groups.
    std::vector<int> parent(S);
    std::iota(parent.begin(), parent.end(), 0);
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](int a, int b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[std::max(a, b)] = std::min(a, b);
    };
    for (const auto &op : poly.ops) {
        if (op.dead)
            continue;
        if (op.kind == PolyOpKind::Output) {
            unite(poly.values[op.args[0]].stream,
                  poly.values[op.args[1]].stream);
            continue;
        }
        for (int a : op.args)
            unite(op.stream, poly.values[a].stream);
    }

    // Component stream intervals, widened to contiguous ranges: a
    // limb transfer between two groups traverses every chip in
    // between, so a unit must own the whole range.
    std::vector<std::array<int, 2>> iv(S, {S, -1});
    for (int s = 0; s < S; ++s) {
        const int r = find(s);
        iv[r][0] = std::min(iv[r][0], s);
        iv[r][1] = std::max(iv[r][1], s);
    }
    std::vector<std::array<int, 2>> intervals;
    for (int s = 0; s < S; ++s) {
        if (find(s) == s)
            intervals.push_back(iv[s]);
    }
    std::sort(intervals.begin(), intervals.end());
    std::vector<std::array<int, 2>> merged;
    for (const auto &i : intervals) {
        if (!merged.empty() && i[0] <= merged.back()[1])
            merged.back()[1] = std::max(merged.back()[1], i[1]);
        else
            merged.push_back(i);
    }

    LimbProgram limb;
    limb.chips = cfg.chips;
    std::vector<int> unit_of_stream(S, -1);
    for (const auto &m : merged) {
        LimbUnit unit;
        unit.stream_lo = m[0];
        unit.stream_hi = m[1] + 1;
        unit.chip_lo = static_cast<uint32_t>(m[0]) * g;
        unit.chip_hi = static_cast<uint32_t>(m[1] + 1) * g;
        const int idx = static_cast<int>(limb.units.size());
        for (int s = m[0]; s <= m[1]; ++s)
            unit_of_stream[s] = idx;
        limb.units.push_back(std::move(unit));
    }

    // Assign poly ops to units (program order preserved per unit).
    std::vector<std::vector<int>> op_ids(limb.units.size());
    for (const auto &op : poly.ops) {
        if (op.dead)
            continue;
        const int stream = op.kind == PolyOpKind::Output
                               ? poly.values[op.args[0]].stream
                               : op.stream;
        op_ids[unit_of_stream[stream]].push_back(op.id);
    }

    // Units share no chips and no values — lower them concurrently.
    // The per-unit output is identical for any worker count; only
    // wall time changes.
    parallelFor(limb.units.size(), cfg.compile_workers,
                [&](std::size_t i) {
                    UnitLowerer(ctx, poly, cfg, op_ids[i],
                                limb.units[i])
                        .run();
                });
    return limb;
}

std::string
printLimbProgram(const LimbProgram &limb)
{
    std::ostringstream os;
    os << "limb IR: " << limb.totalOps() << " ops, "
       << limb.units.size() << " unit(s), " << limb.chips
       << " chip(s)\n";
    for (std::size_t u = 0; u < limb.units.size(); ++u) {
        const LimbUnit &unit = limb.units[u];
        os << " unit " << u << ": streams [" << unit.stream_lo << ", "
           << unit.stream_hi << ") chips [" << unit.chip_lo << ", "
           << unit.chip_hi << ") ops=" << unit.ops.size()
           << " values=" << unit.values.size()
           << " bcast=" << unit.comm.broadcast_limbs
           << " agg=" << unit.comm.aggregation_limbs << "\n";
        for (std::size_t i = 0; i < unit.ops.size(); ++i) {
            const LimbOp &op = unit.ops[i];
            os << "  #" << i << " ";
            if (op.collective())
                os << "chips[" << op.part_lo << "," << op.part_hi
                   << ") ";
            else
                os << "c" << op.chip << " ";
            os << isa::opcodeName(op.op);
            if (op.result >= 0)
                os << " %" << op.result;
            for (int a : op.args)
                os << " %" << a;
            os << " q" << op.prime;
            if (op.imm)
                os << " imm=" << op.imm;
            if (op.desc >= 0)
                os << " @" << unit.desc_keys[op.desc];
            os << "\n";
        }
    }
    return os.str();
}

void
verifyLimbProgram(const LimbProgram &limb)
{
    auto str = [](auto v) { return std::to_string(v); };
    for (std::size_t u = 0; u < limb.units.size(); ++u) {
        const LimbUnit &unit = limb.units[u];
        const std::string where = "unit " + str(u) + ": ";
        if (unit.chip_hi > limb.chips || unit.chip_lo >= unit.chip_hi)
            fail(where + "chip range invalid");
        for (const auto &v : unit.values) {
            if (v.chip < unit.chip_lo || v.chip >= unit.chip_hi)
                fail(where + "value %" + str(v.id) + " placed on chip " +
                     str(v.chip) + " outside the unit");
        }

        std::vector<char> defined(unit.values.size(), 0);
        auto use = [&](int v, std::size_t i) -> const LimbValue & {
            if (v < 0 || v >= static_cast<int>(unit.values.size()))
                fail(where + "op #" + str(i) + " references value %" +
                     str(v) + " out of range");
            if (!defined[v])
                fail(where + "op #" + str(i) + " uses %" + str(v) +
                     " before its definition");
            return unit.values[v];
        };
        auto define = [&](int v, std::size_t i, uint32_t chip,
                          uint32_t prime) {
            if (v < 0 || v >= static_cast<int>(unit.values.size()))
                fail(where + "op #" + str(i) + " defines value %" +
                     str(v) + " out of range");
            if (defined[v])
                fail(where + "value %" + str(v) +
                     " defined more than once");
            const LimbValue &val = unit.values[v];
            if (val.chip != chip)
                fail(where + "op #" + str(i) + " defines %" + str(v) +
                     " on chip " + str(chip) + " but the value lives on "
                     + str(val.chip));
            if (val.prime != prime)
                fail(where + "op #" + str(i) + " defines %" + str(v) +
                     " under the wrong prime");
            defined[v] = 1;
        };

        for (std::size_t i = 0; i < unit.ops.size(); ++i) {
            const LimbOp &op = unit.ops[i];
            if (op.collective()) {
                // Collective group scoping: participants must be a
                // sub-range of the unit's chips, and every
                // per-participant value must live on its chip.
                if (op.part_lo < unit.chip_lo ||
                    op.part_hi > unit.chip_hi)
                    fail(where + "op #" + str(i) +
                         " collective spans chips [" + str(op.part_lo) +
                         ", " + str(op.part_hi) +
                         ") outside the unit's group");
                if (op.imm < op.part_lo || op.imm >= op.part_hi)
                    fail(where + "op #" + str(i) +
                         " collective owner outside participants");
                const std::size_t n = op.part_hi - op.part_lo;
                if (op.op == Opcode::Bcast) {
                    if (op.args.size() != 1 || op.coll_dsts.size() != n)
                        fail(where + "op #" + str(i) +
                             " broadcast malformed");
                    const LimbValue &src = use(op.args[0], i);
                    if (src.chip != op.imm)
                        fail(where + "op #" + str(i) +
                             " broadcast source not on the owner chip");
                    if (src.prime != op.prime)
                        fail(where + "op #" + str(i) +
                             " broadcast source prime mismatch");
                    for (std::size_t j = 0; j < n; ++j) {
                        if (op.coll_dsts[j] < 0)
                            continue;
                        define(op.coll_dsts[j], i,
                               op.part_lo + static_cast<uint32_t>(j),
                               op.prime);
                    }
                } else if (op.op == Opcode::Agg) {
                    if (op.coll_srcs.size() != n || op.result < 0)
                        fail(where + "op #" + str(i) +
                             " aggregation malformed");
                    for (std::size_t j = 0; j < n; ++j) {
                        const LimbValue &src = use(op.coll_srcs[j], i);
                        if (src.chip !=
                            op.part_lo + static_cast<uint32_t>(j))
                            fail(where + "op #" + str(i) +
                                 " aggregation source on wrong chip");
                        if (src.prime != op.prime)
                            fail(where + "op #" + str(i) +
                                 " aggregation source prime mismatch");
                    }
                    define(op.result, i,
                           static_cast<uint32_t>(op.imm), op.prime);
                } else {
                    fail(where + "op #" + str(i) +
                         " non-collective opcode with participants");
                }
                continue;
            }

            if (op.chip < unit.chip_lo || op.chip >= unit.chip_hi)
                fail(where + "op #" + str(i) + " runs on chip " +
                     str(op.chip) + " outside the unit");
            // Operand placement + prime discipline per opcode.
            if (op.op == Opcode::BConv) {
                if (op.args.size() != op.aux.size())
                    fail(where + "op #" + str(i) +
                         " base conversion arity mismatch");
                for (std::size_t k = 0; k < op.args.size(); ++k) {
                    const LimbValue &a = use(op.args[k], i);
                    if (a.chip != op.chip)
                        fail(where + "op #" + str(i) +
                             " operand on wrong chip");
                    if (a.prime != op.aux[k])
                        fail(where + "op #" + str(i) +
                             " base-conversion source prime mismatch");
                }
            } else if (op.op == Opcode::Mod) {
                if (op.args.size() != 1 || op.aux.size() != 1)
                    fail(where + "op #" + str(i) + " mod malformed");
                const LimbValue &a = use(op.args[0], i);
                if (a.chip != op.chip || a.prime != op.aux[0])
                    fail(where + "op #" + str(i) +
                         " mod source mismatch");
            } else {
                for (int arg : op.args) {
                    const LimbValue &a = use(arg, i);
                    if (a.chip != op.chip)
                        fail(where + "op #" + str(i) +
                             " operand on wrong chip");
                    if (a.prime != op.prime)
                        fail(where + "op #" + str(i) +
                             " operand prime mismatch");
                }
            }
            if (op.op == Opcode::Store || op.op == Opcode::Load) {
                if (op.desc < 0 ||
                    op.desc >= static_cast<int>(unit.descs.size()))
                    fail(where + "op #" + str(i) +
                         " descriptor out of range");
            }
            if (op.result >= 0)
                define(op.result, i, op.chip, op.prime);
        }

        for (const auto &spec : unit.outputs) {
            if (spec.owners.size() != spec.level + 1)
                fail(where + "output '" + spec.name +
                     "' owner list malformed");
            for (int poly = 0; poly < 2; ++poly) {
                if (spec.desc_idx[poly].size() != spec.level + 1)
                    fail(where + "output '" + spec.name +
                         "' descriptor list malformed");
                for (int d : spec.desc_idx[poly]) {
                    if (d < 0 ||
                        d >= static_cast<int>(unit.descs.size()))
                        fail(where + "output '" + spec.name +
                             "' descriptor out of range");
                }
            }
        }
    }
}

} // namespace cinnamon::compiler
