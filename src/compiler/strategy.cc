#include "compiler/strategy.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cinnamon::compiler {

namespace {

KsPassOptions
ksOptions(bool batching, bool output_aggregation, KsAlgo algo)
{
    KsPassOptions ks;
    ks.enable_batching = batching;
    ks.enable_output_aggregation = output_aggregation;
    ks.default_algo = algo;
    return ks;
}

} // namespace

StrategyRegistry::StrategyRegistry()
{
    // The Figure 13 ladder, bottom rung first. The ks option bytes of
    // each rung are exactly what the benches used to hand-build, so
    // rung outputs are byte-identical across the refactor.
    add({"sequential", "Sequential",
         "single-chip baseline: no parallel keyswitching at all",
         ksOptions(false, true, KsAlgo::InputBroadcast),
         /*streams=*/1, /*sequential=*/true, /*fig13_rung=*/0});
    add({"cifher", "CiFHER",
         "CiFHER-style limb-parallel decomposition, no batching pass",
         ksOptions(false, true, KsAlgo::Cifher),
         /*streams=*/1, /*sequential=*/false, /*fig13_rung=*/1});
    add({"input-broadcast", "Input Broadcast",
         "input-broadcast keyswitching, no batching pass",
         ksOptions(false, true, KsAlgo::InputBroadcast),
         /*streams=*/1, /*sequential=*/false, /*fig13_rung=*/2});
    add({"ib-pass", "Input Broadcast + Pass",
         "input-broadcast keyswitching with hoisted-broadcast "
         "batching",
         ksOptions(true, false, KsAlgo::InputBroadcast),
         /*streams=*/1, /*sequential=*/false, /*fig13_rung=*/3});
    add({"cinnamon-ks", "Cinnamon Keyswitch + Pass",
         "full Cinnamon pass: IB hoisting + output-aggregation trees",
         ksOptions(true, true, KsAlgo::InputBroadcast),
         /*streams=*/1, /*sequential=*/false, /*fig13_rung=*/4});
    add({"cinnamon-ks-pp", "+ Program Parallelism",
         "Cinnamon keyswitch pass plus two program-level streams",
         ksOptions(true, true, KsAlgo::InputBroadcast),
         /*streams=*/2, /*sequential=*/false, /*fig13_rung=*/5});
    // Off-ladder: Section 7.4's empirical point — the CiFHER
    // decomposition *with* the batching pass enabled.
    add({"cifher-pass", "CiFHER + Pass",
         "CiFHER decomposition with the Cinnamon batching pass",
         ksOptions(true, true, KsAlgo::Cifher),
         /*streams=*/1, /*sequential=*/false, /*fig13_rung=*/-1});
}

StrategyRegistry &
StrategyRegistry::global()
{
    static StrategyRegistry registry;
    return registry;
}

const CompileStrategy *
StrategyRegistry::find(const std::string &name) const
{
    for (const auto &s : entries_)
        if (s.name == name)
            return &s;
    return nullptr;
}

const CompileStrategy &
StrategyRegistry::at(const std::string &name) const
{
    if (const CompileStrategy *s = find(name))
        return *s;
    std::ostringstream os;
    os << "unknown compile strategy '" << name << "'; valid:";
    for (const auto &s : entries_)
        os << " " << s.name;
    throw std::invalid_argument(os.str());
}

std::vector<std::string>
StrategyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &s : entries_)
        out.push_back(s.name);
    return out;
}

std::vector<CompileStrategy>
StrategyRegistry::fig13Ladder() const
{
    std::vector<CompileStrategy> ladder;
    for (const auto &s : entries_)
        if (s.fig13_rung >= 0)
            ladder.push_back(s);
    std::sort(ladder.begin(), ladder.end(),
              [](const CompileStrategy &a, const CompileStrategy &b) {
                  return a.fig13_rung < b.fig13_rung;
              });
    return ladder;
}

void
StrategyRegistry::add(CompileStrategy strategy)
{
    if (strategy.name.empty())
        throw std::invalid_argument(
            "strategy name must be non-empty");
    if (find(strategy.name) != nullptr)
        throw std::invalid_argument("duplicate compile strategy '" +
                                    strategy.name + "'");
    entries_.push_back(std::move(strategy));
}

} // namespace cinnamon::compiler
