/**
 * @file
 * The limb IR (Section 4.3) — the second materialized stage of the
 * pass pipeline, between the placement-free polynomial IR and the
 * Cinnamon ISA.
 *
 * Every polynomial op is expanded limb-by-limb under the modular
 * limb-to-chip placement: limb i of a stream-s polynomial lives on
 * chip s*g + (i mod g) with g = chips/num_streams. Values are SSA and
 * *placed*: each LimbValue names one limb residing on one chip.
 * Inter-chip communication is explicit — Bcast/Agg ops carry their
 * participant range and per-participant value lists, so the verifier
 * can check collective group scoping before any ISA exists.
 *
 * The program is partitioned into LimbUnits: the connected components
 * of the streams-that-communicate graph, widened to contiguous stream
 * ranges (a limb transfer between groups traverses every chip in
 * between). Units share no chips and no values, which is what makes
 * them independently — and concurrently — lowerable; the ISA pass
 * walks them in stream order so serial and parallel compilation
 * produce identical output.
 *
 * Descriptors (inputs, plaintexts, evaluation keys, outputs) are
 * referenced by per-unit index plus a canonical key string; the ISA
 * pass dedups keys globally into memory addresses.
 */

#ifndef CINNAMON_COMPILER_LIMB_IR_H_
#define CINNAMON_COMPILER_LIMB_IR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiled.h"
#include "compiler/poly_ir.h"
#include "isa/isa.h"

namespace cinnamon::compiler {

/** One limb (one prime's residue vector) resident on one chip. */
struct LimbValue
{
    int id = -1;
    uint32_t chip = 0;
    uint32_t prime = 0;
};

/**
 * One placed limb operation. Non-collective ops execute on `chip` and
 * define `result` from `args`. Collective ops (part_hi > part_lo) are
 * executed by every chip in [part_lo, part_hi):
 *
 *  - Bcast: `args[0]` is the source limb on chip `imm` (the owner);
 *    coll_dsts[c - part_lo] is the value received on chip c, or -1
 *    for pass-through participants (point-to-point transfers).
 *  - Agg: coll_srcs[c - part_lo] is chip c's addend; `result` is the
 *    sum, landing on the owner `imm` only.
 */
struct LimbOp
{
    isa::Opcode op = isa::Opcode::Nop;
    uint32_t chip = 0;
    int result = -1;
    std::vector<int> args;
    uint32_t prime = 0;
    uint64_t imm = 0;          ///< scalar / Galois element / owner chip
    std::vector<uint32_t> aux; ///< BConv source basis / Mod source prime
    int desc = -1;             ///< Load/Store: unit descriptor index

    uint32_t part_lo = 0; ///< collective participants [part_lo,
    uint32_t part_hi = 0; ///< part_hi); part_hi == 0 ⇒ not collective
    std::vector<int> coll_dsts;
    std::vector<int> coll_srcs;

    bool collective() const { return part_hi > part_lo; }
};

/** A program output, pending global address assignment. */
struct OutputSpec
{
    std::string name;
    std::size_t level = 0;
    double scale = 0.0;
    /** desc_idx[poly][limb] — unit descriptor index of each limb. */
    std::array<std::vector<int>, 2> desc_idx;
    std::vector<uint32_t> owners; ///< owner chip of each limb
};

/** One independently lowerable slice of the program. */
struct LimbUnit
{
    int stream_lo = 0; ///< streams [stream_lo, stream_hi)
    int stream_hi = 0;
    uint32_t chip_lo = 0; ///< chips [chip_lo, chip_hi) — disjoint
    uint32_t chip_hi = 0; ///< across units
    std::vector<LimbOp> ops;
    std::vector<LimbValue> values;
    std::vector<DataDescriptor> descs;
    std::vector<std::string> desc_keys; ///< canonical key per desc
    std::vector<OutputSpec> outputs;
    CommSummary comm;

    int
    newValue(uint32_t chip, uint32_t prime)
    {
        LimbValue v;
        v.id = static_cast<int>(values.size());
        v.chip = chip;
        v.prime = prime;
        values.push_back(v);
        return v.id;
    }
};

/** The limb IR of one program. */
struct LimbProgram
{
    std::size_t chips = 0;
    std::vector<LimbUnit> units; ///< sorted by stream_lo

    std::size_t
    totalOps() const
    {
        std::size_t n = 0;
        for (const auto &u : units)
            n += u.ops.size();
        return n;
    }
};

/** Canonical descriptor key (the ISA pass's address-dedup key). */
std::string descKeyOf(const DataDescriptor &desc);

/**
 * Lower an annotated poly program to placed limb ops (pass
 * "lower-limb"). Units lower concurrently on
 * `cfg.compile_workers` threads; the result is identical for any
 * worker count.
 */
LimbProgram buildLimbProgram(const PolyProgram &poly,
                             const fhe::CkksContext &ctx,
                             const CompilerConfig &cfg);

/** Human-readable listing (--dump-ir=limb). */
std::string printLimbProgram(const LimbProgram &limb);

/**
 * Inter-pass verifier: SSA well-formedness, placement consistency
 * (an op's operands live on the chips that use them), and collective
 * group scoping (participant ranges inside the owning unit's chips,
 * per-participant values on the right chips). Throws VerifyError.
 */
void verifyLimbProgram(const LimbProgram &limb);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_LIMB_IR_H_
