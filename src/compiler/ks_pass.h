/**
 * @file
 * The Cinnamon keyswitch pass (Section 4.3.1, "Cinnamon Keyswitch
 * Pass").
 *
 * The pass scans the ciphertext dataflow graph for the two program
 * patterns whose keyswitch communication can be batched:
 *
 *  pattern 1 — several rotations of the same ciphertext: use
 *      input-broadcast keyswitching and hoist the broadcast, so the
 *      whole batch costs ONE broadcast;
 *  pattern 2 — several rotations whose results are only combined by
 *      an addition tree: use output-aggregation keyswitching and
 *      batch the collectives, so the whole tree costs TWO
 *      aggregations.
 *
 * Every other keyswitch defaults to the configured standalone
 * algorithm. Disabling batching and/or forcing the CiFHER algorithm
 * reproduces the ablation rungs of Figure 13.
 */

#ifndef CINNAMON_COMPILER_KS_PASS_H_
#define CINNAMON_COMPILER_KS_PASS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "compiler/dsl.h"

namespace cinnamon::compiler {

/** Which parallel keyswitching algorithm an op uses. */
enum class KsAlgo {
    InputBroadcast,
    OutputAggregation,
    Cifher,
};

/** Per-op annotation produced by the pass. */
struct KsAnnotation
{
    KsAlgo algo = KsAlgo::InputBroadcast;
    int batch = -1; ///< batch id (-1: unbatched)
};

/** One output-aggregation batch: rotations plus their addition tree. */
struct OaBatch
{
    int id = -1;
    std::vector<int> rotations; ///< member Rotate op ids
    std::vector<int> extras;    ///< non-rotation leaves added after
                                ///  the batched aggregation
    std::set<int> tree_adds;    ///< Add ops folded into the batch
    int root = -1;              ///< the Add op producing the sum
};

/** One input-broadcast batch: rotations sharing a hoisted broadcast. */
struct IbBatch
{
    int id = -1;
    int input = -1;             ///< the shared input op id
    std::vector<int> rotations; ///< member Rotate/Conjugate op ids
};

struct KsPassOptions
{
    bool enable_batching = true;             ///< hoist/batch collectives
    bool enable_output_aggregation = true;   ///< allow pattern 2
    KsAlgo default_algo = KsAlgo::InputBroadcast;
};

/**
 * Serialization of *every* KsPassOptions field, for use in cache
 * keys: two configurations map to the same string iff they compile
 * identically, so cached programs/results can never alias across
 * distinct configurations. Extend this when adding fields.
 */
std::string cacheKeyOf(const KsPassOptions &options);

/** The pass result: annotations plus the discovered batches. */
struct KsPassResult
{
    std::map<int, KsAnnotation> annotations; ///< keyed by op id
    std::vector<IbBatch> ib_batches;
    std::vector<OaBatch> oa_batches;

    const KsAnnotation &
    of(int op_id) const
    {
        static const KsAnnotation kDefault{};
        auto it = annotations.find(op_id);
        return it == annotations.end() ? kDefault : it->second;
    }
};

/** Run the keyswitch pass over a program. */
KsPassResult runKeyswitchPass(const Program &program,
                              const KsPassOptions &options = {});

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_KS_PASS_H_
