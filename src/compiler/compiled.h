/**
 * @file
 * Compiled-program containers shared by the lowering, the runtime and
 * the cycle simulator.
 *
 * A CompiledProgram couples the multi-chip ISA streams with a data
 * layout: every Load/Store address maps to a DataDescriptor telling
 * the runtime what to materialize there (an input ciphertext limb, an
 * encoded plaintext limb, an evaluation-key limb) or where to collect
 * results from.
 */

#ifndef CINNAMON_COMPILER_COMPILED_H_
#define CINNAMON_COMPILER_COMPILED_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/ks_pass.h"
#include "compiler/regalloc.h"
#include "isa/isa.h"
#include "rns/context.h"

namespace cinnamon::compiler {

/** What lives behind one memory address. */
struct DataDescriptor
{
    enum class Kind { InputCt, Plain, EvalKey, Output };

    Kind kind = Kind::InputCt;
    std::string name;      ///< input/plain/output name; "relin" or
                           ///  "galois:<g>" for keys
    int poly = 0;          ///< ciphertext/key polynomial index (0/1)
    uint32_t prime = 0;    ///< prime index of the limb
    std::size_t digit = 0; ///< evaluation-key digit index
    std::size_t level = 0; ///< plaintext encode level
    double scale = 0.0;    ///< plaintext encode scale
    uint64_t galois = 0;   ///< Galois element for rotation keys
    bool chip_digits = false; ///< key digits = per-chip partition
    uint32_t group_size = 0;  ///< group size for chip-digit keys
};

/** Where a program output lives after execution. */
struct OutputInfo
{
    std::size_t level = 0;
    double scale = 0.0;
    /** addrs[poly][limb] — address of each limb, on its owner chip. */
    std::array<std::vector<uint64_t>, 2> addrs;
    /** owner chip of each limb. */
    std::vector<uint32_t> owners;
};

/** Aggregate communication emitted by the compiler. */
struct CommSummary
{
    std::size_t broadcast_limbs = 0;
    std::size_t aggregation_limbs = 0;

    std::size_t total() const
    {
        return broadcast_limbs + aggregation_limbs;
    }
};

/** Compiler configuration. */
struct CompilerConfig
{
    std::size_t chips = 4;        ///< total chips in the machine
    int num_streams = 1;          ///< chip groups (program parallelism)
    KsPassOptions ks;             ///< keyswitch pass options
    /** Named strategy from the StrategyRegistry. When non-empty the
     *  compiler resolves it and overrides `ks` with the registry
     *  entry's options (unknown names throw); empty keeps the
     *  explicit `ks` above. Part of the cache key either way. */
    std::string strategy;
    std::size_t phys_regs = 224;  ///< register file limbs per chip
    bool allocate = true;         ///< run register allocation
    EvictionPolicy regalloc_policy = EvictionPolicy::Belady;
    /** Worker threads for limb lowering / register allocation
     *  (0 = one per hardware core). Never affects the output. */
    std::size_t compile_workers = 0;
    bool verify_ir = true; ///< run the inter-pass IR verifiers
};

/**
 * Serialization of every CompilerConfig field that affects the
 * compiled output, for use in program-cache keys: two configurations
 * map to the same string iff they compile identically. Worker count
 * and verifier toggles are deliberately excluded — they change how
 * fast (and how checked) compilation runs, never what it emits.
 * Extend this when adding fields.
 */
std::string cacheKeyOf(const CompilerConfig &config);

/** The full compiler output. */
struct CompiledProgram
{
    isa::MachineProgram machine;
    std::map<uint64_t, DataDescriptor> data;
    std::map<std::string, OutputInfo> outputs;
    CommSummary comm;
    CompilerConfig config;
    KsPassResult ks_pass;
    RegAllocStats regalloc; ///< zeroed when allocation is disabled
};

/**
 * The per-chip digit bases used by output-aggregation keyswitching on
 * a group of `group_size` chips at `level`: digit p = the prime
 * indices i ≤ level with i mod group_size == p. Shared between the
 * compiler and the runtime so key material lines up.
 */
std::vector<rns::Basis> chipDigitBases(std::size_t level,
                                       std::size_t group_size);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_COMPILED_H_
