/**
 * @file
 * Lowering from the ciphertext DSL to Cinnamon ISA streams.
 *
 * This stage realizes the paper's polynomial IR and limb IR in one
 * pass: each ciphertext op is first expanded to operations on its two
 * polynomials (polynomial IR, Section 4.2 step 2), each polynomial op
 * is then expanded limb-by-limb with modular limb-to-chip placement
 * (limb IR, Section 4.3), keyswitches are expanded according to the
 * algorithm the keyswitch pass selected — including hoisted broadcasts
 * for input-broadcast batches and deferred collective aggregation for
 * output-aggregation batches — and the result is SSA-form Cinnamon ISA
 * (Section 4.6) ready for Belady register allocation (Section 4.4).
 *
 * Streams (program-level parallelism) map to disjoint chip groups:
 * stream s runs on chips [s*g, (s+1)*g) where g = chips/num_streams.
 * All collectives are scoped to the owning group.
 */

#ifndef CINNAMON_COMPILER_LOWERING_H_
#define CINNAMON_COMPILER_LOWERING_H_

#include "compiler/compiled.h"
#include "compiler/dsl.h"
#include "fhe/params.h"

namespace cinnamon::compiler {

/** The Cinnamon compiler backend. */
class Compiler
{
  public:
    Compiler(const fhe::CkksContext &ctx, CompilerConfig config)
        : ctx_(&ctx), config_(config)
    {
    }

    /**
     * Compile a DSL program to a multi-chip ISA program.
     *
     * Runs the keyswitch pass, lowers every op, and (by default)
     * performs Belady register allocation per chip.
     */
    CompiledProgram compile(const Program &program);

  private:
    const fhe::CkksContext *ctx_;
    CompilerConfig config_;
};

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_LOWERING_H_
