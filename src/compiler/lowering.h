/**
 * @file
 * The Cinnamon compiler: a pass pipeline from the ciphertext DSL to
 * allocated multi-chip ISA streams.
 *
 * Compiler::compile is a PassManager run over materialized IRs
 * (Section 4.2):
 *
 *   expand-poly — ciphertext ops → polynomial IR (poly_ir.h),
 *                 placement-free SSA over whole RNS polynomials;
 *   keyswitch   — the keyswitch analysis (ks_pass.h) annotates every
 *                 KeySwitch with its algorithm/batch and folds
 *                 eligible rotate-and-aggregate trees into OaBatch
 *                 macro ops;
 *   lower-limb  — polynomial ops → limb IR (limb_ir.h) under the
 *                 modular limb-to-chip placement, collectives as
 *                 explicit IR nodes; independent stream units lower
 *                 concurrently;
 *   lower-isa   — placed limb ops → Cinnamon ISA (Section 4.6) with
 *                 global address assignment and collective tags;
 *   regalloc    — per-chip Belady register allocation (Section 4.4),
 *                 chips allocated concurrently.
 *
 * Streams (program-level parallelism) map to disjoint chip groups:
 * stream s runs on chips [s*g, (s+1)*g) where g = chips/num_streams.
 * All collectives are scoped to the owning group.
 *
 * Each pass books compiler.pass.<name>.{ms,ops_in,ops_out} metrics,
 * emits a trace span when a TraceRecorder is attached, and — when
 * CompilerConfig::verify_ir is set — runs an inter-pass verifier that
 * throws VerifyError on malformed IR. setDumpHandler taps the printed
 * poly/limb/isa IRs (--dump-ir in examples/compile_and_simulate).
 */

#ifndef CINNAMON_COMPILER_LOWERING_H_
#define CINNAMON_COMPILER_LOWERING_H_

#include <functional>
#include <string>

#include "common/trace.h"
#include "compiler/compiled.h"
#include "compiler/dsl.h"
#include "fhe/params.h"

namespace cinnamon::compiler {

class PassManager;
struct PassContext;

/** The Cinnamon compiler backend. */
class Compiler
{
  public:
    /** Receives (stage, printed IR); stage ∈ {"poly", "limb", "isa"}. */
    using DumpHandler =
        std::function<void(const std::string &, const std::string &)>;

    Compiler(const fhe::CkksContext &ctx, CompilerConfig config)
        : ctx_(&ctx), config_(config)
    {
    }

    /**
     * Compile a DSL program to a multi-chip ISA program by running
     * the pass pipeline described in the file comment.
     */
    CompiledProgram compile(const Program &program);

    /** Attach a trace recorder for per-pass spans (null to detach). */
    void setTrace(TraceRecorder *trace) { trace_ = trace; }

    /** Attach an IR dump tap (--dump-ir); null to detach. */
    void setDumpHandler(DumpHandler handler)
    {
        dump_ = std::move(handler);
    }

  private:
    const fhe::CkksContext *ctx_;
    CompilerConfig config_;
    TraceRecorder *trace_ = nullptr;
    DumpHandler dump_;
};

/**
 * Build the standard pipeline into `pm` (exposed for tests that run
 * or inspect individual passes).
 */
void buildCompilerPipeline(PassManager &pm);

/** Print a compiled machine program (--dump-ir=isa). */
std::string printIsaProgram(const CompiledProgram &program);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_LOWERING_H_
