#include "compiler/lowering.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "compiler/regalloc.h"

namespace cinnamon::compiler {

namespace {

using isa::Instruction;
using isa::Opcode;

/** A contiguous chip range hosting one stream. */
struct Group
{
    uint32_t lo = 0;
    uint32_t hi = 0;

    std::size_t size() const { return hi - lo; }
};

/** A lowered ciphertext value: vregs per polynomial per limb. */
struct CtVal
{
    std::size_t level = 0;
    double scale = 0.0;
    int stream = 0; ///< stream (chip group) where the limbs live
    std::array<std::vector<int>, 2> regs; ///< regs[poly][limb index]
};

/** The working state of one lowering run. */
class LowerImpl
{
  public:
    LowerImpl(const fhe::CkksContext &ctx, const Program &program,
              const CompilerConfig &config)
        : ctx_(&ctx), prog_(&program), cfg_(config)
    {
        CINN_FATAL_UNLESS(cfg_.chips >= 1, "need at least one chip");
        CINN_FATAL_UNLESS(cfg_.num_streams >= 1 &&
                              cfg_.chips % cfg_.num_streams == 0,
                          "chips must divide evenly among streams");
        code_.resize(cfg_.chips);
        nreg_.assign(cfg_.chips, 0);
    }

    CompiledProgram run();

  private:
    // ---- plumbing -------------------------------------------------
    Group
    groupOf(int stream) const
    {
        const uint32_t g =
            static_cast<uint32_t>(cfg_.chips / cfg_.num_streams);
        CINN_ASSERT(stream >= 0 && stream < cfg_.num_streams,
                    "op stream " << stream << " exceeds configured "
                                 << cfg_.num_streams << " streams");
        return Group{static_cast<uint32_t>(stream) * g,
                     static_cast<uint32_t>(stream + 1) * g};
    }

    uint32_t
    chipOfLimb(const Group &g, std::size_t limb) const
    {
        return g.lo + static_cast<uint32_t>(limb % g.size());
    }

    int
    newReg(uint32_t chip)
    {
        return nreg_[chip]++;
    }

    void
    emit(uint32_t chip, Instruction ins)
    {
        code_[chip].push_back(std::move(ins));
    }

    uint64_t
    addrFor(const DataDescriptor &desc)
    {
        std::ostringstream key;
        key << static_cast<int>(desc.kind) << ':' << desc.name << ':'
            << desc.poly << ':' << desc.prime << ':' << desc.digit << ':'
            << desc.level << ':' << desc.galois << ':' << desc.chip_digits
            << ':' << desc.group_size;
        auto it = addr_by_key_.find(key.str());
        if (it != addr_by_key_.end())
            return it->second;
        const uint64_t addr = next_addr_++;
        addr_by_key_.emplace(key.str(), addr);
        data_.emplace(addr, desc);
        return addr;
    }

    // ---- scalar precomputation ------------------------------------
    /** (D/d_i)^{-1} mod d_i for a digit basis D. */
    uint64_t
    digitShatInv(const rns::Basis &digit, std::size_t i) const
    {
        const rns::Modulus &di = ctx_->rns().modulus(digit[i]);
        uint64_t prod = 1;
        for (std::size_t k = 0; k < digit.size(); ++k) {
            if (k != i)
                prod = di.mul(prod,
                              ctx_->rns().modulus(digit[k]).value() %
                                  di.value());
        }
        return di.inv(prod);
    }

    /** P^{-1} mod q_i with P = product of the special primes. */
    uint64_t
    specialProdInv(uint32_t prime) const
    {
        const rns::Modulus &qi = ctx_->rns().modulus(prime);
        uint64_t p = 1;
        for (uint32_t s : ctx_->specialBasis())
            p = qi.mul(p, ctx_->rns().modulus(s).value() % qi.value());
        return qi.inv(p);
    }

    // ---- collective emission --------------------------------------
    /** Broadcast one limb (vreg on `owner`) to every chip in `g`. */
    std::vector<int>
    emitBcast(const Group &g, uint32_t owner, int src_reg, uint32_t prime)
    {
        const uint64_t tag = next_tag_++;
        std::vector<int> dsts(cfg_.chips, -1);
        for (uint32_t c = g.lo; c < g.hi; ++c) {
            Instruction ins;
            ins.op = Opcode::Bcast;
            ins.dst = newReg(c);
            if (c == owner)
                ins.srcs = {src_reg};
            ins.prime = prime;
            ins.imm = owner;
            ins.tag = tag;
            ins.part_lo = g.lo;
            ins.part_hi = g.hi;
            dsts[c] = ins.dst;
            emit(c, std::move(ins));
        }
        ++comm_.broadcast_limbs;
        return dsts;
    }

    /** Aggregate per-chip partials; result lands on `owner` only. */
    int
    emitAgg(const Group &g, uint32_t owner,
            const std::vector<int> &srcs_per_chip, uint32_t prime)
    {
        const uint64_t tag = next_tag_++;
        int result = -1;
        for (uint32_t c = g.lo; c < g.hi; ++c) {
            Instruction ins;
            ins.op = Opcode::Agg;
            ins.srcs = {srcs_per_chip[c]};
            if (c == owner) {
                ins.dst = newReg(c);
                result = ins.dst;
            }
            ins.prime = prime;
            ins.tag = tag;
            ins.part_lo = g.lo;
            ins.part_hi = g.hi;
            emit(c, std::move(ins));
        }
        ++comm_.aggregation_limbs;
        return result;
    }

    // ---- small emission helpers -----------------------------------
    int
    emitUnary(uint32_t chip, Opcode op, int src, uint32_t prime,
              uint64_t imm = 0)
    {
        Instruction ins;
        ins.op = op;
        ins.dst = newReg(chip);
        ins.srcs = {src};
        ins.prime = prime;
        ins.imm = imm;
        const int dst = ins.dst;
        emit(chip, std::move(ins));
        return dst;
    }

    int
    emitBinary(uint32_t chip, Opcode op, int a, int b, uint32_t prime)
    {
        Instruction ins;
        ins.op = op;
        ins.dst = newReg(chip);
        ins.srcs = {a, b};
        ins.prime = prime;
        const int dst = ins.dst;
        emit(chip, std::move(ins));
        return dst;
    }

    int
    emitLoad(uint32_t chip, const DataDescriptor &desc)
    {
        // Load CSE: repeated uses of the same read-only limb (inputs,
        // plaintexts, evaluation keys) share one virtual register.
        // Belady then decides whether the value stays resident; if it
        // is evicted, the allocator rematerializes it from this
        // address instead of spilling. This is what makes on-chip
        // capacity matter for workloads that reuse metadata
        // (Figure 6: parallel bootstraps sharing plaintext matrices
        // and evaluation keys).
        const uint64_t addr = addrFor(desc);
        auto key = std::make_pair(chip, addr);
        auto it = load_cache_.find(key);
        if (it != load_cache_.end())
            return it->second;
        Instruction ins;
        ins.op = Opcode::Load;
        ins.dst = newReg(chip);
        ins.prime = desc.prime;
        ins.imm = addr;
        const int dst = ins.dst;
        emit(chip, std::move(ins));
        load_cache_.emplace(key, dst);
        return dst;
    }

    /**
     * Fetch an operand's lowered value, migrating it to `stream`'s
     * chip group first if it was produced by a different stream
     * (a point-to-point limb transfer per limb).
     */
    const CtVal &valFor(int arg_id, int stream);

    /** Move one limb from chip `from` to chip `to` (no-op if equal). */
    int emitTransfer(uint32_t from, uint32_t to, int src_reg,
                     uint32_t prime);

    // ---- op lowering ----------------------------------------------
    void lowerInput(const CtOp &op);
    void lowerOutput(const CtOp &op);
    void lowerElementwise(const CtOp &op);
    void lowerPlain(const CtOp &op);
    void lowerRescale(const CtOp &op);
    void lowerMul(const CtOp &op);
    void lowerRotation(const CtOp &op);
    void lowerOaBatchAtRoot(const CtOp &root, const OaBatch &batch);

    /**
     * Broadcast all limbs of one polynomial (Eval domain, distributed)
     * so every chip in the group holds coefficient-domain copies.
     * @return bc[chip][limb] vregs (valid for chips in the group).
     */
    std::vector<std::vector<int>>
    broadcastPolyCoeff(const Group &g, const std::vector<int> &limb_regs,
                       std::size_t level);

    /**
     * The per-chip keyswitch compute shared by input-broadcast and
     * CiFHER lowering: digits, mod-up, evalkey MACs, mod-down.
     *
     * @param bc broadcast coefficient-domain copies (all limbs).
     * @param galois automorphism applied on-chip before the digit
     *        decomposition (1 = none).
     * @param cifher if true, extension limbs are partitioned and the
     *        mod-down requires two extra broadcast rounds.
     * @return distributed result regs (Eval domain) per poly.
     */
    std::array<std::vector<int>, 2>
    lowerKsCompute(const Group &g,
                   const std::vector<std::vector<int>> &bc,
                   std::size_t level, const std::string &key,
                   uint64_t galois, bool cifher);

    const fhe::CkksContext *ctx_;
    const Program *prog_;
    CompilerConfig cfg_;
    KsPassResult pass_;

    std::vector<std::vector<Instruction>> code_;
    std::vector<int> nreg_;
    uint64_t next_tag_ = 1;
    uint64_t next_addr_ = 1;
    std::map<std::string, uint64_t> addr_by_key_;
    std::map<uint64_t, DataDescriptor> data_;
    std::map<std::string, OutputInfo> outputs_;
    std::map<int, CtVal> vals_;
    /** (chip, address) → vreg holding that read-only limb. */
    std::map<std::pair<uint32_t, uint64_t>, int> load_cache_;
    /** (op, stream) → cross-group migrated copies. */
    std::map<std::pair<int, int>, CtVal> migrated_;
    /** IB batch id → cached broadcast copies of the shared input. */
    std::map<int, std::vector<std::vector<int>>> ib_cache_;
    /** OA batches indexed by their root op. */
    std::map<int, const OaBatch *> oa_by_root_;
    std::set<int> oa_members_; ///< ops folded into an OA batch
    CommSummary comm_;
};

int
LowerImpl::emitTransfer(uint32_t from, uint32_t to, int src_reg,
                        uint32_t prime)
{
    if (from == to)
        return src_reg;
    const uint64_t tag = next_tag_++;
    const uint32_t lo = std::min(from, to);
    const uint32_t hi = std::max(from, to) + 1;
    int result = -1;
    for (uint32_t c = lo; c < hi; ++c) {
        Instruction ins;
        ins.op = Opcode::Bcast;
        if (c == to) {
            ins.dst = newReg(c);
            result = ins.dst;
        }
        if (c == from)
            ins.srcs = {src_reg};
        ins.prime = prime;
        ins.imm = from;
        ins.tag = tag;
        ins.part_lo = lo;
        ins.part_hi = hi;
        emit(c, std::move(ins));
    }
    ++comm_.broadcast_limbs;
    return result;
}

const CtVal &
LowerImpl::valFor(int arg_id, int stream)
{
    const CtVal &v = vals_.at(arg_id);
    if (v.stream == stream)
        return v;
    // Cross-stream join: move every limb to the consuming group.
    const auto key = std::make_pair(arg_id, stream);
    auto it = migrated_.find(key);
    if (it != migrated_.end())
        return it->second;
    const Group gf = groupOf(v.stream);
    const Group gt = groupOf(stream);
    CtVal out;
    out.level = v.level;
    out.scale = v.scale;
    out.stream = stream;
    for (int poly = 0; poly < 2; ++poly) {
        out.regs[poly].resize(v.level + 1);
        for (std::size_t i = 0; i <= v.level; ++i) {
            out.regs[poly][i] =
                emitTransfer(chipOfLimb(gf, i), chipOfLimb(gt, i),
                             v.regs[poly][i], static_cast<uint32_t>(i));
        }
    }
    return migrated_.emplace(key, std::move(out)).first->second;
}

void
LowerImpl::lowerInput(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    CtVal val;
    val.level = op.level;
    val.scale = op.scale;
    val.stream = op.stream;
    for (int poly = 0; poly < 2; ++poly) {
        val.regs[poly].resize(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            DataDescriptor desc;
            desc.kind = DataDescriptor::Kind::InputCt;
            desc.name = op.name;
            desc.poly = poly;
            desc.prime = static_cast<uint32_t>(i);
            val.regs[poly][i] = emitLoad(chipOfLimb(g, i), desc);
        }
    }
    vals_[op.id] = std::move(val);
}

void
LowerImpl::lowerOutput(const CtOp &op)
{
    // Outputs are stored wherever their value lives; no migration.
    const CtVal &a = vals_.at(op.args[0]);
    const Group g = groupOf(a.stream);
    OutputInfo info;
    info.level = a.level;
    info.scale = a.scale;
    for (int poly = 0; poly < 2; ++poly) {
        info.addrs[poly].resize(a.level + 1);
        for (std::size_t i = 0; i <= a.level; ++i) {
            DataDescriptor desc;
            desc.kind = DataDescriptor::Kind::Output;
            desc.name = op.name;
            desc.poly = poly;
            desc.prime = static_cast<uint32_t>(i);
            const uint64_t addr = addrFor(desc);
            const uint32_t chip = chipOfLimb(g, i);
            Instruction ins;
            ins.op = Opcode::Store;
            ins.srcs = {a.regs[poly][i]};
            ins.prime = static_cast<uint32_t>(i);
            ins.imm = addr;
            emit(chip, std::move(ins));
            info.addrs[poly][i] = addr;
            if (poly == 0)
                info.owners.push_back(chip);
        }
    }
    outputs_[op.name] = std::move(info);
}

void
LowerImpl::lowerElementwise(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    const CtVal &a = valFor(op.args[0], op.stream);
    const CtVal &b = valFor(op.args[1], op.stream);
    const Opcode opc = op.kind == CtOpKind::Add ? Opcode::Add
                                                : Opcode::Sub;
    CtVal out;
    out.level = op.level;
    out.scale = op.scale;
    out.stream = op.stream;
    for (int poly = 0; poly < 2; ++poly) {
        out.regs[poly].resize(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            out.regs[poly][i] =
                emitBinary(chipOfLimb(g, i), opc, a.regs[poly][i],
                           b.regs[poly][i], static_cast<uint32_t>(i));
        }
    }
    vals_[op.id] = std::move(out);
}

void
LowerImpl::lowerPlain(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    const CtVal &a = valFor(op.args[0], op.stream);
    const bool is_mul = op.kind == CtOpKind::MulPlain;
    CtVal out;
    out.level = op.level;
    out.scale = op.scale;
    out.stream = op.stream;
    for (int poly = 0; poly < 2; ++poly) {
        out.regs[poly].resize(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            const uint32_t chip = chipOfLimb(g, i);
            if (!is_mul && poly == 1) {
                // addPlain only touches c0.
                out.regs[poly][i] = a.regs[poly][i];
                continue;
            }
            DataDescriptor desc;
            desc.kind = DataDescriptor::Kind::Plain;
            desc.name = op.name;
            desc.prime = static_cast<uint32_t>(i);
            desc.level = op.level;
            desc.scale = ctx_->params().scale;
            const int p = emitLoad(chip, desc);
            out.regs[poly][i] = emitBinary(
                chip, is_mul ? Opcode::Mul : Opcode::Add,
                a.regs[poly][i], p, static_cast<uint32_t>(i));
        }
    }
    vals_[op.id] = std::move(out);
}

void
LowerImpl::lowerRescale(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    const CtVal &a = valFor(op.args[0], op.stream);
    const std::size_t last = a.level;
    const uint32_t last_owner = chipOfLimb(g, last);
    const uint64_t q_last = ctx_->q(last);

    CtVal out;
    out.level = op.level;
    out.scale = op.scale;
    out.stream = op.stream;
    for (int poly = 0; poly < 2; ++poly) {
        // INTT the dropped limb and broadcast it to the group.
        const int last_coeff =
            emitUnary(last_owner, Opcode::Intt, a.regs[poly][last],
                      static_cast<uint32_t>(last));
        auto copies = emitBcast(g, last_owner, last_coeff,
                                static_cast<uint32_t>(last));

        out.regs[poly].resize(op.level + 1);
        for (std::size_t i = 0; i <= op.level; ++i) {
            const uint32_t chip = chipOfLimb(g, i);
            const uint32_t prime = static_cast<uint32_t>(i);
            const rns::Modulus &qi = ctx_->rns().modulus(prime);
            const int xi = emitUnary(chip, Opcode::Intt,
                                     a.regs[poly][i], prime);
            // Reduce the dropped limb's residues into q_i.
            Instruction red;
            red.op = Opcode::Mod;
            red.dst = newReg(chip);
            red.srcs = {copies[chip]};
            red.prime = prime;
            red.aux = {static_cast<uint32_t>(last)};
            const int xl = red.dst;
            emit(chip, std::move(red));
            const int diff = emitBinary(chip, Opcode::Sub, xi, xl, prime);
            const int scaled =
                emitUnary(chip, Opcode::MulScalar, diff, prime,
                          qi.inv(q_last % qi.value()));
            out.regs[poly][i] =
                emitUnary(chip, Opcode::Ntt, scaled, prime);
        }
    }
    vals_[op.id] = std::move(out);
}

std::vector<std::vector<int>>
LowerImpl::broadcastPolyCoeff(const Group &g,
                              const std::vector<int> &limb_regs,
                              std::size_t level)
{
    std::vector<std::vector<int>> bc(cfg_.chips);
    for (auto &v : bc)
        v.assign(level + 1, -1);
    for (std::size_t i = 0; i <= level; ++i) {
        const uint32_t owner = chipOfLimb(g, i);
        const uint32_t prime = static_cast<uint32_t>(i);
        const int coeff =
            emitUnary(owner, Opcode::Intt, limb_regs[i], prime);
        auto copies = emitBcast(g, owner, coeff, prime);
        for (uint32_t c = g.lo; c < g.hi; ++c)
            bc[c][i] = copies[c];
    }
    return bc;
}

std::array<std::vector<int>, 2>
LowerImpl::lowerKsCompute(const Group &g,
                          const std::vector<std::vector<int>> &bc,
                          std::size_t level, const std::string &key,
                          uint64_t galois, bool cifher)
{
    const auto digits = ctx_->digits(level);
    const rns::Basis special = ctx_->specialBasis();

    std::array<std::vector<int>, 2> result;
    result[0].assign(level + 1, -1);
    result[1].assign(level + 1, -1);

    // Per-chip accumulators over the chip's mod-up output basis,
    // indexed by prime. acc[poly][prime] = vreg or -1.
    std::vector<std::array<std::map<uint32_t, int>, 2>> acc(cfg_.chips);

    for (uint32_t c = g.lo; c < g.hi; ++c) {
        // Apply the automorphism on-chip to the broadcast copies.
        std::vector<int> limbs = bc[c];
        if (galois != 1) {
            for (std::size_t i = 0; i <= level; ++i) {
                limbs[i] = emitUnary(c, Opcode::Automorph, limbs[i],
                                     static_cast<uint32_t>(i), galois);
            }
        }

        // Output primes handled on this chip.
        std::vector<uint32_t> out_primes;
        for (std::size_t i = 0; i <= level; ++i) {
            if (chipOfLimb(g, i) == c)
                out_primes.push_back(static_cast<uint32_t>(i));
        }
        for (std::size_t k = 0; k < special.size(); ++k) {
            if (!cifher || chipOfLimb(g, special[k]) == c)
                out_primes.push_back(special[k]);
        }

        for (std::size_t j = 0; j < digits.size(); ++j) {
            const rns::Basis &digit = digits[j];
            // Stage 1 of the BCU: pre-scale the digit limbs.
            std::vector<int> scaled(digit.size());
            for (std::size_t d = 0; d < digit.size(); ++d) {
                scaled[d] = emitUnary(c, Opcode::MulScalar,
                                      limbs[digit[d]], digit[d],
                                      digitShatInv(digit, d));
            }
            for (uint32_t t : out_primes) {
                int up;
                const bool in_digit =
                    std::find(digit.begin(), digit.end(), t) !=
                    digit.end();
                if (in_digit) {
                    up = limbs[t];
                } else {
                    Instruction ins;
                    ins.op = Opcode::BConv;
                    ins.dst = newReg(c);
                    ins.srcs = scaled;
                    ins.aux = digit;
                    ins.prime = t;
                    up = ins.dst;
                    emit(c, std::move(ins));
                }
                const int up_eval = emitUnary(c, Opcode::Ntt, up, t);
                for (int poly = 0; poly < 2; ++poly) {
                    DataDescriptor desc;
                    desc.kind = DataDescriptor::Kind::EvalKey;
                    desc.name = key;
                    desc.poly = poly;
                    desc.prime = t;
                    desc.digit = j;
                    desc.galois = galois;
                    const int k = emitLoad(c, desc);
                    const int prod =
                        emitBinary(c, Opcode::Mul, up_eval, k, t);
                    auto it = acc[c][poly].find(t);
                    if (it == acc[c][poly].end()) {
                        acc[c][poly][t] = prod;
                    } else {
                        it->second = emitBinary(c, Opcode::Add,
                                                it->second, prod, t);
                    }
                }
            }
        }
    }

    // Mod-down. Under CiFHER both the ciphertext and extension limbs
    // of each accumulator are partitioned, so the mod-down needs the
    // whole polynomial broadcast (the paper's "2 broadcasts in (6)");
    // these are the rounds the keyswitch pass cannot hoist.
    for (int poly = 0; poly < 2; ++poly) {
        if (cifher) {
            // Broadcast every ciphertext limb of the accumulator too
            // (CiFHER resolves the mod-down's cross-limb dependencies
            // by broadcasting; the copies land unused on non-owner
            // chips, which is exactly the wasted traffic Cinnamon's
            // algorithms eliminate).
            for (std::size_t i = 0; i <= level; ++i) {
                const uint32_t owner = chipOfLimb(g, i);
                const uint32_t prime = static_cast<uint32_t>(i);
                (void)emitBcast(g, owner, acc[owner][poly].at(prime),
                                prime);
            }
        }
        // INTT the extension accumulators on their owners.
        std::vector<std::vector<int>> ext(cfg_.chips);
        for (auto &v : ext)
            v.assign(special.size(), -1);
        for (std::size_t k = 0; k < special.size(); ++k) {
            const uint32_t s = special[k];
            if (cifher) {
                const uint32_t owner = chipOfLimb(g, s);
                const int coeff = emitUnary(
                    owner, Opcode::Intt, acc[owner][poly].at(s), s);
                auto copies = emitBcast(g, owner, coeff, s);
                for (uint32_t c = g.lo; c < g.hi; ++c)
                    ext[c][k] = copies[c];
            } else {
                for (uint32_t c = g.lo; c < g.hi; ++c) {
                    ext[c][k] = emitUnary(c, Opcode::Intt,
                                          acc[c][poly].at(s), s);
                }
            }
        }

        for (uint32_t c = g.lo; c < g.hi; ++c) {
            // Pre-scale the extension limbs for the mod-down BConv.
            std::vector<int> scaled(special.size());
            for (std::size_t k = 0; k < special.size(); ++k) {
                // Basis positions: special is itself the digit here.
                std::vector<uint32_t> sp(special.begin(), special.end());
                scaled[k] = emitUnary(c, Opcode::MulScalar, ext[c][k],
                                      special[k],
                                      digitShatInv(special, k));
            }
            for (std::size_t i = 0; i <= level; ++i) {
                if (chipOfLimb(g, i) != c)
                    continue;
                const uint32_t prime = static_cast<uint32_t>(i);
                const int xi = emitUnary(c, Opcode::Intt,
                                         acc[c][poly].at(prime), prime);
                Instruction ins;
                ins.op = Opcode::BConv;
                ins.dst = newReg(c);
                ins.srcs = scaled;
                ins.aux = special;
                ins.prime = prime;
                const int conv = ins.dst;
                emit(c, std::move(ins));
                const int diff =
                    emitBinary(c, Opcode::Sub, xi, conv, prime);
                const int down =
                    emitUnary(c, Opcode::MulScalar, diff, prime,
                              specialProdInv(prime));
                result[poly][i] =
                    emitUnary(c, Opcode::Ntt, down, prime);
            }
        }
    }
    return result;
}

void
LowerImpl::lowerMul(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    const CtVal &a = valFor(op.args[0], op.stream);
    const CtVal &b = valFor(op.args[1], op.stream);
    const std::size_t level = op.level;

    std::vector<int> d0(level + 1), d1(level + 1), d2(level + 1);
    for (std::size_t i = 0; i <= level; ++i) {
        const uint32_t chip = chipOfLimb(g, i);
        const uint32_t prime = static_cast<uint32_t>(i);
        d0[i] = emitBinary(chip, Opcode::Mul, a.regs[0][i], b.regs[0][i],
                           prime);
        const int t0 = emitBinary(chip, Opcode::Mul, a.regs[0][i],
                                  b.regs[1][i], prime);
        const int t1 = emitBinary(chip, Opcode::Mul, a.regs[1][i],
                                  b.regs[0][i], prime);
        d1[i] = emitBinary(chip, Opcode::Add, t0, t1, prime);
        d2[i] = emitBinary(chip, Opcode::Mul, a.regs[1][i], b.regs[1][i],
                           prime);
    }

    const bool cifher = pass_.of(op.id).algo == KsAlgo::Cifher;
    auto bc = broadcastPolyCoeff(g, d2, level);
    auto ks = lowerKsCompute(g, bc, level, "relin", 1, cifher);

    CtVal out;
    out.level = level;
    out.scale = op.scale;
    out.stream = op.stream;
    for (int poly = 0; poly < 2; ++poly)
        out.regs[poly].resize(level + 1);
    for (std::size_t i = 0; i <= level; ++i) {
        const uint32_t chip = chipOfLimb(g, i);
        const uint32_t prime = static_cast<uint32_t>(i);
        out.regs[0][i] =
            emitBinary(chip, Opcode::Add, d0[i], ks[0][i], prime);
        out.regs[1][i] =
            emitBinary(chip, Opcode::Add, d1[i], ks[1][i], prime);
    }
    vals_[op.id] = std::move(out);
}

void
LowerImpl::lowerRotation(const CtOp &op)
{
    const Group g = groupOf(op.stream);
    const CtVal &a = valFor(op.args[0], op.stream);
    const std::size_t level = op.level;
    const uint64_t galois =
        op.kind == CtOpKind::Conjugate
            ? ctx_->galoisForConjugation()
            : ctx_->galoisForRotation(op.rotation);
    if (galois == 1) {
        vals_[op.id] = a; // rotation by zero
        return;
    }

    const KsAnnotation &ann = pass_.of(op.id);
    const bool cifher = ann.algo == KsAlgo::Cifher;

    // Hoisted broadcast: reuse the batch's coefficient copies.
    std::vector<std::vector<int>> bc;
    if (ann.batch >= 0 && !cifher) {
        auto it = ib_cache_.find(ann.batch);
        if (it != ib_cache_.end()) {
            bc = it->second;
        } else {
            bc = broadcastPolyCoeff(g, a.regs[1], level);
            ib_cache_.emplace(ann.batch, bc);
        }
    } else {
        bc = broadcastPolyCoeff(g, a.regs[1], level);
    }

    std::ostringstream key;
    key << "galois:" << galois;
    auto ks = lowerKsCompute(g, bc, level, key.str(), galois, cifher);

    CtVal out;
    out.level = level;
    out.scale = op.scale;
    out.stream = op.stream;
    out.regs[1] = ks[1];
    out.regs[0].resize(level + 1);
    for (std::size_t i = 0; i <= level; ++i) {
        const uint32_t chip = chipOfLimb(g, i);
        const uint32_t prime = static_cast<uint32_t>(i);
        const int c0 = emitUnary(chip, Opcode::Intt, a.regs[0][i], prime);
        const int rot =
            emitUnary(chip, Opcode::Automorph, c0, prime, galois);
        const int ev = emitUnary(chip, Opcode::Ntt, rot, prime);
        out.regs[0][i] =
            emitBinary(chip, Opcode::Add, ev, ks[0][i], prime);
    }
    vals_[op.id] = std::move(out);
}

void
LowerImpl::lowerOaBatchAtRoot(const CtOp &root, const OaBatch &batch)
{
    const Group g = groupOf(root.stream);
    const std::size_t level = root.level;
    const rns::Basis special = ctx_->specialBasis();
    const auto digits = chipDigitBases(level, g.size());
    CINN_FATAL_UNLESS(digits.size() == g.size(),
                      "output aggregation requires level+1 >= group "
                      "size so every chip owns a digit");

    // Full output basis: all ciphertext limbs + all specials.
    std::vector<uint32_t> full;
    for (std::size_t i = 0; i <= level; ++i)
        full.push_back(static_cast<uint32_t>(i));
    for (uint32_t s : special)
        full.push_back(s);

    // Per chip: accumulators over the full basis; per-limb c0 sums.
    std::vector<std::array<std::map<uint32_t, int>, 2>> acc(cfg_.chips);
    std::vector<int> c0sum(level + 1, -1);

    for (uint32_t c = g.lo; c < g.hi; ++c) {
        const std::size_t p = c - g.lo;
        const rns::Basis &digit = digits[p];

        for (std::size_t m = 0; m < batch.rotations.size(); ++m) {
            const CtOp &rot = prog_->op(batch.rotations[m]);
            const CtVal &a = valFor(rot.args[0], root.stream);
            const uint64_t galois = ctx_->galoisForRotation(rot.rotation);
            std::ostringstream key;
            key << "galois:" << galois;

            // Digit limbs: this chip's resident limbs of c1, rotated.
            std::vector<int> scaled(digit.size());
            std::vector<int> rotated(digit.size());
            for (std::size_t d = 0; d < digit.size(); ++d) {
                const uint32_t prime = digit[d];
                const int coeff = emitUnary(c, Opcode::Intt,
                                            a.regs[1][prime], prime);
                rotated[d] = emitUnary(c, Opcode::Automorph, coeff,
                                       prime, galois);
                scaled[d] = emitUnary(c, Opcode::MulScalar, rotated[d],
                                      prime, digitShatInv(digit, d));
            }

            for (uint32_t t : full) {
                int up;
                auto pos = std::find(digit.begin(), digit.end(), t);
                if (pos != digit.end()) {
                    up = rotated[pos - digit.begin()];
                } else {
                    Instruction ins;
                    ins.op = Opcode::BConv;
                    ins.dst = newReg(c);
                    ins.srcs = scaled;
                    ins.aux = digit;
                    ins.prime = t;
                    up = ins.dst;
                    emit(c, std::move(ins));
                }
                const int up_eval = emitUnary(c, Opcode::Ntt, up, t);
                for (int poly = 0; poly < 2; ++poly) {
                    DataDescriptor desc;
                    desc.kind = DataDescriptor::Kind::EvalKey;
                    desc.name = key.str();
                    desc.poly = poly;
                    desc.prime = t;
                    desc.digit = p;
                    desc.galois = galois;
                    desc.chip_digits = true;
                    desc.group_size = static_cast<uint32_t>(g.size());
                    const int k = emitLoad(c, desc);
                    const int prod =
                        emitBinary(c, Opcode::Mul, up_eval, k, t);
                    auto it = acc[c][poly].find(t);
                    if (it == acc[c][poly].end()) {
                        acc[c][poly][t] = prod;
                    } else {
                        it->second = emitBinary(c, Opcode::Add,
                                                it->second, prod, t);
                    }
                }
            }

            // c0 part: owners accumulate Σ_r auto(c0_r) locally.
            for (std::size_t d = 0; d < digit.size(); ++d) {
                const uint32_t prime = digit[d];
                const int c0 = emitUnary(c, Opcode::Intt,
                                         a.regs[0][prime], prime);
                const int rc0 = emitUnary(c, Opcode::Automorph, c0,
                                          prime, galois);
                const int ev = emitUnary(c, Opcode::Ntt, rc0, prime);
                if (c0sum[prime] < 0) {
                    c0sum[prime] = ev;
                } else {
                    c0sum[prime] = emitBinary(c, Opcode::Add,
                                              c0sum[prime], ev, prime);
                }
            }
        }
    }

    // Local mod-down on every chip, then ONE batched aggregate+scatter
    // per output polynomial (limb-by-limb Agg collectives).
    CtVal out;
    out.level = level;
    out.scale = root.scale;
    out.stream = root.stream;
    for (int poly = 0; poly < 2; ++poly) {
        // Pre-scale extension limbs and mod-down the full basis.
        std::vector<std::vector<int>> partial(cfg_.chips);
        for (auto &v : partial)
            v.assign(level + 1, -1);
        for (uint32_t c = g.lo; c < g.hi; ++c) {
            std::vector<int> scaled(special.size());
            for (std::size_t k = 0; k < special.size(); ++k) {
                const int coeff =
                    emitUnary(c, Opcode::Intt,
                              acc[c][poly].at(special[k]), special[k]);
                scaled[k] = emitUnary(c, Opcode::MulScalar, coeff,
                                      special[k],
                                      digitShatInv(special, k));
            }
            for (std::size_t i = 0; i <= level; ++i) {
                const uint32_t prime = static_cast<uint32_t>(i);
                const int xi = emitUnary(c, Opcode::Intt,
                                         acc[c][poly].at(prime), prime);
                Instruction ins;
                ins.op = Opcode::BConv;
                ins.dst = newReg(c);
                ins.srcs = scaled;
                ins.aux = special;
                ins.prime = prime;
                const int conv = ins.dst;
                emit(c, std::move(ins));
                const int diff =
                    emitBinary(c, Opcode::Sub, xi, conv, prime);
                partial[c][i] =
                    emitUnary(c, Opcode::MulScalar, diff, prime,
                              specialProdInv(prime));
            }
        }

        out.regs[poly].resize(level + 1);
        for (std::size_t i = 0; i <= level; ++i) {
            const uint32_t owner = chipOfLimb(g, i);
            const uint32_t prime = static_cast<uint32_t>(i);
            std::vector<int> srcs(cfg_.chips, -1);
            for (uint32_t c = g.lo; c < g.hi; ++c)
                srcs[c] = partial[c][i];
            const int agg = emitAgg(g, owner, srcs, prime);
            int ev = emitUnary(owner, Opcode::Ntt, agg, prime);
            if (poly == 0)
                ev = emitBinary(owner, Opcode::Add, ev, c0sum[i], prime);
            // Non-rotation leaves of the add tree join here.
            for (int extra : batch.extras) {
                const CtVal &e = valFor(extra, root.stream);
                ev = emitBinary(owner, Opcode::Add, ev,
                                e.regs[poly][i], prime);
            }
            out.regs[poly][i] = ev;
        }
    }
    vals_[root.id] = std::move(out);
}

CompiledProgram
LowerImpl::run()
{
    pass_ = runKeyswitchPass(*prog_, cfg_.ks);
    for (const auto &batch : pass_.oa_batches) {
        // Output aggregation uses the per-chip limb partition as its
        // digit partition, so hybrid-keyswitch noise stays bounded
        // only while every digit's product is below the extension
        // modulus P (Section 2). Small chip groups make the digits
        // too large; those batches fall back to per-rotation
        // input-broadcast lowering.
        const CtOp &root = prog_->op(batch.root);
        const Group g = groupOf(root.stream);
        const std::size_t digit_size =
            (root.level + g.size()) / g.size();
        if (digit_size > ctx_->specialBasis().size() ||
            root.level + 1 < g.size())
            continue;
        oa_by_root_.emplace(batch.root, &batch);
        for (int r : batch.rotations)
            oa_members_.insert(r);
        for (int a : batch.tree_adds) {
            if (a != batch.root)
                oa_members_.insert(a);
        }
    }

    for (const auto &op : prog_->ops()) {
        if (oa_members_.count(op.id))
            continue; // folded into a batch, materialized at the root
        auto root_it = oa_by_root_.find(op.id);
        if (root_it != oa_by_root_.end()) {
            lowerOaBatchAtRoot(op, *root_it->second);
            continue;
        }
        switch (op.kind) {
          case CtOpKind::Input:
            lowerInput(op);
            break;
          case CtOpKind::Output:
            lowerOutput(op);
            break;
          case CtOpKind::Add:
          case CtOpKind::Sub:
            lowerElementwise(op);
            break;
          case CtOpKind::MulPlain:
          case CtOpKind::AddPlain:
            lowerPlain(op);
            break;
          case CtOpKind::Rescale:
            lowerRescale(op);
            break;
          case CtOpKind::Mul:
            lowerMul(op);
            break;
          case CtOpKind::Rotate:
          case CtOpKind::Conjugate:
            lowerRotation(op);
            break;
        }
    }

    CompiledProgram out;
    out.machine.chips.resize(cfg_.chips);
    std::size_t max_vregs = 0;
    for (std::size_t c = 0; c < cfg_.chips; ++c) {
        out.machine.chips[c].instrs = std::move(code_[c]);
        max_vregs = std::max(max_vregs,
                             static_cast<std::size_t>(nreg_[c]));
    }
    out.machine.num_virtual_regs = max_vregs;
    out.data = std::move(data_);
    out.outputs = std::move(outputs_);
    out.comm = comm_;
    out.config = cfg_;
    out.ks_pass = std::move(pass_);

    if (cfg_.allocate) {
        out.regalloc = allocateRegisters(out.machine, cfg_.phys_regs,
                                         next_addr_,
                                         cfg_.regalloc_policy);
    }
    return out;
}

} // namespace

std::vector<rns::Basis>
chipDigitBases(std::size_t level, std::size_t group_size)
{
    std::vector<rns::Basis> out;
    for (std::size_t p = 0; p < group_size; ++p) {
        rns::Basis digit;
        for (std::size_t i = p; i <= level; i += group_size)
            digit.push_back(static_cast<uint32_t>(i));
        if (!digit.empty())
            out.push_back(std::move(digit));
    }
    return out;
}

CompiledProgram
Compiler::compile(const Program &program)
{
    LowerImpl impl(*ctx_, program, config_);
    return impl.run();
}

} // namespace cinnamon::compiler
