#include "compiler/lowering.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "compiler/limb_ir.h"
#include "compiler/pass.h"
#include "compiler/poly_ir.h"
#include "compiler/regalloc.h"
#include "compiler/strategy.h"

namespace cinnamon::compiler {

namespace {

using isa::Instruction;
using isa::Opcode;

/**
 * Pass "lower-isa": walk the limb units in stream order and emit one
 * ISA instruction stream per chip. This stage is serial and owns
 * everything global: memory-address assignment (descriptor keys dedup
 * across units), collective rendezvous tags, and per-chip virtual
 * register numbering — which is why serial and parallel limb lowering
 * produce byte-identical machine programs.
 */
void
lowerIsaPass(PassContext &pcx)
{
    const LimbProgram &limb = pcx.limb;
    const CompilerConfig &cfg = pcx.cfg;

    CompiledProgram out;
    out.machine.chips.resize(cfg.chips);
    std::vector<int> nreg(cfg.chips, 0);
    uint64_t next_tag = 1;
    uint64_t next_addr = 1;
    std::map<std::string, uint64_t> addr_by_key;

    auto newReg = [&](uint32_t chip) { return nreg[chip]++; };
    auto emit = [&](uint32_t chip, Instruction ins) {
        out.machine.chips[chip].instrs.push_back(std::move(ins));
    };

    for (const LimbUnit &unit : limb.units) {
        // Global addresses for this unit's descriptors.
        std::vector<uint64_t> addr(unit.descs.size());
        for (std::size_t d = 0; d < unit.descs.size(); ++d) {
            auto it = addr_by_key.find(unit.desc_keys[d]);
            if (it != addr_by_key.end()) {
                addr[d] = it->second;
                continue;
            }
            addr[d] = next_addr++;
            addr_by_key.emplace(unit.desc_keys[d], addr[d]);
            out.data.emplace(addr[d], unit.descs[d]);
        }

        std::vector<int> vreg(unit.values.size(), -1);
        auto regOf = [&](int value) {
            CINN_ASSERT(value >= 0 && vreg[value] >= 0,
                        "limb value %" << value
                                       << " used before definition");
            return vreg[value];
        };

        for (const LimbOp &op : unit.ops) {
            if (op.collective()) {
                const uint64_t tag = next_tag++;
                const uint32_t owner = static_cast<uint32_t>(op.imm);
                for (uint32_t c = op.part_lo; c < op.part_hi; ++c) {
                    Instruction ins;
                    ins.op = op.op;
                    ins.prime = op.prime;
                    ins.tag = tag;
                    ins.part_lo = op.part_lo;
                    ins.part_hi = op.part_hi;
                    if (op.op == Opcode::Bcast) {
                        ins.imm = owner;
                        if (c == owner)
                            ins.srcs = {regOf(op.args[0])};
                        const int dv = op.coll_dsts[c - op.part_lo];
                        if (dv >= 0) {
                            ins.dst = newReg(c);
                            vreg[dv] = ins.dst;
                        }
                    } else { // Agg
                        ins.srcs = {
                            regOf(op.coll_srcs[c - op.part_lo])};
                        if (c == owner) {
                            ins.dst = newReg(c);
                            vreg[op.result] = ins.dst;
                        }
                    }
                    emit(c, std::move(ins));
                }
                continue;
            }

            Instruction ins;
            ins.op = op.op;
            ins.prime = op.prime;
            ins.aux = op.aux;
            if (op.desc >= 0)
                ins.imm = addr[op.desc];
            else
                ins.imm = op.imm;
            for (int a : op.args)
                ins.srcs.push_back(regOf(a));
            if (op.result >= 0) {
                ins.dst = newReg(op.chip);
                vreg[op.result] = ins.dst;
            }
            emit(op.chip, std::move(ins));
        }

        for (const OutputSpec &spec : unit.outputs) {
            OutputInfo info;
            info.level = spec.level;
            info.scale = spec.scale;
            for (int poly = 0; poly < 2; ++poly) {
                info.addrs[poly].resize(spec.level + 1);
                for (std::size_t i = 0; i <= spec.level; ++i)
                    info.addrs[poly][i] = addr[spec.desc_idx[poly][i]];
            }
            info.owners = spec.owners;
            out.outputs[spec.name] = std::move(info);
        }

        out.comm.broadcast_limbs += unit.comm.broadcast_limbs;
        out.comm.aggregation_limbs += unit.comm.aggregation_limbs;
    }

    std::size_t max_vregs = 0;
    for (std::size_t c = 0; c < cfg.chips; ++c) {
        max_vregs = std::max(max_vregs,
                             static_cast<std::size_t>(nreg[c]));
    }
    out.machine.num_virtual_regs = max_vregs;
    out.config = cfg;
    out.ks_pass = pcx.ks;

    pcx.next_addr = next_addr;
    pcx.out = std::move(out);
}

} // namespace

std::vector<rns::Basis>
chipDigitBases(std::size_t level, std::size_t group_size)
{
    std::vector<rns::Basis> out;
    for (std::size_t p = 0; p < group_size; ++p) {
        rns::Basis digit;
        for (std::size_t i = p; i <= level; i += group_size)
            digit.push_back(static_cast<uint32_t>(i));
        if (!digit.empty())
            out.push_back(std::move(digit));
    }
    return out;
}

std::string
cacheKeyOf(const CompilerConfig &config)
{
    std::ostringstream key;
    key << "chips=" << config.chips
        << ":streams=" << config.num_streams
        << ":ks=" << cacheKeyOf(config.ks)
        << ":strat=" << config.strategy
        << ":regs=" << config.phys_regs
        << ":alloc=" << config.allocate
        << ":policy=" << static_cast<int>(config.regalloc_policy);
    return key.str();
}

std::string
printIsaProgram(const CompiledProgram &program)
{
    std::ostringstream os;
    os << "isa: " << program.machine.totalInstructions()
       << " instructions, " << program.machine.numChips()
       << " chip(s), " << program.data.size()
       << " data addresses, bcast=" << program.comm.broadcast_limbs
       << " agg=" << program.comm.aggregation_limbs << "\n";
    for (std::size_t c = 0; c < program.machine.chips.size(); ++c) {
        const auto &instrs = program.machine.chips[c].instrs;
        os << " chip " << c << " (" << instrs.size() << " instrs)\n";
        for (const auto &ins : instrs)
            os << "  " << ins.toString() << "\n";
    }
    return os.str();
}

void
buildCompilerPipeline(PassManager &pm)
{
    pm.add(Pass{
        "expand-poly",
        "",
        [](PassContext &p) {
            p.poly = buildPolyProgram(*p.prog, p.cfg.num_streams);
        },
        [](const PassContext &p) { verifyPolyProgram(p.poly); },
        nullptr,
        [](const PassContext &p) { return p.poly.liveOps(); },
    });
    pm.add(Pass{
        "keyswitch",
        "poly",
        [](PassContext &p) {
            p.ks = runKeyswitchPass(*p.prog, p.cfg.ks);
            applyKeyswitchResult(
                p.poly, *p.prog, p.ks,
                p.cfg.chips /
                    static_cast<std::size_t>(p.cfg.num_streams),
                p.ctx->specialBasis().size());
        },
        [](const PassContext &p) { verifyPolyProgram(p.poly); },
        [](const PassContext &p) { return printPolyProgram(p.poly); },
        [](const PassContext &p) { return p.poly.liveOps(); },
    });
    pm.add(Pass{
        "lower-limb",
        "limb",
        [](PassContext &p) {
            p.limb = buildLimbProgram(p.poly, *p.ctx, p.cfg);
        },
        [](const PassContext &p) { verifyLimbProgram(p.limb); },
        [](const PassContext &p) { return printLimbProgram(p.limb); },
        [](const PassContext &p) { return p.limb.totalOps(); },
    });
    pm.add(Pass{
        "lower-isa",
        "isa",
        lowerIsaPass,
        nullptr,
        [](const PassContext &p) { return printIsaProgram(p.out); },
        [](const PassContext &p) {
            return p.out.machine.totalInstructions();
        },
    });
    pm.add(Pass{
        "regalloc",
        "",
        [](PassContext &p) {
            if (p.cfg.allocate) {
                p.out.regalloc = allocateRegisters(
                    p.out.machine, p.cfg.phys_regs, p.next_addr,
                    p.cfg.regalloc_policy, p.cfg.compile_workers);
            }
        },
        nullptr,
        nullptr,
        [](const PassContext &p) {
            return p.out.machine.totalInstructions();
        },
    });
}

CompiledProgram
Compiler::compile(const Program &program)
{
    CINN_FATAL_UNLESS(config_.chips >= 1, "need at least one chip");
    CINN_FATAL_UNLESS(config_.num_streams >= 1 &&
                          config_.chips % config_.num_streams == 0,
                      "chips must divide evenly among streams");
    // A named strategy is resolved here, once, so every consumer —
    // benches, serving tier, distributed workers — compiles with the
    // registry entry's exact ks option bytes. Unknown names throw
    // with the registry's list.
    if (!config_.strategy.empty())
        config_.ks = StrategyRegistry::global().at(config_.strategy).ks;

    PassContext pcx;
    pcx.ctx = ctx_;
    pcx.prog = &program;
    pcx.cfg = config_;
    pcx.trace = trace_;

    PassManager pm;
    buildCompilerPipeline(pm);
    pm.run(pcx, dump_);
    return std::move(pcx.out);
}

} // namespace cinnamon::compiler
