#include "compiler/regalloc.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"

namespace cinnamon::compiler {

namespace {

using isa::Instruction;
using isa::Opcode;

constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();

/** Allocation state for one chip's stream. */
class ChipAllocator
{
  public:
    ChipAllocator(std::vector<Instruction> &in, std::size_t phys_regs,
                  uint64_t spill_base, RegAllocStats &stats,
                  EvictionPolicy policy)
        : in_(in), phys_(phys_regs), spill_base_(spill_base),
          stats_(stats), policy_(policy)
    {
    }

    std::vector<Instruction> run();

  private:
    /** Position of the next use of `vreg` strictly after `after`. */
    std::size_t
    nextUse(int vreg, std::size_t after)
    {
        const auto &uses = uses_[vreg];
        auto it = std::upper_bound(uses.begin(), uses.end(), after);
        return it == uses.end() ? kInf : *it;
    }

    /** Pick a free physical register or evict per Belady. */
    int
    acquire(std::size_t at, const std::set<int> &pinned)
    {
        if (!free_.empty()) {
            int p = *free_.begin();
            free_.erase(free_.begin());
            return p;
        }
        // Belady: evict the resident vreg with the farthest next use.
        // LRU (ablation): evict the least recently touched one.
        int victim = -1;
        std::size_t farthest = 0;
        if (policy_ == EvictionPolicy::Belady) {
            for (const auto &[vreg, p] : loc_) {
                if (pinned.count(vreg))
                    continue;
                const std::size_t nu = nextUse(vreg, at);
                if (victim == -1 || nu > farthest) {
                    victim = vreg;
                    farthest = nu;
                }
            }
        } else {
            std::size_t oldest = kInf;
            for (const auto &[vreg, p] : loc_) {
                if (pinned.count(vreg))
                    continue;
                const std::size_t touched =
                    last_touch_.count(vreg) ? last_touch_.at(vreg) : 0;
                if (victim == -1 || touched < oldest) {
                    victim = vreg;
                    oldest = touched;
                }
            }
            if (victim != -1)
                farthest = nextUse(victim, at);
        }
        CINN_ASSERT(victim != -1,
                    "register pressure exceeds the physical register "
                    "file even with everything evictable pinned");
        const int p = loc_.at(victim);
        if (farthest != kInf && !spilled_.count(victim) &&
            !remat_.count(victim)) {
            // Value is still needed later, has no memory copy yet,
            // and cannot be rematerialized from read-only data.
            Instruction st;
            st.op = Opcode::Store;
            st.srcs = {p};
            st.prime = prime_.at(victim);
            st.imm = spillSlot(victim);
            out_.push_back(std::move(st));
            spilled_.insert(victim);
            ++stats_.spill_stores;
        }
        loc_.erase(victim);
        return p;
    }

    /** Ensure `vreg` is resident; reload from its spill slot if not. */
    void
    ensureResident(int vreg, std::size_t at, const std::set<int> &pinned)
    {
        if (loc_.count(vreg))
            return;
        auto rm = remat_.find(vreg);
        CINN_ASSERT(rm != remat_.end() || spilled_.count(vreg),
                    "use of virtual register v" << vreg
                                                << " with no definition");
        const int p = acquire(at, pinned);
        Instruction ld;
        ld.op = Opcode::Load;
        ld.dst = p;
        ld.prime = prime_.at(vreg);
        ld.imm = rm != remat_.end() ? rm->second : spillSlot(vreg);
        out_.push_back(std::move(ld));
        loc_[vreg] = p;
        ++stats_.spill_loads;
    }

    uint64_t
    spillSlot(int vreg)
    {
        auto it = slots_.find(vreg);
        if (it != slots_.end())
            return it->second;
        const uint64_t slot = spill_base_ + slots_.size();
        slots_.emplace(vreg, slot);
        return slot;
    }

    std::vector<Instruction> &in_;
    std::size_t phys_;
    uint64_t spill_base_;
    RegAllocStats &stats_;

    std::map<int, std::vector<std::size_t>> uses_;
    std::map<int, uint32_t> prime_;   ///< prime of each vreg's limb
    std::map<int, uint64_t> remat_;   ///< data loads: re-loadable addr
    std::map<int, std::size_t> last_touch_; ///< for the LRU ablation
    EvictionPolicy policy_;
    std::map<int, int> loc_;          ///< vreg → phys
    std::set<int> free_;
    std::set<int> spilled_;
    std::map<int, uint64_t> slots_;
    std::vector<Instruction> out_;
};

std::vector<Instruction>
ChipAllocator::run()
{
    // Use positions and per-vreg limb primes.
    for (std::size_t i = 0; i < in_.size(); ++i) {
        for (int s : in_[i].srcs) {
            if (s >= 0)
                uses_[s].push_back(i);
        }
        if (in_[i].dst >= 0) {
            prime_[in_[i].dst] = in_[i].prime;
            // Pre-allocation Loads read immutable program data; their
            // values can be rematerialized instead of spilled.
            if (in_[i].op == Opcode::Load)
                remat_[in_[i].dst] = in_[i].imm;
        }
    }
    for (std::size_t p = 0; p < phys_; ++p)
        free_.insert(static_cast<int>(p));

    std::size_t live = 0;
    for (std::size_t i = 0; i < in_.size(); ++i) {
        Instruction ins = in_[i];

        // Sources first: reload any spilled operand, pinning the
        // instruction's own operands against eviction.
        std::set<int> pinned(ins.srcs.begin(), ins.srcs.end());
        if (ins.dst >= 0)
            pinned.insert(ins.dst);
        for (int s : ins.srcs) {
            if (s >= 0) {
                ensureResident(s, i, pinned);
                last_touch_[s] = i;
            }
        }
        // Rewrite sources, then free the ones that die here.
        std::vector<int> dead;
        for (int &s : ins.srcs) {
            if (s < 0)
                continue;
            const int vreg = s;
            s = loc_.at(vreg);
            if (nextUse(vreg, i) == kInf)
                dead.push_back(vreg);
        }
        for (int vreg : dead) {
            auto it = loc_.find(vreg);
            if (it != loc_.end()) {
                free_.insert(it->second);
                loc_.erase(it);
            }
        }
        // Destination.
        if (ins.dst >= 0) {
            const int vreg = ins.dst;
            const int p = acquire(i, pinned);
            loc_[vreg] = p;
            last_touch_[vreg] = i;
            ins.dst = p;
            // Dead-on-arrival values (e.g. unused collective copies)
            // are freed immediately after definition.
            if (uses_.find(vreg) == uses_.end()) {
                free_.insert(p);
                loc_.erase(vreg);
            }
        }
        live = std::max(live, phys_ - free_.size());
        out_.push_back(std::move(ins));
    }
    stats_.max_live = std::max(stats_.max_live, live);
    return std::move(out_);
}

} // namespace

RegAllocStats
allocateRegisters(isa::MachineProgram &program, std::size_t phys_regs,
                  uint64_t spill_addr_base, EvictionPolicy policy,
                  std::size_t workers)
{
    CINN_FATAL_UNLESS(phys_regs >= 8,
                      "cannot allocate with fewer than 8 registers");
    // Chips allocate independently (per-chip register files and spill
    // memories), so run them in a worker pool and merge the
    // deterministic per-chip stats afterwards.
    std::vector<RegAllocStats> per_chip(program.chips.size());
    parallelFor(program.chips.size(), workers, [&](std::size_t c) {
        ChipAllocator alloc(program.chips[c].instrs, phys_regs,
                            spill_addr_base, per_chip[c], policy);
        program.chips[c].instrs = alloc.run();
    });
    RegAllocStats stats;
    for (const auto &s : per_chip) {
        stats.spill_stores += s.spill_stores;
        stats.spill_loads += s.spill_loads;
        stats.max_live = std::max(stats.max_live, s.max_live);
    }
    program.allocated = true;
    return stats;
}

} // namespace cinnamon::compiler
