/**
 * @file
 * The Cinnamon DSL (Section 4.2).
 *
 * The paper embeds the DSL in Python; this library embeds the same
 * constructs in C++. A Program is a builder over ciphertext handles:
 * FHE operations are language constructs, and concurrent execution
 * streams — the unit of program-level parallelism — are expressed by
 * wrapping code in beginStream()/endStream() regions (the analog of
 * the paper's CinnamonStreamPool). The compiler later places each
 * stream on its own group of chips.
 *
 * The builder performs level and scale inference as ops are created,
 * so malformed programs (level underflow, scale mismatches) fail at
 * construction time rather than at compile or run time.
 */

#ifndef CINNAMON_COMPILER_DSL_H_
#define CINNAMON_COMPILER_DSL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fhe/params.h"

namespace cinnamon::compiler {

/** Ciphertext-level operation kinds. */
enum class CtOpKind {
    Input,     ///< named external ciphertext
    Add,       ///< ct + ct
    Sub,       ///< ct - ct
    Mul,       ///< ct * ct with relinearization (no rescale)
    MulPlain,  ///< ct * named plaintext
    AddPlain,  ///< ct + named plaintext
    Rescale,   ///< drop one level, divide by the dropped prime
    Rotate,    ///< slot rotation (automorphism + keyswitch)
    Conjugate, ///< slot conjugation
    Output,    ///< named external result
};

/** One node of the ciphertext-level dataflow graph. */
struct CtOp
{
    int id = -1;
    CtOpKind kind = CtOpKind::Input;
    std::vector<int> args;   ///< operand op ids
    int rotation = 0;        ///< for Rotate
    std::string name;        ///< for Input / Output / *Plain
    int stream = 0;          ///< program-level stream id
    std::size_t level = 0;   ///< inferred level of the result
    double scale = 0.0;      ///< inferred scale of the result
};

class Program;

/** A lightweight reference to a ciphertext value in a Program. */
class CtHandle
{
  public:
    CtHandle() = default;
    CtHandle(Program *p, int id) : program_(p), id_(id) {}

    int id() const { return id_; }
    bool valid() const { return program_ != nullptr; }
    std::size_t level() const;
    double scale() const;

  private:
    Program *program_ = nullptr;
    int id_ = -1;
};

/**
 * A ciphertext program under construction.
 *
 * The graph is append-only; handles index into it.
 */
class Program
{
  public:
    Program(std::string name, const fhe::CkksContext &ctx)
        : name_(std::move(name)), ctx_(&ctx)
    {
    }

    const std::string &name() const { return name_; }
    const fhe::CkksContext &context() const { return *ctx_; }

    /** Declare an encrypted input at a level. */
    CtHandle input(const std::string &name, std::size_t level);

    CtHandle add(CtHandle a, CtHandle b);
    CtHandle sub(CtHandle a, CtHandle b);

    /** Ciphertext multiply (relinearized, not rescaled). */
    CtHandle mul(CtHandle a, CtHandle b);

    /** Multiply by a named plaintext (bound at run time). */
    CtHandle mulPlain(CtHandle a, const std::string &plain);

    /** Add a named plaintext. */
    CtHandle addPlain(CtHandle a, const std::string &plain);

    /** Rescale: divide by the last prime, dropping a level. */
    CtHandle rescale(CtHandle a);

    /** Rotate slots left by `steps`. */
    CtHandle rotate(CtHandle a, int steps);

    /** Conjugate all slots. */
    CtHandle conjugate(CtHandle a);

    /** Mark a value as a named output. */
    void output(const std::string &name, CtHandle a);

    /**
     * Enter a concurrent stream region: ops created until endStream()
     * belong to stream `stream_id` (the paper's StreamFn body).
     */
    void beginStream(int stream_id);
    void endStream();

    /** Number of distinct streams used (at least 1). */
    int numStreams() const;

    const std::vector<CtOp> &ops() const { return ops_; }
    const CtOp &op(int id) const { return ops_.at(id); }

    /** Every rotation step used (for key pre-generation). */
    std::vector<int> rotationSteps() const;

    /** True if any conjugation appears. */
    bool usesConjugation() const;

  private:
    int append(CtOp op);
    const CtOp &checkHandle(CtHandle h) const;

    std::string name_;
    const fhe::CkksContext *ctx_;
    std::vector<CtOp> ops_;
    int current_stream_ = 0;
};

/**
 * Clone a program into `copies` data-parallel instances running in
 * disjoint stream ranges (copy k occupies streams [k*S, (k+1)*S) where
 * S is the source program's stream count). Inputs and outputs of copy
 * k > 0 are renamed with an "@k" suffix; plaintext names are shared —
 * every copy multiplies by the same weights, the serving-style batch
 * shape. Copy 0 is unchanged, so replicateStreams(p, 1) == p.
 */
Program replicateStreams(const Program &prog, int copies);

/**
 * Content fingerprint of a program: FNV-1a over the name and every
 * op's kind/args/rotation/name/stream/level/scale. Two programs that
 * share a name and op count but differ anywhere in the graph hash
 * differently, so caches keyed on the fingerprint never alias.
 */
uint64_t fingerprintOf(const Program &prog);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_DSL_H_
