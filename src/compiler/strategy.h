/**
 * @file
 * Named compile strategies (DESIGN.md §6).
 *
 * A CompileStrategy bundles the knobs that used to be hand-assembled
 * at every call site — keyswitch pass options plus the program-level
 * parallelism hint — under a stable name. The built-in entries are
 * exactly the Figure 13 ladder rungs (sequential, CiFHER,
 * input-broadcast, IB + pass, Cinnamon KS, + program parallelism)
 * plus the Section 7.4 CiFHER-with-pass point, so benchmarks
 * enumerate the registry instead of duplicating config-building
 * code, and the serving tier's PlanTuner can evaluate every rung as
 * a candidate plan.
 *
 * Strategies are identity, not behavior: resolving a name yields the
 * same KsPassOptions bytes everywhere (compiler, benches, server,
 * distributed workers), which is what keeps autotuned distributed
 * digests bit-identical to in-process runs.
 */

#ifndef CINNAMON_COMPILER_STRATEGY_H_
#define CINNAMON_COMPILER_STRATEGY_H_

#include <string>
#include <vector>

#include "compiler/ks_pass.h"

namespace cinnamon::compiler {

/** One named point in the keyswitch/parallelism strategy space. */
struct CompileStrategy
{
    std::string name;        ///< stable registry key ("cinnamon-ks")
    /** Human label ("Cinnamon Keyswitch + Pass"). */
    std::string display;
    std::string description; ///< one-line summary for --help output
    KsPassOptions ks;        ///< the keyswitch pass configuration
    /** Program-parallelism hint: preferred stream count (chip
     *  groups).
     *  Benchmarks honor it; the tuner explores streams on its own. */
    int streams = 1;
    /** Single-chip rung: compile for 1 chip regardless of machine. */
    bool sequential = false;
    /** Position in the Figure 13 ladder; -1 = not a fig13 rung. */
    int fig13_rung = -1;
};

/**
 * The process-wide strategy table. Iteration follows registration
 * order; the built-ins are registered on first access, fig13 rungs
 * first (in ladder order).
 */
class StrategyRegistry
{
  public:
    /** The singleton instance (built-ins already registered). */
    static StrategyRegistry &global();

    /** All strategies, in registration order. */
    const std::vector<CompileStrategy> &entries() const
    {
        return entries_;
    }

    /** Look up by name; nullptr when unknown. */
    const CompileStrategy *find(const std::string &name) const;

    /**
     * Look up by name; throws std::invalid_argument listing every
     * valid name when unknown — callers surface it verbatim so users
     * see the registry's contents.
     */
    const CompileStrategy &at(const std::string &name) const;

    /** Every registered name, registration order, for diagnostics. */
    std::vector<std::string> names() const;

    /** The fig13 ladder: entries with fig13_rung >= 0, rung order. */
    std::vector<CompileStrategy> fig13Ladder() const;

    /**
     * Register a strategy (tests / future heterogeneous-machine
     * scenarios). Throws std::invalid_argument on duplicate names.
     */
    void add(CompileStrategy strategy);

  private:
    StrategyRegistry();

    std::vector<CompileStrategy> entries_;
};

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_STRATEGY_H_
