#include "compiler/ks_pass.h"

#include <algorithm>

namespace cinnamon::compiler {

namespace {

/** Ops that contain a keyswitch. */
bool
hasKeyswitch(CtOpKind kind)
{
    return kind == CtOpKind::Mul || kind == CtOpKind::Rotate ||
           kind == CtOpKind::Conjugate;
}

} // namespace

KsPassResult
runKeyswitchPass(const Program &program, const KsPassOptions &options)
{
    KsPassResult result;
    const auto &ops = program.ops();

    // Default annotation for every keyswitch-bearing op.
    for (const auto &op : ops) {
        if (hasKeyswitch(op.kind))
            result.annotations[op.id] = KsAnnotation{options.default_algo,
                                                     -1};
    }
    if (!options.enable_batching ||
        options.default_algo == KsAlgo::Cifher) {
        // CiFHER's mod-down broadcasts cannot be hoisted (Section
        // 7.4), and with batching disabled there is nothing to do.
        return result;
    }

    // Use counts (how many ops consume each value).
    std::map<int, std::vector<int>> users;
    for (const auto &op : ops) {
        for (int a : op.args)
            users[a].push_back(op.id);
    }

    int next_batch = 0;
    std::set<int> claimed; // rotations already assigned to a batch

    // ---- Pattern 2: rotations combined only by an addition tree. ----
    if (options.enable_output_aggregation) {
        // Roots: Add ops not consumed by another Add.
        for (const auto &op : ops) {
            if (op.kind != CtOpKind::Add)
                continue;
            bool consumed_by_add = false;
            for (int u : users[op.id]) {
                if (ops[u].kind == CtOpKind::Add)
                    consumed_by_add = true;
            }
            if (consumed_by_add)
                continue;

            // DFS through the add tree collecting leaves. Single-use
            // rotations become batch members; any other leaf is kept
            // as an extra addend applied after the aggregation
            // (associativity makes this exact).
            OaBatch batch;
            std::vector<int> stack{op.id};
            while (!stack.empty()) {
                int cur = stack.back();
                stack.pop_back();
                if (ops[cur].kind == CtOpKind::Add &&
                    (cur == op.id || users[cur].size() == 1)) {
                    batch.tree_adds.insert(cur);
                    for (int a : ops[cur].args)
                        stack.push_back(a);
                } else if (ops[cur].kind == CtOpKind::Rotate &&
                           users[cur].size() == 1 &&
                           !claimed.count(cur)) {
                    batch.rotations.push_back(cur);
                } else {
                    batch.extras.push_back(cur);
                }
            }
            // All members and extras must share one level and stream
            // for the batched collective to be well defined.
            bool valid = batch.rotations.size() >= 2;
            if (valid) {
                const auto &first = ops[batch.rotations.front()];
                for (int r : batch.rotations) {
                    if (ops[r].level != first.level ||
                        ops[r].stream != first.stream)
                        valid = false;
                }
                for (int e : batch.extras) {
                    if (ops[e].level != first.level)
                        valid = false;
                }
            }
            if (!valid)
                continue;

            batch.id = next_batch++;
            batch.root = op.id;
            for (int r : batch.rotations) {
                claimed.insert(r);
                result.annotations[r] =
                    KsAnnotation{KsAlgo::OutputAggregation, batch.id};
            }
            std::sort(batch.rotations.begin(), batch.rotations.end());
            result.oa_batches.push_back(std::move(batch));
        }
    }

    // ---- Pattern 1: several rotations of the same ciphertext. ----
    std::map<int, std::vector<int>> by_input;
    for (const auto &op : ops) {
        if ((op.kind == CtOpKind::Rotate ||
             op.kind == CtOpKind::Conjugate) &&
            !claimed.count(op.id)) {
            by_input[op.args[0]].push_back(op.id);
        }
    }
    for (auto &[input, rots] : by_input) {
        if (rots.size() < 2)
            continue;
        // Same stream required (one group performs the broadcast).
        const int stream = ops[rots.front()].stream;
        std::vector<int> members;
        for (int r : rots) {
            if (ops[r].stream == stream)
                members.push_back(r);
        }
        if (members.size() < 2)
            continue;
        IbBatch batch;
        batch.id = next_batch++;
        batch.input = input;
        batch.rotations = members;
        for (int r : members) {
            result.annotations[r] =
                KsAnnotation{KsAlgo::InputBroadcast, batch.id};
        }
        result.ib_batches.push_back(std::move(batch));
    }

    return result;
}

std::string
cacheKeyOf(const KsPassOptions &options)
{
    std::string key;
    key += options.enable_batching ? "b1" : "b0";
    key += options.enable_output_aggregation ? ":oa1" : ":oa0";
    key += ":a";
    key += std::to_string(static_cast<int>(options.default_algo));
    return key;
}

} // namespace cinnamon::compiler
