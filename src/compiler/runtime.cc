#include "compiler/runtime.h"

#include <sstream>
#include <unordered_set>

#include "common/logging.h"

namespace cinnamon::compiler {

void
ProgramRuntime::bindInput(const std::string &name,
                          const fhe::Ciphertext &ct)
{
    inputs_[name] = ct;
    ++bindings_version_;
}

void
ProgramRuntime::bindPlain(const std::string &name,
                          std::vector<fhe::Cplx> values)
{
    plains_[name] = std::move(values);
    ++bindings_version_;
}

const fhe::EvalKey &
ProgramRuntime::evalKeyFor(const DataDescriptor &desc, std::size_t copy)
{
    // The *identity* string is deliberately copy-free: it seeds the
    // derived generator, and a batched member's keys must be drawn
    // from exactly the identities an unbatched run would use so the
    // member's outputs stay bit-identical. Only the cache key carries
    // the copy index, to keep different members' keys apart.
    std::ostringstream identity;
    identity << desc.name << ':' << desc.chip_digits << ':'
             << desc.group_size;
    std::ostringstream cache_key;
    cache_key << copy << '#' << identity.str();
    auto it = key_cache_.find(cache_key.str());
    if (it != key_cache_.end())
        return it->second;

    fhe::KeyGenerator *keygen = keygen_;
    const fhe::SecretKey *sk = sk_;
    if (!copy_keys_.empty()) {
        CINN_ASSERT(copy < copy_keys_.size(),
                    "no key material for batch copy " << copy);
        keygen = copy_keys_[copy].keygen;
        sk = copy_keys_[copy].sk;
    }

    // Draw the key from a generator derived from (master seed, key
    // identity): the key bits are then independent of the order the
    // compiled program first loads its keys in, so reordering passes
    // in the compiler cannot perturb emulator outputs.
    fhe::KeyGenerator kg = keygen->derived(identity.str());
    fhe::EvalKey evk;
    if (desc.chip_digits) {
        const auto digits =
            chipDigitBases(ctx_->maxLevel(), desc.group_size);
        if (desc.name == "relin") {
            auto s2 = sk->s.mul(sk->s);
            evk = kg.makeKeySwitchKeyForDigits(*sk, s2, digits);
        } else {
            evk = kg.galoisKeyForDigits(*sk, desc.galois, digits);
        }
    } else {
        if (desc.name == "relin") {
            evk = kg.relinKey(*sk);
        } else {
            evk = kg.galoisKey(*sk, desc.galois);
        }
    }
    return key_cache_.emplace(cache_key.str(), std::move(evk))
        .first->second;
}

isa::LimbRef
ProgramRuntime::materialize(const DataDescriptor &desc, std::size_t copy)
{
    switch (desc.kind) {
      case DataDescriptor::Kind::InputCt: {
        auto it = inputs_.find(desc.name);
        CINN_FATAL_UNLESS(it != inputs_.end(),
                          "unbound program input '" << desc.name << "'");
        const fhe::Ciphertext &ct = it->second;
        const rns::RnsPoly &p = desc.poly == 0 ? ct.c0 : ct.c1;
        int pos = p.findPrime(desc.prime);
        CINN_FATAL_UNLESS(pos >= 0, "input '" << desc.name
                                              << "' lacks limb "
                                              << desc.prime);
        return isa::LimbRef{desc.prime, p.limb(pos)};
      }
      case DataDescriptor::Kind::Plain: {
        std::ostringstream key;
        key << desc.name << ':' << desc.level << ':' << desc.scale;
        auto cached = plain_cache_.find(key.str());
        if (cached == plain_cache_.end()) {
            auto it = plains_.find(desc.name);
            CINN_FATAL_UNLESS(it != plains_.end(),
                              "unbound plaintext '" << desc.name << "'");
            auto poly = encoder_->encode(it->second, desc.level,
                                         desc.scale);
            poly.toEval();
            cached = plain_cache_.emplace(key.str(), std::move(poly))
                         .first;
        }
        int pos = cached->second.findPrime(desc.prime);
        CINN_ASSERT(pos >= 0, "plaintext limb missing");
        return isa::LimbRef{desc.prime, cached->second.limb(pos)};
      }
      case DataDescriptor::Kind::EvalKey: {
        const fhe::EvalKey &evk = evalKeyFor(desc, copy);
        CINN_ASSERT(desc.digit < evk.parts.size(),
                    "evaluation key digit out of range");
        const rns::RnsPoly &p = desc.poly == 0
                                    ? evk.parts[desc.digit].first
                                    : evk.parts[desc.digit].second;
        int pos = p.findPrime(desc.prime);
        CINN_ASSERT(pos >= 0, "evaluation key limb missing");
        return isa::LimbRef{desc.prime, p.limb(pos)};
      }
      case DataDescriptor::Kind::Output:
        panic("outputs are not materialized as inputs");
    }
    panic("unreachable");
}

std::map<std::string, fhe::Ciphertext>
ProgramRuntime::run(const CompiledProgram &program)
{
    const std::size_t chips = program.machine.numChips();
    if (emu_ && emu_chips_ != chips) {
        if (emu_cache_)
            emu_cache_->release(std::move(emu_));
        emu_.reset();
    }
    if (!emu_) {
        // acquire() hands back a resetMemory()'d instance with warm
        // capacity; a fresh build needs no reset.
        emu_ = emu_cache_
            ? emu_cache_->acquire(chips)
            : std::make_unique<isa::Emulator>(*ctx_, chips);
        emu_chips_ = chips;
        last_program_ = nullptr;
        prestored_program_ = nullptr;
    } else if (last_program_ != &program) {
        // Same chips, different program: drop the old program's
        // mappings and register definitions (capacity stays) so they
        // cannot mask this program's data-dependent faults.
        emu_->resetMemory();
        prestored_program_ = nullptr;
    }
    last_program_ = &program;
    isa::Emulator &emu = *emu_;
    emu.setWorkers(emu_workers_);

    // Apply (and consume) an armed fault: translate the stream
    // fraction into a concrete pc on the victim chip so the failure
    // point is a pure function of (program, fraction), never timing.
    if (fault_armed_) {
        fault_armed_ = false;
        const std::size_t victim = fault_chip_ % chips;
        const auto &instrs = program.machine.chips[victim].instrs;
        const auto pc = static_cast<std::size_t>(
            fault_at_ * static_cast<double>(instrs.size()));
        emu.injectChipFailure(victim,
                              std::min(pc, instrs.size() - 1));
    } else {
        emu.clearFault();
    }

    // Materialize exactly the addresses each chip loads. Every
    // address is (re-)stored each run — stores to mapped addresses
    // overwrite in place — so reusing the emulator never leaks data
    // from a prior run or a prior input binding into this one.
    // With batched key material (setCopyKeys) the chips partition
    // evenly into copies, and each chip's evaluation keys come from
    // its copy's generator.
    const std::size_t copies =
        copy_keys_.empty() ? 1 : copy_keys_.size();
    CINN_FATAL_UNLESS(chips % copies == 0,
                      "batched program chips (" << chips
                          << ") must split evenly over " << copies
                          << " copies");
    const std::size_t chips_per_copy = chips / copies;
    // Re-running the identical program on the same emulator with no
    // binding changed in between: any pre-loaded address the program
    // never Stores to still holds exactly the limb the previous run
    // stored there (only Store instructions and this loop ever write
    // chip memory), so its materialize+memcpy is skipped. A partial
    // previous run (injected fault) is covered too — the clean set is
    // computed from the program text, not from what executed.
    const bool reuse_clean = prestored_program_ == &program &&
                             prestored_version_ == bindings_version_;
    std::unordered_set<uint64_t> footprint;
    std::unordered_set<uint64_t> dirtied;
    for (std::size_t c = 0; c < chips; ++c) {
        const std::size_t copy = c / chips_per_copy;
        // Pre-size the chip's arena/tables to the stream's declared
        // footprint (distinct Load/Store addresses) so the store hot
        // path never reallocates or rehashes mid-run.
        footprint.clear();
        dirtied.clear();
        for (const auto &ins : program.machine.chips[c].instrs) {
            if (ins.op == isa::Opcode::Load ||
                ins.op == isa::Opcode::Store)
                footprint.insert(ins.imm);
            if (ins.op == isa::Opcode::Store)
                dirtied.insert(ins.imm);
        }
        emu.memory(c).reserve(footprint.size());
        std::unordered_set<uint64_t> stored;
        for (const auto &ins : program.machine.chips[c].instrs) {
            if (ins.op != isa::Opcode::Load)
                continue;
            auto it = program.data.find(ins.imm);
            if (it == program.data.end())
                continue; // spill slot, produced by a Store at run time
            if (!stored.insert(ins.imm).second)
                continue;
            if (reuse_clean && dirtied.find(ins.imm) == dirtied.end())
                continue; // still holds last run's identical limb
            const isa::LimbRef limb = materialize(it->second, copy);
            emu.memory(c).store(ins.imm, limb.prime, limb.data);
        }
    }
    prestored_program_ = &program;
    prestored_version_ = bindings_version_;

    emu.run(program.machine);
    last_stats_ = emu.lastRunStats();

    // Collect outputs from the owner chips' memories.
    std::map<std::string, fhe::Ciphertext> outputs;
    for (const auto &[name, info] : program.outputs) {
        const rns::Basis basis = ctx_->ciphertextBasis(info.level);
        fhe::Ciphertext ct;
        ct.level = info.level;
        ct.scale = info.scale;
        for (int poly = 0; poly < 2; ++poly) {
            rns::RnsPoly p(ctx_->rns(), basis, rns::Domain::Eval);
            for (std::size_t i = 0; i <= info.level; ++i) {
                const uint32_t chip = info.owners[i];
                CINN_ASSERT(
                    emu.memory(chip).contains(info.addrs[poly][i]),
                    "output limb was never stored");
                p.setLimb(i,
                          emu.memory(chip).at(info.addrs[poly][i]).data);
            }
            (poly == 0 ? ct.c0 : ct.c1) = std::move(p);
        }
        outputs.emplace(name, std::move(ct));
    }
    return outputs;
}

} // namespace cinnamon::compiler
