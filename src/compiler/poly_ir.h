/**
 * @file
 * The polynomial IR (Section 4.2, step 2) — the first materialized
 * stage of the pass pipeline.
 *
 * Ciphertext ops are expanded into SSA operations over whole RNS
 * polynomials: a ciphertext is a pair of PolyValues (c0, c1), a
 * multiplication becomes the four cross products plus a relinearizing
 * KeySwitch, a rotation becomes a KeySwitch of c1 plus an on-chip
 * Automorph of c0. The IR is still *placement-free*: values carry a
 * level and the program stream they belong to, but no chip or limb
 * assignment — that is the limb IR's job (limb_ir.h).
 *
 * The keyswitch pass (ks_pass.h) runs over this IR: it annotates
 * KeySwitch ops with the algorithm/batch choice and folds eligible
 * rotation-and-aggregate trees into a single OaBatch macro op whose
 * limb lowering emits the paper's two batched aggregations.
 *
 * Multi-result ops (KeySwitch, OaBatch produce both output
 * polynomials) are expressed with a `results` list; SSA means every
 * value id is defined by exactly one live op.
 */

#ifndef CINNAMON_COMPILER_POLY_IR_H_
#define CINNAMON_COMPILER_POLY_IR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/dsl.h"
#include "compiler/ks_pass.h"

namespace cinnamon::compiler {

/** One RNS polynomial value (limbs 0..level), placement-free. */
struct PolyValue
{
    int id = -1;
    std::size_t level = 0;
    int stream = 0;
    double scale = 0.0; ///< scale of the ciphertext it belongs to
};

enum class PolyOpKind {
    Input,     ///< named external polynomial (name, poly index)
    Add,       ///< elementwise sum (Eval domain)
    Sub,       ///< elementwise difference
    Mul,       ///< elementwise product
    PlainMul,  ///< multiply by a named encoded plaintext
    PlainAdd,  ///< add a named encoded plaintext
    Rescale,   ///< drop the top limb, divide by its prime
    Automorph, ///< Galois automorphism (INTT → map → NTT)
    KeySwitch, ///< hybrid keyswitch of one polynomial → (p0, p1)
    OaBatch,   ///< folded rotate-and-aggregate batch → (c0, c1)
    Output,    ///< named external result (c0, c1)
};

/** One polynomial-level operation. */
struct PolyOp
{
    int id = -1;
    PolyOpKind kind = PolyOpKind::Input;
    std::vector<int> args;    ///< operand value ids
    std::vector<int> results; ///< defined value ids
    std::string name;    ///< input/output/plain name; key name for
                         ///  KeySwitch ("relin" / "galois:<g>")
    int poly = 0;        ///< Input: which ciphertext polynomial
    uint64_t galois = 1; ///< Automorph/KeySwitch Galois element
    int stream = 0;
    std::size_t level = 0;
    double scale = 0.0;

    // KeySwitch annotations (filled by the keyswitch pass).
    KsAlgo algo = KsAlgo::InputBroadcast;
    int batch = -1;     ///< input-broadcast batch id (-1: unbatched)
    int ct_origin = -1; ///< originating ciphertext op id

    // OaBatch payload: args = [rot0_c1, rot0_c0, rot1_c1, rot1_c0,
    // ..., extra0_c0, extra0_c1, ...]; one Galois element per folded
    // rotation; `num_extras` trailing (c0, c1) pairs join the sum
    // after the batched aggregation.
    std::vector<uint64_t> rotation_galois;
    std::size_t num_extras = 0;

    bool dead = false; ///< marked by folding, removed by compaction
};

/** The polynomial IR of one program. */
struct PolyProgram
{
    std::vector<PolyOp> ops;
    std::vector<PolyValue> values;
    int num_streams = 1;
    /** Ciphertext op id → its (c0, c1) value ids. */
    std::map<int, std::array<int, 2>> ct_values;

    int
    newValue(std::size_t level, int stream, double scale)
    {
        PolyValue v;
        v.id = static_cast<int>(values.size());
        v.level = level;
        v.stream = stream;
        v.scale = scale;
        values.push_back(v);
        return v.id;
    }

    std::size_t
    liveOps() const
    {
        std::size_t n = 0;
        for (const auto &op : ops)
            n += op.dead ? 0 : 1;
        return n;
    }
};

/** Expand a ciphertext program (pass "expand-poly"). */
PolyProgram buildPolyProgram(const Program &program, int num_streams);

/**
 * Apply a keyswitch analysis to the poly IR (pass "keyswitch"):
 * annotate every KeySwitch with its algorithm and input-broadcast
 * batch, and fold each *eligible* output-aggregation batch into one
 * OaBatch macro op. Eligibility is the noise-growth bound of
 * Section 2: with per-chip digits of size ceil((level+1)/group) the
 * digit product must stay below the extension modulus, so batches
 * whose digits would exceed `max_digit_size` — or whose group has
 * more chips than the ciphertext has limbs — fall back to
 * per-rotation lowering.
 */
void applyKeyswitchResult(PolyProgram &poly, const Program &program,
                          const KsPassResult &ks, std::size_t group_size,
                          std::size_t max_digit_size);

/** Human-readable listing (--dump-ir=poly). */
std::string printPolyProgram(const PolyProgram &poly);

/**
 * Inter-pass verifier: SSA well-formedness (unique defs, no
 * use-before-def), level/scale consistency per op kind, and stream
 * scoping. Throws VerifyError (pass.h) on the first violation.
 */
void verifyPolyProgram(const PolyProgram &poly);

} // namespace cinnamon::compiler

#endif // CINNAMON_COMPILER_POLY_IR_H_
