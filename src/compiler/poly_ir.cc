#include "compiler/poly_ir.h"

#include <cmath>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "compiler/pass.h"

namespace cinnamon::compiler {

namespace {

/** Expansion state: tracks the (c0, c1) pair of every ciphertext op. */
class PolyBuilder
{
  public:
    PolyBuilder(const Program &program, int num_streams)
        : prog_(&program), ctx_(&program.context())
    {
        out_.num_streams = num_streams;
    }

    PolyProgram
    build()
    {
        for (const auto &op : prog_->ops())
            expand(op);
        return std::move(out_);
    }

  private:
    PolyOp &
    emit(PolyOpKind kind, const CtOp &origin)
    {
        PolyOp op;
        op.id = static_cast<int>(out_.ops.size());
        op.kind = kind;
        op.stream = origin.stream;
        op.level = origin.level;
        op.scale = origin.scale;
        op.ct_origin = origin.id;
        out_.ops.push_back(std::move(op));
        return out_.ops.back();
    }

    int
    value(const CtOp &origin)
    {
        return out_.newValue(origin.level, origin.stream, origin.scale);
    }

    const std::array<int, 2> &
    ct(int ct_op_id) const
    {
        return out_.ct_values.at(ct_op_id);
    }

    void
    expand(const CtOp &op)
    {
        switch (op.kind) {
        case CtOpKind::Input: {
            std::array<int, 2> v{};
            for (int poly = 0; poly < 2; ++poly) {
                PolyOp &in = emit(PolyOpKind::Input, op);
                in.name = op.name;
                in.poly = poly;
                v[poly] = value(op);
                in.results = {v[poly]};
            }
            out_.ct_values[op.id] = v;
            break;
        }
        case CtOpKind::Add:
        case CtOpKind::Sub: {
            const auto &a = ct(op.args[0]);
            const auto &b = ct(op.args[1]);
            std::array<int, 2> v{};
            for (int poly = 0; poly < 2; ++poly) {
                PolyOp &o = emit(op.kind == CtOpKind::Add
                                     ? PolyOpKind::Add
                                     : PolyOpKind::Sub,
                                 op);
                o.args = {a[poly], b[poly]};
                v[poly] = value(op);
                o.results = {v[poly]};
            }
            out_.ct_values[op.id] = v;
            break;
        }
        case CtOpKind::MulPlain: {
            const auto &a = ct(op.args[0]);
            std::array<int, 2> v{};
            for (int poly = 0; poly < 2; ++poly) {
                PolyOp &o = emit(PolyOpKind::PlainMul, op);
                o.name = op.name;
                o.args = {a[poly]};
                v[poly] = value(op);
                o.results = {v[poly]};
            }
            out_.ct_values[op.id] = v;
            break;
        }
        case CtOpKind::AddPlain: {
            // Only c0 changes; c1 is aliased (the limb lowering
            // migrates the alias if a later consumer lives elsewhere).
            const auto &a = ct(op.args[0]);
            PolyOp &o = emit(PolyOpKind::PlainAdd, op);
            o.name = op.name;
            o.args = {a[0]};
            const int r0 = value(op);
            o.results = {r0};
            out_.ct_values[op.id] = {r0, a[1]};
            break;
        }
        case CtOpKind::Rescale: {
            const auto &a = ct(op.args[0]);
            std::array<int, 2> v{};
            for (int poly = 0; poly < 2; ++poly) {
                PolyOp &o = emit(PolyOpKind::Rescale, op);
                o.args = {a[poly]};
                v[poly] = value(op);
                o.results = {v[poly]};
            }
            out_.ct_values[op.id] = v;
            break;
        }
        case CtOpKind::Mul: {
            const auto &a = ct(op.args[0]);
            const auto &b = ct(op.args[1]);
            auto product = [&](int x, int y) {
                PolyOp &o = emit(PolyOpKind::Mul, op);
                o.args = {x, y};
                const int r = value(op);
                o.results = {r};
                return r;
            };
            const int d0 = product(a[0], b[0]);
            const int t0 = product(a[0], b[1]);
            const int t1 = product(a[1], b[0]);
            PolyOp &sum = emit(PolyOpKind::Add, op);
            sum.args = {t0, t1};
            const int d1 = value(op);
            sum.results = {d1};
            const int d2 = product(a[1], b[1]);

            PolyOp &ks = emit(PolyOpKind::KeySwitch, op);
            ks.name = "relin";
            ks.args = {d2};
            const int k0 = value(op);
            const int k1 = value(op);
            ks.results = {k0, k1};

            std::array<int, 2> v{};
            for (int poly = 0; poly < 2; ++poly) {
                PolyOp &o = emit(PolyOpKind::Add, op);
                o.args = {poly == 0 ? d0 : d1, poly == 0 ? k0 : k1};
                v[poly] = value(op);
                o.results = {v[poly]};
            }
            out_.ct_values[op.id] = v;
            break;
        }
        case CtOpKind::Rotate:
        case CtOpKind::Conjugate: {
            const auto &a = ct(op.args[0]);
            const uint64_t galois =
                op.kind == CtOpKind::Conjugate
                    ? ctx_->galoisForConjugation()
                    : ctx_->galoisForRotation(op.rotation);
            if (galois == 1) {
                out_.ct_values[op.id] = a; // rotation by zero
                break;
            }
            PolyOp &ks = emit(PolyOpKind::KeySwitch, op);
            {
                std::ostringstream key;
                key << "galois:" << galois;
                ks.name = key.str();
            }
            ks.galois = galois;
            ks.args = {a[1]};
            const int k0 = value(op);
            const int k1 = value(op);
            ks.results = {k0, k1};

            PolyOp &am = emit(PolyOpKind::Automorph, op);
            am.galois = galois;
            am.args = {a[0]};
            const int r0 = value(op);
            am.results = {r0};

            PolyOp &join = emit(PolyOpKind::Add, op);
            join.args = {r0, k0};
            const int c0 = value(op);
            join.results = {c0};
            out_.ct_values[op.id] = {c0, k1};
            break;
        }
        case CtOpKind::Output: {
            const auto &a = ct(op.args[0]);
            PolyOp &o = emit(PolyOpKind::Output, op);
            o.name = op.name;
            o.args = {a[0], a[1]};
            break;
        }
        }
    }

    const Program *prog_;
    const fhe::CkksContext *ctx_;
    PolyProgram out_;
};

const char *
kindName(PolyOpKind kind)
{
    switch (kind) {
    case PolyOpKind::Input: return "input";
    case PolyOpKind::Add: return "add";
    case PolyOpKind::Sub: return "sub";
    case PolyOpKind::Mul: return "mul";
    case PolyOpKind::PlainMul: return "plain_mul";
    case PolyOpKind::PlainAdd: return "plain_add";
    case PolyOpKind::Rescale: return "rescale";
    case PolyOpKind::Automorph: return "automorph";
    case PolyOpKind::KeySwitch: return "keyswitch";
    case PolyOpKind::OaBatch: return "oa_batch";
    case PolyOpKind::Output: return "output";
    }
    return "?";
}

const char *
algoName(KsAlgo algo)
{
    switch (algo) {
    case KsAlgo::InputBroadcast: return "ib";
    case KsAlgo::OutputAggregation: return "oa";
    case KsAlgo::Cifher: return "cifher";
    }
    return "?";
}

[[noreturn]] void
fail(const std::string &what)
{
    throw VerifyError("poly IR: " + what);
}

} // namespace

PolyProgram
buildPolyProgram(const Program &program, int num_streams)
{
    PolyBuilder builder(program, num_streams);
    return builder.build();
}

void
applyKeyswitchResult(PolyProgram &poly, const Program &program,
                     const KsPassResult &ks, std::size_t group_size,
                     std::size_t max_digit_size)
{
    const fhe::CkksContext &ctx = program.context();

    // Annotate every keyswitch with the algorithm/batch the analysis
    // chose for its originating ciphertext op.
    for (auto &op : poly.ops) {
        if (op.kind != PolyOpKind::KeySwitch || op.ct_origin < 0)
            continue;
        const KsAnnotation &ann = ks.of(op.ct_origin);
        op.algo = ann.algo;
        op.batch = ann.batch;
    }

    // Fold each eligible output-aggregation batch into one macro op
    // sitting at the root's position. Output aggregation uses the
    // per-chip limb partition as its digit partition, so hybrid-
    // keyswitch noise stays bounded only while every digit's product
    // is below the extension modulus (Section 2). Small chip groups
    // make the digits too large; those batches fall back to
    // per-rotation input-broadcast lowering.
    std::map<int, PolyOp> insert_at; // poly op index → OaBatch op
    for (const auto &batch : ks.oa_batches) {
        const CtOp &root = program.op(batch.root);
        const std::size_t digit_size =
            (root.level + group_size) / group_size;
        if (digit_size > max_digit_size ||
            root.level + 1 < group_size)
            continue;

        std::set<int> members(batch.rotations.begin(),
                              batch.rotations.end());
        members.insert(batch.tree_adds.begin(), batch.tree_adds.end());
        members.insert(batch.root);

        PolyOp oa;
        oa.kind = PolyOpKind::OaBatch;
        oa.stream = root.stream;
        oa.level = root.level;
        oa.scale = root.scale;
        oa.ct_origin = root.id;
        oa.algo = KsAlgo::OutputAggregation;
        for (int r : batch.rotations) {
            const CtOp &rot = program.op(r);
            const auto &av = poly.ct_values.at(rot.args[0]);
            oa.args.push_back(av[1]);
            oa.args.push_back(av[0]);
            oa.rotation_galois.push_back(
                ctx.galoisForRotation(rot.rotation));
        }
        for (int e : batch.extras) {
            const auto &ev = poly.ct_values.at(e);
            oa.args.push_back(ev[0]);
            oa.args.push_back(ev[1]);
        }
        oa.num_extras = batch.extras.size();
        // Reuse the root's value ids so downstream consumers are
        // untouched; the dead member defs are compacted away below.
        const auto &rv = poly.ct_values.at(batch.root);
        oa.results = {rv[0], rv[1]};

        int first_root_op = -1;
        for (auto &op : poly.ops) {
            if (op.dead || members.count(op.ct_origin) == 0)
                continue;
            op.dead = true;
            if (op.ct_origin == root.id && first_root_op < 0)
                first_root_op = op.id;
        }
        CINN_ASSERT(first_root_op >= 0,
                    "OA batch root has no poly ops to replace");
        insert_at.emplace(first_root_op, std::move(oa));
    }
    if (insert_at.empty())
        return;

    // Compact: drop dead ops, splice the macro ops in, renumber.
    std::vector<PolyOp> next;
    next.reserve(poly.ops.size());
    for (auto &op : poly.ops) {
        auto it = insert_at.find(op.id);
        if (it != insert_at.end())
            next.push_back(std::move(it->second));
        if (!op.dead)
            next.push_back(std::move(op));
    }
    for (std::size_t i = 0; i < next.size(); ++i)
        next[i].id = static_cast<int>(i);
    poly.ops = std::move(next);
}

std::string
printPolyProgram(const PolyProgram &poly)
{
    std::ostringstream os;
    os << "poly IR: " << poly.liveOps() << " ops, "
       << poly.values.size() << " values, " << poly.num_streams
       << " stream(s)\n";
    for (const auto &op : poly.ops) {
        if (op.dead)
            continue;
        os << "  #" << op.id << " s" << op.stream << " "
           << kindName(op.kind);
        if (!op.name.empty())
            os << " '" << op.name << "'";
        if (op.kind == PolyOpKind::Input)
            os << " poly=" << op.poly;
        if (op.galois != 1)
            os << " galois=" << op.galois;
        if (op.kind == PolyOpKind::KeySwitch) {
            os << " algo=" << algoName(op.algo);
            if (op.batch >= 0)
                os << " batch=" << op.batch;
        }
        if (op.kind == PolyOpKind::OaBatch)
            os << " rotations=" << op.rotation_galois.size()
               << " extras=" << op.num_extras;
        os << " L" << op.level;
        if (!op.args.empty()) {
            os << " (";
            for (std::size_t i = 0; i < op.args.size(); ++i)
                os << (i ? " " : "") << "%" << op.args[i];
            os << ")";
        }
        if (!op.results.empty()) {
            os << " -> ";
            for (std::size_t i = 0; i < op.results.size(); ++i)
                os << (i ? " " : "") << "%" << op.results[i];
        }
        os << "\n";
    }
    return os.str();
}

void
verifyPolyProgram(const PolyProgram &poly)
{
    std::vector<char> defined(poly.values.size(), 0);
    auto str = [](auto v) { return std::to_string(v); };
    auto checkValue = [&](int v, const PolyOp &op) -> const PolyValue & {
        if (v < 0 || v >= static_cast<int>(poly.values.size()))
            fail("op #" + str(op.id) + " references value %" + str(v) +
                 " out of range");
        if (!defined[v])
            fail("op #" + str(op.id) + " uses %" + str(v) +
                 " before its definition");
        return poly.values[v];
    };

    for (const auto &op : poly.ops) {
        if (op.dead)
            continue;
        if (op.stream < 0 || op.stream >= poly.num_streams)
            fail("op #" + str(op.id) + " stream " + str(op.stream) +
                 " outside [0, " + str(poly.num_streams) + ")");
        std::vector<const PolyValue *> args;
        for (int a : op.args)
            args.push_back(&checkValue(a, op));

        switch (op.kind) {
        case PolyOpKind::Input:
            if (op.args.size() != 0 || op.results.size() != 1)
                fail("input op #" + str(op.id) + " malformed");
            break;
        case PolyOpKind::Add:
        case PolyOpKind::Sub:
        case PolyOpKind::Mul: {
            if (args.size() != 2 || op.results.size() != 1)
                fail("binary op #" + str(op.id) + " malformed");
            if (args[0]->level != args[1]->level)
                fail("op #" + str(op.id) + " operand levels differ (" +
                     str(args[0]->level) + " vs " +
                     str(args[1]->level) + ")");
            if (op.kind != PolyOpKind::Mul) {
                const double sa = args[0]->scale, sb = args[1]->scale;
                if (std::abs(sa - sb) >
                    1e-6 * std::max(std::abs(sa), std::abs(sb)))
                    fail("op #" + str(op.id) +
                         " operand scales differ");
            }
            break;
        }
        case PolyOpKind::PlainMul:
        case PolyOpKind::PlainAdd:
        case PolyOpKind::Automorph:
            if (args.size() != 1 || op.results.size() != 1)
                fail("unary op #" + str(op.id) + " malformed");
            if (args[0]->level != op.level)
                fail("op #" + str(op.id) + " level mismatch");
            break;
        case PolyOpKind::Rescale:
            if (args.size() != 1 || op.results.size() != 1)
                fail("rescale op #" + str(op.id) + " malformed");
            if (args[0]->level < 1)
                fail("rescale op #" + str(op.id) + " at level 0");
            if (op.level != args[0]->level - 1)
                fail("rescale op #" + str(op.id) +
                     " must drop exactly one level");
            break;
        case PolyOpKind::KeySwitch:
            if (args.size() != 1 || op.results.size() != 2)
                fail("keyswitch op #" + str(op.id) + " malformed");
            if (args[0]->level != op.level)
                fail("keyswitch op #" + str(op.id) + " level mismatch");
            break;
        case PolyOpKind::OaBatch: {
            const std::size_t expect =
                2 * op.rotation_galois.size() + 2 * op.num_extras;
            if (args.size() != expect || op.results.size() != 2)
                fail("oa_batch op #" + str(op.id) + " malformed");
            if (op.rotation_galois.empty())
                fail("oa_batch op #" + str(op.id) + " has no rotations");
            for (const auto *a : args) {
                if (a->level != op.level)
                    fail("oa_batch op #" + str(op.id) +
                         " member level mismatch");
            }
            break;
        }
        case PolyOpKind::Output:
            if (args.size() != 2 || !op.results.empty())
                fail("output op #" + str(op.id) + " malformed");
            if (args[0]->level != args[1]->level)
                fail("output op #" + str(op.id) +
                     " polynomial levels differ");
            break;
        }

        for (int r : op.results) {
            if (r < 0 || r >= static_cast<int>(poly.values.size()))
                fail("op #" + str(op.id) + " defines value %" + str(r) +
                     " out of range");
            if (defined[r])
                fail("value %" + str(r) + " defined more than once");
            if (poly.values[r].level != op.level)
                fail("op #" + str(op.id) + " result %" + str(r) +
                     " level disagrees with the op");
            defined[r] = 1;
        }
    }
}

} // namespace cinnamon::compiler
