/**
 * @file
 * Parallel keyswitching algorithms (Section 4.3.1, Figure 8).
 *
 * Four engines compute the same hybrid keyswitch over an n-chip
 * limb-partitioned machine, differing only in where communication
 * happens:
 *
 *  - sequential      — single-chip reference (Figure 8a); no comm.
 *  - cifher          — the CiFHER baseline: broadcasts the input limbs
 *                      at mod-up AND the extension limbs of both
 *                      accumulators at mod-down (3 collectives).
 *  - inputBroadcast  — Cinnamon #1 (Figure 8b): one broadcast of the
 *                      input limbs; extension limbs are duplicated on
 *                      every chip so mod-down is local.
 *  - outputAggregation — Cinnamon #2 (Figure 8c): the per-chip limb
 *                      partition *is* the digit partition, so mod-up
 *                      needs no communication; two aggregate+scatter
 *                      collectives at the end.
 *
 * Batched entry points implement the two program patterns the
 * compiler's keyswitch pass exploits: r rotations of one ciphertext
 * (one broadcast total) and r rotations followed by aggregation (two
 * aggregations total).
 */

#ifndef CINNAMON_PARALLEL_KEYSWITCH_H_
#define CINNAMON_PARALLEL_KEYSWITCH_H_

#include <map>
#include <utility>
#include <vector>

#include "fhe/keys.h"
#include "parallel/limb_machine.h"

namespace cinnamon::parallel {

/** The two output polynomials of a keyswitch, sharded per chip. */
struct KsOutput
{
    DistPoly p0;
    DistPoly p1;
};

/**
 * Runs keyswitches on a LimbMachine. Holds no state besides the
 * context/machine bindings; communication tallies accumulate on the
 * machine.
 */
class ParallelKeySwitcher
{
  public:
    ParallelKeySwitcher(const fhe::CkksContext &ctx, LimbMachine &machine)
        : ctx_(&ctx), machine_(&machine)
    {
    }

    /** The digit partition used by output-aggregation keyswitching:
     *  digit c = the limbs resident on chip c. */
    std::vector<rns::Basis> chipDigits(std::size_t level) const;

    /** Cinnamon input-broadcast keyswitching (Figure 8b). */
    KsOutput inputBroadcast(const DistPoly &target, std::size_t level,
                            const fhe::EvalKey &evk) const;

    /**
     * Cinnamon output-aggregation keyswitching (Figure 8c). The
     * evaluation key must be generated for chipDigits(level)
     * (KeyGenerator::makeKeySwitchKeyForDigits).
     */
    KsOutput outputAggregation(const DistPoly &target, std::size_t level,
                               const fhe::EvalKey &evk) const;

    /** CiFHER-style broadcast keyswitching (state-of-the-art baseline). */
    KsOutput cifher(const DistPoly &target, std::size_t level,
                    const fhe::EvalKey &evk) const;

    /**
     * Batched pattern 1 — r rotations of one ciphertext polynomial:
     * a single broadcast is hoisted over all rotations (input-
     * broadcast keyswitching + the compiler pass's batching).
     *
     * @param galois one Galois element per rotation.
     * @param keys the per-element rotation keys (standard digits).
     * @return one keyswitch output per rotation; the automorphism has
     *         already been applied to the keyswitched polynomials.
     */
    std::vector<KsOutput>
    hoistedRotations(const DistPoly &c1, std::size_t level,
                     const std::vector<uint64_t> &galois,
                     const std::map<uint64_t, fhe::EvalKey> &keys) const;

    /**
     * Batched pattern 2 — r rotations of r ciphertext polynomials
     * followed by aggregation: output-aggregation keyswitching with
     * the two final collectives batched across all r keyswitches.
     *
     * @param c1s one distributed polynomial per rotation.
     * @param keys per-element rotation keys generated for
     *        chipDigits(level).
     * @return the aggregated keyswitch output Σ_r KS(auto_{g_r}(c1_r)).
     */
    KsOutput
    rotateAggregate(const std::vector<DistPoly> &c1s, std::size_t level,
                    const std::vector<uint64_t> &galois,
                    const std::map<uint64_t, fhe::EvalKey> &keys) const;

    /** Gather a keyswitch output into plain (full-basis) polynomials. */
    std::pair<rns::RnsPoly, rns::RnsPoly>
    gather(const KsOutput &out, std::size_t level) const;

  private:
    /** Per-chip partial mod-up of one digit to local basis ∪ ext. */
    rns::RnsPoly localModUp(const rns::RnsPoly &digit_poly,
                            const rns::Basis &digit,
                            const rns::Basis &local_out) const;

    /** Per-chip inner-product accumulation against one evk digit. */
    void accumulate(rns::RnsPoly &acc0, rns::RnsPoly &acc1,
                    rns::RnsPoly up, const fhe::EvalKey &evk,
                    std::size_t digit_index,
                    const rns::Basis &local_basis) const;

    const fhe::CkksContext *ctx_;
    LimbMachine *machine_;
};

} // namespace cinnamon::parallel

#endif // CINNAMON_PARALLEL_KEYSWITCH_H_
