#include "parallel/limb_machine.h"

namespace cinnamon::parallel {

rns::Basis
LimbMachine::localBasis(const rns::Basis &full, std::size_t chip) const
{
    rns::Basis out;
    for (uint32_t idx : full) {
        if (chipOf(idx) == chip)
            out.push_back(idx);
    }
    return out;
}

DistPoly
LimbMachine::scatter(const rns::RnsPoly &p) const
{
    DistPoly out;
    out.shard.reserve(chips_);
    for (std::size_t c = 0; c < chips_; ++c)
        out.shard.push_back(p.restrictTo(localBasis(p.basis(), c)));
    return out;
}

rns::RnsPoly
LimbMachine::gather(const DistPoly &p, const rns::Basis &order) const
{
    CINN_ASSERT(p.chips() == chips_, "shard count mismatch");
    rns::RnsPoly out(ctx_->rns(), order, p.shard[0].domain());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const std::size_t c = chipOf(order[i]);
        const int pos = p.shard[c].findPrime(order[i]);
        CINN_ASSERT(pos >= 0, "gather: limb missing from owning chip");
        CINN_ASSERT(p.shard[c].domain() == p.shard[0].domain(),
                    "gather: mixed domains");
        out.setLimb(i, p.shard[c].limb(pos));
    }
    return out;
}

std::vector<rns::RnsPoly>
LimbMachine::broadcast(const DistPoly &p, const rns::Basis &order)
{
    rns::RnsPoly full = gather(p, order);
    countBroadcast(order.size());
    return std::vector<rns::RnsPoly>(chips_, full);
}

DistPoly
LimbMachine::aggregateScatter(const std::vector<rns::RnsPoly> &parts)
{
    CINN_ASSERT(parts.size() == chips_, "aggregateScatter shard mismatch");
    rns::RnsPoly sum = parts[0];
    for (std::size_t c = 1; c < chips_; ++c)
        sum.addInPlace(parts[c]);
    countAggregation(sum.numLimbs());
    return scatter(sum);
}

void
LimbMachine::countBroadcast(std::size_t limbs)
{
    ++stats_.broadcasts;
    stats_.limbs_broadcast += limbs;
}

void
LimbMachine::countAggregation(std::size_t limbs)
{
    ++stats_.aggregations;
    stats_.limbs_aggregated += limbs;
}

} // namespace cinnamon::parallel
