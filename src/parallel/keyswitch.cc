#include "parallel/keyswitch.h"

#include <algorithm>

namespace cinnamon::parallel {

std::vector<rns::Basis>
ParallelKeySwitcher::chipDigits(std::size_t level) const
{
    const rns::Basis full = ctx_->ciphertextBasis(level);
    std::vector<rns::Basis> digits;
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        rns::Basis local = machine_->localBasis(full, c);
        if (!local.empty())
            digits.push_back(std::move(local));
    }
    return digits;
}

rns::RnsPoly
ParallelKeySwitcher::localModUp(const rns::RnsPoly &digit_poly,
                                const rns::Basis &digit,
                                const rns::Basis &local_out) const
{
    // Output limbs not in the digit are produced by partial base
    // conversion; digit limbs present in the output are copied.
    const rns::Basis missing_local = rns::differenceBasis(local_out, digit);
    rns::RnsPoly conv;
    if (!missing_local.empty()) {
        // The converter is cached per (digit → full complement) pair;
        // convertPartial restricts the work to this chip's limbs, so
        // compute cost scales down with the chip count as in the
        // paper's limb-level parallelism.
        const rns::Basis full_target =
            rns::unionBasis(ctx_->ciphertextBasis(ctx_->maxLevel()),
                            ctx_->specialBasis());
        const rns::Basis missing_full =
            rns::differenceBasis(full_target, digit);
        const auto &bc = ctx_->tool().converter(digit, missing_full);
        std::vector<std::size_t> positions;
        for (uint32_t idx : missing_local) {
            auto it = std::find(missing_full.begin(), missing_full.end(),
                                idx);
            CINN_ASSERT(it != missing_full.end(),
                        "mod-up target limb not in converter range");
            positions.push_back(
                static_cast<std::size_t>(it - missing_full.begin()));
        }
        conv = bc.convertPartial(digit_poly, positions);
    }

    rns::RnsPoly out(ctx_->rns(), local_out, rns::Domain::Coeff);
    for (std::size_t i = 0; i < local_out.size(); ++i) {
        int pos = digit_poly.findPrime(local_out[i]);
        if (pos >= 0) {
            out.setLimb(i, digit_poly.limb(pos));
        } else {
            int cpos = conv.findPrime(local_out[i]);
            CINN_ASSERT(cpos >= 0, "partial mod-up missing a limb");
            out.setLimb(i, conv.limb(cpos));
        }
    }
    return out;
}

void
ParallelKeySwitcher::accumulate(rns::RnsPoly &acc0, rns::RnsPoly &acc1,
                                rns::RnsPoly up, const fhe::EvalKey &evk,
                                std::size_t digit_index,
                                const rns::Basis &local_basis) const
{
    CINN_ASSERT(digit_index < evk.parts.size(),
                "evaluation key has too few digits");
    up.toEval();
    acc0.addInPlace(
        up.mul(evk.parts[digit_index].first.restrictTo(local_basis)));
    acc1.addInPlace(
        up.mul(evk.parts[digit_index].second.restrictTo(local_basis)));
}

KsOutput
ParallelKeySwitcher::inputBroadcast(const DistPoly &target,
                                    std::size_t level,
                                    const fhe::EvalKey &evk) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    const rns::Basis special = ctx_->specialBasis();
    const auto digits = ctx_->digits(level);

    // (1) One broadcast: every chip receives all input limbs.
    auto copies = machine_->broadcast(target, ct_basis);

    KsOutput out;
    out.p0.shard.resize(machine_->chips());
    out.p1.shard.resize(machine_->chips());
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        rns::RnsPoly input = copies[c];
        input.toCoeff();
        // Local output basis: resident ciphertext limbs plus the FULL
        // (duplicated) extension basis — the key insight that makes
        // the mod-down communication-free.
        const rns::Basis local_ct = machine_->localBasis(ct_basis, c);
        const rns::Basis local_out = rns::unionBasis(local_ct, special);

        rns::RnsPoly acc0(ctx_->rns(), local_out, rns::Domain::Eval);
        rns::RnsPoly acc1(ctx_->rns(), local_out, rns::Domain::Eval);
        for (std::size_t j = 0; j < digits.size(); ++j) {
            rns::RnsPoly digit = input.restrictTo(digits[j]);
            accumulate(acc0, acc1,
                       localModUp(digit, digits[j], local_out), evk, j,
                       local_out);
        }
        acc0.toCoeff();
        acc1.toCoeff();
        out.p0.shard[c] = ctx_->tool().modDown(acc0, local_ct, special);
        out.p1.shard[c] = ctx_->tool().modDown(acc1, local_ct, special);
        out.p0.shard[c].toEval();
        out.p1.shard[c].toEval();
    }
    return out;
}

KsOutput
ParallelKeySwitcher::outputAggregation(const DistPoly &target,
                                       std::size_t level,
                                       const fhe::EvalKey &evk) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    const rns::Basis special = ctx_->specialBasis();
    const rns::Basis full_out = rns::unionBasis(ct_basis, special);
    const auto digits = chipDigits(level);

    // Each chip's resident limbs are its digit: no broadcast at all.
    std::vector<rns::RnsPoly> part0(machine_->chips());
    std::vector<rns::RnsPoly> part1(machine_->chips());
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        if (c >= digits.size()) {
            // Chip holds no limbs at this level; contributes zero.
            part0[c] = rns::RnsPoly(ctx_->rns(), ct_basis,
                                    rns::Domain::Coeff);
            part1[c] = part0[c];
            continue;
        }
        rns::RnsPoly digit_poly = target.shard[c];
        digit_poly.toCoeff();

        rns::RnsPoly acc0(ctx_->rns(), full_out, rns::Domain::Eval);
        rns::RnsPoly acc1(ctx_->rns(), full_out, rns::Domain::Eval);
        accumulate(acc0, acc1,
                   localModUp(digit_poly, digits[c], full_out), evk, c,
                   full_out);
        acc0.toCoeff();
        acc1.toCoeff();
        // Mod-down locally; mod-down and aggregation commute.
        part0[c] = ctx_->tool().modDown(acc0, ct_basis, special);
        part1[c] = ctx_->tool().modDown(acc1, ct_basis, special);
    }

    // Two aggregate+scatter collectives, one per output polynomial.
    KsOutput out;
    out.p0 = machine_->aggregateScatter(part0);
    out.p1 = machine_->aggregateScatter(part1);
    for (auto &s : out.p0.shard)
        s.toEval();
    for (auto &s : out.p1.shard)
        s.toEval();
    return out;
}

KsOutput
ParallelKeySwitcher::cifher(const DistPoly &target, std::size_t level,
                            const fhe::EvalKey &evk) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    const rns::Basis special = ctx_->specialBasis();
    const auto digits = ctx_->digits(level);

    // (1) Broadcast of the input limbs, as in input-broadcast.
    auto copies = machine_->broadcast(target, ct_basis);

    // Per chip: extension limbs are PARTITIONED (not duplicated).
    std::vector<rns::RnsPoly> acc0(machine_->chips());
    std::vector<rns::RnsPoly> acc1(machine_->chips());
    std::vector<rns::Basis> local_ct(machine_->chips());
    std::vector<rns::Basis> local_sp(machine_->chips());
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        rns::RnsPoly input = copies[c];
        input.toCoeff();
        local_ct[c] = machine_->localBasis(ct_basis, c);
        local_sp[c] = machine_->localBasis(special, c);
        const rns::Basis local_out =
            rns::unionBasis(local_ct[c], local_sp[c]);

        acc0[c] = rns::RnsPoly(ctx_->rns(), local_out, rns::Domain::Eval);
        acc1[c] = rns::RnsPoly(ctx_->rns(), local_out, rns::Domain::Eval);
        for (std::size_t j = 0; j < digits.size(); ++j) {
            rns::RnsPoly digit = input.restrictTo(digits[j]);
            accumulate(acc0[c], acc1[c],
                       localModUp(digit, digits[j], local_out), evk, j,
                       local_out);
        }
        acc0[c].toCoeff();
        acc1[c].toCoeff();
    }

    // (2)+(3) Mod-down requires every chip to see the accumulators'
    // limbs: two more full broadcasts (the paper's "2 broadcasts in
    // (6)" that batching cannot remove). Functionally only the
    // extension limbs are consumed off-chip, but the whole polynomial
    // is broadcast, which is the traffic CiFHER pays.
    auto gatherExt = [&](std::vector<rns::RnsPoly> &acc) {
        rns::RnsPoly ext(ctx_->rns(), special, rns::Domain::Coeff);
        for (std::size_t i = 0; i < special.size(); ++i) {
            const std::size_t c = machine_->chipOf(special[i]);
            int pos = acc[c].findPrime(special[i]);
            CINN_ASSERT(pos >= 0, "cifher: extension limb missing");
            ext.setLimb(i, acc[c].limb(pos));
        }
        machine_->countBroadcast(ct_basis.size() + special.size());
        return ext;
    };
    rns::RnsPoly ext0 = gatherExt(acc0);
    rns::RnsPoly ext1 = gatherExt(acc1);

    KsOutput out;
    out.p0.shard.resize(machine_->chips());
    out.p1.shard.resize(machine_->chips());
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        auto finish = [&](const rns::RnsPoly &acc, const rns::RnsPoly &ext) {
            // out_i = P^{-1} (acc_i - conv(ext)_i) over local limbs.
            rns::RnsPoly keep = acc.restrictTo(local_ct[c]);
            if (!local_ct[c].empty()) {
                const auto &bc = ctx_->tool().converter(special,
                                                        local_ct[c]);
                keep.subInPlace(bc.convert(ext));
                keep.mulScalarPerLimb(
                    ctx_->tool().extProductInverse(local_ct[c], special));
            }
            keep.toEval();
            return keep;
        };
        out.p0.shard[c] = finish(acc0[c], ext0);
        out.p1.shard[c] = finish(acc1[c], ext1);
    }
    return out;
}

std::vector<KsOutput>
ParallelKeySwitcher::hoistedRotations(
    const DistPoly &c1, std::size_t level,
    const std::vector<uint64_t> &galois,
    const std::map<uint64_t, fhe::EvalKey> &keys) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    const rns::Basis special = ctx_->specialBasis();
    const auto digits = ctx_->digits(level);

    // ONE broadcast for the entire batch (the compiler pass's
    // reordering: the broadcast commutes with the per-rotation
    // automorphisms, which are limb-local).
    auto copies = machine_->broadcast(c1, ct_basis);

    std::vector<KsOutput> results(galois.size());
    for (auto &r : results) {
        r.p0.shard.resize(machine_->chips());
        r.p1.shard.resize(machine_->chips());
    }

    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        rns::RnsPoly input = copies[c];
        input.toCoeff();
        const rns::Basis local_ct = machine_->localBasis(ct_basis, c);
        const rns::Basis local_out = rns::unionBasis(local_ct, special);

        for (std::size_t r = 0; r < galois.size(); ++r) {
            rns::RnsPoly rotated = input.automorphism(galois[r]);
            const fhe::EvalKey &evk = keys.at(galois[r]);

            rns::RnsPoly acc0(ctx_->rns(), local_out, rns::Domain::Eval);
            rns::RnsPoly acc1(ctx_->rns(), local_out, rns::Domain::Eval);
            for (std::size_t j = 0; j < digits.size(); ++j) {
                rns::RnsPoly digit = rotated.restrictTo(digits[j]);
                accumulate(acc0, acc1,
                           localModUp(digit, digits[j], local_out), evk,
                           j, local_out);
            }
            acc0.toCoeff();
            acc1.toCoeff();
            results[r].p0.shard[c] =
                ctx_->tool().modDown(acc0, local_ct, special);
            results[r].p1.shard[c] =
                ctx_->tool().modDown(acc1, local_ct, special);
            results[r].p0.shard[c].toEval();
            results[r].p1.shard[c].toEval();
        }
    }
    return results;
}

KsOutput
ParallelKeySwitcher::rotateAggregate(
    const std::vector<DistPoly> &c1s, std::size_t level,
    const std::vector<uint64_t> &galois,
    const std::map<uint64_t, fhe::EvalKey> &keys) const
{
    CINN_ASSERT(c1s.size() == galois.size(),
                "one Galois element per input required");
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    const rns::Basis special = ctx_->specialBasis();
    const rns::Basis full_out = rns::unionBasis(ct_basis, special);
    const auto digits = chipDigits(level);

    std::vector<rns::RnsPoly> part0(machine_->chips());
    std::vector<rns::RnsPoly> part1(machine_->chips());
    for (std::size_t c = 0; c < machine_->chips(); ++c) {
        part0[c] = rns::RnsPoly(ctx_->rns(), ct_basis, rns::Domain::Coeff);
        part1[c] = part0[c];
        if (c >= digits.size())
            continue;

        // Accumulate ALL r keyswitches' evalkey products locally
        // before the (batched) collective.
        rns::RnsPoly acc0(ctx_->rns(), full_out, rns::Domain::Eval);
        rns::RnsPoly acc1(ctx_->rns(), full_out, rns::Domain::Eval);
        for (std::size_t r = 0; r < c1s.size(); ++r) {
            rns::RnsPoly digit_poly = c1s[r].shard[c];
            digit_poly.toCoeff();
            rns::RnsPoly rotated = digit_poly.automorphism(galois[r]);
            accumulate(acc0, acc1,
                       localModUp(rotated, digits[c], full_out),
                       keys.at(galois[r]), c, full_out);
        }
        acc0.toCoeff();
        acc1.toCoeff();
        part0[c] = ctx_->tool().modDown(acc0, ct_basis, special);
        part1[c] = ctx_->tool().modDown(acc1, ct_basis, special);
    }

    // TWO aggregations for the whole batch.
    KsOutput out;
    out.p0 = machine_->aggregateScatter(part0);
    out.p1 = machine_->aggregateScatter(part1);
    for (auto &s : out.p0.shard)
        s.toEval();
    for (auto &s : out.p1.shard)
        s.toEval();
    return out;
}

std::pair<rns::RnsPoly, rns::RnsPoly>
ParallelKeySwitcher::gather(const KsOutput &out, std::size_t level) const
{
    const rns::Basis ct_basis = ctx_->ciphertextBasis(level);
    return {machine_->gather(out.p0, ct_basis),
            machine_->gather(out.p1, ct_basis)};
}

} // namespace cinnamon::parallel
