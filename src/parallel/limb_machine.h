/**
 * @file
 * A virtual multi-chip machine with limb-level data placement.
 *
 * Cinnamon partitions a polynomial's limbs across n chips modularly:
 * chip c holds Q_c = { q_i : i mod n = c } (Section 4.3.1). This
 * class models that placement for functional execution: distributed
 * polynomials are stored as per-chip shards, and all data movement
 * between chips must go through the explicit collective primitives,
 * which tally communication volume. The keyswitching engines built on
 * top therefore cannot cheat — any cross-chip dependency shows up in
 * the communication statistics.
 */

#ifndef CINNAMON_PARALLEL_LIMB_MACHINE_H_
#define CINNAMON_PARALLEL_LIMB_MACHINE_H_

#include <cstddef>
#include <vector>

#include "fhe/params.h"
#include "rns/poly.h"

namespace cinnamon::parallel {

/** Communication tally for one or more collective operations. */
struct CommStats
{
    std::size_t broadcasts = 0;     ///< collective broadcast/allgather ops
    std::size_t aggregations = 0;   ///< collective reduce(+scatter) ops
    std::size_t limbs_broadcast = 0;
    std::size_t limbs_aggregated = 0;

    /** Total limb transfers (the unit the paper's Section 7.3 plots). */
    std::size_t totalLimbs() const
    {
        return limbs_broadcast + limbs_aggregated;
    }

    CommStats &
    operator+=(const CommStats &o)
    {
        broadcasts += o.broadcasts;
        aggregations += o.aggregations;
        limbs_broadcast += o.limbs_broadcast;
        limbs_aggregated += o.limbs_aggregated;
        return *this;
    }
};

/** A polynomial sharded across chips (shard[c] holds chip c's limbs). */
struct DistPoly
{
    std::vector<rns::RnsPoly> shard;

    std::size_t chips() const { return shard.size(); }
};

/**
 * The n-chip limb-partitioned machine.
 *
 * Thread-compatible; holds no polynomial state itself, only the
 * partitioning rules and the running communication tally.
 */
class LimbMachine
{
  public:
    LimbMachine(const fhe::CkksContext &ctx, std::size_t num_chips)
        : ctx_(&ctx), chips_(num_chips)
    {
        CINN_ASSERT(num_chips >= 1, "machine needs at least one chip");
    }

    std::size_t chips() const { return chips_; }
    const fhe::CkksContext &context() const { return *ctx_; }

    /** Chip that owns prime index `idx` under modular partitioning. */
    std::size_t chipOf(uint32_t idx) const { return idx % chips_; }

    /** The sub-basis of `full` resident on `chip` (modular policy). */
    rns::Basis localBasis(const rns::Basis &full, std::size_t chip) const;

    /**
     * Place a polynomial onto the machine in the canonical modular
     * layout. This models the steady-state layout, not a transfer, so
     * no communication is counted.
     */
    DistPoly scatter(const rns::RnsPoly &p) const;

    /** Reassemble a distributed polynomial in `order` basis order. */
    rns::RnsPoly gather(const DistPoly &p, const rns::Basis &order) const;

    /**
     * Broadcast/allgather: every chip ends up with all limbs of `p`.
     * Counts one broadcast of p's total limb count.
     *
     * @return per-chip copies of the full polynomial in `order` order.
     */
    std::vector<rns::RnsPoly> broadcast(const DistPoly &p,
                                        const rns::Basis &order);

    /**
     * Aggregate + scatter: sums per-chip polynomials (all over the
     * same full basis) and re-distributes the sum modularly. Counts
     * one aggregation of the full limb count.
     */
    DistPoly aggregateScatter(const std::vector<rns::RnsPoly> &parts);

    /** Tally a broadcast performed by an engine that moves data itself. */
    void countBroadcast(std::size_t limbs);

    /** Tally an aggregation performed by an engine itself. */
    void countAggregation(std::size_t limbs);

    CommStats &stats() { return stats_; }
    const CommStats &stats() const { return stats_; }
    void resetStats() { stats_ = CommStats{}; }

  private:
    const fhe::CkksContext *ctx_;
    std::size_t chips_;
    CommStats stats_;
};

} // namespace cinnamon::parallel

#endif // CINNAMON_PARALLEL_LIMB_MACHINE_H_
