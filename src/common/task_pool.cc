#include "common/task_pool.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"

namespace cinnamon {
namespace {

/** Set while a thread runs chunks for a pool (nested-job detection). */
thread_local const TaskPool *t_owning_pool = nullptr;

struct PoolMetrics
{
    Counter &jobs;
    Counter &jobs_nested;
    Counter &chunks;
    Counter &chunks_stolen;
    Gauge &queue_depth;
    Gauge &workers;
};

/** Registry lookups lock a map; resolve the instruments once. */
PoolMetrics &
poolMetrics()
{
    static PoolMetrics m{
        MetricsRegistry::global().counter("pool.jobs"),
        MetricsRegistry::global().counter("pool.jobs_nested"),
        MetricsRegistry::global().counter("pool.chunks"),
        MetricsRegistry::global().counter("pool.chunks_stolen"),
        MetricsRegistry::global().gauge("pool.queue_depth"),
        MetricsRegistry::global().gauge("pool.workers"),
    };
    return m;
}

} // namespace

TaskPool::TaskPool(std::size_t parallelism)
{
    if (parallelism == 0)
        parallelism = defaultParallelism();
    spawn(parallelism - 1);
}

TaskPool::~TaskPool()
{
    joinAll();
}

TaskPool &
TaskPool::global()
{
    static TaskPool pool;
    return pool;
}

std::size_t
TaskPool::defaultParallelism()
{
    static const std::size_t par = [] {
        if (const char *env = std::getenv("CINNAMON_WORKERS")) {
            const long v = std::atol(env);
            if (v >= 1)
                return static_cast<std::size_t>(v);
        }
        return defaultWorkers();
    }();
    return par;
}

bool
TaskPool::onWorkerThread() const
{
    return t_owning_pool == this;
}

void
TaskPool::spawn(std::size_t threads)
{
    threads_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        threads_.emplace_back([this] { workerLoop(); });
    poolMetrics().workers.set(static_cast<double>(parallelism()));
}

void
TaskPool::joinAll()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
}

void
TaskPool::resize(std::size_t parallelism)
{
    if (parallelism == 0)
        parallelism = defaultParallelism();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CINN_ASSERT(queue_.empty(),
                    "TaskPool::resize with jobs in flight");
    }
    if (parallelism == this->parallelism())
        return;
    joinAll();
    spawn(parallelism - 1);
}

bool
TaskPool::assistOne(Job &job, bool stolen)
{
    const std::size_t c =
        job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.chunks)
        return false;
    poolMetrics().chunks.add(1);
    if (stolen)
        poolMetrics().chunks_stolen.add(1);

    // Static boundaries: a pure function of (n, chunks, c).
    const std::size_t lo = c * job.n / job.chunks;
    const std::size_t hi = (c + 1) * job.n / job.chunks;
    std::size_t i = lo;
    try {
        for (; i < hi; ++i)
            (*job.fn)(i);
    } catch (...) {
        // First failure wins *within* the chunk (the loop stops);
        // the lowest index wins across chunks.
        std::lock_guard<std::mutex> lock(job.err_mutex);
        if (!job.err || i < job.err_index) {
            job.err = std::current_exception();
            job.err_index = i;
        }
    }

    if (job.unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(job.done_mutex);
        job.done_cv.notify_all();
    }
    return true;
}

void
TaskPool::runJob(std::size_t n, std::size_t chunks,
                 std::function<void(std::size_t)> &fn)
{
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->n = n;
    job->chunks = chunks;
    job->unfinished.store(chunks, std::memory_order_relaxed);

    const bool nested = onWorkerThread();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(job);
        poolMetrics().queue_depth.set(
            static_cast<double>(queue_.size()));
    }
    cv_.notify_all();
    poolMetrics().jobs.add(1);
    if (nested)
        poolMetrics().jobs_nested.add(1);

    // Assist: drain our own job's chunks. This is what makes nested
    // submission deadlock-free — the submitter never depends on any
    // other thread to finish claiming.
    while (assistOne(*job, /*stolen=*/false)) {
    }
    {
        // Drop the job from the queue once fully claimed so idle
        // workers stop looking at it (any thread may get here first).
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->get() == job.get()) {
                queue_.erase(it);
                break;
            }
        }
        poolMetrics().queue_depth.set(
            static_cast<double>(queue_.size()));
    }
    {
        std::unique_lock<std::mutex> lock(job->done_mutex);
        job->done_cv.wait(lock, [&] {
            return job->unfinished.load(std::memory_order_acquire) ==
                   0;
        });
    }
    if (job->err)
        std::rethrow_exception(job->err);
}

void
TaskPool::workerLoop()
{
    t_owning_pool = this;
    for (;;) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [&] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            job = queue_.front();
        }
        if (!assistOne(*job, /*stolen=*/true)) {
            // Fully claimed: retire it from the queue if it is still
            // there, then look for other work.
            std::lock_guard<std::mutex> lock(mutex_);
            for (auto it = queue_.begin(); it != queue_.end(); ++it) {
                if (it->get() == job.get()) {
                    queue_.erase(it);
                    break;
                }
            }
            poolMetrics().queue_depth.set(
                static_cast<double>(queue_.size()));
        }
    }
}

} // namespace cinnamon
