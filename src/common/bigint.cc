#include "common/bigint.h"

#include <cmath>

#include "common/logging.h"

namespace cinnamon {

using uint128_t = unsigned __int128;

BigUInt::BigUInt(uint64_t v)
{
    if (v != 0)
        words_.push_back(v);
}

void
BigUInt::trim()
{
    while (!words_.empty() && words_.back() == 0)
        words_.pop_back();
}

void
BigUInt::add(const BigUInt &other)
{
    if (words_.size() < other.words_.size())
        words_.resize(other.words_.size(), 0);
    uint64_t carry = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        uint128_t s = (uint128_t)words_[i] + carry;
        if (i < other.words_.size())
            s += other.words_[i];
        words_[i] = static_cast<uint64_t>(s);
        carry = static_cast<uint64_t>(s >> 64);
    }
    if (carry)
        words_.push_back(carry);
}

void
BigUInt::sub(const BigUInt &other)
{
    CINN_ASSERT(compare(other) >= 0, "BigUInt::sub would underflow");
    uint64_t borrow = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        uint128_t o = borrow;
        if (i < other.words_.size())
            o += other.words_[i];
        if ((uint128_t)words_[i] >= o) {
            words_[i] = static_cast<uint64_t>((uint128_t)words_[i] - o);
            borrow = 0;
        } else {
            words_[i] = static_cast<uint64_t>(
                ((uint128_t)1 << 64) + words_[i] - o);
            borrow = 1;
        }
    }
    CINN_ASSERT(borrow == 0, "BigUInt::sub underflow");
    trim();
}

void
BigUInt::mulWord(uint64_t w)
{
    if (w == 0) {
        words_.clear();
        return;
    }
    uint64_t carry = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        uint128_t p = (uint128_t)words_[i] * w + carry;
        words_[i] = static_cast<uint64_t>(p);
        carry = static_cast<uint64_t>(p >> 64);
    }
    if (carry)
        words_.push_back(carry);
}

int
BigUInt::compare(const BigUInt &other) const
{
    if (words_.size() != other.words_.size())
        return words_.size() < other.words_.size() ? -1 : 1;
    for (std::size_t i = words_.size(); i-- > 0;) {
        if (words_[i] != other.words_[i])
            return words_[i] < other.words_[i] ? -1 : 1;
    }
    return 0;
}

double
BigUInt::toDouble() const
{
    double out = 0.0;
    // Horner over words, most significant first.
    for (std::size_t i = words_.size(); i-- > 0;)
        out = out * std::ldexp(1.0, 64) + static_cast<double>(words_[i]);
    return out;
}

BigUInt
BigUInt::shiftRight(unsigned k) const
{
    BigUInt out;
    const unsigned wshift = k / 64;
    const unsigned bshift = k % 64;
    if (wshift >= words_.size())
        return out;
    out.words_.assign(words_.begin() + wshift, words_.end());
    if (bshift != 0) {
        for (std::size_t i = 0; i + 1 < out.words_.size(); ++i) {
            out.words_[i] = (out.words_[i] >> bshift) |
                            (out.words_[i + 1] << (64 - bshift));
        }
        out.words_.back() >>= bshift;
    }
    out.trim();
    return out;
}

std::size_t
BigUInt::bitLength() const
{
    if (words_.empty())
        return 0;
    std::size_t bits = (words_.size() - 1) * 64;
    uint64_t top = words_.back();
    while (top != 0) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

} // namespace cinnamon
