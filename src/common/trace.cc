#include "common/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cinnamon {

namespace {

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeNumber(std::ostream &os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
}

void
writeArgs(std::ostream &os, const TraceEvent &e)
{
    if (e.num_args.empty() && e.str_args.empty())
        return;
    os << ",\"args\":{";
    bool first = true;
    for (const auto &[k, v] : e.num_args) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(k) << "\":";
        writeNumber(os, v);
    }
    for (const auto &[k, v] : e.str_args) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(k) << "\":\"" << jsonEscape(v) << '"';
    }
    os << '}';
}

} // namespace

void
TraceRecorder::complete(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceRecorder::setProcessName(uint32_t pid, std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    process_names_[pid] = std::move(name);
}

void
TraceRecorder::setThreadName(uint32_t pid, uint32_t tid,
                             std::string name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    thread_names_[{pid, tid}] = std::move(name);
}

std::size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    process_names_.clear();
    thread_names_.clear();
}

std::vector<TraceEvent>
TraceRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceRecorder::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const auto &[pid, name] : process_names_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << jsonEscape(name)
           << "\"}}";
    }
    for (const auto &[key, name] : thread_names_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << key.first << ",\"tid\":" << key.second
           << ",\"args\":{\"name\":\"" << jsonEscape(name) << "\"}}";
    }
    for (const auto &e : events_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
           << jsonEscape(e.category) << "\",\"ph\":\"X\",\"pid\":"
           << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
        writeNumber(os, e.ts_us);
        os << ",\"dur\":";
        writeNumber(os, e.dur_us);
        writeArgs(os, e);
        os << '}';
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string
TraceRecorder::json() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

bool
TraceRecorder::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJson(out);
    return static_cast<bool>(out);
}

} // namespace cinnamon
