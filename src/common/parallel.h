/**
 * @file
 * Minimal fork-join helper for CPU-bound compiler work.
 *
 * parallelFor runs `fn(i)` for i in [0, n) on up to `workers` threads
 * pulling indices from a shared atomic counter. It is deliberately
 * tiny: no pool reuse, no work stealing — compiler passes call it a
 * handful of times per compile with coarse-grained items (one compile
 * unit, one chip), where thread spawn cost is noise. `workers <= 1`
 * (or n <= 1) degenerates to a plain serial loop, which keeps
 * single-threaded builds and tests byte-for-byte reproducible paths.
 *
 * The first exception thrown by any item is rethrown on the calling
 * thread after all workers join; later exceptions are dropped.
 */

#ifndef CINNAMON_COMMON_PARALLEL_H_
#define CINNAMON_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace cinnamon {

/** Number of workers to use when a config says "auto" (0). */
inline std::size_t
defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

template <typename Fn>
void
parallelFor(std::size_t n, std::size_t workers, Fn &&fn)
{
    if (workers == 0)
        workers = defaultWorkers();
    if (workers > n)
        workers = n;
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    auto body = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
            }
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        threads.emplace_back(body);
    body();
    for (auto &t : threads)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

} // namespace cinnamon

#endif // CINNAMON_COMMON_PARALLEL_H_
