/**
 * @file
 * Fork-join helper for CPU-bound work, now a thin veneer over the
 * persistent process-wide TaskPool (common/task_pool.h).
 *
 * parallelFor runs `fn(i)` for i in [0, n) on the shared pool,
 * statically partitioned over at most `workers` participants. It used
 * to spawn fresh threads per call and dropped all but one arbitrary
 * worker exception; both are gone: threads persist in the pool, and
 * the exception at the LOWEST failing index is rethrown — the same
 * one a serial run surfaces — with later ones discarded
 * deterministically.
 *
 * `workers <= 1` (or n <= 1) degenerates to a plain serial loop on
 * the calling thread, which keeps single-threaded builds and tests on
 * byte-for-byte reproducible paths. The pool's own size (set by
 * `CINNAMON_WORKERS`, hardware concurrency, or the serving tier's
 * resize) is a second cap: `workers` can restrict a call below the
 * pool's parallelism but never raises it above.
 */

#ifndef CINNAMON_COMMON_PARALLEL_H_
#define CINNAMON_COMMON_PARALLEL_H_

#include <cstddef>
#include <thread>

#include "common/task_pool.h"

namespace cinnamon {

/** Number of workers to use when a config says "auto" (0). */
inline std::size_t
defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

template <typename Fn>
void
parallelFor(std::size_t n, std::size_t workers, Fn &&fn)
{
    if (workers == 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    TaskPool::global().forEach(n, workers, std::forward<Fn>(fn));
}

} // namespace cinnamon

#endif // CINNAMON_COMMON_PARALLEL_H_
