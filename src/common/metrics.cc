#include "common/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cinnamon {

namespace {

/** Linear-interpolated percentile of a sorted sample. */
double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted[0];
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string
formatNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", v);
    return buf;
}

bool
hasPrefix(const std::string &name, const std::string &prefix)
{
    return name.compare(0, prefix.size(), prefix) == 0;
}

} // namespace

void
Histogram::observe(double sample)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(sample);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::vector<double> sorted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sorted = samples_;
    }
    Snapshot s;
    if (sorted.empty())
        return s;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    for (double v : sorted)
        s.sum += v;
    s.mean = s.sum / static_cast<double>(s.count);
    s.p50 = percentileSorted(sorted, 50);
    s.p95 = percentileSorted(sorted, 95);
    s.p99 = percentileSorted(sorted, 99);
    return s;
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
MetricsRegistry::textSnapshot(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const auto &[name, c] : counters_) {
        if (!hasPrefix(name, prefix))
            continue;
        out << name << ' ' << formatNumber(c->value()) << '\n';
    }
    for (const auto &[name, g] : gauges_) {
        if (!hasPrefix(name, prefix))
            continue;
        out << name << ' ' << formatNumber(g->value()) << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        if (!hasPrefix(name, prefix))
            continue;
        const auto s = h->snapshot();
        out << name << " count=" << s.count << " mean="
            << formatNumber(s.mean) << " p50=" << formatNumber(s.p50)
            << " p95=" << formatNumber(s.p95)
            << " p99=" << formatNumber(s.p99) << '\n';
    }
    return out.str();
}

std::string
MetricsRegistry::jsonSnapshot(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    auto emitScalar = [&](const auto &map, bool &first) {
        for (const auto &[name, m] : map) {
            if (!hasPrefix(name, prefix))
                continue;
            if (!first)
                out << ',';
            first = false;
            out << '"' << name << "\":" << formatNumber(m->value());
        }
    };
    out << "{\"counters\":{";
    bool first = true;
    emitScalar(counters_, first);
    out << "},\"gauges\":{";
    first = true;
    emitScalar(gauges_, first);
    out << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!hasPrefix(name, prefix))
            continue;
        if (!first)
            out << ',';
        first = false;
        const auto s = h->snapshot();
        out << '"' << name << "\":{\"count\":" << s.count
            << ",\"sum\":" << formatNumber(s.sum)
            << ",\"min\":" << formatNumber(s.min)
            << ",\"max\":" << formatNumber(s.max)
            << ",\"mean\":" << formatNumber(s.mean)
            << ",\"p50\":" << formatNumber(s.p50)
            << ",\"p95\":" << formatNumber(s.p95)
            << ",\"p99\":" << formatNumber(s.p99) << '}';
    }
    out << "}}";
    return out.str();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace cinnamon
