/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library).
 * fatal()  — the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments).
 * warn()   — something is suspicious but execution can continue.
 *
 * CINN_ASSERT(cond, msg) panics when cond is false. It is kept enabled in
 * release builds because the cost is negligible at the granularity we use
 * it (per-limb, not per-coefficient).
 */

#ifndef CINNAMON_COMMON_LOGGING_H_
#define CINNAMON_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cinnamon {

/** Abort with a message; used for internal invariant violations. */
[[noreturn]] void panic(const std::string &msg);

/** Exit with an error; used for user-caused configuration errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

} // namespace cinnamon

#define CINN_ASSERT(cond, msg)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream cinn_assert_oss_;                            \
            cinn_assert_oss_ << "assertion failed at " << __FILE__ << ":"   \
                             << __LINE__ << ": " #cond " — " << msg;        \
            ::cinnamon::panic(cinn_assert_oss_.str());                      \
        }                                                                   \
    } while (0)

#define CINN_FATAL_UNLESS(cond, msg)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream cinn_fatal_oss_;                             \
            cinn_fatal_oss_ << msg;                                         \
            ::cinnamon::fatal(cinn_fatal_oss_.str());                       \
        }                                                                   \
    } while (0)

#endif // CINNAMON_COMMON_LOGGING_H_
