/**
 * @file
 * A thread-safe, sharded, insert-only memoization cache.
 *
 * The serve runtime's worker pool compiles and simulates kernels
 * concurrently; this cache lets all workers share one compiled-program
 * and one sim-result store without a global lock. Keys hash to one of
 * `kShards` shards, each guarded by its own mutex; a miss installs an
 * entry slot under the shard lock and then computes the value under
 * the entry's own lock, so two workers asking for the *same* key wait
 * on each other (the value is computed exactly once) while workers on
 * *different* keys proceed in parallel — even within a shard, because
 * the shard lock is never held during computation.
 *
 * Entries are never evicted, so references returned by getOrCompute()
 * remain valid for the cache's lifetime (callers hold them across
 * calls, exactly like the unsynchronized std::map they replace).
 */

#ifndef CINNAMON_COMMON_SHARDED_CACHE_H_
#define CINNAMON_COMMON_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace cinnamon {

/** Hit/miss counters for one cache (or a sum over several). */
struct CacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;

    std::size_t lookups() const { return hits + misses; }

    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(lookups());
    }

    CacheStats &
    operator+=(const CacheStats &o)
    {
        hits += o.hits;
        misses += o.misses;
        return *this;
    }
};

/** String-keyed sharded cache of immutable values. */
template <typename V> class ShardedCache
{
  public:
    /**
     * Fetch the value for `key`, computing it with `make` on a miss.
     * `make` runs at most once per key across all threads.
     */
    template <typename F>
    const V &
    getOrCompute(const std::string &key, F &&make)
    {
        Shard &shard = shards_[shardOf(key)];
        std::shared_ptr<Entry> entry;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            auto it = shard.entries.find(key);
            if (it == shard.entries.end())
                it = shard.entries
                         .emplace(key, std::make_shared<Entry>())
                         .first;
            entry = it->second;
        }
        // Compute (or wait for the computing thread) outside the
        // shard lock so unrelated keys never serialize.
        std::lock_guard<std::mutex> lock(entry->mutex);
        if (!entry->value) {
            entry->value = std::make_unique<V>(make());
            misses_.fetch_add(1, std::memory_order_relaxed);
        } else {
            hits_.fetch_add(1, std::memory_order_relaxed);
        }
        return *entry->value;
    }

    /** Snapshot of the hit/miss counters. */
    CacheStats
    stats() const
    {
        CacheStats s;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        return s;
    }

    /** Number of cached values (for tests; takes every shard lock). */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const Shard &shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            n += shard.entries.size();
        }
        return n;
    }

  private:
    struct Entry
    {
        std::mutex mutex;
        std::unique_ptr<V> value;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::map<std::string, std::shared_ptr<Entry>> entries;
    };

    static constexpr std::size_t kShards = 16;

    static std::size_t
    shardOf(const std::string &key)
    {
        return std::hash<std::string>{}(key) % kShards;
    }

    Shard shards_[kShards];
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_SHARDED_CACHE_H_
