/**
 * @file
 * Persistent process-wide worker pool: the one execution core every
 * parallel layer shares.
 *
 * Before this existed, `parallelFor` spawned (and joined) fresh
 * threads on every call, so each compiler pass, each emulated
 * instruction stream, and each serving worker paid thread-spawn cost
 * — and concurrent requests each spawned their own gang, oversub-
 * scribing the host. TaskPool replaces all of that with one lazily
 * created pool (`TaskPool::global()`, sized from `CINNAMON_WORKERS`
 * or hardware concurrency; the serving tier re-sizes it once from
 * ServeOptions) that every layer submits to.
 *
 * Determinism contract (the reason the emulator and compiler can use
 * this freely):
 *
 *  - Static partitioning. `forEach(n, fn)` splits [0, n) into
 *    contiguous chunks whose boundaries depend only on (n, effective
 *    parallelism) — never on timing. Which *thread* runs a chunk is
 *    dynamic (idle workers steal, the submitter assists), but every
 *    index runs exactly once with the same arguments, so any
 *    data-race-free body produces bit-identical results at every
 *    worker count.
 *
 *  - Deterministic exception selection. Each chunk stops at its first
 *    throwing index; after the job completes, the exception with the
 *    LOWEST index is rethrown on the submitting thread. A serial run
 *    (parallelism 1) throws at the first failing index, which is the
 *    lowest failing index, so `workers=1` and `workers=N` surface the
 *    same exception — unlike the old parallelFor, which kept
 *    whichever exception happened to be caught first and dropped the
 *    rest.
 *
 *  - Nested-submission safety. A pool worker may submit a sub-range
 *    mid-chunk (the emulator's limb slicing does): the nested job is
 *    enqueued and the submitter *assists* — it claims and runs its
 *    own job's chunks until none remain, then waits for stragglers.
 *    Idle workers pick nested chunks up too, so a 1-chip program on
 *    an 8-way pool still fans its limb slices out. The submitter can
 *    always drain its own job, so nesting never deadlocks.
 *
 * Metrics (process registry): pool.jobs, pool.jobs_nested,
 * pool.chunks, pool.chunks_stolen (run by a pool worker rather than
 * the submitter), pool.queue_depth, pool.workers.
 */

#ifndef CINNAMON_COMMON_TASK_POOL_H_
#define CINNAMON_COMMON_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cinnamon {

class TaskPool
{
  public:
    /**
     * @param parallelism total concurrency (worker threads + the
     *        submitting thread); 0 picks defaultParallelism(). A pool
     *        of parallelism 1 owns no threads and runs every job
     *        inline on the submitter.
     */
    explicit TaskPool(std::size_t parallelism = 0);
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /**
     * The process-wide pool. Created on first use with
     * defaultParallelism(); layers that own the deployment shape
     * (the serving tier) call resize() once at startup.
     */
    static TaskPool &global();

    /**
     * `CINNAMON_WORKERS` when set (>= 1), else hardware concurrency
     * (>= 1). Read once per process.
     */
    static std::size_t defaultParallelism();

    /** Worker threads + 1 (the submitter always participates). */
    std::size_t parallelism() const { return threads_.size() + 1; }

    /**
     * Re-size the pool (joins current workers, spawns the new set).
     * Must not race in-flight jobs: call at startup/shutdown
     * boundaries, as Server::start and the remote worker do.
     */
    void resize(std::size_t parallelism);

    /** True on a thread owned by this pool (inside a chunk). */
    bool onWorkerThread() const;

    /**
     * Run fn(i) for every i in [0, n), partitioned statically over at
     * most min(max_parallelism, parallelism()) participants
     * (max_parallelism 0 = no extra cap). Blocks until every index
     * ran; rethrows the lowest-index exception, if any.
     */
    template <typename Fn>
    void
    forEach(std::size_t n, std::size_t max_parallelism, Fn &&fn)
    {
        if (n == 0)
            return;
        std::size_t par = parallelism();
        if (max_parallelism != 0 && max_parallelism < par)
            par = max_parallelism;
        if (par > n)
            par = n;
        if (par <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        std::function<void(std::size_t)> body(std::ref(fn));
        runJob(n, par, body);
    }

    template <typename Fn>
    void
    forEach(std::size_t n, Fn &&fn)
    {
        forEach(n, 0, std::forward<Fn>(fn));
    }

  private:
    /**
     * One submitted parallel loop. Chunk boundaries are fixed at
     * submission ([c*n/chunks, (c+1)*n/chunks)); the claim counter
     * only decides which thread runs a chunk.
     */
    struct Job
    {
        std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        std::size_t chunks = 0;
        std::atomic<std::size_t> next_chunk{0};
        std::atomic<std::size_t> unfinished{0};

        /** Lowest-index exception across chunks. */
        std::mutex err_mutex;
        std::size_t err_index = 0;
        std::exception_ptr err;

        std::mutex done_mutex;
        std::condition_variable done_cv;
    };

    void runJob(std::size_t n, std::size_t chunks,
                std::function<void(std::size_t)> &fn);

    /**
     * Claim and execute one chunk of `job`. Returns false when no
     * unclaimed chunk remained.
     */
    bool assistOne(Job &job, bool stolen);

    void workerLoop();
    void spawn(std::size_t threads);
    void joinAll();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Job>> queue_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_TASK_POOL_H_
