/**
 * @file
 * Lightweight span/event recorder with Chrome trace-event JSON export.
 *
 * One TraceRecorder collects timed events from any number of threads
 * and serializes them in the Chrome trace-event format (the JSON array
 * form understood by Perfetto and about://tracing). Two producers use
 * it:
 *
 *  - the cycle simulator (sim/simulator.cc) emits one complete event
 *    per instruction, with pid = chip and tid = functional unit, so a
 *    traced simulation opens in Perfetto as a per-chip, per-FU
 *    timeline — a visual Figure 15;
 *  - the serving runtime (serve/server.cc) emits per-request spans
 *    (queue → acquire → simulate → probe → dwell) with pid = server
 *    and tid = worker, timestamped on the wall clock relative to the
 *    recorder's construction.
 *
 * Timestamps and durations are microseconds (the trace-event unit).
 * Simulated timelines convert cycles to microseconds at the modeled
 * clock so both producers agree on units.
 */

#ifndef CINNAMON_COMMON_TRACE_H_
#define CINNAMON_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cinnamon {

/** One Chrome trace-event "complete" ("ph":"X") event. */
struct TraceEvent
{
    std::string name;
    std::string category;
    uint32_t pid = 0;
    uint32_t tid = 0;
    double ts_us = 0.0;  ///< start, microseconds
    double dur_us = 0.0; ///< duration, microseconds
    /** Numeric args, rendered as JSON numbers. */
    std::vector<std::pair<std::string, double>> num_args;
    /** String args, rendered as JSON strings. */
    std::vector<std::pair<std::string, std::string>> str_args;
};

/** Thread-safe event sink; see file comment for the producers. */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    TraceRecorder() : epoch_(Clock::now()) {}

    /** Microseconds from the recorder's construction to `t`. */
    double
    toUs(Clock::time_point t) const
    {
        return std::chrono::duration<double, std::micro>(t - epoch_)
            .count();
    }

    /** Microseconds from the recorder's construction to now. */
    double nowUs() const { return toUs(Clock::now()); }

    /** Record a complete event at an explicit [ts, ts+dur) interval. */
    void complete(TraceEvent event);

    /** Name the track a pid renders as ("process_name" metadata). */
    void setProcessName(uint32_t pid, std::string name);

    /** Name the row a (pid, tid) renders as ("thread_name"). */
    void setThreadName(uint32_t pid, uint32_t tid, std::string name);

    std::size_t size() const;
    void clear();

    /** Snapshot of every event recorded so far. */
    std::vector<TraceEvent> events() const;

    /** Serialize as {"traceEvents": [...]} (Perfetto-loadable). */
    void writeJson(std::ostream &os) const;
    std::string json() const;

    /** Write the JSON to a file; returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    const Clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<uint32_t, std::string> process_names_;
    std::map<std::pair<uint32_t, uint32_t>, std::string> thread_names_;
};

/**
 * RAII wall-clock span: records a complete event covering the scope's
 * lifetime into `recorder` (which must outlive the span). A null
 * recorder makes the span a no-op, so call sites can gate tracing on
 * a flag without branching.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceRecorder *recorder, std::string name,
               std::string category, uint32_t pid, uint32_t tid)
        : recorder_(recorder)
    {
        if (recorder_ == nullptr)
            return;
        event_.name = std::move(name);
        event_.category = std::move(category);
        event_.pid = pid;
        event_.tid = tid;
        event_.ts_us = recorder_->nowUs();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Movable so helper functions can build and return spans. */
    ScopedSpan(ScopedSpan &&o) noexcept
        : recorder_(o.recorder_), event_(std::move(o.event_))
    {
        o.recorder_ = nullptr;
    }

    /** Attach a numeric argument (shown in the Perfetto side panel). */
    void
    arg(std::string key, double value)
    {
        if (recorder_ != nullptr)
            event_.num_args.emplace_back(std::move(key), value);
    }

    /** Attach a string argument. */
    void
    arg(std::string key, std::string value)
    {
        if (recorder_ != nullptr)
            event_.str_args.emplace_back(std::move(key),
                                         std::move(value));
    }

    ~ScopedSpan()
    {
        if (recorder_ == nullptr)
            return;
        event_.dur_us = recorder_->nowUs() - event_.ts_us;
        recorder_->complete(std::move(event_));
    }

  private:
    TraceRecorder *recorder_;
    TraceEvent event_;
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_TRACE_H_
