#include "common/random.h"

#include <cmath>

namespace cinnamon {

uint64_t
Rng::uniformMod(uint64_t modulus)
{
    std::uniform_int_distribution<uint64_t> dist(0, modulus - 1);
    return dist(engine_);
}

uint64_t
Rng::uniform64()
{
    return engine_();
}

int64_t
Rng::ternary()
{
    // {-1, 0, 0, 1} gives Pr(0) = 1/2, Pr(±1) = 1/4 each.
    switch (engine_() & 3) {
      case 0:
        return -1;
      case 1:
        return 1;
      default:
        return 0;
    }
}

int64_t
Rng::gaussian(double sigma)
{
    std::normal_distribution<double> dist(0.0, sigma);
    return static_cast<int64_t>(std::llround(dist(engine_)));
}

std::vector<uint64_t>
Rng::uniformVector(std::size_t n, uint64_t modulus)
{
    std::vector<uint64_t> out(n);
    for (auto &v : out)
        v = uniformMod(modulus);
    return out;
}

std::vector<int64_t>
Rng::ternaryVector(std::size_t n)
{
    std::vector<int64_t> out(n);
    for (auto &v : out)
        v = ternary();
    return out;
}

std::vector<int64_t>
Rng::gaussianVector(std::size_t n, double sigma)
{
    std::vector<int64_t> out(n);
    for (auto &v : out)
        v = gaussian(sigma);
    return out;
}

double
Rng::uniformReal(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

} // namespace cinnamon
