/**
 * @file
 * Minimal unsigned big-integer arithmetic.
 *
 * The CKKS decoder must reconstruct centered coefficients from RNS
 * residues exactly (CRT), and coefficient magnitudes can far exceed
 * 128 bits for deep prime chains. This class provides exactly the
 * operations CRT composition needs: add, subtract, compare, multiply
 * by a word, and lossy conversion to double. It is not a general
 * bignum library and is deliberately kept tiny.
 */

#ifndef CINNAMON_COMMON_BIGINT_H_
#define CINNAMON_COMMON_BIGINT_H_

#include <cstdint>
#include <vector>

namespace cinnamon {

/** An arbitrary-precision unsigned integer (little-endian 64-bit words). */
class BigUInt
{
  public:
    BigUInt() = default;
    explicit BigUInt(uint64_t v);

    bool isZero() const { return words_.empty(); }

    /** this += other. */
    void add(const BigUInt &other);

    /** this -= other; requires this >= other. */
    void sub(const BigUInt &other);

    /** this *= w. */
    void mulWord(uint64_t w);

    /** -1 / 0 / +1 for this < / == / > other. */
    int compare(const BigUInt &other) const;

    /** Lossy conversion to double (may overflow to inf; callers scale). */
    double toDouble() const;

    /** this / 2^k truncated toward zero, as a new value. */
    BigUInt shiftRight(unsigned k) const;

    /** Number of significant bits (0 for zero). */
    std::size_t bitLength() const;

  private:
    void trim();

    std::vector<uint64_t> words_;
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_BIGINT_H_
