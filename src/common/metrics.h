/**
 * @file
 * Process-wide metrics registry: counters, gauges, and histograms
 * shared by the simulator, the serving runtime, and the bench
 * binaries.
 *
 * The registry is the one place the system's self-accounting lands:
 * the simulator books instruction/byte totals and conservation-check
 * results, the server books request outcomes and latency histograms,
 * and bench binaries book the figures they print. Snapshots export as
 * plain text (one metric per line, for reports and logs) or JSON (for
 * dashboards and CI artifacts).
 *
 * All instruments are thread-safe. Counters and gauges are lock-free;
 * histograms keep their raw samples under a mutex (serving runs are
 * thousands of observations, not millions). References returned by
 * the registry remain valid for the registry's lifetime.
 */

#ifndef CINNAMON_COMMON_METRICS_H_
#define CINNAMON_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cinnamon {

/** Monotonically increasing value (events, bytes, violations). */
class Counter
{
  public:
    void
    add(double delta = 1.0)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(
            cur, cur + delta, std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-write-wins value (a utilization, a queue depth). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Sample distribution with count/sum/min/max and percentiles. */
class Histogram
{
  public:
    void observe(double sample);

    struct Snapshot
    {
        std::size_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
    };

    Snapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::vector<double> samples_;
};

/**
 * Named instruments. `global()` is the process-wide registry every
 * subsystem shares; independent instances exist only for tests.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &global();

    /** Find-or-create; one instrument per name, stable address. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * One metric per line ("name value", histograms as "name
     * count=… mean=… p50=… p95=… p99=…"), sorted by name, limited to
     * names starting with `prefix` ("" = everything).
     */
    std::string textSnapshot(const std::string &prefix = "") const;

    /** {"counters":{…},"gauges":{…},"histograms":{…}}. */
    std::string jsonSnapshot(const std::string &prefix = "") const;

    /** Drop every instrument (tests only). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_METRICS_H_
