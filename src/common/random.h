/**
 * @file
 * Deterministic pseudo-random sampling used throughout the library.
 *
 * All randomness in the library flows through a Rng instance so that
 * tests and experiments are reproducible from a single seed. The
 * distributions implemented here are the three samplers CKKS needs:
 * uniform mod q, centered ternary (secret keys), and discrete gaussian
 * (encryption noise).
 */

#ifndef CINNAMON_COMMON_RANDOM_H_
#define CINNAMON_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace cinnamon {

/**
 * A seeded random source for all library sampling needs.
 *
 * Wraps a 64-bit Mersenne twister. Not cryptographically secure — this
 * library is a performance/architecture study, not a production
 * cryptosystem — but the sampled distributions match the shapes CKKS
 * requires so noise growth behaves realistically.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform value in [0, modulus). */
    uint64_t uniformMod(uint64_t modulus);

    /** Uniform value over all 64 bits. */
    uint64_t uniform64();

    /** Signed ternary value in {-1, 0, 1} with Pr(0) = 1/2. */
    int64_t ternary();

    /** Discrete gaussian (rounded normal) with the given sigma. */
    int64_t gaussian(double sigma = 3.2);

    /** Vector of n uniform values mod modulus. */
    std::vector<uint64_t> uniformVector(std::size_t n, uint64_t modulus);

    /** Vector of n ternary values. */
    std::vector<int64_t> ternaryVector(std::size_t n);

    /** Vector of n gaussian values. */
    std::vector<int64_t> gaussianVector(std::size_t n, double sigma = 3.2);

    /** Uniform real in [lo, hi). */
    double uniformReal(double lo, double hi);

  private:
    std::mt19937_64 engine_;
};

} // namespace cinnamon

#endif // CINNAMON_COMMON_RANDOM_H_
