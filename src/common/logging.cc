#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cinnamon {

namespace {

/**
 * Serializes message emission so concurrent worker threads (the serve
 * runtime's pool) never interleave characters of two diagnostics. The
 * full line is formatted first and written with a single fwrite under
 * the lock.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
panic(const std::string &msg)
{
    emitLine("panic: ", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    emitLine("fatal: ", msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    emitLine("warn: ", msg);
}

} // namespace cinnamon
