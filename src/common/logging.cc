#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace cinnamon {

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

} // namespace cinnamon
