#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/logging.h"

namespace cinnamon::sim {

namespace {

using isa::Instruction;
using isa::Opcode;

FuType
fuOf(Opcode op)
{
    switch (op) {
      case Opcode::Ntt:
      case Opcode::Intt:
        return FuType::Ntt;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::AddScalar:
      case Opcode::SubScalar:
        return FuType::Add;
      case Opcode::Mul:
      case Opcode::MulScalar:
        return FuType::Mul;
      case Opcode::Automorph:
        return FuType::Auto;
      case Opcode::BConv:
        return FuType::BConv;
      case Opcode::Mod:
        return FuType::ModRed;
      default:
        return FuType::None;
    }
}

constexpr double kHbmLatency = 200.0;

/** Timing state for one chip. */
struct ChipState
{
    double now = 0.0;
    double finish = 0.0;
    double hbm_free = 0.0;
    std::vector<double> reg_ready;
    std::map<FuType, std::vector<double>> fu_free;
    std::size_t pc = 0;

    double
    ready(int reg) const
    {
        if (reg < 0 || static_cast<std::size_t>(reg) >= reg_ready.size())
            return 0.0;
        return reg_ready[reg];
    }

    void
    setReady(int reg, double t)
    {
        if (reg < 0)
            return;
        if (static_cast<std::size_t>(reg) >= reg_ready.size())
            reg_ready.resize(reg + 1, 0.0);
        reg_ready[reg] = t;
    }
};

/** Area weights for utilization reporting (Table 1, mm^2). */
const std::map<FuType, double> kAreaWeights = {
    {FuType::Ntt, 34.08}, {FuType::Add, 0.4},
    {FuType::Mul, 2.55},  {FuType::Auto, 6.04},
    {FuType::BConv, 14.12}, {FuType::ModRed, 2.37},
};

} // namespace

double
SimResult::computeUtilization(const HardwareConfig &hw) const
{
    if (cycles <= 0.0)
        return 0.0;
    double weighted = 0.0;
    double total_weight = 0.0;
    for (const auto &[ft, weight] : kAreaWeights) {
        auto cit = hw.fu_count.find(ft);
        const double count =
            cit == hw.fu_count.end() ? 1.0
                                     : static_cast<double>(cit->second);
        const double capacity =
            count * static_cast<double>(chips) * cycles;
        auto bit = fu_busy.find(ft);
        const double busy = bit == fu_busy.end() ? 0.0 : bit->second;
        weighted += weight * std::min(1.0, busy / capacity);
        total_weight += weight;
    }
    return weighted / total_weight;
}

double
SimResult::memoryUtilization(const HardwareConfig &hw) const
{
    (void)hw;
    if (cycles <= 0.0)
        return 0.0;
    return std::min(1.0, hbm_busy / (static_cast<double>(chips) * cycles));
}

double
SimResult::networkUtilization(const HardwareConfig &hw) const
{
    (void)hw;
    if (cycles <= 0.0)
        return 0.0;
    return std::min(1.0,
                    net_busy / (static_cast<double>(chips) * cycles));
}

SimResult
simulate(const isa::MachineProgram &program, const HardwareConfig &hw)
{
    const std::size_t chips = program.numChips();
    std::vector<ChipState> state(chips);
    for (auto &s : state) {
        for (const auto &[ft, count] : hw.fu_count)
            s.fu_free[ft].assign(count, 0.0);
    }

    SimResult result;
    result.chips = chips;
    result.instructions = program.totalInstructions();

    const double limb_bytes = static_cast<double>(hw.limbBytes());
    const double elem_occ =
        static_cast<double>(hw.n) / static_cast<double>(hw.lanes);
    const double bconv_occ =
        static_cast<double>(hw.n) / static_cast<double>(hw.bconv_lanes);
    const double hbm_xfer = limb_bytes / hw.hbmBytesPerCycle();
    const double link_xfer = limb_bytes / hw.linkBytesPerCycle();

    std::map<uint32_t, double> link_free; ///< per group (part_lo)

    // Execute one non-collective instruction's timing on chip c.
    auto step = [&](std::size_t c, const Instruction &ins) {
        ChipState &s = state[c];
        double src_ready = 0.0;
        for (int r : ins.srcs)
            src_ready = std::max(src_ready, s.ready(r));

        // Decoupled issue: the front end dispatches one instruction
        // per cycle into per-FU queues; execution begins when the
        // operands and a unit are ready. This models the statically
        // scheduled machine the compiler targets (Section 4.4 hoists
        // loads "as early as possible"), so a long-latency load does
        // not stall independent work behind it.
        if (ins.op == Opcode::Load || ins.op == Opcode::Store) {
            const double issue =
                std::max({s.now, src_ready, s.hbm_free});
            s.hbm_free = issue + hbm_xfer;
            result.hbm_busy += hbm_xfer;
            result.bytes_moved_hbm += hw.limbBytes();
            if (ins.op == Opcode::Load)
                s.setReady(ins.dst, issue + hbm_xfer + kHbmLatency);
            s.now += 1.0;
            s.finish = std::max(s.finish, issue + hbm_xfer + kHbmLatency);
            return;
        }

        const FuType ft = fuOf(ins.op);
        if (ft == FuType::None) { // Fence/Nop/Halt
            s.now += 1.0;
            return;
        }
        auto &insts = s.fu_free[ft];
        CINN_ASSERT(!insts.empty(), "no functional unit instance for "
                                        << fuName(ft));
        auto best = std::min_element(insts.begin(), insts.end());
        const double occ = ft == FuType::BConv ? bconv_occ : elem_occ;
        const double lat = hw.fu_latency.at(ft);
        const double issue = std::max({s.now, src_ready, *best});
        *best = issue + occ;
        result.fu_busy[ft] += occ;
        s.setReady(ins.dst, issue + occ + lat);
        s.now += 1.0;
        s.finish = std::max(s.finish, issue + occ + lat);
    };

    while (true) {
        bool all_done = true;
        for (std::size_t c = 0; c < chips; ++c) {
            const auto &instrs = program.chips[c].instrs;
            while (state[c].pc < instrs.size() &&
                   !isCollective(instrs[state[c].pc].op)) {
                step(c, instrs[state[c].pc]);
                ++state[c].pc;
            }
            if (state[c].pc < instrs.size())
                all_done = false;
        }
        if (all_done)
            break;

        bool progressed = false;
        for (std::size_t c = 0; c < chips && !progressed; ++c) {
            const auto &instrs = program.chips[c].instrs;
            if (state[c].pc >= instrs.size())
                continue;
            const Instruction &ins = instrs[state[c].pc];
            const uint32_t lo = ins.part_lo;
            const uint32_t hi =
                ins.part_hi == 0 ? static_cast<uint32_t>(chips)
                                 : ins.part_hi;
            bool ready = true;
            for (uint32_t p = lo; p < hi && ready; ++p) {
                const auto &pin = program.chips[p].instrs;
                ready = state[p].pc < pin.size() &&
                        isCollective(pin[state[p].pc].op) &&
                        pin[state[p].pc].tag == ins.tag;
            }
            if (!ready)
                continue;

            // Arrival: every participant's front end plus its source.
            double arrival = link_free[lo];
            for (uint32_t p = lo; p < hi; ++p) {
                const Instruction &pi =
                    program.chips[p].instrs[state[p].pc];
                double sr = state[p].now;
                for (int r : pi.srcs)
                    sr = std::max(sr, state[p].ready(r));
                arrival = std::max(arrival, sr);
            }
            const std::size_t participants = hi - lo;
            double duration = 0.0;
            if (participants > 1) {
                const double hops =
                    hw.topology == Topology::Ring
                        ? std::max<double>(
                              1.0, std::ceil((participants - 1) / 2.0))
                        : 2.0;
                duration = link_xfer + hops * hw.hop_latency_cycles;
                link_free[lo] = arrival + link_xfer;
                result.net_busy += link_xfer;
                result.bytes_moved_net += hw.limbBytes();
            }

            const double done = arrival + duration;
            for (uint32_t p = lo; p < hi; ++p) {
                const Instruction &pi =
                    program.chips[p].instrs[state[p].pc];
                state[p].setReady(pi.dst, done);
                state[p].now = std::max(state[p].now, arrival + 1.0);
                state[p].finish = std::max(state[p].finish, done);
                ++state[p].pc;
            }
            progressed = true;
        }
        CINN_ASSERT(progressed, "simulator collective deadlock");
    }

    for (const auto &s : state)
        result.cycles = std::max(result.cycles, s.finish);
    result.seconds = result.cycles / (hw.clock_ghz * 1e9);
    return result;
}

} // namespace cinnamon::sim
