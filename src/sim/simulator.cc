#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"

namespace cinnamon::sim {

namespace {

using isa::Instruction;
using isa::Opcode;

FuType
fuOf(Opcode op)
{
    switch (op) {
      case Opcode::Ntt:
      case Opcode::Intt:
        return FuType::Ntt;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::AddScalar:
      case Opcode::SubScalar:
        return FuType::Add;
      case Opcode::Mul:
      case Opcode::MulScalar:
        return FuType::Mul;
      case Opcode::Automorph:
        return FuType::Auto;
      case Opcode::BConv:
        return FuType::BConv;
      case Opcode::Mod:
        return FuType::ModRed;
      default:
        return FuType::None;
    }
}

constexpr double kHbmLatency = 200.0;

/** Timing state for one chip. */
struct ChipState
{
    double now = 0.0;
    double finish = 0.0;
    double hbm_free = 0.0;
    std::vector<double> reg_ready;
    std::map<FuType, std::vector<double>> fu_free;
    std::size_t pc = 0;

    double
    ready(int reg) const
    {
        if (reg < 0 || static_cast<std::size_t>(reg) >= reg_ready.size())
            return 0.0;
        return reg_ready[reg];
    }

    void
    setReady(int reg, double t)
    {
        if (reg < 0)
            return;
        if (static_cast<std::size_t>(reg) >= reg_ready.size())
            reg_ready.resize(reg + 1, 0.0);
        reg_ready[reg] = t;
    }
};

/** Area weights for utilization reporting (Table 1, mm^2). */
const std::map<FuType, double> kAreaWeights = {
    {FuType::Ntt, 34.08}, {FuType::Add, 0.4},
    {FuType::Mul, 2.55},  {FuType::Auto, 6.04},
    {FuType::BConv, 14.12}, {FuType::ModRed, 2.37},
};

/** Stable trace track (tid) per chip resource. */
enum TraceTrack : uint32_t {
    kTrackHbm = 0,
    kTrackNtt = 1,
    kTrackAdd = 2,
    kTrackMul = 3,
    kTrackAuto = 4,
    kTrackBConv = 5,
    kTrackModRed = 6,
    kTrackNet = 7,
};

uint32_t
trackOf(FuType ft)
{
    switch (ft) {
      case FuType::Ntt: return kTrackNtt;
      case FuType::Add: return kTrackAdd;
      case FuType::Mul: return kTrackMul;
      case FuType::Auto: return kTrackAuto;
      case FuType::BConv: return kTrackBConv;
      case FuType::ModRed: return kTrackModRed;
      default: return kTrackHbm;
    }
}

/** Names the per-chip processes and per-resource tracks up front. */
void
labelTrace(TraceRecorder &trace, std::size_t chips,
           const HardwareConfig &hw)
{
    for (std::size_t c = 0; c < chips; ++c) {
        const auto pid = static_cast<uint32_t>(c);
        trace.setProcessName(pid, "chip " + std::to_string(c));
        trace.setThreadName(pid, kTrackHbm, "hbm");
        for (const auto &[ft, count] : hw.fu_count) {
            (void)count;
            trace.setThreadName(pid, trackOf(ft), fuName(ft));
        }
        trace.setThreadName(pid, kTrackNet, "net");
    }
}

} // namespace

double
SimResult::computeUtilization(const HardwareConfig &hw) const
{
    if (cycles <= 0.0)
        return 0.0;
    double weighted = 0.0;
    double total_weight = 0.0;
    for (const auto &[ft, weight] : kAreaWeights) {
        auto cit = hw.fu_count.find(ft);
        const double count =
            cit == hw.fu_count.end() ? 1.0
                                     : static_cast<double>(cit->second);
        const double capacity =
            count * static_cast<double>(chips) * cycles;
        auto bit = fu_busy.find(ft);
        const double busy = bit == fu_busy.end() ? 0.0 : bit->second;
        weighted += weight * std::min(1.0, busy / capacity);
        total_weight += weight;
    }
    return weighted / total_weight;
}

double
SimResult::memoryUtilization(const HardwareConfig &hw) const
{
    (void)hw;
    if (cycles <= 0.0)
        return 0.0;
    return std::min(1.0, hbm_busy / (static_cast<double>(chips) * cycles));
}

double
SimResult::networkUtilization(const HardwareConfig &hw) const
{
    if (cycles <= 0.0)
        return 0.0;
    // Each chip contributes `net_links` PHYs (two 256 GB/s links on
    // the paper's chip); normalizing by chips alone would make C-4
    // and C-8 utilizations incomparable.
    const double links =
        static_cast<double>(chips) *
        static_cast<double>(std::max<std::size_t>(1, hw.net_links));
    return std::min(1.0, net_busy / (links * cycles));
}

std::vector<std::string>
SimResult::checkConservation(const HardwareConfig &hw) const
{
    std::vector<std::string> violations;
    auto violate = [&](const std::string &what) {
        violations.push_back(what);
    };
    std::ostringstream oss;
    auto msg = [&oss]() {
        std::string s = oss.str();
        oss.str("");
        return s;
    };

    // Instructions: every issued instruction retires, per chip, and
    // the per-chip books sum to the aggregate count.
    if (issued_per_chip.size() != chips ||
        retired_per_chip.size() != chips) {
        oss << "per-chip books cover " << issued_per_chip.size()
            << " chips, machine has " << chips;
        violate(msg());
    }
    std::size_t retired_total = 0;
    for (std::size_t c = 0;
         c < std::min(issued_per_chip.size(), retired_per_chip.size());
         ++c) {
        retired_total += retired_per_chip[c];
        if (issued_per_chip[c] != retired_per_chip[c]) {
            oss << "chip " << c << ": issued " << issued_per_chip[c]
                << " != retired " << retired_per_chip[c];
            violate(msg());
        }
    }
    if (retired_total != instructions) {
        oss << "retired " << retired_total << " != program's "
            << instructions << " instructions";
        violate(msg());
    }

    // Bytes booked equal the per-op sums.
    if (bytes_moved_hbm != (loads + stores) * hw.limbBytes()) {
        oss << "HBM bytes " << bytes_moved_hbm << " != (" << loads
            << " loads + " << stores << " stores) x " << hw.limbBytes()
            << " limb bytes";
        violate(msg());
    }
    if (bytes_moved_net != net_transfers * hw.limbBytes()) {
        oss << "net bytes " << bytes_moved_net << " != "
            << net_transfers << " limb transfers x " << hw.limbBytes()
            << " limb bytes";
        violate(msg());
    }

    // No resource can be busier than its capacity.
    const double chipsd = static_cast<double>(chips);
    const double eps = 1e-6 + 1e-9 * cycles * chipsd;
    for (const auto &[ft, busy] : fu_busy) {
        auto cit = hw.fu_count.find(ft);
        const double count =
            cit == hw.fu_count.end() ? 1.0
                                     : static_cast<double>(cit->second);
        if (busy > count * chipsd * cycles + eps) {
            oss << fuName(ft) << " busy " << busy << " > capacity "
                << count * chipsd * cycles;
            violate(msg());
        }
    }
    if (hbm_busy > chipsd * cycles + eps) {
        oss << "HBM busy " << hbm_busy << " > capacity "
            << chipsd * cycles;
        violate(msg());
    }
    const double links =
        chipsd *
        static_cast<double>(std::max<std::size_t>(1, hw.net_links));
    if (net_busy > links * cycles + eps) {
        oss << "net busy " << net_busy << " > capacity "
            << links * cycles;
        violate(msg());
    }
    return violations;
}

SimResult
simulate(const isa::MachineProgram &program, const HardwareConfig &hw,
         TraceRecorder *trace)
{
    const std::size_t chips = program.numChips();
    std::vector<ChipState> state(chips);
    for (auto &s : state) {
        for (const auto &[ft, count] : hw.fu_count)
            s.fu_free[ft].assign(count, 0.0);
    }

    SimResult result;
    result.chips = chips;
    result.instructions = program.totalInstructions();
    result.issued_per_chip.assign(chips, 0);
    result.retired_per_chip.assign(chips, 0);

    const double limb_bytes = static_cast<double>(hw.limbBytes());
    const double elem_occ =
        static_cast<double>(hw.n) / static_cast<double>(hw.lanes);
    const double bconv_occ =
        static_cast<double>(hw.n) / static_cast<double>(hw.bconv_lanes);
    const double hbm_xfer = limb_bytes / hw.hbmBytesPerCycle();
    // Degraded PHYs (fault injection) stretch every collective: the
    // link occupies more cycles for the same bytes, and hop latency
    // dilates with it. Conservation still holds — capacity checks are
    // in cycles, and the byte books are occupancy-independent.
    const double link_dil = std::max(1.0, hw.link_dilation);
    const double link_xfer =
        limb_bytes / hw.linkBytesPerCycle() * link_dil;
    const double hop_cycles = hw.hop_latency_cycles * link_dil;

    // Simulated cycles -> trace-event microseconds.
    const double us_per_cycle = 1.0 / (hw.clock_ghz * 1e3);
    if (trace != nullptr)
        labelTrace(*trace, chips, hw);
    auto record = [&](std::size_t chip, uint32_t track,
                      const Instruction &ins, double issue,
                      double busy_cycles) {
        if (trace == nullptr)
            return;
        TraceEvent e;
        e.name = isa::opcodeName(ins.op);
        e.category = "sim";
        e.pid = static_cast<uint32_t>(chip);
        e.tid = track;
        e.ts_us = issue * us_per_cycle;
        e.dur_us = busy_cycles * us_per_cycle;
        trace->complete(std::move(e));
    };

    std::map<uint32_t, double> link_free; ///< per group (part_lo)

    // Execute one non-collective instruction's timing on chip c.
    auto step = [&](std::size_t c, const Instruction &ins) {
        ChipState &s = state[c];
        ++result.issued_per_chip[c];
        double src_ready = 0.0;
        for (int r : ins.srcs)
            src_ready = std::max(src_ready, s.ready(r));

        // Decoupled issue: the front end dispatches one instruction
        // per cycle into per-FU queues; execution begins when the
        // operands and a unit are ready. This models the statically
        // scheduled machine the compiler targets (Section 4.4 hoists
        // loads "as early as possible"), so a long-latency load does
        // not stall independent work behind it.
        if (ins.op == Opcode::Load || ins.op == Opcode::Store) {
            const double issue =
                std::max({s.now, src_ready, s.hbm_free});
            s.hbm_free = issue + hbm_xfer;
            result.hbm_busy += hbm_xfer;
            result.bytes_moved_hbm += hw.limbBytes();
            if (ins.op == Opcode::Load) {
                ++result.loads;
                s.setReady(ins.dst, issue + hbm_xfer + kHbmLatency);
            } else {
                ++result.stores;
            }
            record(c, kTrackHbm, ins, issue, hbm_xfer);
            s.now += 1.0;
            s.finish = std::max(s.finish, issue + hbm_xfer + kHbmLatency);
            return;
        }

        const FuType ft = fuOf(ins.op);
        if (ft == FuType::None) { // Fence/Nop/Halt
            s.now += 1.0;
            return;
        }
        auto &insts = s.fu_free[ft];
        CINN_ASSERT(!insts.empty(), "no functional unit instance for "
                                        << fuName(ft));
        auto best = std::min_element(insts.begin(), insts.end());
        const double occ = ft == FuType::BConv ? bconv_occ : elem_occ;
        const double lat = hw.fu_latency.at(ft);
        const double issue = std::max({s.now, src_ready, *best});
        *best = issue + occ;
        result.fu_busy[ft] += occ;
        record(c, trackOf(ft), ins, issue, occ);
        s.setReady(ins.dst, issue + occ + lat);
        s.now += 1.0;
        s.finish = std::max(s.finish, issue + occ + lat);
    };

    while (true) {
        bool all_done = true;
        for (std::size_t c = 0; c < chips; ++c) {
            const auto &instrs = program.chips[c].instrs;
            while (state[c].pc < instrs.size() &&
                   !isCollective(instrs[state[c].pc].op)) {
                step(c, instrs[state[c].pc]);
                ++state[c].pc;
            }
            if (state[c].pc < instrs.size())
                all_done = false;
        }
        if (all_done)
            break;

        bool progressed = false;
        for (std::size_t c = 0; c < chips && !progressed; ++c) {
            const auto &instrs = program.chips[c].instrs;
            if (state[c].pc >= instrs.size())
                continue;
            const Instruction &ins = instrs[state[c].pc];
            const uint32_t lo = ins.part_lo;
            const uint32_t hi =
                ins.part_hi == 0 ? static_cast<uint32_t>(chips)
                                 : ins.part_hi;
            bool ready = true;
            for (uint32_t p = lo; p < hi && ready; ++p) {
                const auto &pin = program.chips[p].instrs;
                ready = state[p].pc < pin.size() &&
                        isCollective(pin[state[p].pc].op) &&
                        pin[state[p].pc].tag == ins.tag;
            }
            if (!ready)
                continue;

            // Arrival: every participant's front end plus its source.
            double arrival = link_free[lo];
            for (uint32_t p = lo; p < hi; ++p) {
                const Instruction &pi =
                    program.chips[p].instrs[state[p].pc];
                double sr = state[p].now;
                for (int r : pi.srcs)
                    sr = std::max(sr, state[p].ready(r));
                arrival = std::max(arrival, sr);
            }
            const std::size_t participants = hi - lo;
            double duration = 0.0;
            if (participants > 1) {
                const double hops =
                    hw.topology == Topology::Ring
                        ? std::max<double>(
                              1.0, std::ceil((participants - 1) / 2.0))
                        : 2.0;
                // A k-chip collective moves (k-1) limb transfers, not
                // one: an aggregation combines partial sums hop by
                // hop, so its transfers serialize on the group's link
                // resource; a broadcast is cut-through pipelined, so
                // the source link is occupied for a single transfer
                // while each of the (k-1) links still carries the
                // limb once.
                const std::size_t transfers = participants - 1;
                const double serialized =
                    ins.op == Opcode::Agg
                        ? static_cast<double>(transfers) * link_xfer
                        : link_xfer;
                duration = serialized + hops * hop_cycles;
                link_free[lo] = arrival + serialized;
                result.net_busy +=
                    static_cast<double>(transfers) * link_xfer;
                result.bytes_moved_net += transfers * hw.limbBytes();
                result.net_transfers += transfers;
                record(lo, kTrackNet, ins, arrival, serialized);
            }
            ++result.collectives;

            const double done = arrival + duration;
            for (uint32_t p = lo; p < hi; ++p) {
                const Instruction &pi =
                    program.chips[p].instrs[state[p].pc];
                ++result.issued_per_chip[p];
                state[p].setReady(pi.dst, done);
                state[p].now = std::max(state[p].now, arrival + 1.0);
                state[p].finish = std::max(state[p].finish, done);
                ++state[p].pc;
            }
            progressed = true;
        }
        CINN_ASSERT(progressed, "simulator collective deadlock");
    }

    for (std::size_t c = 0; c < chips; ++c) {
        result.retired_per_chip[c] = state[c].pc;
        result.cycles = std::max(result.cycles, state[c].finish);
    }
    result.seconds = result.cycles / (hw.clock_ghz * 1e9);

    // Self-check the books and publish them as metrics: an accounting
    // bug shows up as a violated invariant here, not as a silently
    // skewed figure downstream.
    const auto violations = result.checkConservation(hw);
    auto &metrics = MetricsRegistry::global();
    metrics.counter("sim.simulations").add();
    metrics.counter("sim.instructions")
        .add(static_cast<double>(result.instructions));
    metrics.counter("sim.bytes.hbm")
        .add(static_cast<double>(result.bytes_moved_hbm));
    metrics.counter("sim.bytes.net")
        .add(static_cast<double>(result.bytes_moved_net));
    metrics.counter("sim.collectives")
        .add(static_cast<double>(result.collectives));
    metrics.counter("sim.conservation.checks").add();
    metrics.counter("sim.conservation.violations")
        .add(static_cast<double>(violations.size()));
    CINN_ASSERT(violations.empty(),
                "conservation violated: " << violations.front()
                                          << " (and "
                                          << violations.size() - 1
                                          << " more)");
    return result;
}

} // namespace cinnamon::sim
