/**
 * @file
 * Hardware configuration for the Cinnamon cycle-level simulator.
 *
 * Numbers default to the paper's chip (Section 5): 1 GHz clock, four
 * compute clusters of 256 lanes (1024 vector lanes total), a
 * half-width base-conversion unit (Section 4.7: 128 lanes/cluster), a
 * 56 MB vector register file (224 limb registers at N = 64K × 4 B),
 * four HBM2E stacks totalling 2 TB/s, and two 256 GB/s network PHYs.
 * Cinnamon-M (the monolithic comparison chip, Section 6.1) doubles
 * clusters and functional units and quadruples the register file.
 */

#ifndef CINNAMON_SIM_HARDWARE_H_
#define CINNAMON_SIM_HARDWARE_H_

#include <cstddef>
#include <map>
#include <string>

namespace cinnamon::sim {

/** Functional-unit classes of a Cinnamon chip (Table 1). */
enum class FuType { Ntt, Add, Mul, Auto, BConv, ModRed, None };

const char *fuName(FuType t);

/** Interconnect topology (Section 4.5.1). */
enum class Topology { Ring, Switch };

/** One chip + machine configuration. */
struct HardwareConfig
{
    // Vector datapath.
    std::size_t n = 65536;          ///< ring dimension (vector length)
    double clock_ghz = 1.0;
    std::size_t lanes = 1024;       ///< 4 clusters × 256 lanes
    std::size_t bconv_lanes = 512;  ///< 4 × 128 (space-optimized BCU)
    std::size_t word_bytes = 4;     ///< 28-bit datapath, padded

    // Functional-unit instance counts (Table 1 mix).
    std::map<FuType, std::size_t> fu_count = {
        {FuType::Ntt, 1},  {FuType::Add, 2},   {FuType::Mul, 2},
        {FuType::Auto, 1}, {FuType::BConv, 1}, {FuType::ModRed, 1},
    };

    // Pipeline latencies (cycles past occupancy).
    std::map<FuType, double> fu_latency = {
        {FuType::Ntt, 24},  {FuType::Add, 4},   {FuType::Mul, 8},
        {FuType::Auto, 12}, {FuType::BConv, 16}, {FuType::ModRed, 6},
    };

    // Memory system.
    double hbm_gbs = 2048.0;        ///< per-chip HBM bandwidth, GB/s
    std::size_t phys_regs = 224;    ///< limb registers (RF size)

    // Interconnect.
    double link_gbs = 256.0;        ///< per-link bandwidth, GB/s
    std::size_t net_links = 2;      ///< network PHYs per chip
    double hop_latency_cycles = 100.0;
    Topology topology = Topology::Ring;
    /**
     * Degraded-PHY dilation (fault injection): multiplies collective
     * transfer time and hop latency. 1.0 = healthy links; the serving
     * runtime sets >1 for requests whose fault plan degraded a link.
     */
    double link_dilation = 1.0;

    /** Bytes in one limb register. */
    std::size_t limbBytes() const { return n * word_bytes; }

    /** HBM bytes per cycle. */
    double hbmBytesPerCycle() const { return hbm_gbs / clock_ghz; }

    /** Link bytes per cycle. */
    double linkBytesPerCycle() const { return link_gbs / clock_ghz; }

    /** Register file capacity in MB. */
    double
    registerFileMb() const
    {
        return static_cast<double>(phys_regs) * limbBytes() /
               (1024.0 * 1024.0);
    }

    /** The paper's standard Cinnamon chip. */
    static HardwareConfig cinnamonChip();

    /**
     * Cinnamon-M: the scaled-up monolithic chip (224 MB register
     * file, 8 clusters, 2 NTT/Transpose units, doubled BCU).
     */
    static HardwareConfig monolithicChip();
};

} // namespace cinnamon::sim

#endif // CINNAMON_SIM_HARDWARE_H_
