#include "sim/hardware.h"

namespace cinnamon::sim {

const char *
fuName(FuType t)
{
    switch (t) {
      case FuType::Ntt:
        return "ntt";
      case FuType::Add:
        return "add";
      case FuType::Mul:
        return "mul";
      case FuType::Auto:
        return "auto";
      case FuType::BConv:
        return "bconv";
      case FuType::ModRed:
        return "modred";
      case FuType::None:
        return "none";
    }
    return "?";
}

HardwareConfig
HardwareConfig::cinnamonChip()
{
    return HardwareConfig{};
}

HardwareConfig
HardwareConfig::monolithicChip()
{
    HardwareConfig hw;
    hw.lanes = 2048;        // 8 clusters
    hw.bconv_lanes = 2048;  // doubled BCU buffers + block size 32
    hw.phys_regs = 896;     // 224 MB register file
    hw.fu_count = {
        {FuType::Ntt, 2},  {FuType::Add, 5},   {FuType::Mul, 5},
        {FuType::Auto, 2}, {FuType::BConv, 2}, {FuType::ModRed, 2},
    };
    return hw;
}

} // namespace cinnamon::sim
