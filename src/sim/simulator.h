/**
 * @file
 * Trace-driven cycle-level simulator for the Cinnamon scale-out
 * architecture (Section 6: "We built a cycle-accurate simulator to
 * model the Cinnamon hardware architecture").
 *
 * The simulator consumes compiled multi-chip ISA streams and models:
 *  - per-chip in-order issue with structural hazards across the
 *    Table 1 functional-unit mix (multiple instances per FU class,
 *    pipelined: occupancy = vector length / lanes);
 *  - a bandwidth-limited HBM channel per chip for Load/Store traffic
 *    (register-file spills included, which is how register-file size
 *    shows up in Figures 6 and 16);
 *  - ring or switch interconnect collectives: a k-chip collective
 *    moves (k-1) limb transfers across the group's links — an
 *    aggregation serializes them (partial sums combine hop by hop),
 *    a broadcast pipelines them cut-through (the source link is
 *    occupied for one transfer while every link carries the limb
 *    once) — plus hop latencies.
 *
 * Statistics follow Section 7.6: per-FU busy cycles (area-weighted
 * compute utilization), memory busy cycles, network busy cycles
 * normalized over every link resource (net_links PHYs per chip).
 *
 * The result carries its own books — per-chip issue/retire counts and
 * per-op byte sums — and checkConservation() cross-checks them
 * against the aggregate statistics; simulate() asserts the checks and
 * exposes them through the global MetricsRegistry. Passing a
 * TraceRecorder emits one Chrome trace event per instruction
 * (pid = chip, tid = functional unit) for Perfetto.
 */

#ifndef CINNAMON_SIM_SIMULATOR_H_
#define CINNAMON_SIM_SIMULATOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/trace.h"
#include "isa/isa.h"
#include "sim/hardware.h"

namespace cinnamon::sim {

/** Result of simulating one program on one machine configuration. */
struct SimResult
{
    double cycles = 0.0;     ///< makespan over all chips
    double seconds = 0.0;

    /** Busy cycles summed over instances, per FU class, all chips. */
    std::map<FuType, double> fu_busy;
    double hbm_busy = 0.0;   ///< HBM busy cycles, all chips
    double net_busy = 0.0;   ///< link busy cycles, all links
    std::size_t chips = 0;
    std::size_t instructions = 0;
    std::size_t bytes_moved_hbm = 0;
    std::size_t bytes_moved_net = 0;

    // Self-accounting for the conservation checks.
    std::vector<std::size_t> issued_per_chip;  ///< front-end issues
    std::vector<std::size_t> retired_per_chip; ///< completed (= pc)
    std::size_t loads = 0;          ///< Load instructions executed
    std::size_t stores = 0;         ///< Store instructions executed
    std::size_t collectives = 0;    ///< collective rendezvous count
    std::size_t net_transfers = 0;  ///< limb transfers, Σ (k-1)

    /**
     * Area-weighted average compute utilization (Section 7.6), using
     * relative FU areas from Table 1 as weights.
     */
    double computeUtilization(const HardwareConfig &hw) const;

    /** Fraction of cycles the HBM channels were busy. */
    double memoryUtilization(const HardwareConfig &hw) const;

    /**
     * Fraction of cycles the network links were busy, over all
     * chips × net_links link resources in the machine.
     */
    double networkUtilization(const HardwareConfig &hw) const;

    /**
     * Conservation laws over the result's own books: instructions
     * issued = retired per chip (and sum to `instructions`), HBM and
     * network bytes equal the per-op sums, and no resource is busier
     * than its capacity. Returns one message per violated invariant
     * (empty = all hold). simulate() asserts this; callers can re-run
     * it after deserializing or aggregating results.
     */
    std::vector<std::string>
    checkConservation(const HardwareConfig &hw) const;
};

/**
 * Simulate a compiled program on `chips` copies of `hw`.
 *
 * With a non-null `trace`, every instruction lands in the recorder as
 * a complete event on the timeline of its chip (pid) and functional
 * unit (tid), with cycle timestamps converted to microseconds at
 * `hw.clock_ghz`.
 */
SimResult simulate(const isa::MachineProgram &program,
                   const HardwareConfig &hw,
                   TraceRecorder *trace = nullptr);

} // namespace cinnamon::sim

#endif // CINNAMON_SIM_SIMULATOR_H_
