/**
 * @file
 * Trace-driven cycle-level simulator for the Cinnamon scale-out
 * architecture (Section 6: "We built a cycle-accurate simulator to
 * model the Cinnamon hardware architecture").
 *
 * The simulator consumes compiled multi-chip ISA streams and models:
 *  - per-chip in-order issue with structural hazards across the
 *    Table 1 functional-unit mix (multiple instances per FU class,
 *    pipelined: occupancy = vector length / lanes);
 *  - a bandwidth-limited HBM channel per chip for Load/Store traffic
 *    (register-file spills included, which is how register-file size
 *    shows up in Figures 6 and 16);
 *  - ring or switch interconnect collectives with cut-through
 *    pipelining: duration = bytes/link-bandwidth + hop latencies,
 *    serialized on the group's link resource.
 *
 * Statistics follow Section 7.6: per-FU busy cycles (area-weighted
 * compute utilization), memory busy cycles, network busy cycles.
 */

#ifndef CINNAMON_SIM_SIMULATOR_H_
#define CINNAMON_SIM_SIMULATOR_H_

#include <map>

#include "isa/isa.h"
#include "sim/hardware.h"

namespace cinnamon::sim {

/** Result of simulating one program on one machine configuration. */
struct SimResult
{
    double cycles = 0.0;     ///< makespan over all chips
    double seconds = 0.0;

    /** Busy cycles summed over instances, per FU class, all chips. */
    std::map<FuType, double> fu_busy;
    double hbm_busy = 0.0;   ///< HBM busy cycles, all chips
    double net_busy = 0.0;   ///< link busy cycles, all groups
    std::size_t chips = 0;
    std::size_t instructions = 0;
    std::size_t bytes_moved_hbm = 0;
    std::size_t bytes_moved_net = 0;

    /**
     * Area-weighted average compute utilization (Section 7.6), using
     * relative FU areas from Table 1 as weights.
     */
    double computeUtilization(const HardwareConfig &hw) const;

    /** Fraction of cycles the HBM channels were busy. */
    double memoryUtilization(const HardwareConfig &hw) const;

    /** Fraction of cycles the network links were busy. */
    double networkUtilization(const HardwareConfig &hw) const;
};

/** Simulate a compiled program on `chips` copies of `hw`. */
SimResult simulate(const isa::MachineProgram &program,
                   const HardwareConfig &hw);

} // namespace cinnamon::sim

#endif // CINNAMON_SIM_SIMULATOR_H_
