/**
 * @file
 * Functional CPU emulator for the Cinnamon ISA (Section 6.2: "we
 * built a CPU emulator for the Cinnamon ISA and used it to run all
 * the benchmarks" — this is that tool).
 *
 * The emulator executes a MachineProgram on real limb data at any
 * ring dimension, so compiled instruction streams can be validated
 * bit-exactly against the fhe/ and parallel/ reference
 * implementations. It has no timing model; src/sim provides that.
 *
 * Data plane: each chip's HBM is a flat limb arena (one contiguous
 * buffer, address → slot table) and its register file is a flat
 * limb-major buffer — no per-limb heap allocation on the execution
 * path. Between collective rendezvous points chips share no state, so
 * run() advances them on the shared TaskPool; serial and parallel
 * execution are bit-identical by construction.
 *
 * Intra-op limb slicing (second parallelism axis): when the pool has
 * more workers than the program has chips, each elementwise
 * instruction's limb plane is split into contiguous slices executed
 * as a nested pool job — chip workers assist on their own slices and
 * idle workers steal the rest. Every output element is produced by
 * exactly one slice with the same arithmetic as the serial path, so
 * sliced execution is bit-identical to serial by construction (NTT
 * butterflies and the automorphism permutation span the whole plane
 * and stay unsliced).
 *
 * Data-dependent faults (unmapped loads, reads of never-written
 * registers) throw EmulatorError carrying the opcode, chip, and
 * stream position; structural misuse (malformed programs) still hits
 * CINN_ASSERT.
 */

#ifndef CINNAMON_ISA_EMULATOR_H_
#define CINNAMON_ISA_EMULATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "fhe/params.h"
#include "isa/isa.h"
#include "rns/limb_span.h"

namespace cinnamon::isa {

/** A limb value with the prime it is reduced under. */
struct Limb
{
    uint32_t prime = 0;
    std::vector<uint64_t> data;
};

/** A non-owning view of a limb resident in an arena or register file. */
struct LimbRef
{
    uint32_t prime = 0;
    rns::ConstLimbSpan data;
};

/**
 * A data-dependent execution fault: the failing opcode, chip, and
 * stream position (pc) are carried alongside the message.
 */
class EmulatorError : public std::runtime_error
{
  public:
    EmulatorError(const std::string &what, Opcode op, std::size_t chip,
                  std::size_t pc)
        : std::runtime_error(what), op_(op), chip_(chip), pc_(pc)
    {
    }

    Opcode opcode() const { return op_; }
    std::size_t chip() const { return chip_; }
    std::size_t pc() const { return pc_; }

  private:
    Opcode op_;
    std::size_t chip_;
    std::size_t pc_;
};

/**
 * One chip's HBM: a flat limb arena plus an address table. Limbs are
 * appended to the arena on first store to an address and overwritten
 * in place afterwards.
 */
class ChipMemory
{
  public:
    ChipMemory() : n_(0) {}
    explicit ChipMemory(std::size_t n) : n_(n) {}

    bool contains(uint64_t addr) const { return slots_.count(addr) > 0; }
    std::size_t size() const { return primes_.size(); }

    /**
     * Pre-size the arena, prime table, and slot map for `limbs`
     * distinct addresses, so the store hot path never reallocates or
     * rehashes mid-run. Called by ProgramRuntime with the program's
     * declared footprint (distinct Load/Store addresses).
     */
    void reserve(std::size_t limbs);

    /**
     * Unmap everything but keep the arena/table capacity — the cheap
     * reset between unrelated programs on a recycled emulator.
     */
    void clear();

    /** Map (or overwrite) `addr` with a limb reduced under `prime`. */
    void store(uint64_t addr, uint32_t prime, rns::ConstLimbSpan data);
    void
    store(uint64_t addr, const Limb &limb)
    {
        store(addr, limb.prime, limb.data);
    }

    /**
     * Slot bookkeeping for store() without the copy: maps `addr` (or
     * re-tags an existing mapping) and returns the destination plane.
     * The emulator uses this to slice the copy across pool workers.
     */
    uint64_t *slotFor(uint64_t addr, uint32_t prime);

    /** View of the limb at `addr`; asserts the address is mapped. */
    LimbRef at(uint64_t addr) const;

    /** Bytes held by the arena (capacity actually allocated). */
    std::size_t
    arenaBytes() const
    {
        return arena_.capacity() * sizeof(uint64_t);
    }

  private:
    std::size_t n_;
    std::vector<uint64_t> arena_;
    std::vector<uint32_t> primes_;
    std::unordered_map<uint64_t, uint32_t> slots_;
};

/** Execution counters, per opcode. */
struct EmulatorStats
{
    std::map<Opcode, std::size_t> executed;

    std::size_t
    total() const
    {
        std::size_t t = 0;
        for (const auto &[op, n] : executed)
            t += n;
        return t;
    }
};

/**
 * Executes multi-chip programs with rendezvous collectives.
 *
 * All chips' streams must contain every collective (Bcast/Agg) in the
 * same order with matching tags; the emulator advances each chip to
 * its next collective, resolves it, and repeats. Chips advance on up
 * to workers() threads; results are bit-identical at any worker count
 * because chips share no mutable state between rendezvous points.
 */
class Emulator
{
  public:
    Emulator(const fhe::CkksContext &ctx, std::size_t chips);

    std::size_t chips() const { return chips_; }
    const fhe::CkksContext &context() const { return *ctx_; }

    /** Mutable pre-load access to chip memory (inputs, keys, plaintexts). */
    ChipMemory &memory(std::size_t chip);

    /**
     * Unmap every chip's memory and clear register definitions while
     * keeping all arena/table capacity. Recycled emulators call this
     * between unrelated programs so stale mappings cannot mask
     * unmapped-load faults; correct programs see identical results
     * either way.
     */
    void resetMemory();

    /**
     * Parallelism budget for this run: chips advance concurrently and
     * any leftover budget slices each instruction's limb plane across
     * idle pool workers. Default 1 (fully serial on the caller's
     * thread); 0 means "whatever the shared TaskPool has". The budget
     * never changes results — see the limb-slicing note above.
     */
    void setWorkers(std::size_t workers) { workers_ = workers; }
    std::size_t workers() const { return workers_; }

    /**
     * Arm an injected chip failure: chip `chip` throws EmulatorError
     * the moment it is about to execute instruction index `pc` of its
     * stream — the chip "dies mid-program", exactly as a hardware
     * loss would surface to the host. Stays armed until clearFault().
     */
    void
    injectChipFailure(std::size_t chip, std::size_t pc)
    {
        fault_armed_ = true;
        fault_chip_ = chip;
        fault_pc_ = pc;
    }

    /** Disarm any injected failure. */
    void clearFault() { fault_armed_ = false; }

    /** Run a program to completion. */
    void run(const MachineProgram &program);

    /** Read a register after execution. */
    LimbRef reg(std::size_t chip, int index) const;

    /** Cumulative counters across every run() on this emulator. */
    const EmulatorStats &stats() const { return stats_; }

    /** Counters for the most recent run() only. */
    const EmulatorStats &lastRunStats() const { return last_run_; }

    /** Arena + register-file bytes across all chips. */
    std::size_t arenaBytes() const;

  private:
    /** One chip's register file: flat limb-major, grown on demand. */
    struct RegFile
    {
        std::size_t n = 0;
        std::vector<uint64_t> data;
        std::vector<uint32_t> primes;
        std::vector<uint8_t> defined;

        std::size_t size() const { return primes.size(); }

        /** Grow to cover `index`; returns its mutable plane. */
        uint64_t *ensure(int index);

        /** Drop definitions (planes stay allocated and zeroed lazily). */
        void clearDefined();
        uint64_t *plane(int index) { return data.data() + index * n; }
        const uint64_t *
        plane(int index) const
        {
            return data.data() + index * n;
        }
    };

    /** Execute one non-collective instruction on one chip. */
    void execute(std::size_t chip, const Instruction &ins,
                 std::size_t pc);

    /**
     * Run fn(lo, hi) over a partition of [0, n): inline when slicing
     * is off for this run, else as a nested pool job of `slices_`
     * contiguous ranges. Bit-identity: each element is produced by
     * exactly one slice with the serial path's arithmetic.
     */
    template <typename Fn> void sliceFor(std::size_t n, Fn &&fn);

    /** Execute one collective across chips [lo, hi). */
    void executeCollective(const MachineProgram &program,
                           const std::vector<std::size_t> &pcs,
                           uint32_t lo, uint32_t hi);

    /** Read a defined source register or throw EmulatorError. */
    const uint64_t *srcPlane(std::size_t chip, const Instruction &ins,
                             std::size_t pc, std::size_t operand) const;

    const fhe::CkksContext *ctx_;
    std::size_t chips_;
    std::size_t workers_ = 1;
    /** Limb slices per elementwise op this run (1 = no slicing). */
    std::size_t slices_ = 1;
    /** Instructions that ran sliced this run (across chips). */
    std::atomic<std::size_t> sliced_ops_{0};
    std::vector<RegFile> regs_;
    std::vector<ChipMemory> mem_;
    /** Per-chip scratch plane (automorph/bconv aliasing). */
    std::vector<std::vector<uint64_t>> scratch_;
    /** Injected chip-failure point (set before run, read during). */
    bool fault_armed_ = false;
    std::size_t fault_chip_ = 0;
    std::size_t fault_pc_ = 0;

    /** Per-chip counters, merged into stats_ after each run(). */
    std::vector<EmulatorStats> chip_stats_;
    EmulatorStats stats_;
    EmulatorStats last_run_;
};

/**
 * Recycles Emulator instances — really their flat arenas and register
 * files — across requests. Creating an emulator per request re-grows
 * every arena from zero; a recycled one has warm capacity and only
 * pays resetMemory(). Thread-safe: concurrent requests each acquire
 * their own instance. All instances share one CkksContext, so a cache
 * belongs to a serving tier (Server / remote worker), not a request.
 *
 * Metrics: emulator.cache.reuse / emulator.cache.create.
 */
class EmulatorCache
{
  public:
    explicit EmulatorCache(const fhe::CkksContext &ctx) : ctx_(&ctx) {}

    const fhe::CkksContext &context() const { return *ctx_; }

    /**
     * A reset emulator with `chips` chips: recycled when one is idle,
     * freshly built otherwise.
     */
    std::unique_ptr<Emulator> acquire(std::size_t chips);

    /** Return an emulator to the idle set for later acquire(). */
    void release(std::unique_ptr<Emulator> emu);

    /** Idle instances currently held. */
    std::size_t idleCount() const;

  private:
    const fhe::CkksContext *ctx_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Emulator>> idle_;
};

} // namespace cinnamon::isa

#endif // CINNAMON_ISA_EMULATOR_H_
