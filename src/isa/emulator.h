/**
 * @file
 * Functional CPU emulator for the Cinnamon ISA (Section 6.2: "we
 * built a CPU emulator for the Cinnamon ISA and used it to run all
 * the benchmarks" — this is that tool).
 *
 * The emulator executes a MachineProgram on real limb data at any
 * ring dimension, so compiled instruction streams can be validated
 * bit-exactly against the fhe/ and parallel/ reference
 * implementations. It has no timing model; src/sim provides that.
 */

#ifndef CINNAMON_ISA_EMULATOR_H_
#define CINNAMON_ISA_EMULATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "fhe/params.h"
#include "isa/isa.h"

namespace cinnamon::isa {

/** A limb value with the prime it is reduced under. */
struct Limb
{
    uint32_t prime = 0;
    std::vector<uint64_t> data;
};

/** Per-chip HBM contents, addressed by 64-bit limb addresses. */
using MemoryImage = std::map<uint64_t, Limb>;

/** Execution counters, per opcode. */
struct EmulatorStats
{
    std::map<Opcode, std::size_t> executed;

    std::size_t
    total() const
    {
        std::size_t t = 0;
        for (const auto &[op, n] : executed)
            t += n;
        return t;
    }
};

/**
 * Executes multi-chip programs with rendezvous collectives.
 *
 * All chips' streams must contain every collective (Bcast/Agg) in the
 * same order with matching tags; the emulator advances each chip to
 * its next collective, resolves it, and repeats.
 */
class Emulator
{
  public:
    Emulator(const fhe::CkksContext &ctx, std::size_t chips);

    /** Mutable pre-load access to chip memory (inputs, keys, plaintexts). */
    MemoryImage &memory(std::size_t chip);

    /** Run a program to completion. */
    void run(const MachineProgram &program);

    /** Read a register after execution. */
    const Limb &reg(std::size_t chip, int index) const;

    const EmulatorStats &stats() const { return stats_; }

  private:
    /** Execute one non-collective instruction on one chip. */
    void execute(std::size_t chip, const Instruction &ins);

    /** Execute one collective across chips [lo, hi). */
    void executeCollective(const MachineProgram &program,
                           const std::vector<std::size_t> &pcs,
                           uint32_t lo, uint32_t hi);

    const fhe::CkksContext *ctx_;
    std::size_t chips_;
    std::vector<std::vector<Limb>> regs_;
    std::vector<MemoryImage> mem_;
    EmulatorStats stats_;
};

} // namespace cinnamon::isa

#endif // CINNAMON_ISA_EMULATOR_H_
