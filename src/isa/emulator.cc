#include "isa/emulator.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/task_pool.h"
#include "rns/kernels.h"

namespace cinnamon::isa {
namespace {

/**
 * Minimum elements per limb slice: below this the nested-job overhead
 * beats the win, so small rings stay unsliced.
 */
constexpr std::size_t kSliceGrain = 4096;

} // namespace

void
ChipMemory::reserve(std::size_t limbs)
{
    if (limbs <= primes_.size())
        return;
    arena_.reserve(limbs * n_);
    primes_.reserve(limbs);
    slots_.reserve(limbs);
}

void
ChipMemory::clear()
{
    // clear() keeps capacity on vectors (and on libstdc++'s
    // unordered_map buckets), which is the point: the next program
    // reuses the allocation.
    arena_.clear();
    primes_.clear();
    slots_.clear();
}

uint64_t *
ChipMemory::slotFor(uint64_t addr, uint32_t prime)
{
    auto it = slots_.find(addr);
    uint32_t slot;
    if (it == slots_.end()) {
        slot = static_cast<uint32_t>(primes_.size());
        primes_.push_back(prime);
        arena_.resize(arena_.size() + n_);
        slots_.emplace(addr, slot);
    } else {
        slot = it->second;
        primes_[slot] = prime;
    }
    return arena_.data() + static_cast<std::size_t>(slot) * n_;
}

void
ChipMemory::store(uint64_t addr, uint32_t prime, rns::ConstLimbSpan data)
{
    CINN_ASSERT(data.size() == n_, "store: limb length mismatch");
    std::memcpy(slotFor(addr, prime), data.data(),
                n_ * sizeof(uint64_t));
}

LimbRef
ChipMemory::at(uint64_t addr) const
{
    auto it = slots_.find(addr);
    CINN_ASSERT(it != slots_.end(), "no limb mapped at address " << addr);
    const std::size_t slot = it->second;
    return {primes_[slot],
            rns::ConstLimbSpan(arena_.data() + slot * n_, n_)};
}

uint64_t *
Emulator::RegFile::ensure(int index)
{
    const auto want = static_cast<std::size_t>(index);
    if (want >= size()) {
        primes.resize(want + 1, 0);
        defined.resize(want + 1, 0);
        data.resize((want + 1) * n, 0);
    }
    return plane(index);
}

void
Emulator::RegFile::clearDefined()
{
    std::fill(defined.begin(), defined.end(), 0);
}

Emulator::Emulator(const fhe::CkksContext &ctx, std::size_t chips)
    : ctx_(&ctx), chips_(chips)
{
    regs_.resize(chips);
    for (auto &rf : regs_)
        rf.n = ctx.n();
    mem_.assign(chips, ChipMemory(ctx.n()));
    scratch_.resize(chips);
    chip_stats_.resize(chips);
}

ChipMemory &
Emulator::memory(std::size_t chip)
{
    CINN_ASSERT(chip < chips_, "chip index out of range");
    return mem_[chip];
}

void
Emulator::resetMemory()
{
    for (ChipMemory &m : mem_)
        m.clear();
    for (RegFile &rf : regs_)
        rf.clearDefined();
    clearFault();
}

/**
 * Partition [0, n) into slices_ contiguous ranges and run them as a
 * nested pool job. Boundaries are the pool's static-partition formula,
 * so they depend only on (n, slices_) — never on timing.
 */
template <typename Fn>
void
Emulator::sliceFor(std::size_t n, Fn &&fn)
{
    if (slices_ <= 1 || n < 2 * kSliceGrain) {
        fn(0, n);
        return;
    }
    sliced_ops_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t slices = slices_;
    TaskPool::global().forEach(slices, [&](std::size_t s) {
        const std::size_t lo = s * n / slices;
        const std::size_t hi = (s + 1) * n / slices;
        if (lo < hi)
            fn(lo, hi);
    });
}

LimbRef
Emulator::reg(std::size_t chip, int index) const
{
    CINN_ASSERT(chip < chips_ && index >= 0 &&
                    static_cast<std::size_t>(index) < regs_[chip].size(),
                "register access out of range");
    const RegFile &rf = regs_[chip];
    return {rf.primes[index],
            rns::ConstLimbSpan(rf.plane(index), rf.n)};
}

std::size_t
Emulator::arenaBytes() const
{
    std::size_t bytes = 0;
    for (const ChipMemory &m : mem_)
        bytes += m.arenaBytes();
    for (const RegFile &rf : regs_)
        bytes += rf.data.capacity() * sizeof(uint64_t);
    return bytes;
}

const uint64_t *
Emulator::srcPlane(std::size_t chip, const Instruction &ins,
                   std::size_t pc, std::size_t operand) const
{
    CINN_ASSERT(operand < ins.srcs.size() && ins.srcs[operand] >= 0,
                "missing source operand: " << ins.toString());
    const RegFile &rf = regs_[chip];
    const int r = ins.srcs[operand];
    if (static_cast<std::size_t>(r) >= rf.size() || !rf.defined[r]) {
        std::ostringstream msg;
        msg << opcodeName(ins.op) << " reads undefined register r" << r
            << " on chip " << chip << " at pc " << pc << " ("
            << ins.toString() << ")";
        throw EmulatorError(msg.str(), ins.op, chip, pc);
    }
    return rf.plane(r);
}

void
Emulator::execute(std::size_t chip, const Instruction &ins,
                  std::size_t pc)
{
    // The armed fault point fires at-or-after its pc so a fraction
    // that lands on a collective still kills the chip at its next
    // owned instruction.
    if (fault_armed_ && chip == fault_chip_ && pc >= fault_pc_) {
        std::ostringstream msg;
        msg << "injected chip failure: chip " << chip
            << " died mid-program at pc " << pc;
        throw EmulatorError(msg.str(), ins.op, chip, pc);
    }
    RegFile &rf = regs_[chip];
    const rns::Modulus &mod = ctx_->rns().modulus(ins.prime);
    const uint64_t q = mod.value();
    const std::size_t n = ctx_->n();
    const rns::KernelTable &kt = rns::kernels();
    ++chip_stats_[chip].executed[ins.op];

    // ensure() may reallocate the register file, so the destination
    // plane is always claimed before source planes are resolved.
    auto dstPlane = [&]() -> uint64_t * {
        CINN_ASSERT(ins.dst >= 0,
                    "missing destination: " << ins.toString());
        return rf.ensure(ins.dst);
    };
    auto commitDst = [&](uint32_t prime) {
        rf.primes[ins.dst] = prime;
        rf.defined[ins.dst] = 1;
    };
    auto srcPrime = [&](std::size_t i) {
        return rf.primes[ins.srcs[i]];
    };

    switch (ins.op) {
      case Opcode::Nop:
      case Opcode::Fence:
      case Opcode::Halt:
        break;
      case Opcode::Load: {
        if (!mem_[chip].contains(ins.imm)) {
            std::ostringstream msg;
            msg << "Load from unmapped address " << ins.imm
                << " on chip " << chip << " at pc " << pc << " ("
                << ins.toString() << ")";
            throw EmulatorError(msg.str(), ins.op, chip, pc);
        }
        uint64_t *d = dstPlane();
        const LimbRef m = mem_[chip].at(ins.imm);
        const uint64_t *a = m.data.data();
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            std::memcpy(d + lo, a + lo, (hi - lo) * sizeof(uint64_t));
        });
        commitDst(m.prime);
        break;
      }
      case Opcode::Store: {
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        uint64_t *d = mem_[chip].slotFor(ins.imm, srcPrime(0));
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            std::memcpy(d + lo, a + lo, (hi - lo) * sizeof(uint64_t));
        });
        break;
      }
      case Opcode::Ntt:
      case Opcode::Intt: {
        uint64_t *d = dstPlane();
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        CINN_ASSERT(srcPrime(0) == ins.prime,
                    (ins.op == Opcode::Ntt ? "ntt" : "intt")
                        << " prime mismatch");
        if (d != a) {
            sliceFor(n, [&](std::size_t lo, std::size_t hi) {
                std::memcpy(d + lo, a + lo,
                            (hi - lo) * sizeof(uint64_t));
            });
        }
        if (ins.op == Opcode::Ntt)
            ctx_->rns().ntt(ins.prime).forward(d);
        else
            ctx_->rns().ntt(ins.prime).inverse(d);
        commitDst(ins.prime);
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        uint64_t *d = dstPlane();
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        const uint64_t *b = srcPlane(chip, ins, pc, 1);
        CINN_ASSERT(srcPrime(0) == ins.prime &&
                        srcPrime(1) == ins.prime,
                    "binary op prime mismatch: " << ins.toString());
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            if (ins.op == Opcode::Add)
                kt.add(d + lo, a + lo, b + lo, hi - lo, q);
            else if (ins.op == Opcode::Sub)
                kt.sub(d + lo, a + lo, b + lo, hi - lo, q);
            else
                kt.mul(d + lo, a + lo, b + lo, hi - lo, mod);
        });
        commitDst(ins.prime);
        break;
      }
      case Opcode::AddScalar:
      case Opcode::SubScalar:
      case Opcode::MulScalar: {
        uint64_t *d = dstPlane();
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        CINN_ASSERT(srcPrime(0) == ins.prime,
                    "scalar op prime mismatch");
        const uint64_t s = ins.imm % q;
        const uint64_t s_shoup = ins.op == Opcode::MulScalar
            ? rns::shoupPrecompute(s, q)
            : 0;
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            if (ins.op == Opcode::MulScalar) {
                kt.mulScalarShoup(d + lo, a + lo, hi - lo, s, s_shoup,
                                  q);
            } else {
                for (std::size_t j = lo; j < hi; ++j) {
                    d[j] = ins.op == Opcode::AddScalar
                        ? rns::addMod(a[j], s, q)
                        : rns::subMod(a[j], s, q);
                }
            }
        });
        commitDst(ins.prime);
        break;
      }
      case Opcode::Automorph: {
        uint64_t *d = dstPlane();
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        CINN_ASSERT(srcPrime(0) == ins.prime,
                    "automorph prime mismatch");
        if (d == a) {
            auto &tmp = scratch_[chip];
            tmp.assign(a, a + n);
            kt.automorph(d, tmp.data(), n, ins.imm, q);
        } else {
            kt.automorph(d, a, n, ins.imm, q);
        }
        commitDst(ins.prime);
        break;
      }
      case Opcode::BConv: {
        // dst_j = Σ_i src_i[j] * ((S / s_i) mod q); sources must be
        // pre-scaled by (S/s_i)^{-1} mod s_i (the compiler emits
        // MulScalar first — this mirrors the two-stage BCU).
        CINN_ASSERT(ins.aux.size() == ins.srcs.size(),
                    "bconv needs one source prime per operand");
        const std::size_t fan = ins.srcs.size();
        CINN_ASSERT(fan <= 64, "bconv fan-in too large");
        bool aliases = false;
        for (int s : ins.srcs)
            aliases = aliases || s == ins.dst;
        uint64_t *d = dstPlane();
        const uint64_t *sp[64];
        uint64_t fs[64];
        uint64_t src_bound = 0;
        for (std::size_t i = 0; i < fan; ++i) {
            sp[i] = srcPlane(chip, ins, pc, i);
            CINN_ASSERT(srcPrime(i) == ins.aux[i],
                        "bconv source prime mismatch");
            const uint64_t sv = ctx_->rns().modulus(ins.aux[i]).value();
            src_bound = sv > src_bound ? sv : src_bound;
            uint64_t f = 1;
            for (std::size_t k = 0; k < ins.aux.size(); ++k) {
                if (k == i)
                    continue;
                f = mod.mul(f,
                            ctx_->rns().modulus(ins.aux[k]).value() % q);
            }
            fs[i] = f;
        }
        uint64_t *acc = d;
        if (aliases) {
            scratch_[chip].resize(n);
            acc = scratch_[chip].data();
        }
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            std::memset(acc + lo, 0, (hi - lo) * sizeof(uint64_t));
            const uint64_t *sp_lo[64];
            for (std::size_t i = 0; i < fan; ++i)
                sp_lo[i] = sp[i] + lo;
            kt.macMulti(acc + lo, sp_lo, fs, fan, hi - lo, mod,
                        src_bound);
        });
        if (aliases) {
            sliceFor(n, [&](std::size_t lo, std::size_t hi) {
                std::memcpy(d + lo, acc + lo,
                            (hi - lo) * sizeof(uint64_t));
            });
        }
        commitDst(ins.prime);
        break;
      }
      case Opcode::Mod: {
        CINN_ASSERT(ins.aux.size() == 1, "mod needs the source prime");
        uint64_t *d = dstPlane();
        const uint64_t *a = srcPlane(chip, ins, pc, 0);
        CINN_ASSERT(srcPrime(0) == ins.aux[0],
                    "mod source prime mismatch");
        sliceFor(n, [&](std::size_t lo, std::size_t hi) {
            kt.modReduce(d + lo, a + lo, hi - lo, q);
        });
        commitDst(ins.prime);
        break;
      }
      case Opcode::Bcast:
      case Opcode::Agg:
        panic("collective reached scalar executor");
    }
}

void
Emulator::executeCollective(const MachineProgram &program,
                            const std::vector<std::size_t> &pcs,
                            uint32_t lo, uint32_t hi)
{
    const std::size_t n = ctx_->n();
    const Instruction &first = program.chips[lo].instrs[pcs[lo]];
    for (std::size_t c = lo + 1; c < hi; ++c) {
        const Instruction &ins = program.chips[c].instrs[pcs[c]];
        CINN_ASSERT(ins.op == first.op && ins.tag == first.tag,
                    "collective mismatch across chips: "
                        << first.toString() << " vs " << ins.toString());
    }
    ++chip_stats_[lo].executed[first.op];

    // Collectives resolve serially between the parallel chip phases,
    // staged through a scratch limb so destination claims can't
    // invalidate the still-needed source planes.
    auto &value = scratch_[lo];
    uint32_t value_prime = first.prime;
    if (first.op == Opcode::Bcast) {
        // imm = owner chip; owner's src0 is copied to every dst.
        const std::size_t owner = first.imm;
        CINN_ASSERT(owner >= lo && owner < hi,
                    "broadcast owner outside participant group");
        const Instruction &oins = program.chips[owner].instrs[pcs[owner]];
        const uint64_t *a = srcPlane(owner, oins, pcs[owner], 0);
        value.assign(a, a + n);
        value_prime = regs_[owner].primes[oins.srcs[0]];
    } else { // Agg
        const rns::Modulus &mod = ctx_->rns().modulus(first.prime);
        const rns::KernelTable &kt = rns::kernels();
        value.resize(n);
        // Resolve (and fault-check) every participant's source before
        // slicing; the accumulation itself is elementwise, so each
        // slice runs the full chip chain over its own range — the
        // per-index arithmetic order matches the serial path exactly.
        std::vector<const uint64_t *> srcs;
        srcs.reserve(hi - lo);
        for (std::size_t c = lo; c < hi; ++c) {
            const Instruction &ins = program.chips[c].instrs[pcs[c]];
            srcs.push_back(srcPlane(c, ins, pcs[c], 0));
            CINN_ASSERT(regs_[c].primes[ins.srcs[0]] == first.prime,
                        "aggregation prime mismatch");
        }
        uint64_t *v = value.data();
        sliceFor(n, [&](std::size_t slo, std::size_t shi) {
            std::memset(v + slo, 0, (shi - slo) * sizeof(uint64_t));
            for (const uint64_t *a : srcs)
                kt.add(v + slo, v + slo, a + slo, shi - slo,
                       mod.value());
        });
    }
    for (std::size_t c = lo; c < hi; ++c) {
        const Instruction &ins = program.chips[c].instrs[pcs[c]];
        if (ins.dst >= 0) {
            uint64_t *d = regs_[c].ensure(ins.dst);
            const uint64_t *v = value.data();
            sliceFor(n, [&](std::size_t slo, std::size_t shi) {
                std::memcpy(d + slo, v + slo,
                            (shi - slo) * sizeof(uint64_t));
            });
            regs_[c].primes[ins.dst] = value_prime;
            regs_[c].defined[ins.dst] = 1;
        }
    }
}

void
Emulator::run(const MachineProgram &program)
{
    CINN_ASSERT(program.numChips() == chips_,
                "program chip count mismatch");
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> pcs(chips_, 0);

    // Effective parallelism budget: workers_ capped by the shared
    // pool (0 = take the pool's size). Chips consume the budget
    // first; what is left over slices limb planes. slices_ is a pure
    // function of (workers_, pool size, chips_, n) — never of timing
    // — and slicing never changes results, only wall clock.
    const std::size_t pool_par = TaskPool::global().parallelism();
    std::size_t budget =
        workers_ == 0 ? pool_par : std::min(workers_, pool_par);
    if (budget == 0)
        budget = 1;
    slices_ = 1;
    if (budget > chips_ && ctx_->n() >= 2 * kSliceGrain) {
        slices_ = (budget + chips_ - 1) / chips_;
        const std::size_t max_slices =
            std::max<std::size_t>(1, ctx_->n() / kSliceGrain);
        slices_ = std::min(slices_, max_slices);
    }
    sliced_ops_.store(0, std::memory_order_relaxed);

    // Pre-size each chip's register file to the stream's highest
    // destination register: one allocation up front instead of many
    // exact-fit regrowths on the execution path.
    for (std::size_t c = 0; c < chips_; ++c) {
        int max_dst = -1;
        for (const Instruction &ins : program.chips[c].instrs)
            max_dst = std::max(max_dst, ins.dst);
        if (max_dst >= 0)
            regs_[c].ensure(max_dst);
    }

    while (true) {
        // Advance every chip to its next collective (or the end);
        // chips share no mutable state here, so the advance runs on
        // the worker pool when workers_ > 1 with identical results.
        parallelFor(chips_, workers_, [&](std::size_t c) {
            const auto &instrs = program.chips[c].instrs;
            while (pcs[c] < instrs.size() &&
                   !isCollective(instrs[pcs[c]].op)) {
                execute(c, instrs[pcs[c]], pcs[c]);
                ++pcs[c];
            }
        });
        bool all_done = true;
        for (std::size_t c = 0; c < chips_; ++c) {
            if (pcs[c] < program.chips[c].instrs.size())
                all_done = false;
        }
        if (all_done)
            break;
        // Find a collective whose participant group is fully parked
        // on the same tag. Groups (streams) progress independently.
        bool progressed = false;
        for (std::size_t c = 0; c < chips_ && !progressed; ++c) {
            const auto &instrs = program.chips[c].instrs;
            if (pcs[c] >= instrs.size())
                continue;
            const Instruction &ins = instrs[pcs[c]];
            const uint32_t lo = ins.part_lo;
            const uint32_t hi = ins.part_hi == 0
                ? static_cast<uint32_t>(chips_)
                : ins.part_hi;
            bool ready = true;
            for (uint32_t p = lo; p < hi; ++p) {
                const auto &pin = program.chips[p].instrs;
                if (pcs[p] >= pin.size() ||
                    !isCollective(pin[pcs[p]].op) ||
                    pin[pcs[p]].tag != ins.tag) {
                    ready = false;
                    break;
                }
            }
            if (!ready)
                continue;
            executeCollective(program, pcs, lo, hi);
            for (uint32_t p = lo; p < hi; ++p)
                ++pcs[p];
            progressed = true;
        }
        CINN_ASSERT(progressed,
                    "collective deadlock: no participant group is "
                    "fully assembled");
    }

    std::size_t run_total = 0;
    last_run_.executed.clear();
    for (EmulatorStats &cs : chip_stats_) {
        for (const auto &[op, cnt] : cs.executed) {
            stats_.executed[op] += cnt;
            last_run_.executed[op] += cnt;
            run_total += cnt;
        }
        cs.executed.clear();
    }

    const double run_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    auto &reg = MetricsRegistry::global();
    reg.counter("emulator.runs").add(1);
    reg.counter("emulator.limbs_executed").add(
        static_cast<double>(run_total));
    reg.gauge("emulator.arena_bytes").set(
        static_cast<double>(arenaBytes()));
    reg.gauge("emulator.workers").set(static_cast<double>(workers_));
    reg.histogram("emulator.run_ms").observe(run_ms);
    const std::size_t sliced =
        sliced_ops_.load(std::memory_order_relaxed);
    reg.gauge("emulator.slice.slices").set(
        static_cast<double>(slices_));
    reg.counter("emulator.slice.sliced_ops").add(
        static_cast<double>(sliced));
    // Occupancy: fraction of this run's instructions that fanned out.
    if (run_total > 0) {
        reg.gauge("emulator.slice.occupancy")
            .set(static_cast<double>(sliced) /
                 static_cast<double>(run_total));
    }
}

std::unique_ptr<Emulator>
EmulatorCache::acquire(std::size_t chips)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto it = idle_.begin(); it != idle_.end(); ++it) {
            if ((*it)->chips() == chips) {
                std::unique_ptr<Emulator> emu = std::move(*it);
                idle_.erase(it);
                MetricsRegistry::global()
                    .counter("emulator.cache.reuse")
                    .add(1);
                emu->resetMemory();
                return emu;
            }
        }
    }
    MetricsRegistry::global().counter("emulator.cache.create").add(1);
    return std::make_unique<Emulator>(*ctx_, chips);
}

void
EmulatorCache::release(std::unique_ptr<Emulator> emu)
{
    if (!emu)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    idle_.push_back(std::move(emu));
}

std::size_t
EmulatorCache::idleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
}

} // namespace cinnamon::isa
