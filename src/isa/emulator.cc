#include "isa/emulator.h"

#include <algorithm>

#include "common/logging.h"

namespace cinnamon::isa {

Emulator::Emulator(const fhe::CkksContext &ctx, std::size_t chips)
    : ctx_(&ctx), chips_(chips)
{
    regs_.resize(chips);
    mem_.resize(chips);
}

MemoryImage &
Emulator::memory(std::size_t chip)
{
    CINN_ASSERT(chip < chips_, "chip index out of range");
    return mem_[chip];
}

const Limb &
Emulator::reg(std::size_t chip, int index) const
{
    CINN_ASSERT(chip < chips_ && index >= 0 &&
                    static_cast<std::size_t>(index) < regs_[chip].size(),
                "register access out of range");
    return regs_[chip][index];
}

void
Emulator::execute(std::size_t chip, const Instruction &ins)
{
    auto &regs = regs_[chip];
    const rns::Modulus &mod = ctx_->rns().modulus(ins.prime);
    const uint64_t q = mod.value();
    const std::size_t n = ctx_->n();
    ++stats_.executed[ins.op];

    auto src = [&](std::size_t i) -> const Limb & {
        CINN_ASSERT(i < ins.srcs.size() && ins.srcs[i] >= 0 &&
                        static_cast<std::size_t>(ins.srcs[i]) <
                            regs.size(),
                    "missing source operand: " << ins.toString());
        return regs[ins.srcs[i]];
    };
    auto dst = [&]() -> Limb & {
        CINN_ASSERT(ins.dst >= 0, "missing destination: "
                                      << ins.toString());
        if (static_cast<std::size_t>(ins.dst) >= regs.size())
            regs.resize(ins.dst + 1);
        return regs[ins.dst];
    };

    switch (ins.op) {
      case Opcode::Nop:
      case Opcode::Fence:
      case Opcode::Halt:
        break;
      case Opcode::Load: {
        auto it = mem_[chip].find(ins.imm);
        CINN_ASSERT(it != mem_[chip].end(),
                    "load from unmapped address " << ins.imm << " on chip "
                                                  << chip);
        dst() = it->second;
        break;
      }
      case Opcode::Store:
        mem_[chip][ins.imm] = src(0);
        break;
      case Opcode::Ntt: {
        Limb out = src(0);
        CINN_ASSERT(out.prime == ins.prime, "ntt prime mismatch");
        ctx_->rns().ntt(ins.prime).forward(out.data);
        dst() = std::move(out);
        break;
      }
      case Opcode::Intt: {
        Limb out = src(0);
        CINN_ASSERT(out.prime == ins.prime, "intt prime mismatch");
        ctx_->rns().ntt(ins.prime).inverse(out.data);
        dst() = std::move(out);
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul: {
        const Limb &a = src(0);
        const Limb &b = src(1);
        CINN_ASSERT(a.prime == ins.prime && b.prime == ins.prime,
                    "binary op prime mismatch: " << ins.toString());
        Limb out{ins.prime, std::vector<uint64_t>(n)};
        for (std::size_t j = 0; j < n; ++j) {
            if (ins.op == Opcode::Add)
                out.data[j] = rns::addMod(a.data[j], b.data[j], q);
            else if (ins.op == Opcode::Sub)
                out.data[j] = rns::subMod(a.data[j], b.data[j], q);
            else
                out.data[j] = mod.mul(a.data[j], b.data[j]);
        }
        dst() = std::move(out);
        break;
      }
      case Opcode::AddScalar:
      case Opcode::SubScalar:
      case Opcode::MulScalar: {
        const Limb &a = src(0);
        CINN_ASSERT(a.prime == ins.prime, "scalar op prime mismatch");
        const uint64_t s = ins.imm % q;
        Limb out{ins.prime, std::vector<uint64_t>(n)};
        for (std::size_t j = 0; j < n; ++j) {
            if (ins.op == Opcode::AddScalar)
                out.data[j] = rns::addMod(a.data[j], s, q);
            else if (ins.op == Opcode::SubScalar)
                out.data[j] = rns::subMod(a.data[j], s, q);
            else
                out.data[j] = mod.mul(a.data[j], s);
        }
        dst() = std::move(out);
        break;
      }
      case Opcode::Automorph: {
        const Limb &a = src(0);
        CINN_ASSERT(a.prime == ins.prime, "automorph prime mismatch");
        const uint64_t g = ins.imm;
        Limb out{ins.prime, std::vector<uint64_t>(n)};
        for (std::size_t j = 0; j < n; ++j) {
            const uint64_t idx = (j * g) % (2 * n);
            if (idx < n)
                out.data[idx] = a.data[j];
            else
                out.data[idx - n] =
                    a.data[j] == 0 ? 0 : q - a.data[j];
        }
        dst() = std::move(out);
        break;
      }
      case Opcode::BConv: {
        // dst_j = Σ_i src_i[j] * ((S / s_i) mod q); sources must be
        // pre-scaled by (S/s_i)^{-1} mod s_i (the compiler emits
        // MulScalar first — this mirrors the two-stage BCU).
        CINN_ASSERT(ins.aux.size() == ins.srcs.size(),
                    "bconv needs one source prime per operand");
        Limb out{ins.prime, std::vector<uint64_t>(n, 0)};
        for (std::size_t i = 0; i < ins.srcs.size(); ++i) {
            const Limb &a = src(i);
            CINN_ASSERT(a.prime == ins.aux[i],
                        "bconv source prime mismatch");
            uint64_t f = 1;
            for (std::size_t k = 0; k < ins.aux.size(); ++k) {
                if (k == i)
                    continue;
                f = mod.mul(f, ctx_->rns().modulus(ins.aux[k]).value() % q);
            }
            for (std::size_t j = 0; j < n; ++j) {
                out.data[j] =
                    mod.add(out.data[j], mod.mul(a.data[j], f));
            }
        }
        dst() = std::move(out);
        break;
      }
      case Opcode::Mod: {
        CINN_ASSERT(ins.aux.size() == 1, "mod needs the source prime");
        const Limb &a = src(0);
        CINN_ASSERT(a.prime == ins.aux[0], "mod source prime mismatch");
        Limb out{ins.prime, std::vector<uint64_t>(n)};
        for (std::size_t j = 0; j < n; ++j)
            out.data[j] = a.data[j] % q;
        dst() = std::move(out);
        break;
      }
      case Opcode::Bcast:
      case Opcode::Agg:
        panic("collective reached scalar executor");
    }
}

void
Emulator::executeCollective(const MachineProgram &program,
                            const std::vector<std::size_t> &pcs,
                            uint32_t lo, uint32_t hi)
{
    const std::size_t n = ctx_->n();
    const Instruction &first = program.chips[lo].instrs[pcs[lo]];
    for (std::size_t c = lo + 1; c < hi; ++c) {
        const Instruction &ins = program.chips[c].instrs[pcs[c]];
        CINN_ASSERT(ins.op == first.op && ins.tag == first.tag,
                    "collective mismatch across chips: "
                        << first.toString() << " vs " << ins.toString());
    }
    ++stats_.executed[first.op];

    if (first.op == Opcode::Bcast) {
        // imm = owner chip; owner's src0 is copied to every dst.
        const std::size_t owner = first.imm;
        CINN_ASSERT(owner >= lo && owner < hi,
                    "broadcast owner outside participant group");
        const Instruction &oins = program.chips[owner].instrs[pcs[owner]];
        CINN_ASSERT(!oins.srcs.empty() && oins.srcs[0] >= 0,
                    "broadcast owner missing source");
        Limb value = regs_[owner].at(oins.srcs[0]);
        for (std::size_t c = lo; c < hi; ++c) {
            const Instruction &ins = program.chips[c].instrs[pcs[c]];
            if (ins.dst >= 0) {
                if (static_cast<std::size_t>(ins.dst) >= regs_[c].size())
                    regs_[c].resize(ins.dst + 1);
                regs_[c][ins.dst] = value;
            }
        }
    } else { // Agg
        const rns::Modulus &mod = ctx_->rns().modulus(first.prime);
        Limb sum{first.prime, std::vector<uint64_t>(n, 0)};
        for (std::size_t c = lo; c < hi; ++c) {
            const Instruction &ins = program.chips[c].instrs[pcs[c]];
            CINN_ASSERT(!ins.srcs.empty() && ins.srcs[0] >= 0,
                        "aggregation missing source");
            const Limb &a = regs_[c].at(ins.srcs[0]);
            CINN_ASSERT(a.prime == first.prime,
                        "aggregation prime mismatch");
            for (std::size_t j = 0; j < n; ++j)
                sum.data[j] = mod.add(sum.data[j], a.data[j]);
        }
        for (std::size_t c = lo; c < hi; ++c) {
            const Instruction &ins = program.chips[c].instrs[pcs[c]];
            if (ins.dst >= 0) {
                if (static_cast<std::size_t>(ins.dst) >= regs_[c].size())
                    regs_[c].resize(ins.dst + 1);
                regs_[c][ins.dst] = sum;
            }
        }
    }
}

void
Emulator::run(const MachineProgram &program)
{
    CINN_ASSERT(program.numChips() == chips_,
                "program chip count mismatch");
    std::vector<std::size_t> pcs(chips_, 0);

    while (true) {
        bool all_done = true;
        // Advance every chip to its next collective (or the end).
        for (std::size_t c = 0; c < chips_; ++c) {
            const auto &instrs = program.chips[c].instrs;
            while (pcs[c] < instrs.size() &&
                   !isCollective(instrs[pcs[c]].op)) {
                execute(c, instrs[pcs[c]]);
                ++pcs[c];
            }
            if (pcs[c] < instrs.size())
                all_done = false;
        }
        if (all_done)
            break;
        // Find a collective whose participant group is fully parked
        // on the same tag. Groups (streams) progress independently.
        bool progressed = false;
        for (std::size_t c = 0; c < chips_ && !progressed; ++c) {
            const auto &instrs = program.chips[c].instrs;
            if (pcs[c] >= instrs.size())
                continue;
            const Instruction &ins = instrs[pcs[c]];
            const uint32_t lo = ins.part_lo;
            const uint32_t hi = ins.part_hi == 0
                ? static_cast<uint32_t>(chips_)
                : ins.part_hi;
            bool ready = true;
            for (uint32_t p = lo; p < hi; ++p) {
                const auto &pin = program.chips[p].instrs;
                if (pcs[p] >= pin.size() ||
                    !isCollective(pin[pcs[p]].op) ||
                    pin[pcs[p]].tag != ins.tag) {
                    ready = false;
                    break;
                }
            }
            if (!ready)
                continue;
            executeCollective(program, pcs, lo, hi);
            for (uint32_t p = lo; p < hi; ++p)
                ++pcs[p];
            progressed = true;
        }
        CINN_ASSERT(progressed,
                    "collective deadlock: no participant group is "
                    "fully assembled");
    }
}

} // namespace cinnamon::isa
