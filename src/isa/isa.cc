#include "isa/isa.h"

#include <sstream>

namespace cinnamon::isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop:
        return "nop";
      case Opcode::Load:
        return "ld";
      case Opcode::Store:
        return "st";
      case Opcode::Ntt:
        return "ntt";
      case Opcode::Intt:
        return "intt";
      case Opcode::Add:
        return "add";
      case Opcode::Sub:
        return "sub";
      case Opcode::Mul:
        return "mul";
      case Opcode::AddScalar:
        return "adds";
      case Opcode::SubScalar:
        return "subs";
      case Opcode::MulScalar:
        return "muls";
      case Opcode::Automorph:
        return "auto";
      case Opcode::BConv:
        return "bcv";
      case Opcode::Mod:
        return "mod";
      case Opcode::Bcast:
        return "bcast";
      case Opcode::Agg:
        return "agg";
      case Opcode::Fence:
        return "fence";
      case Opcode::Halt:
        return "halt";
    }
    return "?";
}

bool
isCollective(Opcode op)
{
    return op == Opcode::Bcast || op == Opcode::Agg;
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op);
    if (dst >= 0)
        oss << " r" << dst;
    for (int s : srcs)
        oss << ", r" << s;
    oss << " [q" << prime << "]";
    if (imm != 0)
        oss << " imm=" << imm;
    if (tag != 0)
        oss << " tag=" << tag;
    return oss.str();
}

} // namespace cinnamon::isa
