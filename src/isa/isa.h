/**
 * @file
 * The Cinnamon vector ISA (Section 4.6).
 *
 * Every register holds one limb: a vector of n coefficients under a
 * single prime modulus (28-bit datapath in hardware; 64-bit words in
 * the functional emulator). Instructions operate on whole limbs, which
 * standardizes register-file accesses to one uniform vector size.
 * Scalar-operand variants avoid materializing broadcast vectors, and
 * dedicated instructions cover inter-chip collectives.
 *
 * A MachineProgram is one instruction stream per chip. Collective
 * communication instructions carry a tag; all participating chips
 * execute the matching tag in the same order, which is how both the
 * emulator and the cycle simulator rendezvous them.
 */

#ifndef CINNAMON_ISA_ISA_H_
#define CINNAMON_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cinnamon::isa {

/** Operation codes of the Cinnamon ISA. */
enum class Opcode {
    Nop,
    Load,      ///< dst ← memory[imm] (one limb from HBM)
    Store,     ///< memory[imm] ← src0
    Ntt,       ///< dst ← NTT(src0) under prime
    Intt,      ///< dst ← INTT(src0) under prime
    Add,       ///< dst ← src0 + src1 (mod prime)
    Sub,       ///< dst ← src0 - src1
    Mul,       ///< dst ← src0 * src1
    AddScalar, ///< dst ← src0 + imm
    SubScalar, ///< dst ← src0 - imm
    MulScalar, ///< dst ← src0 * imm
    Automorph, ///< dst ← σ_imm(src0) (coefficient permutation)
    BConv,     ///< dst ← Σ_i srcs[i] * f_i mod prime (base conversion
               ///  MAC across input limbs; aux = source prime indices)
    Mod,       ///< dst ← src0 mod prime (Barrett reduction of a limb
               ///  carried under a different prime; aux[0] = src prime)
    Bcast,     ///< collective: broadcast src0 (owner) → dst (everyone)
    Agg,       ///< collective: dst ← Σ over chips of src0
    Fence,     ///< order marker (no-op for the emulator)
    Halt,
};

/** Human-readable opcode name. */
const char *opcodeName(Opcode op);

/** True for instructions that move data between chips. */
bool isCollective(Opcode op);

/** A single Cinnamon ISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    int dst = -1;               ///< destination register (-1 if none)
    std::vector<int> srcs;      ///< source registers
    uint32_t prime = 0;         ///< modulus index the op runs under
    uint64_t imm = 0;           ///< scalar / Galois element / address
    std::vector<uint32_t> aux;  ///< extra prime indices (BConv, Mod)
    uint64_t tag = 0;           ///< rendezvous tag for collectives
    uint32_t part_lo = 0;       ///< collective participants: chips
    uint32_t part_hi = 0;       ///< [part_lo, part_hi)

    std::string toString() const;
};

/** One chip's instruction stream. */
struct ChipProgram
{
    std::vector<Instruction> instrs;
};

/** A compiled multi-chip program. */
struct MachineProgram
{
    std::vector<ChipProgram> chips;
    std::size_t num_virtual_regs = 0; ///< before register allocation
    bool allocated = false;           ///< after Belady allocation

    std::size_t numChips() const { return chips.size(); }

    std::size_t
    totalInstructions() const
    {
        std::size_t total = 0;
        for (const auto &c : chips)
            total += c.instrs.size();
        return total;
    }
};

} // namespace cinnamon::isa

#endif // CINNAMON_ISA_ISA_H_
