/**
 * @file
 * Algebraic property tests on the CKKS layer: ring homomorphism laws
 * that must survive encryption (commutativity, distributivity,
 * rotation linearity, conjugation multiplicativity), encoder
 * linearity, and DSL construction error paths.
 */

#include <gtest/gtest.h>

#include "compiler/dsl.h"
#include "fhe_test_util.h"

using namespace cinnamon;
using testutil::CkksHarness;
using testutil::maxError;
using fhe::Cplx;

namespace {

CkksHarness &
harness()
{
    static CkksHarness h(1 << 10, 6, 3);
    return h;
}

} // namespace

TEST(FheProperties, AdditionCommutesAndAssociates)
{
    auto &h = harness();
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto vc = h.randomSlots(1.0);
    auto a = h.encryptSlots(va, 3);
    auto b = h.encryptSlots(vb, 3);
    auto c = h.encryptSlots(vc, 3);

    // (a+b)+c == a+(b+c), and a+b == b+a — exactly, ciphertext-wise.
    auto lhs = h.eval->add(h.eval->add(a, b), c);
    auto rhs = h.eval->add(a, h.eval->add(b, c));
    EXPECT_TRUE(lhs.c0 == rhs.c0 && lhs.c1 == rhs.c1);
    auto ab = h.eval->add(a, b);
    auto ba = h.eval->add(b, a);
    EXPECT_TRUE(ab.c0 == ba.c0 && ab.c1 == ba.c1);
}

TEST(FheProperties, MultiplicationDistributesOverAddition)
{
    auto &h = harness();
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto vc = h.randomSlots(1.0);
    auto a = h.encryptSlots(va, 3);
    auto b = h.encryptSlots(vb, 3);
    auto c = h.encryptSlots(vc, 3);

    auto lhs = h.decryptSlots(
        h.eval->rescale(h.eval->mul(h.eval->add(a, b), c, h.relin)));
    auto rhs = h.decryptSlots(h.eval->rescale(h.eval->add(
        h.eval->mul(a, c, h.relin), h.eval->mul(b, c, h.relin))));
    EXPECT_LT(maxError(lhs, rhs), 1e-3);
    // And against the plaintext ground truth.
    double err = 0;
    for (std::size_t i = 0; i < h.ctx->slots(); i += 29)
        err = std::max(err,
                       std::abs(lhs[i] - (va[i] + vb[i]) * vc[i]));
    EXPECT_LT(err, 1e-3);
}

TEST(FheProperties, RotationIsLinear)
{
    auto &h = harness();
    auto gks = h.keygen->galoisKeys(h.sk, {3});
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto a = h.encryptSlots(va, 2);
    auto b = h.encryptSlots(vb, 2);

    // rot(a+b) == rot(a) + rot(b)
    auto lhs = h.decryptSlots(h.eval->rotate(h.eval->add(a, b), 3, gks));
    auto rhs = h.decryptSlots(
        h.eval->add(h.eval->rotate(a, 3, gks),
                    h.eval->rotate(b, 3, gks)));
    EXPECT_LT(maxError(lhs, rhs), 1e-3);
}

TEST(FheProperties, ConjugationIsMultiplicative)
{
    auto &h = harness();
    auto gks = h.keygen->galoisKeys(h.sk, {}, true);
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto a = h.encryptSlots(va, 3);
    auto b = h.encryptSlots(vb, 3);

    // conj(a*b) == conj(a)*conj(b)
    auto lhs = h.decryptSlots(h.eval->conjugate(
        h.eval->rescale(h.eval->mul(a, b, h.relin)), gks));
    auto rhs = h.decryptSlots(h.eval->rescale(
        h.eval->mul(h.eval->conjugate(a, gks),
                    h.eval->conjugate(b, gks), h.relin)));
    EXPECT_LT(maxError(lhs, rhs), 1e-3);
}

TEST(FheProperties, EncoderIsLinear)
{
    auto &h = harness();
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto pa = h.encoder->encode(va, 2);
    auto pb = h.encoder->encode(vb, 2);
    auto psum = pa.add(pb);
    auto back = h.encoder->decode(psum, h.params.scale);
    double err = 0;
    for (std::size_t i = 0; i < h.ctx->slots(); i += 17)
        err = std::max(err, std::abs(back[i] - (va[i] + vb[i])));
    EXPECT_LT(err, 1e-5);
}

TEST(FheProperties, EmbedForwardInverseAreMutual)
{
    auto &h = harness();
    auto v = h.randomSlots(1.0);
    auto round = h.encoder->embedForward(h.encoder->embedInverse(v));
    EXPECT_LT(maxError(v, round), 1e-9);
    auto round2 = h.encoder->embedInverse(h.encoder->embedForward(v));
    EXPECT_LT(maxError(v, round2), 1e-9);
}

TEST(FheProperties, FreshNoiseIsSmall)
{
    auto &h = harness();
    // Encrypt zero and measure the decrypted magnitude: the noise
    // floor must be orders of magnitude below one slot unit.
    std::vector<Cplx> zero(h.ctx->slots(), Cplx(0, 0));
    auto ct = h.encryptSlots(zero, 2);
    auto back = h.decryptSlots(ct);
    EXPECT_LT(maxError(zero, back), 1e-6);
}

TEST(FheProperties, SubIsAddOfNegate)
{
    auto &h = harness();
    auto va = h.randomSlots(1.0);
    auto vb = h.randomSlots(1.0);
    auto a = h.encryptSlots(va, 2);
    auto b = h.encryptSlots(vb, 2);
    auto lhs = h.eval->sub(a, b);
    auto rhs = h.eval->add(a, h.eval->negate(b));
    EXPECT_TRUE(lhs.c0 == rhs.c0 && lhs.c1 == rhs.c1);
}

TEST(DslErrors, LevelMismatchIsFatal)
{
    auto &h = harness();
    compiler::Program p("bad", *h.ctx);
    auto x = p.input("x", 3);
    auto y = p.input("y", 2);
    EXPECT_EXIT({ p.add(x, y); }, ::testing::ExitedWithCode(1),
                "levels differ");
}

TEST(DslErrors, RescaleAtLevelZeroIsFatal)
{
    auto &h = harness();
    compiler::Program p("bad", *h.ctx);
    auto x = p.input("x", 0);
    EXPECT_EXIT({ p.rescale(x); }, ::testing::ExitedWithCode(1),
                "rescale at level 0");
}

TEST(DslErrors, InputAboveChainIsFatal)
{
    auto &h = harness();
    compiler::Program p("bad", *h.ctx);
    EXPECT_EXIT({ p.input("x", 99); }, ::testing::ExitedWithCode(1),
                "exceeds the parameter chain");
}
