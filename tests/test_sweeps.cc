/**
 * @file
 * Parameterized property sweeps across configuration axes:
 *  - parallel keyswitching over machine sizes (2..6 chips);
 *  - compiled rotations over step values and chip counts;
 *  - compiled multiply over levels;
 *  - keyswitch pass invariants over batch sizes.
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "compiler/runtime.h"
#include "fhe_test_util.h"
#include "parallel/keyswitch.h"

using namespace cinnamon;
using testutil::CkksHarness;
using testutil::maxError;
using fhe::Cplx;

namespace {

CkksHarness &
harness()
{
    static CkksHarness h(1 << 10, 6, 3);
    return h;
}

} // namespace

// ---- parallel keyswitch across machine sizes -----------------------

class ChipsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChipsSweep, InputBroadcastBitExactAtAnyChipCount)
{
    auto &h = harness();
    const std::size_t chips = GetParam();
    parallel::LimbMachine machine(*h.ctx, chips);
    parallel::ParallelKeySwitcher ks(*h.ctx, machine);

    const std::size_t level = h.ctx->maxLevel();
    auto v = h.randomSlots(1.0);
    auto ct = h.encryptSlots(v, level);
    auto [s0, s1] = h.eval->keySwitch(ct.c1, level, h.relin);

    auto out = ks.inputBroadcast(machine.scatter(ct.c1), level, h.relin);
    auto [p0, p1] = ks.gather(out, level);
    EXPECT_EQ(p0, s0);
    EXPECT_EQ(p1, s1);
}

TEST_P(ChipsSweep, CifherBitExactAtAnyChipCount)
{
    auto &h = harness();
    const std::size_t chips = GetParam();
    parallel::LimbMachine machine(*h.ctx, chips);
    parallel::ParallelKeySwitcher ks(*h.ctx, machine);

    const std::size_t level = h.ctx->maxLevel();
    auto v = h.randomSlots(1.0);
    auto ct = h.encryptSlots(v, level);
    auto [s0, s1] = h.eval->keySwitch(ct.c1, level, h.relin);

    auto out = ks.cifher(machine.scatter(ct.c1), level, h.relin);
    auto [p0, p1] = ks.gather(out, level);
    EXPECT_EQ(p0, s0);
    EXPECT_EQ(p1, s1);
}

TEST_P(ChipsSweep, OutputAggregationDecryptsAtAnyChipCount)
{
    auto &h = harness();
    const std::size_t chips = GetParam();
    // Digit size must fit under the extension modulus.
    const std::size_t level = h.ctx->maxLevel();
    const std::size_t digit_size = (level + chips) / chips;
    if (digit_size > h.ctx->specialBasis().size())
        GTEST_SKIP() << "digit too large for P at " << chips
                     << " chips";

    parallel::LimbMachine machine(*h.ctx, chips);
    parallel::ParallelKeySwitcher ks(*h.ctx, machine);
    auto digits = ks.chipDigits(level);
    auto s2 = h.sk.s.mul(h.sk.s);
    auto evk = h.keygen->makeKeySwitchKeyForDigits(h.sk, s2, digits);

    auto va = h.randomSlots(1.0);
    auto ca = h.encryptSlots(va, level);
    auto d0 = ca.c0.mul(ca.c0);
    auto d1 = ca.c0.mul(ca.c1);
    d1.addInPlace(ca.c1.mul(ca.c0));
    auto d2 = ca.c1.mul(ca.c1);

    auto out = ks.outputAggregation(machine.scatter(d2), level, evk);
    auto [k0, k1] = ks.gather(out, level);
    d0.addInPlace(k0);
    d1.addInPlace(k1);
    fhe::Ciphertext prod{d0, d1, level, ca.scale * ca.scale};
    auto back = h.decryptSlots(h.eval->rescale(prod));
    double err = 0;
    for (std::size_t i = 0; i < h.ctx->slots(); i += 31)
        err = std::max(err, std::abs(back[i] - va[i] * va[i]));
    EXPECT_LT(err, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Machines, ChipsSweep,
                         ::testing::Values(2, 3, 4, 6));

// ---- compiled rotation sweep ---------------------------------------

struct RotCase
{
    int steps;
    std::size_t chips;
};

class CompiledRotationSweep
    : public ::testing::TestWithParam<RotCase> {};

TEST_P(CompiledRotationSweep, MatchesPlainRotation)
{
    auto &h = harness();
    const auto [steps, chips] = GetParam();
    compiler::Program p("rot", *h.ctx);
    auto x = p.input("x", 3);
    p.output("o", p.rotate(x, steps));

    compiler::CompilerConfig cfg;
    cfg.chips = chips;
    compiler::Compiler comp(*h.ctx, cfg);
    auto compiled = comp.compile(p);

    compiler::ProgramRuntime rt(*h.ctx, *h.encoder, *h.keygen, h.sk);
    auto v = h.randomSlots(1.0);
    rt.bindInput("x", h.encryptSlots(v, 3));
    auto out = rt.run(compiled);
    auto back = h.decryptSlots(out.at("o"));
    const std::size_t slots = h.ctx->slots();
    double err = 0;
    for (std::size_t i = 0; i < slots; i += 23) {
        const std::size_t j =
            (i + static_cast<std::size_t>(
                     ((steps % (int)slots) + (int)slots) % (int)slots)) %
            slots;
        err = std::max(err, std::abs(back[i] - v[j]));
    }
    EXPECT_LT(err, 1e-3) << "steps=" << steps << " chips=" << chips;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CompiledRotationSweep,
    ::testing::Values(RotCase{1, 2}, RotCase{7, 2}, RotCase{64, 4},
                      RotCase{-3, 4}, RotCase{255, 3}));

// ---- compiled multiply across levels --------------------------------

class MulLevelSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MulLevelSweep, SquareDecryptsCorrectly)
{
    auto &h = harness();
    const std::size_t level = GetParam();
    compiler::Program p("sq", *h.ctx);
    auto x = p.input("x", level);
    p.output("o", p.rescale(p.mul(x, x)));

    compiler::CompilerConfig cfg;
    cfg.chips = 4;
    compiler::Compiler comp(*h.ctx, cfg);
    auto compiled = comp.compile(p);

    compiler::ProgramRuntime rt(*h.ctx, *h.encoder, *h.keygen, h.sk);
    auto v = h.randomSlots(1.0);
    rt.bindInput("x", h.encryptSlots(v, level));
    auto out = rt.run(compiled);
    auto back = h.decryptSlots(out.at("o"));
    double err = 0;
    for (std::size_t i = 0; i < h.ctx->slots(); i += 31)
        err = std::max(err, std::abs(back[i] - v[i] * v[i]));
    EXPECT_LT(err, 1e-3) << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, MulLevelSweep,
                         ::testing::Values(1, 2, 4, 5));

// ---- keyswitch pass invariants over batch size -----------------------

class PassBatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(PassBatchSweep, IbBatchCoversAllRotations)
{
    auto &h = harness();
    const int r = GetParam();
    compiler::Program p("b", *h.ctx);
    auto x = p.input("x", 3);
    for (int i = 1; i <= r; ++i)
        p.output("o" + std::to_string(i), p.rotate(x, i));
    auto res = compiler::runKeyswitchPass(p);
    if (r < 2) {
        EXPECT_TRUE(res.ib_batches.empty());
    } else {
        ASSERT_EQ(res.ib_batches.size(), 1u);
        EXPECT_EQ(res.ib_batches[0].rotations.size(),
                  static_cast<std::size_t>(r));
    }
}

TEST_P(PassBatchSweep, OaBatchCoversAllRotations)
{
    auto &h = harness();
    const int r = GetParam();
    if (r < 2)
        GTEST_SKIP();
    compiler::Program p("b", *h.ctx);
    std::vector<compiler::CtHandle> rots;
    for (int i = 0; i < r; ++i) {
        auto x = p.input("x" + std::to_string(i), 3);
        rots.push_back(p.rotate(x, i + 1));
    }
    auto acc = rots[0];
    for (int i = 1; i < r; ++i)
        acc = p.add(acc, rots[i]);
    p.output("o", acc);
    auto res = compiler::runKeyswitchPass(p);
    ASSERT_EQ(res.oa_batches.size(), 1u);
    EXPECT_EQ(res.oa_batches[0].rotations.size(),
              static_cast<std::size_t>(r));
    EXPECT_TRUE(res.oa_batches[0].extras.empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, PassBatchSweep,
                         ::testing::Values(1, 2, 3, 5, 9));
