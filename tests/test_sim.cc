/**
 * @file
 * Tests for the cycle-level simulator (src/sim): conservation
 * properties, bandwidth sensitivity, and topology behavior.
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "fhe_test_util.h"
#include "sim/simulator.h"

using namespace cinnamon;
using testutil::CkksHarness;

namespace {

CkksHarness &
harness()
{
    static CkksHarness h(1 << 10, 6, 3);
    return h;
}

/** Compile a small rotation-heavy program for `chips`. */
isa::MachineProgram
compileRotations(std::size_t chips, bool batching = true)
{
    auto &h = harness();
    compiler::Program p("rot", *h.ctx);
    auto x = p.input("x", 5);
    for (int r = 1; r <= 4; ++r)
        p.output("o" + std::to_string(r), p.rotate(x, r));
    compiler::CompilerConfig cfg;
    cfg.chips = chips;
    cfg.phys_regs = 64;
    cfg.ks.enable_batching = batching;
    compiler::Compiler c(*h.ctx, cfg);
    return c.compile(p).machine;
}

} // namespace

TEST(Simulator, ProducesPositiveMakespanAndStats)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig hw;
    hw.n = 1 << 10; // simulate at the compiled ring dimension
    auto res = sim::simulate(prog, hw);
    EXPECT_GT(res.cycles, 0.0);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_EQ(res.chips, 4u);
    EXPECT_EQ(res.instructions, prog.totalInstructions());
    EXPECT_GT(res.fu_busy.at(sim::FuType::Ntt), 0.0);
    EXPECT_GT(res.hbm_busy, 0.0);
    EXPECT_GT(res.net_busy, 0.0);
    EXPECT_GT(res.computeUtilization(hw), 0.0);
    EXPECT_LE(res.computeUtilization(hw), 1.0);
}

TEST(Simulator, MoreLinkBandwidthNeverHurts)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.link_gbs = 64;
    sim::HardwareConfig fast = slow;
    fast.link_gbs = 1024;
    auto r_slow = sim::simulate(prog, slow);
    auto r_fast = sim::simulate(prog, fast);
    EXPECT_LE(r_fast.cycles, r_slow.cycles);
}

TEST(Simulator, MoreHbmBandwidthNeverHurts)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.hbm_gbs = 256;
    sim::HardwareConfig fast = slow;
    fast.hbm_gbs = 4096;
    auto r_slow = sim::simulate(prog, slow);
    auto r_fast = sim::simulate(prog, fast);
    EXPECT_LT(r_fast.cycles, r_slow.cycles);
}

TEST(Simulator, BatchingReducesNetworkTraffic)
{
    auto batched = compileRotations(4, true);
    auto unbatched = compileRotations(4, false);
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto rb = sim::simulate(batched, hw);
    auto ru = sim::simulate(unbatched, hw);
    EXPECT_LT(rb.bytes_moved_net, ru.bytes_moved_net);
}

TEST(Simulator, SwitchBeatsRingForWideMachines)
{
    // With many participants a ring pays more hop latency.
    auto prog = compileRotations(12);
    sim::HardwareConfig ring;
    ring.n = 1 << 10;
    ring.topology = sim::Topology::Ring;
    sim::HardwareConfig sw = ring;
    sw.topology = sim::Topology::Switch;
    auto rr = sim::simulate(prog, ring);
    auto rs = sim::simulate(prog, sw);
    EXPECT_LE(rs.cycles, rr.cycles);
}

TEST(Simulator, SmallerRegisterFileAddsSpillTraffic)
{
    auto &h = harness();
    compiler::Program p("mul", *h.ctx);
    auto x = p.input("x", 5);
    auto y = p.input("y", 5);
    p.output("o", p.rescale(p.mul(x, y)));

    auto compileWith = [&](std::size_t regs) {
        compiler::CompilerConfig cfg;
        cfg.chips = 2;
        cfg.phys_regs = regs;
        compiler::Compiler c(*h.ctx, cfg);
        return c.compile(p).machine;
    };
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto small = sim::simulate(compileWith(16), hw);
    auto large = sim::simulate(compileWith(256), hw);
    EXPECT_GT(small.bytes_moved_hbm, large.bytes_moved_hbm);
    EXPECT_GE(small.cycles, large.cycles);
}

TEST(SimulatorUtilization, BoundsRespected)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto res = sim::simulate(prog, hw);
    for (double u : {res.computeUtilization(hw),
                     res.memoryUtilization(hw),
                     res.networkUtilization(hw)}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Simulator, CollectiveDurationScalesWithRingSize)
{
    // A single-limb broadcast takes longer on a wider ring (more
    // hops) when measured in isolation on a dependency chain.
    auto &h = harness();
    auto build = [&](std::size_t chips) {
        compiler::Program p("chain", *h.ctx);
        auto x = p.input("x", 5);
        // Serial rotations: each keyswitch's broadcasts sit on the
        // critical path.
        auto r = p.rotate(x, 1);
        r = p.rotate(r, 1);
        p.output("o", r);
        compiler::CompilerConfig cfg;
        cfg.chips = chips;
        compiler::Compiler c(*h.ctx, cfg);
        return c.compile(p).machine;
    };
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    hw.link_gbs = 16; // slow links so communication dominates
    auto t2 = sim::simulate(build(2), hw);
    auto t4 = sim::simulate(build(4), hw);
    // More chips split compute but each collective still ships the
    // full polynomial; with slow links the 4-chip machine cannot be
    // 2x faster than the 2-chip one.
    EXPECT_GT(t4.cycles, 0.5 * t2.cycles);
}

TEST(Simulator, SingleChipCollectivesAreFree)
{
    auto &h = harness();
    compiler::Program p("solo", *h.ctx);
    auto x = p.input("x", 5);
    p.output("o", p.rotate(x, 1));
    compiler::CompilerConfig cfg;
    cfg.chips = 1;
    compiler::Compiler c(*h.ctx, cfg);
    auto prog = c.compile(p).machine;
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto res = sim::simulate(prog, hw);
    EXPECT_EQ(res.net_busy, 0.0);
    EXPECT_EQ(res.bytes_moved_net, 0u);
}

TEST(Simulator, ConservationLawsHold)
{
    for (std::size_t chips : {1u, 2u, 4u}) {
        auto prog = compileRotations(chips);
        sim::HardwareConfig hw;
        hw.n = 1 << 10;
        auto res = sim::simulate(prog, hw);
        const auto violations = res.checkConservation(hw);
        EXPECT_TRUE(violations.empty())
            << chips << " chips: " << violations.front();
        ASSERT_EQ(res.issued_per_chip.size(), chips);
        std::size_t retired = 0;
        for (std::size_t c = 0; c < chips; ++c) {
            EXPECT_EQ(res.issued_per_chip[c], res.retired_per_chip[c]);
            retired += res.retired_per_chip[c];
        }
        EXPECT_EQ(retired, res.instructions);
        EXPECT_EQ(res.bytes_moved_hbm,
                  (res.loads + res.stores) * hw.limbBytes());
        EXPECT_EQ(res.bytes_moved_net,
                  res.net_transfers * hw.limbBytes());
    }
}

TEST(Simulator, CollectiveTrafficCountsParticipants)
{
    // Regression for the traffic undercount: a k-chip collective must
    // book (k-1) limb transfers, so the expected transfer count can be
    // recovered by scanning the compiled program itself.
    for (std::size_t chips : {2u, 4u}) {
        auto prog = compileRotations(chips);
        std::size_t expected_transfers = 0;
        std::size_t expected_collectives = 0;
        for (std::size_t c = 0; c < prog.numChips(); ++c) {
            for (const auto &ins : prog.chips[c].instrs) {
                if (!isa::isCollective(ins.op) || ins.part_lo != c)
                    continue; // count each collective once, at its lo
                const std::size_t hi =
                    ins.part_hi == 0 ? chips : ins.part_hi;
                ++expected_collectives;
                if (hi - ins.part_lo > 1)
                    expected_transfers += hi - ins.part_lo - 1;
            }
        }
        ASSERT_GT(expected_collectives, 0u);
        sim::HardwareConfig hw;
        hw.n = 1 << 10;
        auto res = sim::simulate(prog, hw);
        EXPECT_EQ(res.collectives, expected_collectives);
        EXPECT_EQ(res.net_transfers, expected_transfers);
        EXPECT_EQ(res.bytes_moved_net,
                  expected_transfers * hw.limbBytes());
    }
}

TEST(Simulator, NetworkUtilizationNormalizesByLinkCount)
{
    // Doubling the modeled PHY count per chip must halve the reported
    // utilization for identical traffic.
    auto prog = compileRotations(4);
    sim::HardwareConfig one;
    one.n = 1 << 10;
    one.net_links = 1;
    sim::HardwareConfig two = one;
    two.net_links = 2;
    auto r1 = sim::simulate(prog, one);
    auto r2 = sim::simulate(prog, two);
    // net_links only affects reporting, not timing.
    EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
    EXPECT_GT(r1.networkUtilization(one), 0.0);
    EXPECT_NEAR(r2.networkUtilization(two),
                0.5 * r1.networkUtilization(one), 1e-12);
}

TEST(Simulator, HigherClockShortensSeconds)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.clock_ghz = 1.0;
    sim::HardwareConfig fast = slow;
    fast.clock_ghz = 2.0;
    // Bandwidths are specified in GB/s, so doubling the clock halves
    // per-cycle bandwidth but also halves the cycle time: cycles may
    // grow, seconds must not double.
    auto rs = sim::simulate(prog, slow);
    auto rf = sim::simulate(prog, fast);
    EXPECT_LT(rf.seconds, rs.seconds * 1.5);
}
