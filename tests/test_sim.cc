/**
 * @file
 * Tests for the cycle-level simulator (src/sim): conservation
 * properties, bandwidth sensitivity, and topology behavior.
 */

#include <gtest/gtest.h>

#include "compiler/lowering.h"
#include "fhe_test_util.h"
#include "sim/simulator.h"

using namespace cinnamon;
using testutil::CkksHarness;

namespace {

CkksHarness &
harness()
{
    static CkksHarness h(1 << 10, 6, 3);
    return h;
}

/** Compile a small rotation-heavy program for `chips`. */
isa::MachineProgram
compileRotations(std::size_t chips, bool batching = true)
{
    auto &h = harness();
    compiler::Program p("rot", *h.ctx);
    auto x = p.input("x", 5);
    for (int r = 1; r <= 4; ++r)
        p.output("o" + std::to_string(r), p.rotate(x, r));
    compiler::CompilerConfig cfg;
    cfg.chips = chips;
    cfg.phys_regs = 64;
    cfg.ks.enable_batching = batching;
    compiler::Compiler c(*h.ctx, cfg);
    return c.compile(p).machine;
}

} // namespace

TEST(Simulator, ProducesPositiveMakespanAndStats)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig hw;
    hw.n = 1 << 10; // simulate at the compiled ring dimension
    auto res = sim::simulate(prog, hw);
    EXPECT_GT(res.cycles, 0.0);
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_EQ(res.chips, 4u);
    EXPECT_EQ(res.instructions, prog.totalInstructions());
    EXPECT_GT(res.fu_busy.at(sim::FuType::Ntt), 0.0);
    EXPECT_GT(res.hbm_busy, 0.0);
    EXPECT_GT(res.net_busy, 0.0);
    EXPECT_GT(res.computeUtilization(hw), 0.0);
    EXPECT_LE(res.computeUtilization(hw), 1.0);
}

TEST(Simulator, MoreLinkBandwidthNeverHurts)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.link_gbs = 64;
    sim::HardwareConfig fast = slow;
    fast.link_gbs = 1024;
    auto r_slow = sim::simulate(prog, slow);
    auto r_fast = sim::simulate(prog, fast);
    EXPECT_LE(r_fast.cycles, r_slow.cycles);
}

TEST(Simulator, MoreHbmBandwidthNeverHurts)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.hbm_gbs = 256;
    sim::HardwareConfig fast = slow;
    fast.hbm_gbs = 4096;
    auto r_slow = sim::simulate(prog, slow);
    auto r_fast = sim::simulate(prog, fast);
    EXPECT_LT(r_fast.cycles, r_slow.cycles);
}

TEST(Simulator, BatchingReducesNetworkTraffic)
{
    auto batched = compileRotations(4, true);
    auto unbatched = compileRotations(4, false);
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto rb = sim::simulate(batched, hw);
    auto ru = sim::simulate(unbatched, hw);
    EXPECT_LT(rb.bytes_moved_net, ru.bytes_moved_net);
}

TEST(Simulator, SwitchBeatsRingForWideMachines)
{
    // With many participants a ring pays more hop latency.
    auto prog = compileRotations(12);
    sim::HardwareConfig ring;
    ring.n = 1 << 10;
    ring.topology = sim::Topology::Ring;
    sim::HardwareConfig sw = ring;
    sw.topology = sim::Topology::Switch;
    auto rr = sim::simulate(prog, ring);
    auto rs = sim::simulate(prog, sw);
    EXPECT_LE(rs.cycles, rr.cycles);
}

TEST(Simulator, SmallerRegisterFileAddsSpillTraffic)
{
    auto &h = harness();
    compiler::Program p("mul", *h.ctx);
    auto x = p.input("x", 5);
    auto y = p.input("y", 5);
    p.output("o", p.rescale(p.mul(x, y)));

    auto compileWith = [&](std::size_t regs) {
        compiler::CompilerConfig cfg;
        cfg.chips = 2;
        cfg.phys_regs = regs;
        compiler::Compiler c(*h.ctx, cfg);
        return c.compile(p).machine;
    };
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto small = sim::simulate(compileWith(16), hw);
    auto large = sim::simulate(compileWith(256), hw);
    EXPECT_GT(small.bytes_moved_hbm, large.bytes_moved_hbm);
    EXPECT_GE(small.cycles, large.cycles);
}

TEST(SimulatorUtilization, BoundsRespected)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto res = sim::simulate(prog, hw);
    for (double u : {res.computeUtilization(hw),
                     res.memoryUtilization(hw),
                     res.networkUtilization(hw)}) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(Simulator, CollectiveDurationScalesWithRingSize)
{
    // A single-limb broadcast takes longer on a wider ring (more
    // hops) when measured in isolation on a dependency chain.
    auto &h = harness();
    auto build = [&](std::size_t chips) {
        compiler::Program p("chain", *h.ctx);
        auto x = p.input("x", 5);
        // Serial rotations: each keyswitch's broadcasts sit on the
        // critical path.
        auto r = p.rotate(x, 1);
        r = p.rotate(r, 1);
        p.output("o", r);
        compiler::CompilerConfig cfg;
        cfg.chips = chips;
        compiler::Compiler c(*h.ctx, cfg);
        return c.compile(p).machine;
    };
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    hw.link_gbs = 16; // slow links so communication dominates
    auto t2 = sim::simulate(build(2), hw);
    auto t4 = sim::simulate(build(4), hw);
    // More chips split compute but each collective still ships the
    // full polynomial; with slow links the 4-chip machine cannot be
    // 2x faster than the 2-chip one.
    EXPECT_GT(t4.cycles, 0.5 * t2.cycles);
}

TEST(Simulator, SingleChipCollectivesAreFree)
{
    auto &h = harness();
    compiler::Program p("solo", *h.ctx);
    auto x = p.input("x", 5);
    p.output("o", p.rotate(x, 1));
    compiler::CompilerConfig cfg;
    cfg.chips = 1;
    compiler::Compiler c(*h.ctx, cfg);
    auto prog = c.compile(p).machine;
    sim::HardwareConfig hw;
    hw.n = 1 << 10;
    auto res = sim::simulate(prog, hw);
    EXPECT_EQ(res.net_busy, 0.0);
    EXPECT_EQ(res.bytes_moved_net, 0u);
}

TEST(Simulator, HigherClockShortensSeconds)
{
    auto prog = compileRotations(4);
    sim::HardwareConfig slow;
    slow.n = 1 << 10;
    slow.clock_ghz = 1.0;
    sim::HardwareConfig fast = slow;
    fast.clock_ghz = 2.0;
    // Bandwidths are specified in GB/s, so doubling the clock halves
    // per-cycle bandwidth but also halves the cycle time: cycles may
    // grow, seconds must not double.
    auto rs = sim::simulate(prog, slow);
    auto rf = sim::simulate(prog, fast);
    EXPECT_LT(rf.seconds, rs.seconds * 1.5);
}
